//! # superneurons — facade crate
//!
//! Re-exports the whole workspace under one name, so examples and downstream
//! users can `use superneurons::...` without tracking internal crate
//! boundaries. See the README for the architecture overview.

pub use sn_cluster as cluster;
pub use sn_frameworks as frameworks;
pub use sn_graph as graph;
pub use sn_mempool as mempool;
pub use sn_models as models;
pub use sn_runtime as runtime;
pub use sn_sim as sim;
pub use sn_telemetry as telemetry;
pub use sn_tensor as tensor;

pub use sn_cluster::{ClusterSim, Fleet, JobSpec, PlacementPolicy, PolicyPreset, Workload};
pub use sn_frameworks::Framework;
pub use sn_graph::{Net, Shape4};
pub use sn_runtime::{Executor, Policy, RecomputeMode, Session};
pub use sn_sim::DeviceSpec;
pub use sn_telemetry::{MetricsRegistry, TraceSink};
