//! # sn-frameworks — memory-policy emulations of the comparison frameworks
//!
//! The paper's end-to-end tables (4, 5) and figures (13, 14) compare
//! SuperNeurons against Caffe, Torch, MXNet and TensorFlow, each with its
//! published memory strategy (§2.2). Reproducing four full frameworks is
//! neither possible nor useful; what the comparison isolates is the *memory
//! policy*, so we emulate each framework as a [`Policy`] preset running on
//! the shared simulator:
//!
//! | Emulation | §2.2 basis | Policy |
//! |---|---|---|
//! | `CaffeLike` | static allocation; forward tensors all resident; gradient buffers reused | liveness for gradients only (`keep_all_forward`), no offload/recompute, static 16 MB-capped workspace |
//! | `TorchLike` | same family, plus in-place ReLU/Dropout | CaffeLike + `inplace_act` |
//! | `MXNetLike` | DAG liveness + per-layer speed-centric recomputation that "neglects non-uniform memory distribution" | liveness + `SpeedCentric` recompute, no offload |
//! | `TensorFlowLike` | DAG liveness + swapping long-lived tensors to **pageable** host memory with on-demand (non-overlapped) transfers | liveness + eager offload, `pinned_host = false`, no prefetch, no recompute |
//! | `SuperNeurons` | the paper's runtime | everything on (`Policy::superneurons()`) |
//!
//! These are *emulations*: absolute numbers will not match the 2018
//! binaries, but each policy keeps the property the paper credits/faults it
//! for, which is what drives who-wins-by-how-much.
//!
//! Since the planner/interpreter split, every preset here is expressed
//! *over memory plans*: [`max_batch`]/[`max_resnet_depth`]/[`trains`]
//! answer feasibility by **compiling** an [`sn_runtime::MemoryPlan`] for
//! the emulated policy — the planner performs every allocation the
//! iteration would, so compile success is execution success — and the
//! Table 4/5 searches never run a simulated iteration. [`serves`] asks the
//! same question for a forward-only inference plan.

use sn_graph::Net;
use sn_runtime::session::{feasible, max_feasible_param};
use sn_runtime::{AllocatorKind, Policy, RecomputeMode, WorkspacePolicy};
use sn_sim::DeviceSpec;

/// The emulated frameworks, in the paper's table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framework {
    Caffe,
    MXNet,
    Torch,
    TensorFlow,
    SuperNeurons,
}

impl Framework {
    /// All frameworks, in the column order of Tables 4/5.
    pub const ALL: [Framework; 5] = [
        Framework::Caffe,
        Framework::MXNet,
        Framework::Torch,
        Framework::TensorFlow,
        Framework::SuperNeurons,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Framework::Caffe => "Caffe",
            Framework::MXNet => "MXNet",
            Framework::Torch => "Torch",
            Framework::TensorFlow => "TensorFlow",
            Framework::SuperNeurons => "SuperNeurons",
        }
    }

    /// The policy bundle emulating this framework's memory strategy.
    pub fn policy(&self) -> Policy {
        match self {
            Framework::Caffe => Policy {
                liveness: true,
                keep_all_forward: true,
                inplace_act: false,
                offload: false,
                eager_offload: false,
                tensor_cache: false,
                prefetch: false,
                prefetch_depth: sn_runtime::policy::DEFAULT_PREFETCH_DEPTH,
                pinned_host: true,
                sync_transfers: false,
                recompute: RecomputeMode::None,
                allocator: AllocatorKind::HeapPool, // Caffe allocates once, up front
                workspace: WorkspacePolicy::Capped(16 << 20),
                cache_policy: sn_runtime::CachePolicy::Lru,
                tiers: sn_runtime::TierConfig::default(),
                precision: sn_graph::Precision::fp32(),
            },
            Framework::Torch => Policy {
                inplace_act: true,
                ..Framework::Caffe.policy()
            },
            Framework::MXNet => Policy {
                liveness: true,
                keep_all_forward: false,
                inplace_act: false,
                offload: false,
                eager_offload: false,
                tensor_cache: false,
                prefetch: false,
                prefetch_depth: sn_runtime::policy::DEFAULT_PREFETCH_DEPTH,
                pinned_host: true,
                sync_transfers: false,
                recompute: RecomputeMode::SpeedCentric,
                allocator: AllocatorKind::HeapPool,
                workspace: WorkspacePolicy::Capped(16 << 20),
                cache_policy: sn_runtime::CachePolicy::Lru,
                tiers: sn_runtime::TierConfig::default(),
                precision: sn_graph::Precision::fp32(),
            },
            Framework::TensorFlow => Policy {
                liveness: true,
                keep_all_forward: false,
                inplace_act: false,
                offload: true,
                eager_offload: true,
                tensor_cache: false,
                prefetch: false, // on-demand fetches stall the compute stream
                prefetch_depth: sn_runtime::policy::DEFAULT_PREFETCH_DEPTH,
                pinned_host: false, // pageable staging: ~50% PCIe bandwidth
                sync_transfers: false,
                recompute: RecomputeMode::None,
                allocator: AllocatorKind::HeapPool,
                workspace: WorkspacePolicy::Capped(16 << 20),
                cache_policy: sn_runtime::CachePolicy::Lru,
                tiers: sn_runtime::TierConfig::default(),
                precision: sn_graph::Precision::fp32(),
            },
            Framework::SuperNeurons => Policy::superneurons(),
        }
    }
}

/// Table 5: the largest batch a framework trains on `spec`.
pub fn max_batch(
    framework: Framework,
    build: &(dyn Fn(usize) -> Net + Sync),
    spec: &DeviceSpec,
    hi: usize,
) -> usize {
    max_feasible_param(build, spec, framework.policy(), 1, hi)
}

/// Table 4: the deepest `resnet_depth` network a framework trains at a
/// fixed batch. Returns the depth value (`3·(n1+n2+n3+n4)+2` convention).
pub fn max_resnet_depth(framework: Framework, batch: usize, spec: &DeviceSpec, hi: usize) -> usize {
    // Depth is only meaningful in steps of 3 (one more bottleneck unit).
    let build = move |units: usize| sn_models::resnet(batch, (6, 32, units, 6));
    let lo_units = 1;
    let hi_units = (hi.saturating_sub(2) / 3).saturating_sub(44).max(2);
    let best_units = max_feasible_param(&build, spec, framework.policy(), lo_units, hi_units);
    if best_units == 0 {
        return 0;
    }
    3 * (6 + 32 + best_units + 6) + 2
}

/// Does this framework train `net` on `spec` at all?
pub fn trains(framework: Framework, net: &Net, spec: &DeviceSpec) -> bool {
    feasible(net, spec, framework.policy())
}

/// Can this framework's memory policy *serve* `net` on `spec` — i.e. does a
/// forward-only inference plan compile within the device?
pub fn serves(framework: Framework, net: &Net, spec: &DeviceSpec) -> bool {
    sn_runtime::plan::compile_inference(net, spec, framework.policy()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_runtime::Executor;

    fn spec() -> DeviceSpec {
        // A small device so the tests explore the interesting regime fast.
        DeviceSpec::k40c().with_dram(768 << 20)
    }

    fn smallnet(batch: usize) -> Net {
        let mut net = Net::new("s", sn_graph::Shape4::new(batch, 3, 64, 64));
        let d = net.data();
        let c1 = net.conv(d, 32, 5, 1, 2);
        let a1 = net.relu(c1);
        let l1 = net.lrn(a1);
        let p1 = net.max_pool(l1, 2, 2, 0);
        let c2 = net.conv(p1, 64, 3, 1, 1);
        let a2 = net.relu(c2);
        let p2 = net.max_pool(a2, 2, 2, 0);
        let f = net.fc(p2, 128);
        let a3 = net.relu(f);
        let f2 = net.fc(a3, 10);
        net.softmax(f2);
        net
    }

    #[test]
    fn framework_order_on_max_batch_matches_the_paper() {
        let spec = spec();
        let batches: Vec<(Framework, usize)> = Framework::ALL
            .iter()
            .map(|f| (*f, max_batch(*f, &smallnet, &spec, 1 << 14)))
            .collect();
        let get = |f: Framework| batches.iter().find(|(x, _)| *x == f).unwrap().1;
        let (caffe, torch, mxnet, tf, sn) = (
            get(Framework::Caffe),
            get(Framework::Torch),
            get(Framework::MXNet),
            get(Framework::TensorFlow),
            get(Framework::SuperNeurons),
        );
        assert!(torch >= caffe, "torch {torch} vs caffe {caffe}");
        assert!(mxnet > caffe, "mxnet {mxnet} vs caffe {caffe}");
        assert!(sn > tf, "sn {sn} vs tf {tf}");
        assert!(sn > mxnet, "sn {sn} vs mxnet {mxnet}");
        // The decisive margins appear on real networks (Table 5 in the
        // harness); on this miniature net we still require a clear lead.
        // (The TensorFlow emulation gained some batch headroom when the
        // multi-stream engine started releasing eager-offload device copies
        // at deterministic step boundaries, so the margin here is a little
        // narrower than on the old serialized engine.)
        assert!(
            sn as f64 >= 1.2 * tf.max(mxnet) as f64,
            "SuperNeurons should lead clearly: {batches:?}"
        );
    }

    #[test]
    fn peak_memory_order_is_inverse_of_batch_order() {
        let spec = DeviceSpec::k40c();
        let net = smallnet(64);
        // Compare functional-tensor footprints: workspace policies are
        // normalized off (SuperNeurons deliberately converts *free* memory
        // into workspace, which is not a footprint cost).
        let peak = |f: Framework| {
            let pol = sn_runtime::Policy {
                workspace: WorkspacePolicy::None,
                ..f.policy()
            };
            Executor::new(&net, spec.clone(), pol)
                .unwrap()
                .run_iteration()
                .unwrap()
                .peak_bytes
        };
        let caffe = peak(Framework::Caffe);
        let torch = peak(Framework::Torch);
        let mxnet = peak(Framework::MXNet);
        let sn = peak(Framework::SuperNeurons);
        assert!(torch <= caffe);
        assert!(mxnet < caffe);
        assert!(sn < caffe, "sn {sn} vs caffe {caffe}");
    }

    #[test]
    fn tensorflow_emulation_pays_for_pageable_transfers() {
        let spec = DeviceSpec::k40c();
        let net = smallnet(64);
        let tf = Executor::new(&net, spec.clone(), Framework::TensorFlow.policy())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(tf.d2h_bytes > 0, "TF-like must swap");
        // SuperNeurons at the same load: no traffic at all (fits in DRAM).
        let sn = Executor::new(&net, spec, Framework::SuperNeurons.policy())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert_eq!(sn.d2h_bytes, 0);
        assert!(sn.iter_time < tf.iter_time);
    }

    #[test]
    fn plan_feasibility_agrees_with_execution() {
        // The presets are now answered by plan compilation; the compiled
        // verdict must match what actually executing an iteration says.
        let spec = spec();
        let net = smallnet(48);
        for fw in Framework::ALL {
            let compiled = trains(fw, &net, &spec);
            let executed = match Executor::new(&net, spec.clone(), fw.policy()) {
                Ok(mut ex) => ex.run_iteration().is_ok(),
                Err(_) => false,
            };
            assert_eq!(compiled, executed, "{}", fw.name());
            // Serving is never harder than training.
            if compiled {
                assert!(serves(fw, &net, &spec), "{}", fw.name());
            }
        }
    }

    #[test]
    fn depth_search_returns_table4_style_values() {
        // Use a small batch + small device to keep the search fast; the
        // full 12 GB Table 4 run lives in the experiment harness.
        let spec = DeviceSpec::k40c().with_dram(3 << 30);
        let sn = max_resnet_depth(Framework::SuperNeurons, 2, &spec, 2000);
        let caffe = max_resnet_depth(Framework::Caffe, 2, &spec, 2000);
        assert!(sn > caffe, "sn {sn} vs caffe {caffe}");
        assert!(
            sn >= 3 * (6 + 32 + 1 + 6) + 2,
            "sn should reach at least the minimum: {sn}"
        );
        // Depth values follow the 3k+2 convention.
        assert_eq!((sn - 2) % 3, 0);
    }
}
