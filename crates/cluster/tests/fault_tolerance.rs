//! Fault-injection and recovery contract of the cluster scheduler:
//!
//! 1. **Opt-in** — an *empty* fault plan (fault mode on, no events) leaves
//!    the schedule byte-identical to a fault-free run and to the retained
//!    reference loop.
//! 2. **Gang atomicity under failure** — one replica's device dying fails
//!    or interrupts the whole gang, releasing every replica's reservation
//!    and budget at the same instant.
//! 3. **Checkpoint/restart** — interrupted training jobs resume from their
//!    last checkpoint, and every restarted grant's (budget, peak) vector is
//!    byte-identical to the original plan (the shared plan memo guarantees
//!    it on a homogeneous fleet).
//! 4. **Integer timers** — backoff/retry instants chain in u64 nanoseconds;
//!    streams anchored past 2^53 ns (where `as f64` collapses neighboring
//!    integers) still recover and replay deterministically.
//! 5. **Elastic pressure response** — under `RestartElastic`, a blocked
//!    admission live-downgrades running tenants through the plan memo;
//!    under plain `Restart` it never does.
//! 6. **Replay determinism** — identical `FaultPlan` seeds yield
//!    byte-identical `ClusterReport`s and `ServiceReport`s (proptest).

use proptest::prelude::*;
use sn_cluster::{
    synthetic_stream, ClusterSim, FaultPlan, Fleet, JobSpec, PlacementPolicy, PolicyPreset,
    RecoveryMode, RecoveryPolicy, ReplayStream, TraceKind, Workload,
};
use sn_runtime::Interconnect;
use sn_sim::{DeviceSpec, SimTime};

const MB: u64 = 1 << 20;

fn fleet_n(n: usize, dram: u64) -> Fleet {
    Fleet::homogeneous(n, DeviceSpec::k40c().with_dram(dram), Interconnect::pcie())
}

fn fleet8(dram: u64) -> Fleet {
    fleet_n(8, dram)
}

/// Fault-free makespan of `arrivals` on a fresh sim — used to aim fault
/// instants at the middle of a run instead of guessing step times.
fn probe_makespan(fleet: &Fleet, arrivals: &[(SimTime, JobSpec)]) -> u64 {
    let mut sim = ClusterSim::new(fleet.clone(), PlacementPolicy::FirstFit);
    sim.run(arrivals.to_vec()).makespan.0
}

#[test]
fn empty_fault_plan_is_bit_identical_to_fault_free_run() {
    let arrivals = synthetic_stream(40, 11, PolicyPreset::Superneurons, true);
    let baseline = ClusterSim::new(fleet8(96 * MB), PlacementPolicy::BestFit).run(arrivals.clone());
    let mut armed = ClusterSim::new(fleet8(96 * MB), PlacementPolicy::BestFit);
    armed.enable_faults(FaultPlan::new(), RecoveryPolicy::default());
    let report = armed.run(arrivals.clone());
    assert!(
        report.bit_identical(&baseline),
        "fault mode with no events must not perturb the schedule"
    );
    let reference =
        ClusterSim::new(fleet8(96 * MB), PlacementPolicy::BestFit).run_reference(arrivals);
    assert!(report.bit_identical(&reference));
    assert!(report.conservation_holds());
    assert_eq!(report.restarts, 0);
    assert_eq!(report.wasted_iterations, 0);
}

#[test]
fn gang_failure_is_atomic_across_all_replicas() {
    // Size the gang so one replica fills well over half a device: any stale
    // replica reservation left behind by a non-atomic failure would make
    // the identical probe gang unplaceable.
    let w = Workload::Synthetic {
        width: 32,
        depth: 6,
    };
    let gang = |name: &str| {
        JobSpec::new(name, w, 16)
            .with_preset(PolicyPreset::Baseline)
            .with_downgrade(false)
            .with_replicas(3)
            .with_iterations(400)
    };
    let peak = {
        let mut sim = ClusterSim::new(fleet_n(3, 1 << 30), PlacementPolicy::FirstFit);
        let r = sim.run(vec![(SimTime::ZERO, gang("probe"))]);
        r.jobs[0].reservations[0]
    };
    let dram = peak + peak / 2; // fits one replica, never two
    let fleet = fleet_n(3, dram);
    let makespan = probe_makespan(&fleet, &[(SimTime::ZERO, gang("solo"))]);
    assert!(makespan > 4, "gang run too short to interrupt");

    let t_kill = SimTime(makespan / 2);
    let t_recover = t_kill + SimTime::from_us(10);
    let mut sim = ClusterSim::new(fleet, PlacementPolicy::FirstFit);
    sim.enable_faults(
        FaultPlan::new().kill(t_kill, 0).recover(t_recover, 0),
        RecoveryPolicy::default().with_mode(RecoveryMode::NoRecovery),
    );
    let report = sim.run(vec![
        (SimTime::ZERO, gang("victim")),
        // Arrives after the recovery: admits only if ALL THREE of the
        // victim's reservations (devices 0, 1, 2) were released.
        (t_recover + SimTime::from_us(10), gang("aftermath")),
    ]);

    let victim = report.jobs.iter().find(|j| j.name == "victim").unwrap();
    assert!(
        victim.failed.is_some(),
        "no-recovery victim must fail permanently"
    );
    assert!(victim.completion.is_none());
    assert!(
        victim.wasted_iterations > 0,
        "interrupted progress is wasted work"
    );
    let interrupts = report
        .trace
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Interrupt { .. }))
        .count();
    assert_eq!(interrupts, 1, "one gang, one atomic interruption");

    let aftermath = report.jobs.iter().find(|j| j.name == "aftermath").unwrap();
    assert!(
        aftermath.completion.is_some(),
        "stale gang reservations blocked the aftermath gang: release was not atomic"
    );
    assert!(report.conservation_holds());
    assert_eq!(report.failed, 1);
    assert_eq!(report.completed, 1);
}

#[test]
fn checkpoint_restart_resumes_with_byte_exact_peaks() {
    let arrivals = synthetic_stream(24, 7, PolicyPreset::Superneurons, true);
    let fleet = fleet8(96 * MB);
    let makespan = probe_makespan(&fleet, &arrivals);

    // Knock out two devices mid-run, recover them later.
    let plan = FaultPlan::new()
        .outage(SimTime(makespan / 4), 0, SimTime(makespan / 4))
        .outage(SimTime(makespan / 3), 5, SimTime(makespan / 5));
    let policy = RecoveryPolicy::default()
        .with_checkpoint_interval(2)
        .with_backoff(SimTime::from_us(50), SimTime::from_ms(2));
    let mut sim = ClusterSim::new(fleet, PlacementPolicy::FirstFit);
    sim.enable_faults(plan, policy);
    let report = sim.run(arrivals);

    assert!(report.conservation_holds(), "job conservation violated");
    assert!(report.restarts > 0, "the outages must interrupt someone");
    assert!(report.wasted_iterations > 0);
    for job in &report.jobs {
        assert!(
            job.restart_peak_exact,
            "job {} restarted with a different (budget, peak) vector",
            job.name
        );
        if job.restarts > 0 {
            assert!(
                job.completion.is_some(),
                "restarted job {} never finished",
                job.name
            );
        }
    }
    // Goodput accounting: useful iterations are exactly the completed
    // jobs' totals; raw throughput adds the wasted ones on top.
    let expect_useful: u64 = report
        .jobs
        .iter()
        .filter(|j| j.completion.is_some())
        .map(|j| u64::from(j.iterations))
        .sum();
    assert_eq!(report.useful_iterations, expect_useful);
    assert!(report.raw_iters_per_sec >= report.goodput_iters_per_sec);
    assert!(report.goodput_iters_per_sec.is_finite());
}

#[test]
fn recovery_timers_survive_the_f64_collapse_past_2p53() {
    // Anchor the whole run past 2^53 ns, where neighboring integer instants
    // collapse under `as f64` (the PR-2 bug class). Retry backoff chains in
    // u64, so the lone-device outage below must still be ridden out.
    let base = 1u64 << 53;
    let w = Workload::Synthetic { width: 8, depth: 2 };
    let arrivals = vec![
        (SimTime(base), JobSpec::new("a", w, 8).with_iterations(200)),
        (
            SimTime(base + 1),
            JobSpec::new("b", w, 8).with_iterations(50),
        ),
    ];
    let fleet = fleet_n(1, 96 * MB);
    let makespan = probe_makespan(&fleet, &arrivals);
    let t_kill = SimTime(base + (makespan - base) / 3);
    let outage = SimTime::from_us(200);

    let run = || {
        let mut sim = ClusterSim::new(fleet.clone(), PlacementPolicy::FirstFit);
        sim.enable_faults(
            FaultPlan::new().outage(t_kill, 0, outage),
            // With the only device down, interrupted jobs ride pure-u64
            // backoff: delays small enough to probe the outage repeatedly.
            RecoveryPolicy::default()
                .with_backoff(SimTime::from_us(20), SimTime::from_us(50))
                .with_max_retries(32),
        );
        sim.run(arrivals.clone())
    };
    let report = run();
    assert!(report.conservation_holds());
    assert_eq!(report.completed, 2, "both jobs must ride out the outage");
    assert!(report.restarts > 0);
    for job in &report.jobs {
        assert!(job.restart_peak_exact);
    }
    // Trace instants are integer ns and must never run backwards, even
    // where their f64 projections are equal.
    for w in report.trace.windows(2) {
        assert!(w[1].t_ns >= w[0].t_ns, "trace time ran backwards");
    }
    // Same plan, same stream → byte-identical replay.
    assert!(report.bit_identical(&run()));
}

#[test]
fn elastic_mode_downgrades_running_tenants_restart_mode_does_not() {
    let w = Workload::Synthetic {
        width: 48,
        depth: 8,
    };
    // Probe per-preset peaks on a huge device.
    let peak_of = |preset: PolicyPreset| {
        let mut sim = ClusterSim::new(fleet_n(1, 1 << 30), PlacementPolicy::FirstFit);
        let r = sim.run(vec![(
            SimTime::ZERO,
            JobSpec::new("probe", w, 16)
                .with_preset(preset)
                .with_downgrade(false),
        )]);
        r.jobs[0].reservations[0]
    };
    let p_base = peak_of(PolicyPreset::Baseline);
    let p_liveness = peak_of(PolicyPreset::LivenessOnly);
    assert!(
        p_liveness + 5 * MB < p_base,
        "test premise: ladder must free real memory (baseline {p_base}, liveness {p_liveness})"
    );
    // One device sized so the baseline resident fits alone, a second
    // baseline tenant is blocked (baseline's peak is budget-independent, so
    // it cannot squeeze itself in), and both fit once the resident moves at
    // least one rung down the ladder.
    let dram = p_base + p_liveness + 4 * MB;
    assert!(dram < 2 * p_base, "newcomer must be blocked at baseline");
    let arrivals = vec![
        (
            SimTime::ZERO,
            JobSpec::new("resident", w, 16)
                .with_preset(PolicyPreset::Baseline)
                .with_downgrade(true)
                .with_iterations(60),
        ),
        (
            SimTime::from_us(50),
            JobSpec::new("newcomer", w, 16)
                .with_preset(PolicyPreset::Baseline)
                .with_downgrade(false)
                .with_iterations(5),
        ),
    ];
    let run = |mode: RecoveryMode| {
        let mut sim = ClusterSim::new(fleet_n(1, dram), PlacementPolicy::FirstFit);
        // Fault mode armed with an empty plan: recovery machinery on, no
        // injected events — pressure comes purely from the arrival.
        sim.enable_faults(FaultPlan::new(), RecoveryPolicy::default().with_mode(mode));
        sim.run(arrivals.clone())
    };

    let elastic = run(RecoveryMode::RestartElastic);
    let restart = run(RecoveryMode::Restart);
    assert!(elastic.conservation_holds() && restart.conservation_holds());
    assert_eq!(elastic.completed, 2);
    assert_eq!(restart.completed, 2);

    let downgrades = |r: &sn_cluster::ClusterReport| {
        r.trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Downgrade { .. }))
            .count()
    };
    assert!(
        downgrades(&elastic) > 0,
        "elastic mode must live-downgrade the resident"
    );
    assert_eq!(
        downgrades(&restart),
        0,
        "plain restart must never touch running tenants"
    );
    let resident = elastic.jobs.iter().find(|j| j.name == "resident").unwrap();
    assert!(
        resident.granted.unwrap() > PolicyPreset::Baseline,
        "resident must end on a stronger preset"
    );
    // The squeeze pays off: the newcomer starts strictly earlier than under
    // plain restart (which waits for the resident to finish).
    let started = |r: &sn_cluster::ClusterReport| {
        r.jobs
            .iter()
            .find(|j| j.name == "newcomer")
            .unwrap()
            .started
            .expect("newcomer must start")
    };
    assert!(started(&elastic) < started(&restart));
}

#[test]
fn tuned_rung_downgrades_onto_the_hand_ladder_under_restart_elastic() {
    let w = Workload::Synthetic {
        width: 48,
        depth: 8,
    };
    // A "tuned" bundle pinned to the naive baseline policy: maximal peak,
    // so the elastic planner has real memory to reclaim by walking the
    // tuned tenant onto the hand ladder (`Tuned` → `FullMemory`).
    let tuned = PolicyPreset::Tuned(sn_runtime::tune::register(sn_runtime::TunedPolicy {
        policy: sn_runtime::Policy::baseline(),
        bucket_bytes: 8 * MB,
        step_time: SimTime::from_us(10),
        plan_peak_bytes: 1,
        executed_peak_bytes: 1,
        hand_step_time: SimTime::from_us(12),
        hand_name: "baseline",
        seed: 0,
        evals: 0,
        pruned: 0,
        trace_digest: 0,
    }));
    assert_eq!(tuned.next_stronger(), Some(PolicyPreset::FullMemory));
    let peak_of = |preset: PolicyPreset| {
        let mut sim = ClusterSim::new(fleet_n(1, 1 << 30), PlacementPolicy::FirstFit);
        let r = sim.run(vec![(
            SimTime::ZERO,
            JobSpec::new("probe", w, 16)
                .with_preset(preset)
                .with_downgrade(false),
        )]);
        r.jobs[0].reservations[0]
    };
    let p_tuned = peak_of(tuned);
    let p_full = peak_of(PolicyPreset::FullMemory);
    assert!(
        p_full + 5 * MB < p_tuned,
        "test premise: the hand rung above Tuned must free real memory \
         (tuned {p_tuned}, full_memory {p_full})"
    );
    // Resident tuned tenant fills the device; an identical no-downgrade
    // newcomer is blocked (the baseline-pinned policy cannot adapt to a
    // budget) until elastic recovery moves the resident one rung up.
    let dram = p_tuned + p_full + 4 * MB;
    assert!(dram < 2 * p_tuned, "newcomer must be blocked at Tuned");
    let arrivals = vec![
        (
            SimTime::ZERO,
            JobSpec::new("resident", w, 16)
                .with_preset(tuned)
                .with_downgrade(true)
                .with_iterations(60),
        ),
        (
            SimTime::from_us(50),
            JobSpec::new("newcomer", w, 16)
                .with_preset(tuned)
                .with_downgrade(false)
                .with_iterations(5),
        ),
    ];
    let mut sim = ClusterSim::new(fleet_n(1, dram), PlacementPolicy::FirstFit);
    sim.enable_faults(
        FaultPlan::new(),
        RecoveryPolicy::default().with_mode(RecoveryMode::RestartElastic),
    );
    let report = sim.run(arrivals);
    assert!(report.conservation_holds());
    assert_eq!(report.completed, 2, "both tuned jobs must complete");
    let downgrades = report
        .trace
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Downgrade { .. }))
        .count();
    assert!(downgrades > 0, "elastic mode must downgrade the resident");
    let resident = report.jobs.iter().find(|j| j.name == "resident").unwrap();
    let granted = resident.granted.unwrap();
    assert!(
        granted > tuned,
        "resident must end on a hand rung above Tuned, got {granted:?}"
    );
    assert!(matches!(
        granted,
        PolicyPreset::FullMemory | PolicyPreset::Superneurons
    ));
}

#[test]
fn streaming_loop_reports_fault_aggregates() {
    let arrivals = synthetic_stream(30, 3, PolicyPreset::Superneurons, true);
    let fleet = fleet8(96 * MB);
    let makespan = probe_makespan(&fleet, &arrivals);
    let plan = FaultPlan::new().outage(SimTime(makespan / 3), 2, SimTime(makespan / 4));

    let mut svc = ClusterSim::new(fleet.clone(), PlacementPolicy::FirstFit);
    svc.enable_faults(plan.clone(), RecoveryPolicy::default());
    let service = svc.run_stream(&mut ReplayStream::new(arrivals.clone()));

    let mut full = ClusterSim::new(fleet, PlacementPolicy::FirstFit);
    full.enable_faults(plan, RecoveryPolicy::default());
    let report = full.run(arrivals);

    // Both recorders run the same core: the aggregates must agree exactly.
    assert!(service.conservation_holds());
    assert_eq!(service.submitted, report.jobs.len() as u64);
    assert_eq!(service.completed, report.completed as u64);
    assert_eq!(service.failed, report.failed as u64);
    assert_eq!(service.still_queued, report.still_queued as u64);
    assert_eq!(service.restarts, report.restarts);
    assert_eq!(service.useful_iterations, report.useful_iterations);
    assert_eq!(service.wasted_iterations, report.wasted_iterations);
    assert_eq!(
        service.goodput_iters_per_sec.to_bits(),
        report.goodput_iters_per_sec.to_bits()
    );
    assert!(service.goodput_iters_per_sec.is_finite());
    assert!(service.raw_iters_per_sec.is_finite());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn identical_fault_seeds_replay_byte_identically(
        seed in 0u64..1_000,
        n in 10usize..40,
        mtbf_us in 200u64..2_000,
    ) {
        let arrivals = synthetic_stream(n, seed, PolicyPreset::Superneurons, true);
        let horizon = SimTime::from_ms(20);
        let plan = FaultPlan::seeded_random(
            seed,
            8,
            horizon,
            SimTime::from_us(mtbf_us),
            SimTime::from_us(mtbf_us / 4),
        );
        prop_assert_eq!(
            &plan,
            &FaultPlan::seeded_random(
                seed,
                8,
                horizon,
                SimTime::from_us(mtbf_us),
                SimTime::from_us(mtbf_us / 4),
            ),
            "seeded plans must be pure functions of the seed"
        );
        let run = || {
            let mut sim = ClusterSim::new(fleet8(96 * MB), PlacementPolicy::FirstFit);
            sim.enable_faults(plan.clone(), RecoveryPolicy::default());
            sim.run(arrivals.clone())
        };
        let a = run();
        let b = run();
        prop_assert!(a.conservation_holds(), "seed={} n={} conservation", seed, n);
        prop_assert!(
            a.bit_identical(&b),
            "seed={} n={} mtbf={}us: fault replay diverged",
            seed, n, mtbf_us
        );
        // The streaming loop replays identically too (JSON is byte-built).
        let stream_run = || {
            let mut sim = ClusterSim::new(fleet8(96 * MB), PlacementPolicy::FirstFit);
            sim.enable_faults(plan.clone(), RecoveryPolicy::default());
            sim.run_stream(&mut ReplayStream::new(arrivals.clone())).to_json()
        };
        prop_assert_eq!(stream_run(), stream_run());
    }
}
