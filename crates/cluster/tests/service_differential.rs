//! Differential suite: the indexed event loop ([`ClusterSim::run`]) versus
//! the retained reference loop ([`ClusterSim::run_reference`]).
//!
//! The contract is [`ClusterReport::bit_identical`] — not "close", not
//! "same schedule modulo rounding": the same trace bytes, the same JSON,
//! and the same per-device f64 busy/reserved integrals by bit pattern.
//! The indexed loop earns its asymptotic speedup purely by *not touching*
//! state whose value cannot have changed; any float it does touch goes
//! through the exact operations the reference performs. These tests hold
//! it to that on the canonical streams, on adversarial timestamps, on
//! stale-heap-entry regimes, and on randomized proptest streams — plus the
//! streaming entry point's consistency with the materialized one.

use proptest::prelude::*;
use sn_cluster::{
    collect_stream, mixed_serving_stream, synthetic_stream, ClusterSim, Fleet, JobSpec,
    PlacementPolicy, PoissonStream, PolicyPreset, ReplayStream, TraceKind, Workload,
};
use sn_runtime::Interconnect;
use sn_sim::{DeviceSpec, SimTime};

const MB: u64 = 1 << 20;

fn fleet8(dram: u64) -> Fleet {
    Fleet::homogeneous(8, DeviceSpec::k40c().with_dram(dram), Interconnect::pcie())
}

/// Run both loops from fresh simulators (each profiles from cold, so
/// `predictions_simulated` — part of the JSON — is comparable) and demand
/// bit-identity.
fn assert_differential(
    fleet: Fleet,
    placement: PlacementPolicy,
    arrivals: Vec<(SimTime, JobSpec)>,
    what: &str,
) {
    let indexed = ClusterSim::new(fleet.clone(), placement).run(arrivals.clone());
    let reference = ClusterSim::new(fleet, placement).run_reference(arrivals);
    assert!(
        indexed.bit_identical(&reference),
        "{what}: indexed loop diverged from reference\n--- indexed ---\n{}\n--- reference ---\n{}",
        indexed.render_text(),
        reference.render_text()
    );
    assert_eq!(
        indexed.schedule_fingerprint(),
        reference.schedule_fingerprint(),
        "{what}: schedule fingerprints diverged"
    );
}

#[test]
fn canonical_stream_is_bit_identical_across_placements() {
    for placement in PlacementPolicy::ALL {
        assert_differential(
            fleet8(96 * MB),
            placement,
            synthetic_stream(120, 1, PolicyPreset::Superneurons, true),
            &format!("120-job canonical stream under {placement:?}"),
        );
    }
}

#[test]
fn mixed_serving_stream_is_bit_identical() {
    assert_differential(
        fleet8(96 * MB),
        PlacementPolicy::BestFit,
        mixed_serving_stream(90, 4, PolicyPreset::Superneurons, true),
        "mixed training + inference stream",
    );
}

#[test]
fn constrained_presets_and_rejects_are_bit_identical() {
    // No downgrade ladder on a tight fleet: plenty of queueing and real
    // rejections, so the reject path and the FIFO-backfill path are both
    // exercised differentially.
    assert_differential(
        fleet8(48 * MB),
        PlacementPolicy::BinPack,
        synthetic_stream(60, 9, PolicyPreset::LivenessOffload, false),
        "no-downgrade stream on a tight fleet",
    );
}

#[test]
fn adversarial_past_2p53_arrivals_are_bit_identical() {
    // Distinct integer nanosecond timestamps that collapse under `as f64`:
    // both loops must match arrivals on integer time and process the
    // collapsed instants as separate zero-dt events in the same order.
    let base: u64 = 1 << 53;
    let w = Workload::Synthetic { width: 8, depth: 2 };
    let mut jobs: Vec<(SimTime, JobSpec)> = (0..4)
        .map(|i| {
            (
                SimTime(base + i),
                JobSpec::new(format!("late{i}"), w, 8).with_iterations(2),
            )
        })
        .collect();
    jobs.push((
        SimTime(base + 3),
        JobSpec::new("late3-twin", w, 8).with_iterations(2),
    ));
    assert_differential(
        fleet8(256 * MB),
        PlacementPolicy::FirstFit,
        jobs,
        "arrivals past 2^53 ns",
    );
}

#[test]
fn completion_superseded_by_same_instant_arrival_keeps_reference_order() {
    // The stale-heap-entry regime the indexed loop must survive: a gang's
    // projected completion sits in the heap; an arrival lands at *exactly*
    // that f64 instant, is admitted onto the gang's devices, and changes
    // its slowdown — so the heap entry the loop is about to trust is stale
    // the moment it surfaces. The reference loop recomputes projections
    // every event and is immune by construction; the indexed loop must
    // reach the same completions in the same order via generation
    // invalidation.
    let base = synthetic_stream(40, 7, PolicyPreset::Superneurons, true);
    let probe =
        ClusterSim::new(fleet8(96 * MB), PlacementPolicy::FirstFit).run_reference(base.clone());
    // Pick a mid-run completion instant and inject arrivals exactly there.
    let t_hit = probe
        .trace
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Complete))
        .map(|e| e.t_ns)
        .nth(probe.completed / 2)
        .expect("stream completes jobs");
    let w = Workload::Synthetic { width: 8, depth: 2 };
    let mut jobs = base;
    jobs.push((
        SimTime(t_hit),
        JobSpec::new("sniper", w, 8).with_iterations(3),
    ));
    jobs.push((
        SimTime(t_hit),
        JobSpec::new("sniper-twin", w, 8).with_iterations(3),
    ));
    jobs.sort_by_key(|(t, _)| *t);

    let indexed = ClusterSim::new(fleet8(96 * MB), PlacementPolicy::FirstFit).run(jobs.clone());
    let reference = ClusterSim::new(fleet8(96 * MB), PlacementPolicy::FirstFit).run_reference(jobs);
    assert!(
        indexed.bit_identical(&reference),
        "same-instant sniper arrival diverged"
    );
    // The instant itself must order completions before the arrivals (the
    // reference loop's completions-first rule, now under stale entries).
    let at_hit: Vec<&TraceKind> = indexed
        .trace
        .iter()
        .filter(|e| e.t_ns == t_hit)
        .map(|e| &e.kind)
        .collect();
    let first_arrive = at_hit
        .iter()
        .position(|k| matches!(k, TraceKind::Arrive))
        .expect("sniper arrival traced at the completion instant");
    assert!(
        at_hit[..first_arrive]
            .iter()
            .any(|k| matches!(k, TraceKind::Complete)),
        "completions must precede the same-instant arrival in the trace"
    );
}

#[test]
fn run_stream_agrees_with_materialized_run() {
    // The streaming entry point runs the same core with aggregate-only
    // recording: counts, makespan, and the exact mean queueing must equal
    // the materialized run's; quantiles may differ only by the sketch's
    // 1/16 rounding.
    let arrivals = mixed_serving_stream(100, 6, PolicyPreset::Superneurons, true);
    let full = ClusterSim::new(fleet8(96 * MB), PlacementPolicy::BestFit).run(arrivals.clone());
    let mut stream = ReplayStream::new(arrivals);
    let svc = ClusterSim::new(fleet8(96 * MB), PlacementPolicy::BestFit).run_stream(&mut stream);

    assert_eq!(svc.submitted as usize, full.jobs.len());
    assert_eq!(svc.completed as usize, full.completed);
    assert_eq!(svc.rejected as usize, full.rejected);
    assert_eq!(svc.makespan, full.makespan);
    assert_eq!(svc.events as usize, full.trace.len());
    assert_eq!(svc.peak_concurrent_jobs, full.peak_concurrent_jobs);
    assert_eq!(svc.mean_queueing, full.mean_queueing);
    assert_eq!(svc.jobs_per_sec.to_bits(), full.jobs_per_sec.to_bits());
    assert_eq!(
        svc.compute_utilization.to_bits(),
        full.compute_utilization.to_bits()
    );
    assert_eq!(
        svc.memory_utilization.to_bits(),
        full.memory_utilization.to_bits()
    );
    for (sketched, exact, q) in [
        (svc.p50_latency, full.p50_latency, "p50"),
        (svc.p99_latency, full.p99_latency, "p99"),
        (svc.p999_latency, full.p999_latency, "p999"),
    ] {
        let lo = exact.0 as f64;
        let hi = lo * (1.0 + 1.0 / 16.0) + 1.0;
        assert!(
            (sketched.0 as f64) >= lo && (sketched.0 as f64) <= hi,
            "{q}: sketch {} outside [{lo}, {hi}]",
            sketched.0
        );
    }
}

#[test]
fn streaming_memory_is_bounded_by_concurrency_not_stream_length() {
    // Sub-critical load (the fleet's capacity gap is ~1.2 ms/job, so a
    // 5 ms mean gap is ρ ≈ 0.25): the queue stays shallow and the live-job
    // slab high-water must track concurrency, not the 10k stream length.
    let mut stream =
        PoissonStream::new(10_000, 42, SimTime::from_ms(5), PolicyPreset::Superneurons);
    let mut sim = ClusterSim::new(fleet8(96 * MB), PlacementPolicy::BestFit);
    let svc = sim.run_stream(&mut stream);
    assert_eq!(svc.submitted, 10_000);
    assert_eq!(svc.submitted, svc.completed + svc.rejected);
    assert!(svc.events >= svc.submitted * 2, "admits/completes counted");
    assert!(
        svc.peak_live_jobs < 500,
        "live-job slots must track concurrency, not the 10k stream: {}",
        svc.peak_live_jobs
    );
    assert!(svc.p999_latency >= svc.p99_latency);
    assert!(svc.p99_latency >= svc.p50_latency);
}

#[test]
fn poisson_service_reports_are_deterministic() {
    let run = || {
        let mut stream =
            PoissonStream::new(1_000, 9, SimTime::from_ms(2), PolicyPreset::Superneurons);
        ClusterSim::new(fleet8(96 * MB), PlacementPolicy::BestFit).run_stream(&mut stream)
    };
    let a = run();
    let b = run();
    assert_eq!(a.to_json(), b.to_json(), "seeded streaming runs must agree");
}

#[test]
fn poisson_stream_differential_via_replay() {
    // The open-loop generator feeds the indexed loop directly; materialize
    // the same arrivals for the reference loop and demand bit-identity of
    // the full reports.
    let arrivals = collect_stream(&mut PoissonStream::new(
        300,
        17,
        SimTime::from_us(250),
        PolicyPreset::Superneurons,
    ));
    assert_differential(
        fleet8(96 * MB),
        PlacementPolicy::BestFit,
        arrivals,
        "Poisson arrivals via replay",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_streams_are_bit_identical(
        n in 10usize..60,
        seed in 0u64..1_000,
        preset_idx in 0usize..PolicyPreset::ALL.len(),
        placement_idx in 0usize..PlacementPolicy::ALL.len(),
        downgrade in proptest::bool::ANY,
        dram_mb in 48u64..192,
    ) {
        let preset = PolicyPreset::ALL[preset_idx];
        let placement = PlacementPolicy::ALL[placement_idx];
        let arrivals = synthetic_stream(n, seed, preset, downgrade);
        let indexed = ClusterSim::new(fleet8(dram_mb * MB), placement).run(arrivals.clone());
        let reference =
            ClusterSim::new(fleet8(dram_mb * MB), placement).run_reference(arrivals);
        prop_assert!(
            indexed.bit_identical(&reference),
            "n={} seed={} preset={:?} placement={:?} downgrade={} dram={}MB diverged",
            n, seed, preset, placement, downgrade, dram_mb
        );
    }
}
