//! Integration tests for the cluster scheduler's contract:
//!
//! 1. admission never places a job whose predicted peak exceeds device
//!    capacity (and reservations never exceed DRAM);
//! 2. identical job streams produce byte-identical schedules (determinism);
//! 3. gang-scheduled replicas start atomically on distinct devices;
//! 4. policy choice is a capacity lever: the same fleet admits more
//!    concurrent tenants under `superneurons` than under `baseline`.

use sn_cluster::{
    mixed_serving_stream, synthetic_stream, ClusterSim, Fleet, JobKind, JobSpec, PlacementPolicy,
    PolicyPreset, TraceKind, Workload,
};
use sn_runtime::Interconnect;
use sn_sim::DeviceSpec;

const MB: u64 = 1 << 20;

/// A fleet of 8 small devices — sized so memory, not compute, is the
/// contended resource for the synthetic stream.
fn fleet8(dram: u64) -> Fleet {
    Fleet::homogeneous(8, DeviceSpec::k40c().with_dram(dram), Interconnect::pcie())
}

#[test]
fn admission_never_exceeds_device_capacity() {
    for placement in PlacementPolicy::ALL {
        let mut sim = ClusterSim::new(fleet8(96 * MB), placement);
        let report = sim.run(synthetic_stream(60, 11, PolicyPreset::Superneurons, true));
        // Per-job: every replica's reservation fits its device's DRAM.
        for job in &report.jobs {
            for (d, r) in job.devices.iter().zip(&job.reservations) {
                let cap = sim.fleet.devices[*d].dram_bytes;
                assert!(
                    *r <= cap,
                    "{placement:?}: job {} reserved {r} on device {d} of capacity {cap}",
                    job.name
                );
            }
        }
        // Per-device: the high-water mark of summed reservations fits DRAM.
        for (d, peak) in report.peak_reserved.iter().enumerate() {
            let cap = sim.fleet.devices[d].dram_bytes;
            assert!(
                *peak <= cap,
                "{placement:?}: device {d} peaked at {peak} of {cap}"
            );
        }
        // Every job resolved one way or the other.
        for job in &report.jobs {
            assert!(
                job.completion.is_some() || job.rejected.is_some(),
                "job {} left unresolved",
                job.name
            );
        }
    }
}

#[test]
fn identical_streams_schedule_identically() {
    let run = || {
        let mut sim = ClusterSim::new(fleet8(128 * MB), PlacementPolicy::BestFit);
        sim.run(synthetic_stream(80, 3, PolicyPreset::Superneurons, true))
    };
    let a = run();
    let b = run();
    assert!(!a.trace.is_empty());
    assert_eq!(
        a.schedule_fingerprint(),
        b.schedule_fingerprint(),
        "same stream must produce a byte-identical schedule"
    );
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn gang_replicas_start_atomically_on_distinct_devices() {
    let mut sim = ClusterSim::new(fleet8(256 * MB), PlacementPolicy::FirstFit);
    let mut jobs = synthetic_stream(30, 5, PolicyPreset::Superneurons, true);
    // Force a known gang into the stream.
    jobs.push((
        sn_sim::SimTime::from_us(500),
        JobSpec::new(
            "gang4",
            Workload::Synthetic {
                width: 16,
                depth: 3,
            },
            16,
        )
        .with_replicas(4),
    ));
    let report = sim.run(jobs);

    let mut saw_gang = false;
    for job in &report.jobs {
        if job.rejected.is_some() {
            continue;
        }
        // One Admit trace event carries ALL replicas: a gang starts whole.
        let admits: Vec<_> = report
            .trace
            .iter()
            .filter(|e| e.job == job.name && matches!(e.kind, TraceKind::Admit { .. }))
            .collect();
        assert_eq!(admits.len(), 1, "job {} must admit exactly once", job.name);
        if let TraceKind::Admit {
            devices,
            reservations,
            ..
        } = &admits[0].kind
        {
            assert_eq!(devices.len(), job.replicas);
            assert_eq!(reservations.len(), job.replicas);
            let mut uniq = devices.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(
                uniq.len(),
                job.replicas,
                "replicas share a device: {devices:?}"
            );
        }
        if job.replicas > 1 {
            saw_gang = true;
        }
    }
    assert!(saw_gang, "the stream must exercise at least one gang");
}

#[test]
fn gang_jobs_run_through_the_group_engine() {
    // Since the device-group lift, gang step times are *measured* by
    // compiling a GroupPlan and driving the group interpreter — not by
    // multiplying an analytic all-reduce term. The profiler records one
    // group measurement per distinct gang shape; solo-only streams record
    // none.
    let gang_stream = vec![
        (
            sn_sim::SimTime::ZERO,
            JobSpec::new(
                "gang2",
                Workload::Synthetic {
                    width: 16,
                    depth: 3,
                },
                16,
            )
            .with_replicas(2),
        ),
        (
            sn_sim::SimTime::ZERO,
            JobSpec::new(
                "gang4",
                Workload::Synthetic {
                    width: 16,
                    depth: 3,
                },
                16,
            )
            .with_replicas(4),
        ),
        (
            sn_sim::SimTime::ZERO,
            JobSpec::new("solo", Workload::LeNet, 8),
        ),
    ];
    let mut sim = ClusterSim::new(fleet8(256 * MB), PlacementPolicy::FirstFit);
    let report = sim.run(gang_stream);
    assert_eq!(report.completed, 3);
    assert_eq!(
        sim.gangs_measured(),
        2,
        "each gang shape must be measured through the group engine exactly once"
    );

    // A gang's runtime must exceed a solo twin's: the collective is real
    // work the measured step includes.
    let solo = JobSpec::new(
        "one",
        Workload::Synthetic {
            width: 16,
            depth: 3,
        },
        16,
    );
    let gang = solo.clone().with_replicas(4);
    let runtime = |job: JobSpec| {
        let mut sim = ClusterSim::new(fleet8(256 * MB), PlacementPolicy::FirstFit);
        let report = sim.run(vec![(sn_sim::SimTime::ZERO, job)]);
        let j = report.jobs.iter().find(|j| j.name == "one").unwrap();
        j.completion.unwrap() - j.started.unwrap()
    };
    let t_solo = runtime(solo);
    let t_gang = runtime(gang);
    assert!(
        t_gang > t_solo,
        "gang {t_gang} must pay for its gradient exchange vs solo {t_solo}"
    );
}

#[test]
fn superneurons_preset_admits_more_tenants_than_baseline() {
    // Same fleet, same job stream; the only difference is the requested
    // memory policy (downgrade disabled so the request is binding).
    let stream = |preset| synthetic_stream(60, 9, preset, false);
    let mut sim_base = ClusterSim::new(fleet8(48 * MB), PlacementPolicy::BestFit);
    let base = sim_base.run(stream(PolicyPreset::Baseline));
    let mut sim_sn = ClusterSim::new(fleet8(48 * MB), PlacementPolicy::BestFit);
    let sn = sim_sn.run(stream(PolicyPreset::Superneurons));

    assert!(
        sn.completed > base.completed,
        "superneurons must finish more jobs ({} vs {})",
        sn.completed,
        base.completed
    );
    assert!(
        sn.rejected < base.rejected,
        "superneurons must reject fewer jobs ({} vs {})",
        sn.rejected,
        base.rejected
    );
    assert!(
        sn.peak_concurrent_jobs > base.peak_concurrent_jobs,
        "superneurons must pack more concurrent tenants ({} vs {})",
        sn.peak_concurrent_jobs,
        base.peak_concurrent_jobs
    );
}

#[test]
fn downgrade_ladder_rescues_infeasible_requests() {
    let fleet = fleet8(48 * MB);
    let big = Workload::Synthetic {
        width: 64,
        depth: 8,
    };
    // Requested baseline (peak ≈ 262 MB) cannot fit a 48 MB device.
    let rigid = JobSpec::new("rigid", big, 32)
        .with_preset(PolicyPreset::Baseline)
        .with_downgrade(false);
    let mut flexible = rigid.clone().with_downgrade(true);
    flexible.name = "flexible".into();
    let mut sim = ClusterSim::new(fleet.clone(), PlacementPolicy::FirstFit);
    let report = sim.run(vec![
        (sn_sim::SimTime::ZERO, rigid),
        (sn_sim::SimTime::ZERO, flexible),
    ]);

    let rigid_out = report.jobs.iter().find(|j| j.name == "rigid").unwrap();
    assert!(
        rigid_out.rejected.is_some(),
        "binding baseline request must be rejected"
    );

    // The flexible twin runs — under a memory-stronger preset than asked.
    let flex_out = report.jobs.iter().find(|j| j.name == "flexible").unwrap();
    assert!(flex_out.completion.is_some(), "downgradeable job must run");
    let granted = flex_out.granted.unwrap();
    assert!(
        granted > PolicyPreset::Baseline,
        "must have walked the ladder, got {granted:?}"
    );
}

#[test]
fn simultaneous_completions_resolve_cleanly() {
    // Regression: identical jobs admitted at the same instant finish at the
    // same virtual time; the completion pass must handle several gangs
    // completing in one event (this used to panic in `swap_remove`).
    let w = Workload::Synthetic { width: 8, depth: 2 };
    let short = JobSpec::new("short", w, 8).with_iterations(1);
    let twin_a = JobSpec::new("twin_a", w, 8).with_iterations(10);
    let twin_b = JobSpec::new("twin_b", w, 8).with_iterations(10);
    let filler = JobSpec::new("filler", w, 8).with_iterations(4);
    let mut sim = ClusterSim::new(fleet8(256 * MB), PlacementPolicy::FirstFit);
    let report = sim.run(vec![
        (sn_sim::SimTime::ZERO, filler),
        (sn_sim::SimTime::ZERO, short),
        (sn_sim::SimTime::ZERO, twin_a),
        (sn_sim::SimTime::ZERO, twin_b),
    ]);
    assert_eq!(report.completed, 4);
    let a = report.jobs.iter().find(|j| j.name == "twin_a").unwrap();
    let b = report.jobs.iter().find(|j| j.name == "twin_b").unwrap();
    assert_eq!(
        a.completion, b.completion,
        "identical twins must finish at the same virtual instant"
    );
    // All reservations were released: every device drained back to zero
    // (peak bookkeeping stayed within capacity throughout).
    for (d, peak) in report.peak_reserved.iter().enumerate() {
        assert!(*peak <= sim.fleet.devices[d].dram_bytes);
    }
}

#[test]
fn non_power_of_two_dram_resolves_every_job() {
    // Regression: admission quantizes prediction budgets to 1/32 of DRAM;
    // the idle-fleet feasibility check must use the same rounding, or a
    // boundary job is judged feasible yet never admitted and the run ends
    // with an unresolved job. Awkward capacities exercise the rounding.
    for dram in [100 * MB + 7, 96 * MB - 1, 33 * MB + 13] {
        let mut sim = ClusterSim::new(fleet8(dram), PlacementPolicy::BestFit);
        let report = sim.run(synthetic_stream(30, 13, PolicyPreset::Superneurons, true));
        for job in &report.jobs {
            assert!(
                job.completion.is_some() || job.rejected.is_some(),
                "dram={dram}: job {} left unresolved",
                job.name
            );
        }
    }
}

#[test]
fn adversarial_arrival_times_are_never_dropped() {
    // Regression for the f64 arrival-matching bug: beyond 2^53 ns the `as
    // f64` projection of a nanosecond timestamp is lossy, so distinct (and
    // coincident) arrival times up there collapse or miscompare under float
    // equality. The event loop must match arrivals on the integer SimTime.
    let base: u64 = 1 << 53;
    let w = Workload::Synthetic { width: 8, depth: 2 };
    // Four arrivals one ns apart (2^53+1 and 2^53+3 are not representable as
    // f64), plus an exact duplicate of the last — coincident in integer time.
    let mut jobs: Vec<(sn_sim::SimTime, JobSpec)> = (0..4)
        .map(|i| {
            (
                sn_sim::SimTime(base + i),
                JobSpec::new(format!("late{i}"), w, 8).with_iterations(2),
            )
        })
        .collect();
    jobs.push((
        sn_sim::SimTime(base + 3),
        JobSpec::new("late3-twin", w, 8).with_iterations(2),
    ));
    let n = jobs.len();

    let mut sim = ClusterSim::new(fleet8(256 * MB), PlacementPolicy::FirstFit);
    let report = sim.run(jobs);

    let arrive_events = report
        .trace
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Arrive))
        .count();
    assert_eq!(
        arrive_events, n,
        "every arrival must be traced exactly once"
    );
    assert_eq!(report.jobs.len(), n);
    for job in &report.jobs {
        assert!(
            job.completion.is_some(),
            "job {} dropped by arrival matching",
            job.name
        );
    }
    assert_eq!(report.completed, n);
}

#[test]
fn zero_replica_jobs_are_rejected_not_phantom_admitted() {
    let mut sim = ClusterSim::new(fleet8(96 * MB), PlacementPolicy::FirstFit);
    let report = sim.run(vec![(
        sn_sim::SimTime::ZERO,
        JobSpec::new("empty", Workload::LeNet, 8).with_replicas(0),
    )]);
    let job = &report.jobs[0];
    assert!(job.rejected.is_some(), "an empty gang must be rejected");
    assert!(job.completion.is_none() && job.devices.is_empty());
}

#[test]
fn mixed_training_and_inference_streams_co_schedule() {
    // The ISSUE-3 serving scenario: forward-only inference jobs are
    // co-located against training jobs using exact plan peaks. Both kinds
    // must resolve, inference must actually run, the admission-safety
    // invariant must hold throughout, and the schedule stays deterministic.
    let run = || {
        let mut sim = ClusterSim::new(fleet8(96 * MB), PlacementPolicy::BestFit);
        let report = sim.run(mixed_serving_stream(
            60,
            7,
            PolicyPreset::Superneurons,
            true,
        ));
        (report, sim)
    };
    let (report, sim) = run();
    let done = |kind| {
        report
            .jobs
            .iter()
            .filter(|j| j.kind == kind && j.completion.is_some())
            .count()
    };
    assert!(done(JobKind::Inference) > 0, "serving jobs must complete");
    assert!(done(JobKind::Training) > 0, "training jobs must complete");
    for job in &report.jobs {
        assert!(job.completion.is_some() || job.rejected.is_some());
    }
    for (d, peak) in report.peak_reserved.iter().enumerate() {
        assert!(*peak <= sim.fleet.devices[d].dram_bytes);
    }
    let (again, _) = run();
    assert_eq!(report.schedule_fingerprint(), again.schedule_fingerprint());

    // An inference twin of a training job reserves strictly less memory.
    let w = Workload::Synthetic {
        width: 32,
        depth: 4,
    };
    let mut sim = ClusterSim::new(fleet8(256 * MB), PlacementPolicy::FirstFit);
    let train = JobSpec::new("train", w, 16);
    let serve = JobSpec::new("serve", w, 16).inference();
    let report = sim.run(vec![
        (sn_sim::SimTime::ZERO, train),
        (sn_sim::SimTime::ZERO, serve),
    ]);
    let res = |name: &str| {
        report
            .jobs
            .iter()
            .find(|j| j.name == name)
            .unwrap()
            .reservations[0]
    };
    assert!(
        res("serve") < res("train"),
        "inference reservation {} must undercut training {}",
        res("serve"),
        res("train")
    );
}

#[test]
fn hundred_jobs_across_eight_gpus_complete_deterministically() {
    // The ISSUE-1 acceptance scenario: ≥ 100 concurrent jobs, ≥ 8 devices.
    let mut sim = ClusterSim::new(fleet8(128 * MB), PlacementPolicy::BinPack);
    let report = sim.run(synthetic_stream(120, 1, PolicyPreset::Superneurons, true));
    assert_eq!(report.jobs.len(), 120);
    assert!(
        report.completed + report.rejected == 120,
        "all jobs resolved"
    );
    assert!(
        report.completed >= 100,
        "completed only {}",
        report.completed
    );
    assert!(report.makespan > sn_sim::SimTime::ZERO);
    assert!(report.jobs_per_sec > 0.0);
    assert!(report.compute_utilization > 0.0 && report.compute_utilization <= 1.0);
    assert!(report.memory_utilization > 0.0 && report.memory_utilization <= 1.0);
    assert!(report.p99_latency >= report.p50_latency);
    // Multi-tenancy actually happened.
    assert!(
        report.peak_concurrent_jobs > 8,
        "expected more concurrent jobs than devices, got {}",
        report.peak_concurrent_jobs
    );
}
