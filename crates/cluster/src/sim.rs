//! The discrete-event cluster scheduler.
//!
//! Virtual time advances from event to event: job arrivals, gang
//! completions, and the admission/placement pass that follows each of them.
//! Devices are shared by time-multiplexing: a device running `k` tenants
//! gives each `1/k` of its throughput (processor sharing), and a gang runs
//! in lockstep at the pace of its slowest replica. Memory, by contrast, is
//! *partitioned*: every replica holds a hard reservation equal to its
//! predicted peak from admission until the job completes, so co-tenants can
//! never push each other out of DRAM — the failure mode the paper's
//! single-job runtime eliminates on one device, lifted to fleet scope.
//!
//! Everything is deterministic: event ties are broken by job index, queue
//! order is FIFO (with backfill past a blocked head), and the RNG-free state
//! machine is a pure function of the input job stream — identical streams
//! produce byte-identical schedule traces.
//!
//! ## The indexed event core
//!
//! The loop is *indexed*, not scanned — the structure classic
//! discrete-event simulators use to stay O(log n)-ish per event instead of
//! O(n):
//!
//! * **Event queue** — a binary heap of projected completions plus the next
//!   arrival, ordered by `(time, job index)`. Projections that a
//!   tenant-count change invalidates are not deleted (heaps can't); the
//!   superseding push carries a bumped generation and the stale entry is
//!   discarded when it eventually surfaces.
//! * **Slab job state** — live jobs (pending + running) occupy
//!   generation-stamped slots (`crate::slab`); storage is bounded by peak
//!   concurrency, not stream length, and freed slots can never be confused
//!   with their successors by a stale heap entry.
//! * **Lazy progress** — each running gang carries
//!   `(anchor_ns, remaining_ns, slowdown)`: its completion is always
//!   `anchor + remaining · slowdown`, and `remaining` is folded forward
//!   **only when its slowdown changes**. Per-device tenant lists identify
//!   exactly the gangs a completion/admission can affect, so an event
//!   touches its neighborhood, not every running job.
//! * **Admission-pass memo** — the FIFO pass re-evaluates queued jobs only
//!   when reservations changed since they were last evaluated (admission is
//!   a pure function of the reservation vector, so the replay is provably
//!   identical), and `(reservation vector, job shape) → grant` decisions
//!   are memoized across events.
//!
//! The loop this replaced is retained verbatim in [`crate::sim_reference`];
//! a differential suite pins both to byte-identical [`ClusterReport`]s —
//! same trace, same outcomes, same f64 integrals to the last bit.
//! [`ClusterSim::run_stream`] runs the same core against a pull-based
//! [`ArrivalStream`] with aggregate-only recording: millions of arrivals in
//! constant memory.

use std::collections::BinaryHeap;
use std::sync::Arc;

use fxhash::FxHashMap;
use sn_runtime::ring_allreduce_time;
use sn_sim::SimTime;
use sn_telemetry::{Counter, Histogram, MetricsRegistry, TraceSink, TrackId};

use crate::admission::{
    feasible_on_device_subset, feasible_on_idle_fleet, ladder_for, Grant, Placement, Profiler,
};
use crate::fault::{FaultEvent, FaultPlan, RecoveryMode, RecoveryPolicy};
use crate::fleet::Fleet;
use crate::job::{JobKind, JobSpec, PolicyPreset, Workload};
use crate::latency::LatencySketch;
use crate::placement::PlacementPolicy;
use crate::report::{
    ClusterReport, JobOutcome, RejectReason, ServiceReport, TraceEvent, TraceKind,
};
use crate::slab::{Slab, SlotKey};
use crate::stream::{ArrivalStream, ReplayStream};

/// Per-device mutable state during a simulation run.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeviceState {
    pub(crate) reserved: u64,
    pub(crate) tenants: usize,
    /// Wall time (ns) with at least one tenant.
    pub(crate) busy_ns: f64,
    /// ∫ reserved(t) dt, in byte·ns — memory utilization numerator.
    pub(crate) reserved_integral: f64,
    pub(crate) peak_reserved: u64,
    pub(crate) peak_tenants: usize,
    /// Fault state: a failed device admits nothing (its tenants were
    /// interrupted when it failed) and `spike` bytes are withheld from
    /// admission by an injected pressure fault. Both stay at their defaults
    /// on fault-free runs, where [`DeviceState::free_bytes`] degenerates to
    /// exactly `dram − reserved`.
    pub(crate) failed: bool,
    pub(crate) spike: u64,
}

impl DeviceState {
    /// Bytes admission may still reserve on this device.
    pub(crate) fn free_bytes(&self, spec: &sn_sim::DeviceSpec) -> u64 {
        if self.failed {
            0
        } else {
            spec.dram_bytes
                .saturating_sub(self.reserved.saturating_add(self.spike))
        }
    }
}

/// Gang slowdown under processor sharing: the most-loaded of its devices
/// sets the pace (each of `k` tenants gets `1/k` of a device). Shared by
/// the indexed loop and the retained reference loop — it must be the same
/// float computation in both or they stop being bit-comparable.
pub(crate) fn gang_slowdown(devices: &[DeviceState], grant: &Grant) -> f64 {
    grant
        .placements
        .iter()
        .map(|p| devices[p.device].tenants)
        .max()
        .unwrap_or(1)
        .max(1) as f64
}

/// Fold an injected link degradation into a gang's slowdown: gangs stretch
/// by `1000/permille` (their step time embeds all-reduce traffic), solo
/// tenants exchange no gradients and are untouched. At the nominal 1000‰
/// this performs **no float op at all** — the fault-free path must stay
/// bit-identical to the reference loop.
fn apply_link(slowdown: f64, replicas: usize, permille: u32) -> f64 {
    if permille != 1000 && replicas > 1 {
        slowdown * (1000.0 / permille.max(1) as f64)
    } else {
        slowdown
    }
}

/// Pre-resolved admission metric handles (see [`ClusterSim::enable_metrics`]).
pub(crate) struct ClusterMetrics {
    pub(crate) submitted: Counter,
    pub(crate) admitted: Counter,
    rejected: Counter,
    pub(crate) completed: Counter,
    reject_empty_gang: Counter,
    reject_fleet_too_small: Counter,
    reject_peak_exceeds: Counter,
    pub(crate) latency_ns: Histogram,
    pub(crate) queueing_ns: Histogram,
    // Fault/recovery instrumentation (all zero on fault-free runs).
    device_failures: Counter,
    device_recoveries: Counter,
    mttr_ns: Histogram,
    jobs_interrupted: Counter,
    jobs_restarted: Counter,
    jobs_failed: Counter,
    jobs_downgraded: Counter,
    retries_scheduled: Counter,
    backoff_ns: Histogram,
    wasted_iterations: Counter,
}

impl ClusterMetrics {
    fn new(reg: &MetricsRegistry) -> ClusterMetrics {
        ClusterMetrics {
            submitted: reg.counter("cluster.jobs.submitted"),
            admitted: reg.counter("cluster.jobs.admitted"),
            rejected: reg.counter("cluster.jobs.rejected"),
            completed: reg.counter("cluster.jobs.completed"),
            reject_empty_gang: reg.counter("cluster.rejects.empty_gang"),
            reject_fleet_too_small: reg.counter("cluster.rejects.fleet_too_small"),
            reject_peak_exceeds: reg.counter("cluster.rejects.peak_exceeds_capacity"),
            latency_ns: reg.histogram("cluster.latency_ns"),
            queueing_ns: reg.histogram("cluster.queueing_ns"),
            device_failures: reg.counter("cluster.faults.device_failures"),
            device_recoveries: reg.counter("cluster.faults.device_recoveries"),
            mttr_ns: reg.histogram("cluster.faults.mttr_ns"),
            jobs_interrupted: reg.counter("cluster.jobs.interrupted"),
            jobs_restarted: reg.counter("cluster.jobs.restarted"),
            jobs_failed: reg.counter("cluster.jobs.failed"),
            jobs_downgraded: reg.counter("cluster.jobs.downgraded"),
            retries_scheduled: reg.counter("cluster.retries.scheduled"),
            backoff_ns: reg.histogram("cluster.retries.backoff_ns"),
            wasted_iterations: reg.counter("cluster.iterations.wasted"),
        }
    }

    pub(crate) fn count_reject(&self, reason: &RejectReason) {
        self.rejected.inc();
        match reason {
            RejectReason::EmptyGang => self.reject_empty_gang.inc(),
            RejectReason::FleetTooSmall { .. } => self.reject_fleet_too_small.inc(),
            RejectReason::PeakExceedsCapacity { .. } => self.reject_peak_exceeds.inc(),
        }
    }
}

/// One live (pending, running, or parked-in-backoff) job in the slab.
struct LiveJob {
    spec: Arc<JobSpec>,
    /// Arrival sequence number: ties on the event heap break toward the
    /// earliest arrival, matching the reference loop's job-index order.
    seq: u64,
    arrival: SimTime,
    run: Option<RunState>,
    /// Integer instant the job last (re-)entered the queue: arrival, a
    /// fault's interrupt instant, or a retry's due time. Backoff chains are
    /// pure u64 arithmetic from this anchor — never through the f64 clock.
    anchor_int: u64,
    /// Iterations banked at the last checkpoint fold (0 fault-free).
    iters_done: u32,
    /// Backoff attempts since the last successful (re-)admission.
    attempts: u32,
    wasted_iters: u64,
    /// Queued again after an interruption (its next grant is a restart).
    pending_restart: bool,
    /// Frozen original grant for byte-exact restarts; `Some` for every job
    /// granted while a fault plan is installed, `None` otherwise.
    resume: Option<ResumePlan>,
}

/// Execution state of a running gang (see the module docs on lazy
/// progress).
struct RunState {
    grant: Grant,
    /// Remaining work in ns of *solo* execution time, valid as of
    /// `anchor_ns`.
    remaining_ns: f64,
    anchor_ns: f64,
    slowdown: f64,
    /// Bumped on every re-anchor; heap entries carrying an older generation
    /// are stale and discarded on pop.
    gen: u64,
    /// One iteration's solo duration (checkpoint folds divide by this).
    step_ns: f64,
    /// Iterations this run covers (`spec.iterations − iters_done` at grant
    /// time).
    iters_this_run: u32,
}

/// A grant frozen for byte-exact restarts: the preset plus the per-replica
/// `(budget, predicted peak)` pairs sorted descending. Restart re-admission
/// compiles each replica at **exactly** its original budget, so the
/// profiler's plan memo returns the identical prediction — restarted peaks
/// are byte-identical to the original plan on any device of the same spec.
#[derive(Clone)]
struct ResumePlan {
    preset: PolicyPreset,
    budgets: Vec<u64>,
    peaks: Vec<u64>,
}

fn resume_plan_of(grant: &Grant) -> ResumePlan {
    let mut pairs: Vec<(u64, u64)> = grant
        .placements
        .iter()
        .map(|p| (p.budget, p.prediction.peak_bytes))
        .collect();
    pairs.sort_unstable_by(|a, b| b.cmp(a));
    ResumePlan {
        preset: grant.preset,
        budgets: pairs.iter().map(|(b, _)| *b).collect(),
        peaks: pairs.iter().map(|(_, p)| *p).collect(),
    }
}

/// Whole iterations completed by this run as of `now_ns`, under the lazy
/// anchor/remaining representation. Pure read — the caller decides what the
/// checkpoint policy keeps.
fn fold_done_iterations(run: &RunState, now_ns: f64) -> u32 {
    if run.iters_this_run == 0 || run.step_ns <= 0.0 {
        return run.iters_this_run; // degenerate zero-work run: all done
    }
    let work_total = run.step_ns * run.iters_this_run as f64;
    let elapsed = ((now_ns - run.anchor_ns) / run.slowdown).max(0.0);
    let executed = (work_total - run.remaining_ns + elapsed).clamp(0.0, work_total);
    ((executed / run.step_ns) as u32).min(run.iters_this_run)
}

enum EventKind {
    /// Projected gang completion. Stale if the job is gone (slot freed or
    /// reused) or re-anchored since (`gen` mismatch).
    Completion { key: SlotKey, gen: u64 },
    /// A parked job's backoff expires; `due_ns` carries the exact integer
    /// instant (the f64 heap time is only a projection of it).
    Retry { key: SlotKey, due_ns: u64 },
    /// The next pulled-but-unprocessed arrival is due.
    Arrival,
    /// The next batch of injected fault events is due.
    FaultDue,
}

struct QueuedEvent {
    t_ns: f64,
    /// Tiebreak at equal times: completions and retries by arrival sequence
    /// (the reference loop's job-index order), then faults, then the
    /// arrival marker last.
    order: u64,
    kind: EventKind,
}

// `BinaryHeap` is a max-heap; compare reversed for earliest-first.
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .t_ns
            .total_cmp(&self.t_ns)
            .then_with(|| other.order.cmp(&self.order))
    }
}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for QueuedEvent {}

/// What the event core tells the outside world as it goes. [`FullRecorder`]
/// reproduces `run`'s historical behavior exactly (per-job outcomes, the
/// schedule trace, telemetry spans, metrics); [`StreamRecorder`] keeps
/// aggregates only, so recording cost — like everything else in the
/// streaming loop — is independent of stream length.
trait Recorder {
    fn on_arrive(&mut self, sim: &ClusterSim, job: &LiveJob, t_ns: u64);
    fn on_admit(&mut self, sim: &ClusterSim, job: &LiveJob, grant: &Grant, t_ns: u64);
    fn on_reject(&mut self, sim: &ClusterSim, job: &LiveJob, reason: &RejectReason, t_ns: u64);
    fn on_complete(&mut self, sim: &ClusterSim, job: &LiveJob, t_ns: u64);
    // Fault/recovery hooks, only reached when a fault plan is installed.
    // Default no-ops keep the streaming recorder O(1): aggregates for these
    // flow through [`CoreOutcome`] and the metrics registry instead.
    fn on_fault(&mut self, _sim: &ClusterSim, _event: &FaultEvent, _t_ns: u64) {}
    fn on_interrupt(&mut self, _sim: &ClusterSim, _job: &LiveJob, _device: usize, _t_ns: u64) {}
    fn on_restart(
        &mut self,
        _sim: &ClusterSim,
        _job: &LiveJob,
        _grant: &Grant,
        _exact: bool,
        _t_ns: u64,
    ) {
    }
    fn on_downgrade(
        &mut self,
        _sim: &ClusterSim,
        _job: &LiveJob,
        _from: PolicyPreset,
        _grant: &Grant,
        _t_ns: u64,
    ) {
    }
    fn on_fail(&mut self, _sim: &ClusterSim, _job: &LiveJob, _why: &str, _t_ns: u64) {}
}

/// Full per-job recording: byte-identical to what the pre-indexed loop
/// produced (the differential suite holds it to that), including telemetry
/// track/span emission order. Tracks are pre-created in arrival order by
/// [`ClusterSim::run`] so the Perfetto artifact keeps its historical layout.
struct FullRecorder {
    outcomes: Vec<JobOutcome>,
    trace: Vec<TraceEvent>,
    tracks: Vec<TrackId>,
    tracing: bool,
    /// Lazily-created fleet-level track for fault instants (faults belong
    /// to no tenant).
    fleet_track: Option<TrackId>,
}

impl Recorder for FullRecorder {
    fn on_arrive(&mut self, sim: &ClusterSim, job: &LiveJob, t_ns: u64) {
        debug_assert_eq!(self.outcomes.len() as u64, job.seq);
        self.outcomes
            .push(JobOutcome::pending(&job.spec, job.arrival));
        self.trace.push(TraceEvent {
            t_ns,
            job: job.spec.name.clone(),
            kind: TraceKind::Arrive,
        });
        if self.tracing {
            sim.sink.instant(
                self.tracks[job.seq as usize],
                "arrive",
                "cluster",
                t_ns,
                Vec::new(),
            );
        }
        if let Some(m) = &sim.metrics {
            m.submitted.inc();
        }
    }

    fn on_admit(&mut self, sim: &ClusterSim, job: &LiveJob, grant: &Grant, t_ns: u64) {
        let idx = job.seq as usize;
        let out = &mut self.outcomes[idx];
        out.started = Some(SimTime(t_ns));
        out.granted = Some(grant.preset);
        out.devices = grant.placements.iter().map(|p| p.device).collect();
        out.reservations = grant
            .placements
            .iter()
            .map(|p| p.prediction.peak_bytes)
            .collect();
        self.trace.push(TraceEvent {
            t_ns,
            job: job.spec.name.clone(),
            kind: TraceKind::Admit {
                preset: grant.preset,
                devices: out.devices.clone(),
                reservations: out.reservations.clone(),
            },
        });
        if self.tracing {
            let arrival = self.outcomes[idx].arrival.0;
            let t = t_ns.max(arrival);
            sim.sink.span_with(
                self.tracks[idx],
                "queued".to_string(),
                "cluster",
                arrival,
                t,
                vec![("preset", grant.preset.name().into())],
            );
        }
        if let Some(m) = &sim.metrics {
            m.admitted.inc();
            if let Some(q) = self.outcomes[idx].queueing() {
                m.queueing_ns.record(q.0);
            }
        }
    }

    fn on_reject(&mut self, sim: &ClusterSim, job: &LiveJob, reason: &RejectReason, t_ns: u64) {
        let idx = job.seq as usize;
        self.outcomes[idx].rejected = Some(reason.clone());
        if self.tracing {
            sim.sink.instant(
                self.tracks[idx],
                "reject",
                "cluster",
                t_ns,
                vec![("reason", reason.kind().into())],
            );
        }
        if let Some(m) = &sim.metrics {
            m.count_reject(reason);
        }
        self.trace.push(TraceEvent {
            t_ns,
            job: job.spec.name.clone(),
            kind: TraceKind::Reject {
                reason: reason.clone(),
            },
        });
    }

    fn on_complete(&mut self, sim: &ClusterSim, job: &LiveJob, t_ns: u64) {
        let idx = job.seq as usize;
        self.outcomes[idx].completion = Some(SimTime(t_ns));
        self.trace.push(TraceEvent {
            t_ns,
            job: job.spec.name.clone(),
            kind: TraceKind::Complete,
        });
        if self.tracing {
            let started = self.outcomes[idx].started.map(|s| s.0).unwrap_or(0);
            let end = t_ns.max(started);
            let preset = self.outcomes[idx].granted.map(|p| p.name()).unwrap_or("?");
            sim.sink.span_with(
                self.tracks[idx],
                "running".to_string(),
                "cluster",
                started,
                end,
                vec![
                    ("preset", preset.into()),
                    ("replicas", job.spec.replicas.into()),
                ],
            );
        }
        if let Some(m) = &sim.metrics {
            m.completed.inc();
            if let Some(l) = self.outcomes[idx].latency() {
                m.latency_ns.record(l.0);
            }
        }
    }

    fn on_fault(&mut self, sim: &ClusterSim, event: &FaultEvent, t_ns: u64) {
        let desc = event.describe();
        self.trace.push(TraceEvent {
            t_ns,
            job: "fleet".to_string(),
            kind: TraceKind::Fault { desc: desc.clone() },
        });
        if self.tracing {
            let track = *self
                .fleet_track
                .get_or_insert_with(|| sim.sink.track("cluster", "faults"));
            sim.sink
                .instant(track, "fault", "cluster", t_ns, vec![("what", desc.into())]);
        }
    }

    fn on_interrupt(&mut self, sim: &ClusterSim, job: &LiveJob, device: usize, t_ns: u64) {
        let idx = job.seq as usize;
        self.outcomes[idx].wasted_iterations = job.wasted_iters;
        self.trace.push(TraceEvent {
            t_ns,
            job: job.spec.name.clone(),
            kind: TraceKind::Interrupt { device },
        });
        if self.tracing {
            sim.sink.instant(
                self.tracks[idx],
                "interrupt",
                "cluster",
                t_ns,
                vec![("device", device.into())],
            );
        }
    }

    fn on_restart(
        &mut self,
        sim: &ClusterSim,
        job: &LiveJob,
        grant: &Grant,
        exact: bool,
        t_ns: u64,
    ) {
        let idx = job.seq as usize;
        let out = &mut self.outcomes[idx];
        out.granted = Some(grant.preset);
        out.devices = grant.placements.iter().map(|p| p.device).collect();
        out.reservations = grant
            .placements
            .iter()
            .map(|p| p.prediction.peak_bytes)
            .collect();
        out.restarts += 1;
        out.restart_peak_exact &= exact;
        out.wasted_iterations = job.wasted_iters;
        self.trace.push(TraceEvent {
            t_ns,
            job: job.spec.name.clone(),
            kind: TraceKind::Restart {
                preset: grant.preset,
                devices: self.outcomes[idx].devices.clone(),
                reservations: self.outcomes[idx].reservations.clone(),
                from_iteration: job.iters_done,
            },
        });
        if self.tracing {
            sim.sink.instant(
                self.tracks[idx],
                "restart",
                "cluster",
                t_ns,
                vec![
                    ("from_iter", job.iters_done.into()),
                    ("exact", exact.into()),
                ],
            );
        }
    }

    fn on_downgrade(
        &mut self,
        sim: &ClusterSim,
        job: &LiveJob,
        from: PolicyPreset,
        grant: &Grant,
        t_ns: u64,
    ) {
        let idx = job.seq as usize;
        let out = &mut self.outcomes[idx];
        out.granted = Some(grant.preset);
        out.reservations = grant
            .placements
            .iter()
            .map(|p| p.prediction.peak_bytes)
            .collect();
        out.wasted_iterations = job.wasted_iters;
        self.trace.push(TraceEvent {
            t_ns,
            job: job.spec.name.clone(),
            kind: TraceKind::Downgrade {
                from,
                to: grant.preset,
                reservations: self.outcomes[idx].reservations.clone(),
            },
        });
        if self.tracing {
            sim.sink.instant(
                self.tracks[idx],
                "downgrade",
                "cluster",
                t_ns,
                vec![("to", grant.preset.name().into())],
            );
        }
    }

    fn on_fail(&mut self, sim: &ClusterSim, job: &LiveJob, why: &str, t_ns: u64) {
        let idx = job.seq as usize;
        self.outcomes[idx].failed = Some(why.to_string());
        self.outcomes[idx].wasted_iterations = job.wasted_iters;
        self.trace.push(TraceEvent {
            t_ns,
            job: job.spec.name.clone(),
            kind: TraceKind::Fail {
                why: why.to_string(),
            },
        });
        if self.tracing {
            sim.sink.instant(
                self.tracks[idx],
                "fail",
                "cluster",
                t_ns,
                vec![("why", why.into())],
            );
        }
    }
}

/// Aggregate-only recording for streaming runs: a fixed-size latency sketch
/// and exact queueing sums. No outcomes, no trace, no telemetry spans —
/// O(1) memory regardless of stream length. Metrics counters (if enabled)
/// still tick; they are already aggregates.
#[derive(Default)]
struct StreamRecorder {
    latency: LatencySketch,
    queue_sum: u128,
    queue_count: u64,
}

impl Recorder for StreamRecorder {
    fn on_arrive(&mut self, sim: &ClusterSim, _job: &LiveJob, _t_ns: u64) {
        if let Some(m) = &sim.metrics {
            m.submitted.inc();
        }
    }

    fn on_admit(&mut self, sim: &ClusterSim, job: &LiveJob, _grant: &Grant, t_ns: u64) {
        let q = t_ns.saturating_sub(job.arrival.0);
        self.queue_sum += q as u128;
        self.queue_count += 1;
        if let Some(m) = &sim.metrics {
            m.admitted.inc();
            m.queueing_ns.record(q);
        }
    }

    fn on_reject(&mut self, sim: &ClusterSim, _job: &LiveJob, reason: &RejectReason, _t_ns: u64) {
        if let Some(m) = &sim.metrics {
            m.count_reject(reason);
        }
    }

    fn on_complete(&mut self, sim: &ClusterSim, job: &LiveJob, t_ns: u64) {
        let l = t_ns.saturating_sub(job.arrival.0);
        self.latency.record(l);
        if let Some(m) = &sim.metrics {
            m.completed.inc();
            m.latency_ns.record(l);
        }
    }
}

/// Admission decisions memoized across events. `try_admit` is a pure
/// function of the per-device **raw reservation vector** and the job's
/// shape — raw, not quantized, because best-fit ranks candidates by exact
/// free bytes and bin-pack by exact reserved bytes, so two reservation
/// states sharing quantized budgets can still place differently. Keyed on
/// that vector the memo is exact with no invalidation protocol at all; a
/// size cap bounds memory on long streams (clearing it is semantically
/// invisible — entries are pure).
#[derive(Default)]
struct AdmitMemo {
    map: FxHashMap<Vec<u64>, FxHashMap<ShapeKey, Option<Grant>>>,
    /// Idle-fleet feasibility per shape: [`feasible_on_idle_fleet`] is a
    /// pure function of (profiler, fleet, job shape), and the FIFO pass
    /// re-asks it for every still-queued job at every pass — under load
    /// that was the single hottest path in the whole loop (it takes
    /// several mutex-guarded profiler lookups per device per ladder rung).
    feasible: FxHashMap<ShapeKey, bool>,
    /// Epoch of the fault state `feasible` was computed against: in fault
    /// mode entries answer "feasible on the currently-*live* subset", which
    /// changes whenever a device fails or recovers. Fault-free the epoch
    /// never moves and the map behaves exactly as before.
    feasible_epoch: u64,
    /// Full-(idle-)fleet feasibility per shape, fault mode only: the
    /// discriminator between "wait out the outage" and "reject outright".
    feasible_full: FxHashMap<ShapeKey, bool>,
    /// The reservation vector is rebuilt (and re-hashed) only when
    /// `state_version` moves, not once per queued job.
    last_version: Option<u64>,
    last_key: Vec<u64>,
}

/// Everything `try_admit` reads from a [`JobSpec`] (name and iteration
/// count don't influence admission).
type ShapeKey = (Workload, usize, JobKind, PolicyPreset, bool, usize);

fn shape_key(job: &JobSpec) -> ShapeKey {
    (
        job.workload,
        job.batch,
        job.kind,
        job.preset,
        job.allow_downgrade,
        job.replicas,
    )
}

/// Outer-map size cap: past this many distinct reservation states the memo
/// resets. Generous for steady-state serving (states recur) while bounding
/// pathological churn.
const ADMIT_MEMO_MAX_STATES: usize = 4096;

/// What the event core hands back besides recorder contents.
struct CoreOutcome {
    devices: Vec<DeviceState>,
    now_ns: f64,
    peak_concurrent: usize,
    /// Slab high-water: the constant-memory evidence for streaming runs.
    peak_live: usize,
    /// Scheduling events processed: arrivals + admissions + rejections +
    /// completions (the schedule-trace length, when one is recorded).
    events: u64,
    submitted: u64,
    completed: u64,
    rejected: u64,
    // Fault/recovery aggregates (all zero on fault-free runs).
    failed: u64,
    interrupted: u64,
    restarts: u64,
    still_queued: u64,
    useful_iters: u64,
    wasted_iters: u64,
}

/// The cluster scheduler: a fleet, a placement policy, and a memoizing
/// admission profiler.
pub struct ClusterSim {
    pub fleet: Fleet,
    pub placement: PlacementPolicy,
    pub(crate) profiler: Profiler,
    pub(crate) sink: TraceSink,
    pub(crate) metrics: Option<ClusterMetrics>,
    faults: Option<FaultPlan>,
    recovery: RecoveryPolicy,
}

impl ClusterSim {
    pub fn new(fleet: Fleet, placement: PlacementPolicy) -> ClusterSim {
        assert!(!fleet.is_empty(), "cluster needs at least one device");
        ClusterSim {
            fleet,
            placement,
            profiler: Profiler::new(),
            sink: TraceSink::off(),
            metrics: None,
            faults: None,
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Install a fault plan and the recovery policy applied to the tenants
    /// it interrupts. Without this call the simulator is fault-free and its
    /// behavior is bit-identical to the pre-fault loop — the differential
    /// suite pins that.
    pub fn enable_faults(&mut self, plan: FaultPlan, recovery: RecoveryPolicy) {
        self.faults = Some(plan);
        self.recovery = recovery;
    }

    /// Emit per-tenant scheduling tracks into `sink`: every job gets one
    /// track under the `"cluster"` process with an arrive instant, a
    /// `queued` span (arrival → admission), a `running` span (admission →
    /// completion), and a reject instant carrying the structured reason.
    /// Honored by [`ClusterSim::run`] and [`ClusterSim::run_reference`];
    /// streaming runs ([`ClusterSim::run_stream`]) never emit per-job
    /// tracks — that would be O(stream) sink state.
    ///
    /// [`ClusterSim::run_reference`]: ClusterSim::run_reference
    pub fn enable_tracing(&mut self, sink: &TraceSink) {
        self.sink = if sink.is_enabled() {
            sink.clone()
        } else {
            TraceSink::off()
        };
    }

    /// Count admission outcomes and record latency/queueing histograms in
    /// `registry` (`cluster.jobs.*`, `cluster.rejects.*`,
    /// `cluster.{latency,queueing}_ns`).
    pub fn enable_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(ClusterMetrics::new(registry));
    }

    /// Distinct gang shapes whose step time was measured by driving the
    /// group engine (diagnostic; zero for solo-only streams).
    pub fn gangs_measured(&self) -> usize {
        self.profiler.gangs_measured()
    }

    /// The admission decision for `job` against the current reservations:
    /// walk the job's preset ladder; under each preset, collect the devices
    /// whose unreserved bytes admit the replica's predicted peak and let the
    /// placement policy pick a gang.
    ///
    /// The prediction budget is the device's free bytes rounded *down* to a
    /// 1/32-of-DRAM quantum: still sound (the predicted peak fits under the
    /// real free space), but the profiler's memo key space collapses from
    /// "every reservation state ever" to at most 32 budgets per device.
    pub(crate) fn try_admit(&self, devices: &[DeviceState], job: &JobSpec) -> Option<Grant> {
        if job.replicas == 0 {
            return None; // an empty gang is not a schedulable job
        }
        let indexed: Vec<(usize, &sn_sim::DeviceSpec)> =
            self.fleet.devices.iter().enumerate().collect();
        for preset in ladder_for(job) {
            use crate::placement::Candidate;
            // Candidate predictions are independent per device; cold ones
            // are swept concurrently over the rayon shim (deterministic:
            // results come back in device order, and the shared profiler
            // memo means each distinct (spec, budget) compiles at most
            // ~once). When every candidate is already memoized — the
            // steady state of the event loop, which re-evaluates queued
            // jobs at every event — the sweep is a handful of map hits and
            // runs inline: fanning worker threads out for that would cost
            // more than the lookups. The ladder itself stays serial — a
            // stronger preset is only consulted when the weaker one cannot
            // place the gang.
            let eval = |idx: usize, spec: &sn_sim::DeviceSpec| {
                let free = devices[idx].free_bytes(spec);
                let budget = crate::admission::quantized_budget(spec, free);
                if budget == 0 {
                    return None;
                }
                self.profiler
                    .profile_kind(job.workload, job.batch, preset, job.kind, spec, budget)
                    .map(|p| Candidate {
                        device: idx,
                        free,
                        reserved: devices[idx].reserved.saturating_add(devices[idx].spike),
                        budget,
                        prediction: p,
                    })
            };
            let any_cold = rayon::current_num_threads() > 1
                && indexed.iter().any(|(idx, spec)| {
                    let free = devices[*idx].free_bytes(spec);
                    let budget = crate::admission::quantized_budget(spec, free);
                    budget > 0
                        && !self.profiler.is_cached(
                            job.workload,
                            job.batch,
                            preset,
                            job.kind,
                            spec,
                            budget,
                        )
                });
            let candidates: Vec<_> = if any_cold {
                rayon::par_map(&indexed, |(idx, spec)| eval(*idx, spec))
                    .into_iter()
                    .flatten()
                    .collect()
            } else {
                indexed
                    .iter()
                    .filter_map(|(idx, spec)| eval(*idx, spec))
                    .collect()
            };
            if let Some(placements) = self.placement.choose(candidates, job.replicas) {
                return Some(Grant { preset, placements });
            }
        }
        None
    }

    /// [`ClusterSim::try_admit`] behind the cross-event memo (see
    /// [`AdmitMemo`]).
    fn try_admit_memo(
        &self,
        devices: &[DeviceState],
        job: &JobSpec,
        memo: &mut AdmitMemo,
        state_version: u64,
    ) -> Option<Grant> {
        if memo.last_version != Some(state_version) {
            memo.last_key.clear();
            // Effective occupancy: failed devices are saturated, pressure
            // spikes count as reserved. Fault-free this is exactly the raw
            // reservation vector.
            memo.last_key.extend(devices.iter().map(|d| {
                if d.failed {
                    u64::MAX
                } else {
                    d.reserved.saturating_add(d.spike)
                }
            }));
            memo.last_version = Some(state_version);
        }
        let shape = shape_key(job);
        if let Some(hit) = memo
            .map
            .get(&memo.last_key)
            .and_then(|inner| inner.get(&shape))
        {
            return hit.clone();
        }
        let result = self.try_admit(devices, job);
        if memo.map.len() >= ADMIT_MEMO_MAX_STATES {
            memo.map.clear();
        }
        memo.map
            .entry(memo.last_key.clone())
            .or_default()
            .insert(shape, result.clone());
        result
    }

    /// Constrained re-admission for an interrupted job: keep the original
    /// preset and compile each replica at **exactly** its original budget
    /// (largest first), first-fit onto distinct live devices with at least
    /// that much free. The profiler's plan memo makes each peak
    /// byte-identical to the original grant's; a resume that cannot place
    /// yet stays queued — it never silently replans at a different budget.
    fn try_admit_resume(
        &self,
        devices: &[DeviceState],
        job: &JobSpec,
        resume: &ResumePlan,
    ) -> Option<Grant> {
        debug_assert_eq!(resume.budgets.len(), job.replicas);
        let mut used = vec![false; self.fleet.len()];
        let mut placements = Vec::with_capacity(resume.budgets.len());
        for &budget in &resume.budgets {
            let mut found = None;
            for (idx, spec) in self.fleet.devices.iter().enumerate() {
                if used[idx] || devices[idx].free_bytes(spec) < budget {
                    continue;
                }
                if let Some(prediction) = self.profiler.profile_kind(
                    job.workload,
                    job.batch,
                    resume.preset,
                    job.kind,
                    spec,
                    budget,
                ) {
                    found = Some((idx, prediction));
                    break;
                }
            }
            let (idx, prediction) = found?;
            used[idx] = true;
            placements.push(Placement {
                device: idx,
                budget,
                prediction,
            });
        }
        Some(Grant {
            preset: resume.preset,
            placements,
        })
    }

    /// Plan an elastic rescue for a blocked `job`: repeatedly live-downgrade
    /// the running tenant whose next preset rung frees the most reserved
    /// bytes (ties toward the earliest arrival), on a scratch copy of the
    /// device states, until the blocked job admits or no tenant can move.
    /// Pure planning — the caller commits the returned downgrades and the
    /// final grant, in order.
    #[allow(clippy::type_complexity)]
    fn plan_elastic(
        &self,
        devices: &[DeviceState],
        jobs: &Slab<LiveJob>,
        tenants_on: &[Vec<SlotKey>],
        job: &JobSpec,
        resume: Option<&ResumePlan>,
    ) -> Option<(Vec<(SlotKey, Grant)>, Grant)> {
        struct Tenant {
            key: SlotKey,
            seq: u64,
            spec: Arc<JobSpec>,
            preset: PolicyPreset,
            placements: Vec<Placement>,
        }
        // Snapshot running tenants, earliest arrival first (each gang
        // appears once per device; dedup by sequence).
        let mut seen: Vec<(u64, SlotKey)> = tenants_on
            .iter()
            .flatten()
            .filter_map(|&k| jobs.get(k).map(|j| (j.seq, k)))
            .collect();
        seen.sort_unstable_by_key(|&(seq, _)| seq);
        seen.dedup_by_key(|&mut (seq, _)| seq);
        let mut tenants: Vec<Tenant> = seen
            .into_iter()
            .filter_map(|(seq, key)| {
                let j = jobs.get(key)?;
                let run = j.run.as_ref()?;
                Some(Tenant {
                    key,
                    seq,
                    spec: Arc::clone(&j.spec),
                    preset: run.grant.preset,
                    placements: run.grant.placements.clone(),
                })
            })
            .collect();
        let mut vdev = devices.to_vec();
        let mut downgrades: Vec<(SlotKey, Grant)> = Vec::new();
        const ELASTIC_MAX_ROUNDS: usize = 16;
        for _ in 0..ELASTIC_MAX_ROUNDS {
            let mut best: Option<(u64, u64, usize, Grant)> = None;
            for (ti, t) in tenants.iter().enumerate() {
                if !t.spec.allow_downgrade {
                    continue;
                }
                let Some(next) = t.preset.next_stronger() else {
                    continue;
                };
                // Recompile every replica one rung stronger, at the budget
                // its own freed reservation re-opens.
                let mut new_placements = Vec::with_capacity(t.placements.len());
                let mut freed = 0u64;
                let mut ok = true;
                for p in &t.placements {
                    let spec_d = &self.fleet.devices[p.device];
                    let headroom = vdev[p.device]
                        .free_bytes(spec_d)
                        .saturating_add(p.prediction.peak_bytes);
                    let budget = crate::admission::quantized_budget(spec_d, headroom);
                    let pred = (budget > 0)
                        .then(|| {
                            self.profiler.profile_kind(
                                t.spec.workload,
                                t.spec.batch,
                                next,
                                t.spec.kind,
                                spec_d,
                                budget,
                            )
                        })
                        .flatten();
                    let Some(pred) = pred else {
                        ok = false;
                        break;
                    };
                    if pred.peak_bytes >= p.prediction.peak_bytes {
                        ok = false; // must strictly shrink to be a rescue
                        break;
                    }
                    freed += p.prediction.peak_bytes - pred.peak_bytes;
                    new_placements.push(Placement {
                        device: p.device,
                        budget,
                        prediction: pred,
                    });
                }
                if !ok || freed == 0 {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((bf, bs, ..)) => freed > *bf || (freed == *bf && t.seq < *bs),
                };
                if better {
                    best = Some((
                        freed,
                        t.seq,
                        ti,
                        Grant {
                            preset: next,
                            placements: new_placements,
                        },
                    ));
                }
            }
            let (_, _, ti, new_grant) = best?;
            for (old_p, new_p) in tenants[ti].placements.iter().zip(&new_grant.placements) {
                let d = &mut vdev[old_p.device];
                d.reserved = d.reserved - old_p.prediction.peak_bytes + new_p.prediction.peak_bytes;
            }
            tenants[ti].preset = new_grant.preset;
            tenants[ti].placements = new_grant.placements.clone();
            downgrades.push((tenants[ti].key, new_grant));
            let admit = match resume {
                Some(rp) => self.try_admit_resume(&vdev, job, rp),
                None => self.try_admit(&vdev, job),
            };
            if let Some(grant) = admit {
                return Some((downgrades, grant));
            }
        }
        None
    }

    /// One gang iteration's solo duration. Gangs (`replicas > 1`) no longer
    /// multiply an analytic all-reduce term: the profiler compiles the
    /// job's [`sn_runtime::GroupPlan`] and *runs* the group interpreter on
    /// the pacing replica's capped device — the measured step already
    /// overlaps bucketed all-reduce with backward compute, and its
    /// per-replica peak is byte-identical to the reservation this grant
    /// holds. Solo training and inference replicas keep the plan's
    /// analytic estimate (no gradient exchange to measure). The closed
    /// form survives only as a belt-and-braces fallback for a gang whose
    /// group execution cannot run (which admission feasibility rules out).
    pub(crate) fn step_time(&self, job: &JobSpec, grant: &Grant) -> SimTime {
        match job.kind {
            crate::job::JobKind::Training if job.replicas > 1 => {
                let measured = grant.slowest().and_then(|pace| {
                    let spec = self.fleet.devices[pace.device]
                        .clone()
                        .with_dram(pace.budget);
                    self.profiler.gang_step_time(
                        job.workload,
                        job.batch,
                        grant.preset,
                        job.replicas,
                        &spec,
                        self.fleet.interconnect,
                    )
                });
                measured.unwrap_or_else(|| {
                    grant.replica_iter_time()
                        + ring_allreduce_time(
                            grant.weight_bytes(),
                            job.replicas,
                            self.fleet.interconnect,
                        )
                })
            }
            _ => grant.replica_iter_time(),
        }
    }

    /// Run the job stream to completion and report. `arrivals` pairs each
    /// job with its (virtual) submission time; same-time jobs keep their
    /// input order in the queue.
    pub fn run(&mut self, arrivals: Vec<(SimTime, JobSpec)>) -> ClusterReport {
        let mut arrivals = arrivals;
        arrivals.sort_by_key(|(t, _)| *t); // stable: ties keep input order

        // One per-tenant track per job under the "cluster" process,
        // pre-created in arrival order so the Perfetto artifact's track
        // layout is identical to the reference loop's; empty when untraced.
        let tracing = self.sink.is_enabled();
        let tracks: Vec<TrackId> = if tracing {
            arrivals
                .iter()
                .map(|(_, j)| self.sink.track("cluster", &j.name))
                .collect()
        } else {
            Vec::new()
        };
        let mut rec = FullRecorder {
            outcomes: Vec::with_capacity(arrivals.len()),
            trace: Vec::new(),
            tracks,
            tracing,
            fleet_track: None,
        };
        let mut stream = ReplayStream::new(arrivals);
        let core = self.run_core(&mut stream, &mut rec);

        let makespan = SimTime(core.now_ns.round() as u64);
        ClusterReport::assemble(
            &self.fleet,
            self.placement,
            rec.outcomes,
            rec.trace,
            makespan,
            core.devices
                .iter()
                .map(|d| {
                    (
                        d.busy_ns,
                        d.reserved_integral,
                        d.peak_reserved,
                        d.peak_tenants,
                    )
                })
                .collect(),
            core.peak_concurrent,
            self.profiler.simulated(),
        )
    }

    /// Run an open-loop arrival stream to exhaustion with aggregate-only
    /// recording: arrivals are pulled one ahead of the clock and per-job
    /// state lives only while the job does, so a 10^6-event stream runs in
    /// memory proportional to **peak concurrency** (reported as
    /// [`ServiceReport::peak_live_jobs`]), not stream length. Tail
    /// latencies come from a fixed-size log-linear sketch (≤ 1/16 relative
    /// rounding); counts, means, utilizations, and the schedule itself are
    /// exact — the loop is the same indexed core [`ClusterSim::run`] uses.
    pub fn run_stream(&mut self, stream: &mut dyn ArrivalStream) -> ServiceReport {
        let mut rec = StreamRecorder::default();
        let core = self.run_core(stream, &mut rec);

        let makespan = SimTime(core.now_ns.round() as u64);
        let span_ns = makespan.0.max(1) as f64;
        let compute_utilization = core.devices.iter().map(|d| d.busy_ns).sum::<f64>()
            / (span_ns * self.fleet.len().max(1) as f64);
        let memory_utilization = core
            .devices
            .iter()
            .map(|d| d.reserved_integral)
            .sum::<f64>()
            / (span_ns * self.fleet.total_dram().max(1) as f64);
        let mean_queueing = if rec.queue_count == 0 {
            SimTime::ZERO
        } else {
            SimTime((rec.queue_sum / rec.queue_count as u128) as u64)
        };
        ServiceReport {
            placement: self.placement,
            fleet_devices: self.fleet.len(),
            submitted: core.submitted,
            completed: core.completed,
            rejected: core.rejected,
            failed: core.failed,
            still_queued: core.still_queued,
            interrupted: core.interrupted,
            restarts: core.restarts,
            useful_iterations: core.useful_iters,
            wasted_iterations: core.wasted_iters,
            goodput_iters_per_sec: crate::report::safe_rate(core.useful_iters, makespan),
            raw_iters_per_sec: crate::report::safe_rate(
                core.useful_iters + core.wasted_iters,
                makespan,
            ),
            events: core.events,
            makespan,
            jobs_per_sec: core.completed as f64 / makespan.as_secs_f64().max(f64::MIN_POSITIVE),
            p50_latency: rec.latency.quantile(0.50),
            p99_latency: rec.latency.quantile(0.99),
            p999_latency: rec.latency.quantile(0.999),
            mean_queueing,
            compute_utilization,
            memory_utilization,
            peak_concurrent_jobs: core.peak_concurrent,
            peak_live_jobs: core.peak_live,
        }
    }

    /// The indexed discrete-event core (see the module docs). Everything
    /// observable goes through `rec`; the returned [`CoreOutcome`] carries
    /// the device integrals and counters both report types share.
    fn run_core<R: Recorder>(&self, stream: &mut dyn ArrivalStream, rec: &mut R) -> CoreOutcome {
        let mut devices = vec![DeviceState::default(); self.fleet.len()];
        // Per-device running tenants: the gangs a tenant-count change on
        // this device can re-pace. The re-anchor sweep walks only these.
        let mut tenants_on: Vec<Vec<SlotKey>> = vec![Vec::new(); self.fleet.len()];
        let mut jobs: Slab<LiveJob> = Slab::new();
        let mut heap: BinaryHeap<QueuedEvent> = BinaryHeap::new();
        let mut pending: Vec<SlotKey> = Vec::new(); // FIFO queue
        let mut memo = AdmitMemo::default();

        let mut now_ns = 0f64;
        let mut next_seq = 0u64;
        let mut running_count = 0usize;
        let mut peak_concurrent = 0usize;
        let mut events = 0u64;
        let mut submitted = 0u64;
        let mut completed = 0u64;
        let mut rejected = 0u64;
        let mut failed = 0u64;
        let mut interrupted = 0u64;
        let mut restarts = 0u64;
        let mut useful_iters = 0u64;
        let mut wasted_iters = 0u64;
        // Jobs parked in backoff: live slab slots that are neither queued
        // nor running until their retry fires.
        let mut backoff_count = 0usize;

        // Fault state. `fault_mode` gates every new branch below: with no
        // plan installed the loop executes the exact float-op/branch
        // sequence the no-fault differential suite pins.
        let fault_mode = self.faults.is_some();
        let faults: Vec<(SimTime, FaultEvent)> = self
            .faults
            .clone()
            .map(|p| p.into_events())
            .unwrap_or_default();
        let mut next_fault = 0usize;
        let mut link_permille: u32 = 1000;
        // Bumped on every fail/recover: scopes the live-subset feasibility
        // memo.
        let mut fault_epoch = 0u64;
        let mut fail_since: Vec<Option<u64>> = vec![None; self.fleet.len()];
        // Monotone integer stamp clock. Faults, retries, and arrivals carry
        // exact integer instants whose f64 projections can round *down* past
        // 2^53 ns; stamps derived from the rounded f64 clock are clamped to
        // this so the trace never runs backwards. Fault-gated: fault-free
        // stamps stay bit-identical to the reference loop.
        let mut clock_int: u64 = 0;
        if let Some((t, _)) = faults.first() {
            heap.push(QueuedEvent {
                t_ns: t.0 as f64,
                order: u64::MAX - 1,
                kind: EventKind::FaultDue,
            });
        }

        // Reservation-state version, bumped on every reserve/release.
        // `pass_version` is the version every *currently queued* job was
        // last (provably) evaluated at; when they match, the FIFO pass can
        // skip straight to this event's fresh arrivals — the old entries'
        // re-evaluation would be a pure replay ending in "still pending".
        let mut state_version = 0u64;
        let mut pass_version = 0u64;

        // Pull one arrival ahead of the clock.
        let mut pending_arrival = stream.next_job();
        if let Some((t, _)) = &pending_arrival {
            heap.push(QueuedEvent {
                t_ns: t.0 as f64,
                order: u64::MAX,
                kind: EventKind::Arrival,
            });
        }

        loop {
            // Earliest live event; stale completion projections (job gone
            // or re-anchored since the push) are lazily discarded here.
            let t_next = loop {
                match heap.peek() {
                    None => break f64::INFINITY,
                    Some(ev) => {
                        if let EventKind::Completion { key, gen } = ev.kind {
                            let live = jobs
                                .get(key)
                                .and_then(|j| j.run.as_ref())
                                .is_some_and(|r| r.gen == gen);
                            if !live {
                                heap.pop();
                                continue;
                            }
                        }
                        break ev.t_ns;
                    }
                }
            };
            if t_next.is_infinite() {
                // In fault mode a job can terminally wait out a pressure
                // spike that never lifts; it is reported as still queued.
                debug_assert!(
                    fault_mode || pending.is_empty(),
                    "queued jobs with no future events"
                );
                break;
            }

            // Collect everything due at this instant *before* processing:
            // pushes made while handling the batch (same-f64-time arrivals
            // past 2^53 ns, zero-dt re-projections) belong to the next
            // iteration, exactly like the reference loop's dt=0 follow-ups.
            let mut completions: Vec<SlotKey> = Vec::new();
            let mut retries: Vec<(u64, SlotKey)> = Vec::new();
            let mut arrival_due = false;
            let mut fault_due = false;
            while let Some(ev) = heap.peek() {
                if ev.t_ns != t_next {
                    break;
                }
                let ev = heap.pop().expect("peeked entry");
                match ev.kind {
                    EventKind::Completion { key, gen } => {
                        let live = jobs
                            .get(key)
                            .and_then(|j| j.run.as_ref())
                            .is_some_and(|r| r.gen == gen);
                        if live {
                            completions.push(key);
                        }
                    }
                    EventKind::Retry { key, due_ns } => retries.push((due_ns, key)),
                    EventKind::Arrival => arrival_due = true,
                    EventKind::FaultDue => fault_due = true,
                }
            }
            // Heap pops at equal times ascend by `order`, i.e. by arrival
            // sequence — the completion-report order the reference loop
            // gets from keeping `running` sorted.
            debug_assert!(completions
                .windows(2)
                .all(|w| jobs.get(w[0]).unwrap().seq < jobs.get(w[1]).unwrap().seq));

            // Advance the clock: device accounting integrates (per-gang
            // progress is implicit in the anchors). Deliberately the same
            // eager per-device loop as the reference — f64 addition is not
            // associative, so coalescing idle stretches would change bits;
            // the fleet is small and fixed, the asymptotic win is in jobs.
            let dt = t_next - now_ns;
            if dt > 0.0 {
                for d in devices.iter_mut() {
                    if d.tenants > 0 {
                        d.busy_ns += dt;
                    }
                    d.reserved_integral += d.reserved as f64 * dt;
                }
            }
            // Never move the clock backwards: an arrival timestamp past
            // 2^53 ns can *round down* below a completion the clock already
            // advanced to.
            now_ns = now_ns.max(t_next);

            // Devices whose tenant count changes this event — the re-anchor
            // sweep below visits exactly their gangs.
            let mut affected: Vec<usize> = Vec::new();

            // Completions first (freeing capacity for same-instant
            // arrivals), in arrival-sequence order.
            for key in completions {
                let mut job = jobs.remove(key).expect("validated above");
                let run = job.run.take().expect("validated above");
                for p in &run.grant.placements {
                    devices[p.device].reserved -= p.prediction.peak_bytes;
                    devices[p.device].tenants -= 1;
                    let list = &mut tenants_on[p.device];
                    let pos = list.iter().position(|k| *k == key).expect("tenant listed");
                    list.swap_remove(pos);
                    affected.push(p.device);
                }
                state_version += 1;
                running_count -= 1;
                completed += 1;
                useful_iters += u64::from(job.spec.iterations);
                events += 1;
                let t_done = if fault_mode {
                    clock_int = clock_int.max(now_ns.round() as u64);
                    clock_int
                } else {
                    now_ns.round() as u64
                };
                rec.on_complete(self, &job, t_done);
            }

            // Injected faults at this instant, in plan order. Matched on the
            // *integer* nanosecond timestamp (like arrivals below) so plans
            // past 2^53 ns cannot merge or drop instants under `as f64`.
            if fault_due {
                let t_int = faults[next_fault].0 .0;
                clock_int = clock_int.max(t_int);
                while next_fault < faults.len() && faults[next_fault].0 .0 == t_int {
                    let ev = faults[next_fault].1;
                    next_fault += 1;
                    match ev {
                        FaultEvent::DeviceFail { device } if device < devices.len() => {
                            if devices[device].failed {
                                continue; // already down
                            }
                            devices[device].failed = true;
                            fail_since[device] = Some(t_int);
                            state_version += 1;
                            fault_epoch += 1;
                            events += 1;
                            rec.on_fault(self, &ev, t_int);
                            if let Some(m) = &self.metrics {
                                m.device_failures.inc();
                            }
                            // Interrupt every gang with a replica here —
                            // atomically: ALL replicas' reservations and
                            // tenant slots release, not just this device's.
                            let victims: Vec<SlotKey> = tenants_on[device].clone();
                            for vkey in victims {
                                let (seq, kind, total_done) = {
                                    let vjob =
                                        jobs.get_mut(vkey).expect("tenant lists track live jobs");
                                    let run = vjob.run.take().expect("listed tenants are running");
                                    let done = fold_done_iterations(&run, now_ns);
                                    for p in &run.grant.placements {
                                        devices[p.device].reserved -= p.prediction.peak_bytes;
                                        devices[p.device].tenants -= 1;
                                        let list = &mut tenants_on[p.device];
                                        let pos = list
                                            .iter()
                                            .position(|k| *k == vkey)
                                            .expect("tenant listed");
                                        list.swap_remove(pos);
                                        affected.push(p.device);
                                    }
                                    (vjob.seq, vjob.spec.kind, vjob.iters_done + done)
                                };
                                state_version += 1;
                                running_count -= 1;
                                interrupted += 1;
                                events += 1;
                                if let Some(m) = &self.metrics {
                                    m.jobs_interrupted.inc();
                                }
                                let permanent = match self.recovery.mode {
                                    RecoveryMode::NoRecovery => {
                                        Some(format!("device {device} failed (no recovery)"))
                                    }
                                    _ if jobs.get(vkey).unwrap().attempts
                                        >= self.recovery.max_retries =>
                                    {
                                        Some(format!(
                                            "device {device} failed after {} retries",
                                            self.recovery.max_retries
                                        ))
                                    }
                                    _ => None,
                                };
                                match permanent {
                                    Some(why) => {
                                        let waste = {
                                            let vjob = jobs.get_mut(vkey).unwrap();
                                            let w = u64::from(total_done);
                                            vjob.wasted_iters += w;
                                            w
                                        };
                                        wasted_iters += waste;
                                        if let Some(m) = &self.metrics {
                                            m.wasted_iterations.add(waste);
                                            m.jobs_failed.inc();
                                        }
                                        rec.on_interrupt(
                                            self,
                                            jobs.get(vkey).unwrap(),
                                            device,
                                            t_int,
                                        );
                                        rec.on_fail(self, jobs.get(vkey).unwrap(), &why, t_int);
                                        jobs.remove(vkey);
                                        failed += 1;
                                        events += 1;
                                    }
                                    None => {
                                        // Fold to the checkpoint, park in
                                        // backoff: pure u64 timer chains.
                                        let attempt = {
                                            let vjob = jobs.get_mut(vkey).unwrap();
                                            let kept = self.recovery.checkpointed(kind, total_done);
                                            let waste = u64::from(total_done - kept);
                                            vjob.iters_done = kept;
                                            vjob.wasted_iters += waste;
                                            wasted_iters += waste;
                                            if let Some(m) = &self.metrics {
                                                m.wasted_iterations.add(waste);
                                            }
                                            vjob.pending_restart = true;
                                            let a = vjob.attempts;
                                            vjob.attempts += 1;
                                            a
                                        };
                                        let delay = self.recovery.backoff_delay(attempt, seq);
                                        let due = t_int.saturating_add(delay.0);
                                        {
                                            let vjob = jobs.get_mut(vkey).unwrap();
                                            vjob.anchor_int = due;
                                        }
                                        heap.push(QueuedEvent {
                                            t_ns: due as f64,
                                            order: seq,
                                            kind: EventKind::Retry {
                                                key: vkey,
                                                due_ns: due,
                                            },
                                        });
                                        backoff_count += 1;
                                        if let Some(m) = &self.metrics {
                                            m.retries_scheduled.inc();
                                            m.backoff_ns.record(delay.0);
                                        }
                                        rec.on_interrupt(
                                            self,
                                            jobs.get(vkey).unwrap(),
                                            device,
                                            t_int,
                                        );
                                    }
                                }
                            }
                        }
                        FaultEvent::DeviceRecover { device } if device < devices.len() => {
                            if !devices[device].failed {
                                continue;
                            }
                            devices[device].failed = false;
                            state_version += 1;
                            fault_epoch += 1;
                            events += 1;
                            rec.on_fault(self, &ev, t_int);
                            let since = fail_since[device].take();
                            if let Some(m) = &self.metrics {
                                m.device_recoveries.inc();
                                if let Some(t0) = since {
                                    m.mttr_ns.record(t_int.saturating_sub(t0));
                                }
                            }
                        }
                        FaultEvent::LinkDegrade { permille } => {
                            let p = permille.max(1);
                            if p == link_permille {
                                continue;
                            }
                            link_permille = p;
                            events += 1;
                            rec.on_fault(self, &ev, t_int);
                            // Every running gang may re-pace.
                            affected.extend(0..devices.len());
                        }
                        FaultEvent::LinkRestore => {
                            if link_permille == 1000 {
                                continue;
                            }
                            link_permille = 1000;
                            events += 1;
                            rec.on_fault(self, &ev, t_int);
                            affected.extend(0..devices.len());
                        }
                        FaultEvent::PressureSpike { device, bytes } if device < devices.len() => {
                            devices[device].spike = devices[device].spike.saturating_add(bytes);
                            state_version += 1;
                            events += 1;
                            rec.on_fault(self, &ev, t_int);
                        }
                        FaultEvent::PressureRelease { device, bytes } if device < devices.len() => {
                            devices[device].spike = devices[device].spike.saturating_sub(bytes);
                            state_version += 1;
                            events += 1;
                            rec.on_fault(self, &ev, t_int);
                        }
                        _ => {} // out-of-range device index: ignore
                    }
                }
                if let Some((t, _)) = faults.get(next_fault) {
                    debug_assert!(t.0 >= t_int, "fault plans are normalized");
                    heap.push(QueuedEvent {
                        t_ns: t.0 as f64,
                        order: u64::MAX - 1,
                        kind: EventKind::FaultDue,
                    });
                }
            }

            // Arrivals at this instant join the queue in pull order. Match
            // on the *integer* nanosecond timestamp, not its f64 projection:
            // beyond 2^53 ns distinct arrival times collapse under `as f64`,
            // and a float-equality match would drop (or spuriously merge)
            // coincident arrivals.
            let fresh_start = pending.len();
            // Parked jobs whose backoff expired re-enter the queue ahead of
            // fresh arrivals at the same instant (they arrived earlier),
            // ordered by (due instant, arrival sequence). They sit at or
            // past `fresh_start`, so even a memoized (non-full) pass
            // re-evaluates them.
            if !retries.is_empty() {
                retries.sort_unstable_by_key(|&(due, key)| {
                    (due, jobs.get(key).map(|j| j.seq).unwrap_or(u64::MAX))
                });
                for (due, key) in retries {
                    let job = jobs.get_mut(key).expect("parked jobs stay live");
                    debug_assert!(job.run.is_none(), "parked jobs cannot be running");
                    job.anchor_int = job.anchor_int.max(due);
                    clock_int = clock_int.max(due);
                    pending.push(key);
                    backoff_count -= 1;
                }
            }
            if arrival_due {
                let (t0, first) = pending_arrival.take().expect("arrival marker without job");
                let t_int = t0.0;
                if fault_mode {
                    clock_int = clock_int.max(t_int);
                }
                let mut cur = Some((t0, first));
                loop {
                    match cur.take() {
                        Some((t, spec)) if t.0 == t_int => {
                            let seq = next_seq;
                            next_seq += 1;
                            let key = jobs.insert(LiveJob {
                                spec: Arc::new(spec),
                                seq,
                                arrival: t,
                                run: None,
                                anchor_int: t_int,
                                iters_done: 0,
                                attempts: 0,
                                wasted_iters: 0,
                                pending_restart: false,
                                resume: None,
                            });
                            pending.push(key);
                            submitted += 1;
                            events += 1;
                            rec.on_arrive(self, jobs.get(key).expect("just inserted"), t_int);
                            cur = stream.next_job();
                        }
                        later => {
                            cur = later;
                            break;
                        }
                    }
                }
                pending_arrival = cur;
                if let Some((t, _)) = &pending_arrival {
                    debug_assert!(t.0 >= t_int, "ArrivalStream times must be non-decreasing");
                    heap.push(QueuedEvent {
                        t_ns: t.0 as f64,
                        order: u64::MAX,
                        kind: EventKind::Arrival,
                    });
                }
            }

            // Admission/placement pass: FIFO with backfill — a blocked job
            // stays queued while later, smaller jobs may slot in behind it.
            // When reservations haven't changed since the queue was last
            // evaluated, only this event's fresh arrivals are worth asking
            // about (see `pass_version` above).
            // Integer stamp for this instant's pass: runs logically after
            // the integer-stamped faults/retries/arrivals above, so it is
            // clamped to never sit behind them.
            let now_int = if fault_mode {
                clock_int = clock_int.max(now_ns.round() as u64);
                clock_int
            } else {
                now_ns.round() as u64
            };
            let full_pass = state_version != pass_version;
            let start = if full_pass { 0 } else { fresh_start };
            let version_at_pass_start = state_version;
            let mut kept: Vec<SlotKey> = Vec::new();
            for &key in pending.iter().skip(start) {
                let (spec, resume, restarting) = {
                    let j = jobs.get(key).expect("pending jobs are live");
                    (Arc::clone(&j.spec), j.resume.clone(), j.pending_restart)
                };
                let mut grant_opt = match &resume {
                    // A job granted before carries its frozen plan: restart
                    // re-admission is budget-exact, never a fresh search.
                    Some(rp) => self.try_admit_resume(&devices, &spec, rp),
                    None => self.try_admit_memo(&devices, &spec, &mut memo, state_version),
                };
                // Elastic rescue: make room by live-downgrading running
                // tenants one preset rung (strictly smaller reserved peak),
                // through the same plan memo admission uses.
                let mut rescue: Option<Vec<(SlotKey, Grant)>> = None;
                if grant_opt.is_none()
                    && fault_mode
                    && self.recovery.mode == RecoveryMode::RestartElastic
                {
                    if let Some((downgrades, admit)) =
                        self.plan_elastic(&devices, &jobs, &tenants_on, &spec, resume.as_ref())
                    {
                        rescue = Some(downgrades);
                        grant_opt = Some(admit);
                    }
                }
                match grant_opt {
                    Some(grant) => {
                        // Commit planned downgrades first — they free the
                        // room the grant below relies on.
                        if let Some(downgrades) = rescue {
                            for (tkey, new_grant) in downgrades {
                                let (tseq, from, old_grant) = {
                                    let tjob =
                                        jobs.get_mut(tkey).expect("planned tenants are live");
                                    let trun =
                                        tjob.run.as_mut().expect("planned tenants are running");
                                    // The downgraded plan restarts the
                                    // remaining iterations from the last
                                    // checkpoint; the fold's loss is wasted
                                    // work.
                                    let done = fold_done_iterations(trun, now_ns);
                                    let total_done = tjob.iters_done + done;
                                    let kept_iters =
                                        self.recovery.checkpointed(tjob.spec.kind, total_done);
                                    let waste = u64::from(total_done - kept_iters);
                                    tjob.iters_done = kept_iters;
                                    tjob.wasted_iters += waste;
                                    wasted_iters += waste;
                                    if let Some(m) = &self.metrics {
                                        m.wasted_iterations.add(waste);
                                    }
                                    let from = trun.grant.preset;
                                    let old = std::mem::replace(&mut trun.grant, new_grant.clone());
                                    (tjob.seq, from, old)
                                };
                                for p in &old_grant.placements {
                                    devices[p.device].reserved -= p.prediction.peak_bytes;
                                }
                                for p in &new_grant.placements {
                                    let d = p.device;
                                    devices[d].reserved += p.prediction.peak_bytes;
                                    devices[d].peak_reserved =
                                        devices[d].peak_reserved.max(devices[d].reserved);
                                    debug_assert!(
                                        devices[d].reserved <= self.fleet.devices[d].dram_bytes,
                                        "downgrade reservation exceeds device {d} DRAM"
                                    );
                                    affected.push(d);
                                }
                                state_version += 1;
                                let (tspec, titers_left) = {
                                    let tjob = jobs.get(tkey).expect("planned tenants are live");
                                    (
                                        Arc::clone(&tjob.spec),
                                        tjob.spec.iterations - tjob.iters_done,
                                    )
                                };
                                let tstep = self.step_time(&tspec, &new_grant);
                                let tslow = apply_link(
                                    gang_slowdown(&devices, &new_grant),
                                    tspec.replicas,
                                    link_permille,
                                );
                                {
                                    let tjob =
                                        jobs.get_mut(tkey).expect("planned tenants are live");
                                    tjob.resume = Some(resume_plan_of(&new_grant));
                                    let trun =
                                        tjob.run.as_mut().expect("planned tenants are running");
                                    trun.step_ns = tstep.0 as f64;
                                    trun.iters_this_run = titers_left;
                                    trun.remaining_ns = tstep.0 as f64 * titers_left as f64;
                                    trun.anchor_ns = now_ns;
                                    trun.slowdown = tslow;
                                    trun.gen += 1;
                                    heap.push(QueuedEvent {
                                        t_ns: now_ns + trun.remaining_ns * tslow,
                                        order: tseq,
                                        kind: EventKind::Completion {
                                            key: tkey,
                                            gen: trun.gen,
                                        },
                                    });
                                }
                                rec.on_downgrade(
                                    self,
                                    jobs.get(tkey).expect("planned tenants are live"),
                                    from,
                                    &new_grant,
                                    now_int,
                                );
                                events += 1;
                                if let Some(m) = &self.metrics {
                                    m.jobs_downgraded.inc();
                                }
                            }
                        }
                        let iters_left = spec.iterations
                            - jobs.get(key).expect("pending jobs are live").iters_done;
                        let step = self.step_time(&spec, &grant);
                        let work_ns = step.0 as f64 * iters_left as f64;
                        for p in &grant.placements {
                            let d = p.device;
                            devices[d].reserved += p.prediction.peak_bytes;
                            devices[d].tenants += 1;
                            devices[d].peak_reserved =
                                devices[d].peak_reserved.max(devices[d].reserved);
                            devices[d].peak_tenants =
                                devices[d].peak_tenants.max(devices[d].tenants);
                            debug_assert!(
                                devices[d].reserved <= self.fleet.devices[d].dram_bytes,
                                "reservation exceeds device {d} DRAM"
                            );
                            tenants_on[d].push(key);
                            affected.push(d);
                        }
                        state_version += 1;
                        if restarting {
                            // Gate: the re-admitted plan must be
                            // byte-identical to the original — same sorted
                            // (budget, peak) vector, peaks straight from
                            // the shared plan memo.
                            let exact = resume.as_ref().is_some_and(|rp| {
                                let mut got: Vec<(u64, u64)> = grant
                                    .placements
                                    .iter()
                                    .map(|p| (p.budget, p.prediction.peak_bytes))
                                    .collect();
                                got.sort_unstable_by(|a, b| b.cmp(a));
                                got.iter().map(|g| g.0).eq(rp.budgets.iter().copied())
                                    && got.iter().map(|g| g.1).eq(rp.peaks.iter().copied())
                            });
                            restarts += 1;
                            if let Some(m) = &self.metrics {
                                m.jobs_restarted.inc();
                            }
                            rec.on_restart(
                                self,
                                jobs.get(key).expect("pending jobs are live"),
                                &grant,
                                exact,
                                now_int,
                            );
                        } else {
                            rec.on_admit(
                                self,
                                jobs.get(key).expect("pending jobs are live"),
                                &grant,
                                now_int,
                            );
                        }
                        if fault_mode {
                            let j = jobs.get_mut(key).expect("pending jobs are live");
                            j.pending_restart = false;
                            j.attempts = 0;
                            j.resume = Some(resume_plan_of(&grant));
                        }
                        // The gang's slowdown is read *after* its own
                        // reservations landed; if a later same-pass
                        // admission changes it, the sweep below folds that
                        // in (a zero-dt, bit-safe re-anchor).
                        let slowdown = apply_link(
                            gang_slowdown(&devices, &grant),
                            spec.replicas,
                            link_permille,
                        );
                        let seq = {
                            let job = jobs.get_mut(key).expect("pending jobs are live");
                            job.run = Some(RunState {
                                grant,
                                remaining_ns: work_ns,
                                anchor_ns: now_ns,
                                slowdown,
                                gen: 0,
                                step_ns: step.0 as f64,
                                iters_this_run: iters_left,
                            });
                            job.seq
                        };
                        heap.push(QueuedEvent {
                            t_ns: now_ns + work_ns * slowdown,
                            order: seq,
                            kind: EventKind::Completion { key, gen: 0 },
                        });
                        running_count += 1;
                        events += 1;
                    }
                    None if !fault_mode => {
                        // Idle-fleet feasibility depends only on the job
                        // shape, so a queued shape is checked once per run,
                        // not once per pass.
                        let feasible =
                            *memo.feasible.entry(shape_key(&spec)).or_insert_with(|| {
                                feasible_on_idle_fleet(&self.profiler, &self.fleet, &spec)
                            });
                        if feasible {
                            kept.push(key); // wait for capacity
                        } else {
                            let reason = if spec.replicas == 0 {
                                RejectReason::EmptyGang
                            } else if spec.replicas > self.fleet.len() {
                                RejectReason::FleetTooSmall {
                                    replicas: spec.replicas,
                                    fleet: self.fleet.len(),
                                }
                            } else {
                                RejectReason::PeakExceedsCapacity {
                                    presets: ladder_for(&spec).iter().map(|p| p.name()).collect(),
                                }
                            };
                            rec.on_reject(
                                self,
                                jobs.get(key).expect("pending jobs are live"),
                                &reason,
                                now_int,
                            );
                            jobs.remove(key);
                            rejected += 1;
                            events += 1;
                        }
                    }
                    None => {
                        // Fault mode: three-way — wait (feasible on the
                        // live subset), back off (only the outage blocks
                        // it), or reject/fail.
                        if memo.feasible_epoch != fault_epoch {
                            memo.feasible.clear();
                            memo.feasible_epoch = fault_epoch;
                        }
                        let shape = shape_key(&spec);
                        let feasible_live = *memo.feasible.entry(shape).or_insert_with(|| {
                            let live: Vec<&sn_sim::DeviceSpec> = self
                                .fleet
                                .devices
                                .iter()
                                .zip(devices.iter())
                                .filter(|(_, d)| !d.failed)
                                .map(|(s, _)| s)
                                .collect();
                            feasible_on_device_subset(&self.profiler, &live, &spec)
                        });
                        if feasible_live {
                            kept.push(key); // wait for capacity
                        } else {
                            let feasible_full =
                                *memo.feasible_full.entry(shape).or_insert_with(|| {
                                    feasible_on_idle_fleet(&self.profiler, &self.fleet, &spec)
                                });
                            if !feasible_full {
                                // It would never fit even on a healthy idle
                                // fleet: the classic reject reasons apply.
                                let reason = if spec.replicas == 0 {
                                    RejectReason::EmptyGang
                                } else if spec.replicas > self.fleet.len() {
                                    RejectReason::FleetTooSmall {
                                        replicas: spec.replicas,
                                        fleet: self.fleet.len(),
                                    }
                                } else {
                                    RejectReason::PeakExceedsCapacity {
                                        presets: ladder_for(&spec)
                                            .iter()
                                            .map(|p| p.name())
                                            .collect(),
                                    }
                                };
                                rec.on_reject(
                                    self,
                                    jobs.get(key).expect("pending jobs are live"),
                                    &reason,
                                    now_int,
                                );
                                jobs.remove(key);
                                rejected += 1;
                                events += 1;
                            } else if self.recovery.mode == RecoveryMode::NoRecovery {
                                kept.push(key); // wait for the fleet to heal
                            } else {
                                let (seq, attempt, base) = {
                                    let j = jobs.get(key).expect("pending jobs are live");
                                    (j.seq, j.attempts, j.anchor_int)
                                };
                                if attempt >= self.recovery.max_retries {
                                    let why = format!("no live placement after {attempt} retries");
                                    rec.on_fail(
                                        self,
                                        jobs.get(key).expect("pending jobs are live"),
                                        &why,
                                        now_int,
                                    );
                                    jobs.remove(key);
                                    failed += 1;
                                    events += 1;
                                    if let Some(m) = &self.metrics {
                                        m.jobs_failed.inc();
                                    }
                                } else {
                                    // Capped exponential backoff on the
                                    // integer timeline: the due instant
                                    // chains from `anchor_int`, never from
                                    // the f64 clock.
                                    let delay = self.recovery.backoff_delay(attempt, seq);
                                    let due = base.max(now_int).saturating_add(delay.0);
                                    {
                                        let j = jobs.get_mut(key).expect("pending jobs are live");
                                        j.attempts += 1;
                                        j.anchor_int = due;
                                    }
                                    heap.push(QueuedEvent {
                                        t_ns: due as f64,
                                        order: seq,
                                        kind: EventKind::Retry { key, due_ns: due },
                                    });
                                    backoff_count += 1;
                                    if let Some(m) = &self.metrics {
                                        m.retries_scheduled.inc();
                                        m.backoff_ns.record(delay.0);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            pending.truncate(start);
            pending.extend(kept);
            if full_pass {
                // If the pass admitted anything, state_version moved past
                // this and the next event re-evaluates everyone — a job
                // evaluated early in the pass saw pre-admission state.
                pass_version = version_at_pass_start;
            }
            peak_concurrent = peak_concurrent.max(running_count);
            // Every live slot is exactly one queued, running, or
            // backoff-parked job.
            debug_assert_eq!(jobs.len(), pending.len() + running_count + backoff_count);

            // Re-anchor sweep: exactly the gangs sharing a device whose
            // tenant count changed this event. Fold their progress forward
            // under the old slowdown, restart the anchor at `now`, and
            // supersede their heap projection (generation bump). Gangs
            // reached through two affected devices are visited twice but
            // re-anchored once — the second visit sees the new slowdown
            // already in place. These are the same float ops the reference
            // loop's top-of-iteration pass performs on the same values.
            affected.sort_unstable();
            affected.dedup();
            for &d in &affected {
                for &key in &tenants_on[d] {
                    let job = jobs.get_mut(key).expect("tenant lists track live jobs");
                    let seq = job.seq;
                    let replicas = job.spec.replicas;
                    let run = job.run.as_mut().expect("listed tenants are running");
                    let s =
                        apply_link(gang_slowdown(&devices, &run.grant), replicas, link_permille);
                    if s != run.slowdown {
                        run.remaining_ns -= (now_ns - run.anchor_ns) / run.slowdown;
                        run.anchor_ns = now_ns;
                        run.slowdown = s;
                        run.gen += 1;
                        heap.push(QueuedEvent {
                            t_ns: run.anchor_ns + run.remaining_ns * run.slowdown,
                            order: seq,
                            kind: EventKind::Completion { key, gen: run.gen },
                        });
                    }
                }
            }
        }

        CoreOutcome {
            devices,
            now_ns,
            peak_concurrent,
            peak_live: jobs.capacity(),
            events,
            submitted,
            completed,
            rejected,
            failed,
            interrupted,
            restarts,
            still_queued: pending.len() as u64,
            useful_iters,
            wasted_iters,
        }
    }
}
