//! The discrete-event cluster scheduler.
//!
//! Virtual time advances from event to event: job arrivals, gang
//! completions, and the admission/placement pass that follows each of them.
//! Devices are shared by time-multiplexing: a device running `k` tenants
//! gives each `1/k` of its throughput (processor sharing), and a gang runs
//! in lockstep at the pace of its slowest replica. Memory, by contrast, is
//! *partitioned*: every replica holds a hard reservation equal to its
//! predicted peak from admission until the job completes, so co-tenants can
//! never push each other out of DRAM — the failure mode the paper's
//! single-job runtime eliminates on one device, lifted to fleet scope.
//!
//! Everything is deterministic: event ties are broken by job index, queue
//! order is FIFO (with backfill past a blocked head), and the RNG-free state
//! machine is a pure function of the input job stream — identical streams
//! produce byte-identical schedule traces.

use sn_runtime::ring_allreduce_time;
use sn_sim::SimTime;
use sn_telemetry::{Counter, Histogram, MetricsRegistry, TraceSink, TrackId};

use crate::admission::{feasible_on_idle_fleet, ladder_for, Grant, Profiler};
use crate::fleet::Fleet;
use crate::job::JobSpec;
use crate::placement::PlacementPolicy;
use crate::report::{ClusterReport, JobOutcome, RejectReason, TraceEvent, TraceKind};

/// Per-device mutable state during a simulation run.
#[derive(Debug, Clone, Default)]
struct DeviceState {
    reserved: u64,
    tenants: usize,
    /// Wall time (ns) with at least one tenant.
    busy_ns: f64,
    /// ∫ reserved(t) dt, in byte·ns — memory utilization numerator.
    reserved_integral: f64,
    peak_reserved: u64,
    peak_tenants: usize,
}

/// A gang currently executing.
#[derive(Debug, Clone)]
struct Running {
    job: usize,
    grant: Grant,
    /// Remaining work in ns of *solo* execution time.
    remaining_ns: f64,
}

/// Pre-resolved admission metric handles (see [`ClusterSim::enable_metrics`]).
struct ClusterMetrics {
    submitted: Counter,
    admitted: Counter,
    rejected: Counter,
    completed: Counter,
    reject_empty_gang: Counter,
    reject_fleet_too_small: Counter,
    reject_peak_exceeds: Counter,
    latency_ns: Histogram,
    queueing_ns: Histogram,
}

impl ClusterMetrics {
    fn new(reg: &MetricsRegistry) -> ClusterMetrics {
        ClusterMetrics {
            submitted: reg.counter("cluster.jobs.submitted"),
            admitted: reg.counter("cluster.jobs.admitted"),
            rejected: reg.counter("cluster.jobs.rejected"),
            completed: reg.counter("cluster.jobs.completed"),
            reject_empty_gang: reg.counter("cluster.rejects.empty_gang"),
            reject_fleet_too_small: reg.counter("cluster.rejects.fleet_too_small"),
            reject_peak_exceeds: reg.counter("cluster.rejects.peak_exceeds_capacity"),
            latency_ns: reg.histogram("cluster.latency_ns"),
            queueing_ns: reg.histogram("cluster.queueing_ns"),
        }
    }

    fn count_reject(&self, reason: &RejectReason) {
        self.rejected.inc();
        match reason {
            RejectReason::EmptyGang => self.reject_empty_gang.inc(),
            RejectReason::FleetTooSmall { .. } => self.reject_fleet_too_small.inc(),
            RejectReason::PeakExceedsCapacity { .. } => self.reject_peak_exceeds.inc(),
        }
    }
}

/// The cluster scheduler: a fleet, a placement policy, and a memoizing
/// admission profiler.
pub struct ClusterSim {
    pub fleet: Fleet,
    pub placement: PlacementPolicy,
    profiler: Profiler,
    sink: TraceSink,
    metrics: Option<ClusterMetrics>,
}

impl ClusterSim {
    pub fn new(fleet: Fleet, placement: PlacementPolicy) -> ClusterSim {
        assert!(!fleet.is_empty(), "cluster needs at least one device");
        ClusterSim {
            fleet,
            placement,
            profiler: Profiler::new(),
            sink: TraceSink::off(),
            metrics: None,
        }
    }

    /// Emit per-tenant scheduling tracks into `sink`: every job gets one
    /// track under the `"cluster"` process with an arrive instant, a
    /// `queued` span (arrival → admission), a `running` span (admission →
    /// completion), and a reject instant carrying the structured reason.
    pub fn enable_tracing(&mut self, sink: &TraceSink) {
        self.sink = if sink.is_enabled() {
            sink.clone()
        } else {
            TraceSink::off()
        };
    }

    /// Count admission outcomes and record latency/queueing histograms in
    /// `registry` (`cluster.jobs.*`, `cluster.rejects.*`,
    /// `cluster.{latency,queueing}_ns`).
    pub fn enable_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(ClusterMetrics::new(registry));
    }

    /// Distinct gang shapes whose step time was measured by driving the
    /// group engine (diagnostic; zero for solo-only streams).
    pub fn gangs_measured(&self) -> usize {
        self.profiler.gangs_measured()
    }

    /// The admission decision for `job` against the current reservations:
    /// walk the job's preset ladder; under each preset, collect the devices
    /// whose unreserved bytes admit the replica's predicted peak and let the
    /// placement policy pick a gang.
    ///
    /// The prediction budget is the device's free bytes rounded *down* to a
    /// 1/32-of-DRAM quantum: still sound (the predicted peak fits under the
    /// real free space), but the profiler's memo key space collapses from
    /// "every reservation state ever" to at most 32 budgets per device.
    fn try_admit(&self, devices: &[DeviceState], job: &JobSpec) -> Option<Grant> {
        if job.replicas == 0 {
            return None; // an empty gang is not a schedulable job
        }
        let indexed: Vec<(usize, &sn_sim::DeviceSpec)> =
            self.fleet.devices.iter().enumerate().collect();
        for preset in ladder_for(job) {
            use crate::placement::Candidate;
            // Candidate predictions are independent per device; cold ones
            // are swept concurrently over the rayon shim (deterministic:
            // results come back in device order, and the shared profiler
            // memo means each distinct (spec, budget) compiles at most
            // ~once). When every candidate is already memoized — the
            // steady state of the event loop, which re-evaluates queued
            // jobs at every event — the sweep is a handful of map hits and
            // runs inline: fanning worker threads out for that would cost
            // more than the lookups. The ladder itself stays serial — a
            // stronger preset is only consulted when the weaker one cannot
            // place the gang.
            let eval = |idx: usize, spec: &sn_sim::DeviceSpec| {
                let free = spec.dram_bytes.saturating_sub(devices[idx].reserved);
                let budget = crate::admission::quantized_budget(spec, free);
                if budget == 0 {
                    return None;
                }
                self.profiler
                    .profile_kind(job.workload, job.batch, preset, job.kind, spec, budget)
                    .map(|p| Candidate {
                        device: idx,
                        free,
                        reserved: devices[idx].reserved,
                        budget,
                        prediction: p,
                    })
            };
            let any_cold = rayon::current_num_threads() > 1
                && indexed.iter().any(|(idx, spec)| {
                    let free = spec.dram_bytes.saturating_sub(devices[*idx].reserved);
                    let budget = crate::admission::quantized_budget(spec, free);
                    budget > 0
                        && !self.profiler.is_cached(
                            job.workload,
                            job.batch,
                            preset,
                            job.kind,
                            spec,
                            budget,
                        )
                });
            let candidates: Vec<_> = if any_cold {
                rayon::par_map(&indexed, |(idx, spec)| eval(*idx, spec))
                    .into_iter()
                    .flatten()
                    .collect()
            } else {
                indexed
                    .iter()
                    .filter_map(|(idx, spec)| eval(*idx, spec))
                    .collect()
            };
            if let Some(placements) = self.placement.choose(candidates, job.replicas) {
                return Some(Grant { preset, placements });
            }
        }
        None
    }

    /// One gang iteration's solo duration. Gangs (`replicas > 1`) no longer
    /// multiply an analytic all-reduce term: the profiler compiles the
    /// job's [`sn_runtime::GroupPlan`] and *runs* the group interpreter on
    /// the pacing replica's capped device — the measured step already
    /// overlaps bucketed all-reduce with backward compute, and its
    /// per-replica peak is byte-identical to the reservation this grant
    /// holds. Solo training and inference replicas keep the plan's
    /// analytic estimate (no gradient exchange to measure). The closed
    /// form survives only as a belt-and-braces fallback for a gang whose
    /// group execution cannot run (which admission feasibility rules out).
    fn step_time(&self, job: &JobSpec, grant: &Grant) -> SimTime {
        match job.kind {
            crate::job::JobKind::Training if job.replicas > 1 => {
                let measured = grant.slowest().and_then(|pace| {
                    let spec = self.fleet.devices[pace.device]
                        .clone()
                        .with_dram(pace.budget);
                    self.profiler.gang_step_time(
                        job.workload,
                        job.batch,
                        grant.preset,
                        job.replicas,
                        &spec,
                        self.fleet.interconnect,
                    )
                });
                measured.unwrap_or_else(|| {
                    grant.replica_iter_time()
                        + ring_allreduce_time(
                            grant.weight_bytes(),
                            job.replicas,
                            self.fleet.interconnect,
                        )
                })
            }
            _ => grant.replica_iter_time(),
        }
    }

    /// Gang slowdown under processor sharing: the most-loaded of its devices
    /// sets the pace (each of `k` tenants gets `1/k` of a device).
    fn slowdown(devices: &[DeviceState], r: &Running) -> f64 {
        r.grant
            .placements
            .iter()
            .map(|p| devices[p.device].tenants)
            .max()
            .unwrap_or(1)
            .max(1) as f64
    }

    /// Run the job stream to completion and report. `arrivals` pairs each
    /// job with its (virtual) submission time; same-time jobs keep their
    /// input order in the queue.
    pub fn run(&mut self, arrivals: Vec<(SimTime, JobSpec)>) -> ClusterReport {
        let mut arrivals = arrivals;
        arrivals.sort_by_key(|(t, _)| *t); // stable: ties keep input order

        let n_jobs = arrivals.len();
        let mut outcomes: Vec<JobOutcome> = arrivals
            .iter()
            .map(|(t, j)| JobOutcome::pending(j, *t))
            .collect();
        let specs: Vec<JobSpec> = arrivals.iter().map(|(_, j)| j.clone()).collect();

        // One per-tenant track per job under the "cluster" process; empty
        // when untraced (and every sink call below is guarded).
        let tracing = self.sink.is_enabled();
        let tracks: Vec<TrackId> = if tracing {
            specs
                .iter()
                .map(|j| self.sink.track("cluster", &j.name))
                .collect()
        } else {
            Vec::new()
        };

        let mut devices = vec![DeviceState::default(); self.fleet.len()];
        let mut trace: Vec<TraceEvent> = Vec::new();
        let mut pending: Vec<usize> = Vec::new(); // FIFO queue of job indices
        let mut running: Vec<Running> = Vec::new();
        let mut next_arrival = 0usize;
        let mut now_ns = 0f64;
        let mut peak_concurrent = 0usize;

        loop {
            // Projected completion per running gang (f64-exact, so the same
            // expression below re-identifies the completing jobs).
            let projections: Vec<f64> = running
                .iter()
                .map(|r| now_ns + r.remaining_ns * Self::slowdown(&devices, r))
                .collect();
            let t_completion = projections.iter().copied().fold(f64::INFINITY, f64::min);
            // Keep the arrival timestamp in integer nanoseconds; its f64
            // projection is only used to order it against completion
            // projections (which are inherently f64 under processor sharing).
            let t_arrival_ns: Option<u64> = arrivals.get(next_arrival).map(|(t, _)| t.0);
            let t_arrival = t_arrival_ns.map(|t| t as f64).unwrap_or(f64::INFINITY);
            let t_next = t_completion.min(t_arrival);
            if t_next.is_infinite() {
                debug_assert!(pending.is_empty(), "queued jobs with no future events");
                break;
            }

            // Advance the clock: work progresses, accounting integrates.
            let dt = t_next - now_ns;
            if dt > 0.0 {
                for r in running.iter_mut() {
                    r.remaining_ns -= dt / Self::slowdown(&devices, r);
                }
                for d in devices.iter_mut() {
                    if d.tenants > 0 {
                        d.busy_ns += dt;
                    }
                    d.reserved_integral += d.reserved as f64 * dt;
                }
            }
            // Never move the clock backwards: an arrival timestamp past 2^53
            // ns can *round down* below a completion the clock already
            // advanced to.
            now_ns = now_ns.max(t_next);

            // Completions first (freeing capacity for same-instant arrivals),
            // lowest job index first. Partition rather than remove-by-index:
            // several gangs can finish at the same instant. `running` is
            // kept sorted by job index at insertion, so the partition is
            // already in completion-report order — no per-event sort.
            let mut done: Vec<Running> = Vec::new();
            let mut still_running = Vec::with_capacity(running.len());
            for (i, r) in running.into_iter().enumerate() {
                if projections[i] == t_next {
                    done.push(r);
                } else {
                    still_running.push(r);
                }
            }
            running = still_running;
            debug_assert!(done.windows(2).all(|w| w[0].job < w[1].job));
            for r in done {
                for p in &r.grant.placements {
                    devices[p.device].reserved -= p.prediction.peak_bytes;
                    devices[p.device].tenants -= 1;
                }
                outcomes[r.job].completion = Some(SimTime(now_ns.round() as u64));
                trace.push(TraceEvent {
                    t_ns: now_ns.round() as u64,
                    job: specs[r.job].name.clone(),
                    kind: TraceKind::Complete,
                });
                if tracing {
                    let started = outcomes[r.job].started.map(|s| s.0).unwrap_or(0);
                    let end = (now_ns.round() as u64).max(started);
                    let preset = outcomes[r.job].granted.map(|p| p.name()).unwrap_or("?");
                    self.sink.span_with(
                        tracks[r.job],
                        "running".to_string(),
                        "cluster",
                        started,
                        end,
                        vec![
                            ("preset", preset.into()),
                            ("replicas", specs[r.job].replicas.into()),
                        ],
                    );
                }
                if let Some(m) = &self.metrics {
                    m.completed.inc();
                    if let Some(l) = outcomes[r.job].latency() {
                        m.latency_ns.record(l.0);
                    }
                }
            }

            // Arrivals at this instant join the queue in input order. Match
            // on the *integer* nanosecond timestamp, not its f64 projection:
            // beyond 2^53 ns distinct arrival times collapse under `as f64`,
            // and a float-equality match would drop (or spuriously merge)
            // coincident arrivals. Only arrivals sharing the exact SimTime
            // of the one that triggered this event are coincident.
            if t_arrival <= t_next {
                let t_ns = t_arrival_ns.expect("finite arrival projection");
                while next_arrival < n_jobs && arrivals[next_arrival].0 .0 == t_ns {
                    pending.push(next_arrival);
                    trace.push(TraceEvent {
                        t_ns,
                        job: specs[next_arrival].name.clone(),
                        kind: TraceKind::Arrive,
                    });
                    if tracing {
                        self.sink.instant(
                            tracks[next_arrival],
                            "arrive",
                            "cluster",
                            t_ns,
                            Vec::new(),
                        );
                    }
                    if let Some(m) = &self.metrics {
                        m.submitted.inc();
                    }
                    next_arrival += 1;
                }
            }

            // Admission/placement pass: FIFO with backfill — a blocked job
            // stays queued while later, smaller jobs may slot in behind it.
            let mut still_pending = Vec::with_capacity(pending.len());
            for &job_idx in pending.iter() {
                let job = &specs[job_idx];
                match self.try_admit(&devices, job) {
                    Some(grant) => {
                        let step = self.step_time(job, &grant);
                        let work_ns = step.0 as f64 * job.iterations as f64;
                        for p in &grant.placements {
                            let d = p.device;
                            devices[d].reserved += p.prediction.peak_bytes;
                            devices[d].tenants += 1;
                            devices[d].peak_reserved =
                                devices[d].peak_reserved.max(devices[d].reserved);
                            devices[d].peak_tenants =
                                devices[d].peak_tenants.max(devices[d].tenants);
                            debug_assert!(
                                devices[d].reserved <= self.fleet.devices[d].dram_bytes,
                                "reservation exceeds device {d} DRAM"
                            );
                        }
                        let out = &mut outcomes[job_idx];
                        out.started = Some(SimTime(now_ns.round() as u64));
                        out.granted = Some(grant.preset);
                        out.devices = grant.placements.iter().map(|p| p.device).collect();
                        out.reservations = grant
                            .placements
                            .iter()
                            .map(|p| p.prediction.peak_bytes)
                            .collect();
                        trace.push(TraceEvent {
                            t_ns: now_ns.round() as u64,
                            job: job.name.clone(),
                            kind: TraceKind::Admit {
                                preset: grant.preset,
                                devices: out.devices.clone(),
                                reservations: out.reservations.clone(),
                            },
                        });
                        if tracing {
                            let arrival = outcomes[job_idx].arrival.0;
                            let t = (now_ns.round() as u64).max(arrival);
                            self.sink.span_with(
                                tracks[job_idx],
                                "queued".to_string(),
                                "cluster",
                                arrival,
                                t,
                                vec![("preset", grant.preset.name().into())],
                            );
                        }
                        if let Some(m) = &self.metrics {
                            m.admitted.inc();
                            if let Some(q) = outcomes[job_idx].queueing() {
                                m.queueing_ns.record(q.0);
                            }
                        }
                        // Insert in job-index order (admission may start a
                        // long-queued lower-index job after a later one),
                        // keeping `running` — and therefore every `done`
                        // partition — ordered by construction.
                        let pos = running.partition_point(|r| r.job < job_idx);
                        running.insert(
                            pos,
                            Running {
                                job: job_idx,
                                grant,
                                remaining_ns: work_ns,
                            },
                        );
                    }
                    None => {
                        if feasible_on_idle_fleet(&self.profiler, &self.fleet, job) {
                            still_pending.push(job_idx); // wait for capacity
                        } else {
                            let reason = if job.replicas == 0 {
                                RejectReason::EmptyGang
                            } else if job.replicas > self.fleet.len() {
                                RejectReason::FleetTooSmall {
                                    replicas: job.replicas,
                                    fleet: self.fleet.len(),
                                }
                            } else {
                                RejectReason::PeakExceedsCapacity {
                                    presets: ladder_for(job).iter().map(|p| p.name()).collect(),
                                }
                            };
                            outcomes[job_idx].rejected = Some(reason.clone());
                            if tracing {
                                self.sink.instant(
                                    tracks[job_idx],
                                    "reject",
                                    "cluster",
                                    now_ns.round() as u64,
                                    vec![("reason", reason.kind().into())],
                                );
                            }
                            if let Some(m) = &self.metrics {
                                m.count_reject(&reason);
                            }
                            trace.push(TraceEvent {
                                t_ns: now_ns.round() as u64,
                                job: job.name.clone(),
                                kind: TraceKind::Reject { reason },
                            });
                        }
                    }
                }
            }
            pending = still_pending;
            peak_concurrent = peak_concurrent.max(running.len());
        }

        let makespan = SimTime(now_ns.round() as u64);
        ClusterReport::assemble(
            &self.fleet,
            self.placement,
            outcomes,
            trace,
            makespan,
            devices
                .iter()
                .map(|d| {
                    (
                        d.busy_ns,
                        d.reserved_integral,
                        d.peak_reserved,
                        d.peak_tenants,
                    )
                })
                .collect(),
            peak_concurrent,
            self.profiler.simulated(),
        )
    }
}
