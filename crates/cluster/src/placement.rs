//! Placement: which devices a (gang of) replica(s) lands on.
//!
//! All policies only consider devices where the replica's predicted peak
//! fits the *unreserved* bytes — placement chooses among feasible options,
//! admission decides feasibility. Ties always break toward the lowest device
//! index, which keeps schedules deterministic.

use sn_runtime::PeakPrediction;

use crate::admission::Placement;

/// A feasible device for one replica: its index, unreserved and reserved
/// bytes (the sorting keys), the quantized prediction budget, and the
/// replica profile predicted under that budget.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub device: usize,
    pub free: u64,
    pub reserved: u64,
    pub budget: u64,
    pub prediction: PeakPrediction,
}

/// Device-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Lowest-indexed devices that fit. Fast, fragments memory.
    FirstFit,
    /// Devices where the replica leaves the least unreserved memory behind
    /// (classic best-fit): preserves large holes for large future jobs.
    BestFit,
    /// Memory-aware bin-packing: prefer the *most-reserved* device that
    /// still fits, consolidating tenants onto few devices so whole devices
    /// stay empty for big gangs.
    BinPack,
}

impl PlacementPolicy {
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::FirstFit,
        PlacementPolicy::BestFit,
        PlacementPolicy::BinPack,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::FirstFit => "first_fit",
            PlacementPolicy::BestFit => "best_fit",
            PlacementPolicy::BinPack => "bin_pack",
        }
    }

    /// Choose `replicas` distinct devices from the feasible [`Candidate`]s.
    /// Returns the chosen [`Placement`]s, or `None` if fewer than
    /// `replicas` devices are feasible (gangs are atomic: all or nothing).
    pub fn choose(self, mut candidates: Vec<Candidate>, replicas: usize) -> Option<Vec<Placement>> {
        if candidates.len() < replicas {
            return None;
        }
        match self {
            PlacementPolicy::FirstFit => candidates.sort_by_key(|c| c.device),
            PlacementPolicy::BestFit => {
                candidates.sort_by_key(|c| (c.free - c.prediction.peak_bytes, c.device))
            }
            PlacementPolicy::BinPack => {
                candidates.sort_by_key(|c| (std::cmp::Reverse(c.reserved), c.device))
            }
        }
        Some(
            candidates
                .into_iter()
                .take(replicas)
                .map(|c| Placement {
                    device: c.device,
                    budget: c.budget,
                    prediction: c.prediction,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_sim::SimTime;

    fn profile(peak: u64) -> PeakPrediction {
        PeakPrediction {
            peak_bytes: peak,
            iter_time: SimTime::from_us(100),
            weight_bytes: 1,
        }
    }

    fn candidates() -> Vec<Candidate> {
        [(0usize, 1000u64, 0u64), (1, 300, 700), (2, 500, 500)]
            .into_iter()
            .map(|(device, free, reserved)| Candidate {
                device,
                free,
                reserved,
                budget: free,
                prediction: profile(100),
            })
            .collect()
    }

    #[test]
    fn first_fit_takes_lowest_indices() {
        let got = PlacementPolicy::FirstFit.choose(candidates(), 2).unwrap();
        assert_eq!(got.iter().map(|p| p.device).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn best_fit_minimizes_leftover() {
        let got = PlacementPolicy::BestFit.choose(candidates(), 1).unwrap();
        assert_eq!(got[0].device, 1, "300-100 leaves the smallest hole");
    }

    #[test]
    fn bin_pack_prefers_fullest_device() {
        let got = PlacementPolicy::BinPack.choose(candidates(), 1).unwrap();
        assert_eq!(
            got[0].device, 1,
            "device 1 already holds 700 reserved bytes"
        );
    }

    #[test]
    fn gangs_are_all_or_nothing() {
        assert!(PlacementPolicy::FirstFit.choose(candidates(), 4).is_none());
        let got = PlacementPolicy::BinPack.choose(candidates(), 3).unwrap();
        let mut devs: Vec<_> = got.iter().map(|p| p.device).collect();
        devs.sort_unstable();
        assert_eq!(devs, vec![0, 1, 2]);
    }

    #[test]
    fn placements_carry_the_prediction_budget() {
        // The budget the profile was compiled under must survive placement:
        // gang step measurement re-caps the device with it.
        let got = PlacementPolicy::FirstFit.choose(candidates(), 3).unwrap();
        for p in &got {
            let want = candidates()
                .into_iter()
                .find(|c| c.device == p.device)
                .unwrap();
            assert_eq!(p.budget, want.budget);
        }
    }
}
