//! Placement: which devices a (gang of) replica(s) lands on.
//!
//! All policies only consider devices where the replica's predicted peak
//! fits the *unreserved* bytes — placement chooses among feasible options,
//! admission decides feasibility. Ties always break toward the lowest device
//! index, which keeps schedules deterministic.

use sn_runtime::PeakPrediction;

/// Device-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Lowest-indexed devices that fit. Fast, fragments memory.
    FirstFit,
    /// Devices where the replica leaves the least unreserved memory behind
    /// (classic best-fit): preserves large holes for large future jobs.
    BestFit,
    /// Memory-aware bin-packing: prefer the *most-reserved* device that
    /// still fits, consolidating tenants onto few devices so whole devices
    /// stay empty for big gangs.
    BinPack,
}

impl PlacementPolicy {
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::FirstFit,
        PlacementPolicy::BestFit,
        PlacementPolicy::BinPack,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::FirstFit => "first_fit",
            PlacementPolicy::BestFit => "best_fit",
            PlacementPolicy::BinPack => "bin_pack",
        }
    }

    /// Choose `replicas` distinct devices from `candidates` — the feasible
    /// `(device index, unreserved bytes, reserved bytes, replica profile)`
    /// tuples. Returns the chosen `(device, profile)` pairs, or `None` if
    /// fewer than `replicas` devices are feasible (gangs are atomic: all or
    /// nothing).
    pub fn choose(
        self,
        mut candidates: Vec<(usize, u64, u64, PeakPrediction)>,
        replicas: usize,
    ) -> Option<Vec<(usize, PeakPrediction)>> {
        if candidates.len() < replicas {
            return None;
        }
        match self {
            PlacementPolicy::FirstFit => candidates.sort_by_key(|(idx, ..)| *idx),
            PlacementPolicy::BestFit => {
                candidates.sort_by_key(|(idx, free, _, p)| (free - p.peak_bytes, *idx))
            }
            PlacementPolicy::BinPack => {
                candidates.sort_by_key(|(idx, _, reserved, _)| (std::cmp::Reverse(*reserved), *idx))
            }
        }
        Some(
            candidates
                .into_iter()
                .take(replicas)
                .map(|(idx, _, _, p)| (idx, p))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_sim::SimTime;

    fn profile(peak: u64) -> PeakPrediction {
        PeakPrediction {
            peak_bytes: peak,
            iter_time: SimTime::from_us(100),
            weight_bytes: 1,
        }
    }

    // (device, free, reserved, profile)
    fn candidates() -> Vec<(usize, u64, u64, PeakPrediction)> {
        vec![
            (0, 1000, 0, profile(100)),
            (1, 300, 700, profile(100)),
            (2, 500, 500, profile(100)),
        ]
    }

    #[test]
    fn first_fit_takes_lowest_indices() {
        let got = PlacementPolicy::FirstFit.choose(candidates(), 2).unwrap();
        assert_eq!(got.iter().map(|(d, _)| *d).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn best_fit_minimizes_leftover() {
        let got = PlacementPolicy::BestFit.choose(candidates(), 1).unwrap();
        assert_eq!(got[0].0, 1, "300-100 leaves the smallest hole");
    }

    #[test]
    fn bin_pack_prefers_fullest_device() {
        let got = PlacementPolicy::BinPack.choose(candidates(), 1).unwrap();
        assert_eq!(got[0].0, 1, "device 1 already holds 700 reserved bytes");
    }

    #[test]
    fn gangs_are_all_or_nothing() {
        assert!(PlacementPolicy::FirstFit.choose(candidates(), 4).is_none());
        let got = PlacementPolicy::BinPack.choose(candidates(), 3).unwrap();
        let mut devs: Vec<_> = got.iter().map(|(d, _)| *d).collect();
        devs.sort_unstable();
        assert_eq!(devs, vec![0, 1, 2]);
    }
}
