//! A fixed-size log-linear latency sketch for streaming runs.
//!
//! [`ClusterSim::run_stream`] must report p50/p99/p999 tails over millions
//! of completions without keeping a latency vector around — that vector is
//! exactly the O(n) state the streaming loop exists to avoid. This sketch
//! is the classic HDR-histogram shape: one bucket per (power of two ×
//! 1/16th sub-step) of nanoseconds, so any `u64` latency lands in one of
//! ~1k fixed counters with ≤ 1/16 relative rounding error, values below
//! 16 ns recorded exactly. Count and sum are exact; only the quantile's
//! positional value is rounded (to its bucket's upper bound, clamped to
//! the true maximum).
//!
//! [`ClusterSim::run_stream`]: crate::ClusterSim::run_stream

use sn_sim::SimTime;

/// Sub-bucket resolution: 16 linear steps per octave ⇒ ≤ 6.25% relative
/// rounding on quantile values.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS; // 16
/// Octaves above the linear range: values < 16 use buckets 0..16 exactly;
/// each of the 60 following octaves (2^4 ..= 2^63) gets 16 sub-buckets.
const BUCKETS: usize = SUB + 60 * SUB;

/// Fixed-memory quantile sketch over `u64` nanosecond samples.
pub struct LatencySketch {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencySketch {
    fn default() -> Self {
        LatencySketch::new()
    }
}

impl LatencySketch {
    pub fn new() -> LatencySketch {
        LatencySketch {
            counts: Box::new([0u64; BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index for `v`: exact below [`SUB`], then (octave, 1/16th)
    /// log-linear above it.
    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            v as usize
        } else {
            let h = 63 - v.leading_zeros(); // ≥ SUB_BITS
            let sub = ((v >> (h - SUB_BITS)) & (SUB as u64 - 1)) as usize;
            ((h - SUB_BITS + 1) as usize) * SUB + sub
        }
    }

    /// Largest value mapping into bucket `idx` (the quantile representative;
    /// an upper bound keeps tail estimates conservative).
    fn upper_bound(idx: usize) -> u64 {
        if idx < SUB {
            idx as u64
        } else {
            let h = (idx / SUB - 1) as u32 + SUB_BITS;
            let sub = (idx % SUB) as u64;
            // Lower bound is (16 + sub) << (h - 4); the bucket spans one
            // sub-step, so the upper bound is one step further, minus one.
            let step = 1u64 << (h - SUB_BITS);
            (SUB as u64 + sub + 1)
                .checked_mul(step)
                .map(|u| u - 1)
                .unwrap_or(u64::MAX)
        }
    }

    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of everything recorded (zero when empty).
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime((self.sum / self.count as u128) as u64)
        }
    }

    /// Nearest-rank quantile, `q ∈ (0, 1]`, same convention as
    /// [`crate::report`]'s exact percentile: the representative of the
    /// bucket holding the ⌈q·n⌉-th sample, clamped to the true maximum so
    /// `q = 1.0` never over-reports. Zero when empty.
    pub fn quantile(&self, q: f64) -> SimTime {
        assert!(q > 0.0 && q <= 1.0, "quantile q must be in (0, 1], got {q}");
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimTime(Self::upper_bound(idx).min(self.max));
            }
        }
        SimTime(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut s = LatencySketch::new();
        for v in 0..16u64 {
            s.record(v);
        }
        assert_eq!(s.count(), 16);
        assert_eq!(s.quantile(1.0 / 16.0), SimTime(0));
        assert_eq!(s.quantile(0.5), SimTime(7));
        assert_eq!(s.quantile(1.0), SimTime(15));
        assert_eq!(s.mean(), SimTime(7)); // 120/16 truncated
    }

    #[test]
    fn quantiles_are_within_one_sixteenth() {
        // A deterministic spread over six decades; the sketch quantile must
        // sit within 1/16 relative error of the exact nearest-rank value.
        let mut s = LatencySketch::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut x = 17u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1) % 1_000_000_000;
            s.record(x);
            exact.push(x);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1] as f64;
            let est = s.quantile(q).0 as f64;
            assert!(
                est >= truth && est <= truth * (1.0 + 1.0 / 16.0) + 1.0,
                "q={q}: est {est} vs exact {truth}"
            );
        }
    }

    #[test]
    fn max_clamps_the_top_quantile() {
        let mut s = LatencySketch::new();
        s.record(1_000_003);
        assert_eq!(s.quantile(1.0), SimTime(1_000_003));
        assert_eq!(s.quantile(0.5), SimTime(1_000_003));
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut s = LatencySketch::new();
        s.record(u64::MAX);
        s.record(0);
        assert_eq!(s.quantile(1.0), SimTime(u64::MAX));
        assert_eq!(s.quantile(0.25), SimTime(0));
    }

    #[test]
    #[should_panic(expected = "quantile q must be in (0, 1]")]
    fn rejects_q_zero() {
        LatencySketch::new().quantile(0.0);
    }
}
