//! Reports: per-job outcomes, fleet-wide serving metrics, the deterministic
//! schedule trace, and a dependency-free JSON rendering for `BENCH_*.json`
//! artifacts.

use sn_sim::SimTime;

use crate::fleet::Fleet;
use crate::job::{JobKind, JobSpec, PolicyPreset};
use crate::placement::PlacementPolicy;

/// Why admission permanently refused a job. Structured — so the metrics
/// registry counts rejections per kind instead of grepping free-form
/// strings — while [`RejectReason::render`] reproduces the historical
/// phrasing byte-for-byte (the schedule-fingerprint determinism tests diff
/// the rendered trace across runs and PRs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// A gang of zero replicas is not a schedulable job.
    EmptyGang,
    /// The gang wants more replicas than the fleet has devices.
    FleetTooSmall { replicas: usize, fleet: usize },
    /// No preset on the job's admission ladder fits even an idle fleet.
    PeakExceedsCapacity { presets: Vec<&'static str> },
}

impl RejectReason {
    /// Stable human phrasing, byte-identical to the pre-enum strings.
    pub fn render(&self) -> String {
        match self {
            RejectReason::EmptyGang => "gang of zero replicas is not schedulable".to_string(),
            RejectReason::FleetTooSmall { replicas, fleet } => {
                format!("wants {replicas} replicas but the fleet has {fleet} devices")
            }
            RejectReason::PeakExceedsCapacity { presets } => {
                format!("predicted peak exceeds fleet capacity under preset(s) {presets:?}")
            }
        }
    }

    /// Short machine label, used as the per-kind rejection counter suffix
    /// (`cluster.rejects.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            RejectReason::EmptyGang => "empty_gang",
            RejectReason::FleetTooSmall { .. } => "fleet_too_small",
            RejectReason::PeakExceedsCapacity { .. } => "peak_exceeds_capacity",
        }
    }
}

/// What happened at one scheduling instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    Arrive,
    Admit {
        preset: PolicyPreset,
        devices: Vec<usize>,
        reservations: Vec<u64>,
    },
    Reject {
        reason: RejectReason,
    },
    Complete,
    /// A [`crate::FaultPlan`] event applied to the fleet (the trace entry's
    /// `job` is `"fleet"`).
    Fault {
        desc: String,
    },
    /// A running gang lost a device; all its replicas released their
    /// reservations atomically.
    Interrupt {
        device: usize,
    },
    /// An interrupted job was re-placed and resumed from its checkpoint.
    Restart {
        preset: PolicyPreset,
        devices: Vec<usize>,
        reservations: Vec<u64>,
        from_iteration: u32,
    },
    /// A running tenant was live-downgraded to a memory-stronger preset to
    /// relieve pressure (elastic recovery).
    Downgrade {
        from: PolicyPreset,
        to: PolicyPreset,
        reservations: Vec<u64>,
    },
    /// The job failed permanently (no recovery, or retries exhausted).
    Fail {
        why: String,
    },
}

/// One schedule-trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub t_ns: u64,
    pub job: String,
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Stable one-line rendering; the concatenation over a run is the
    /// schedule fingerprint determinism tests compare byte-for-byte.
    pub fn render(&self) -> String {
        match &self.kind {
            TraceKind::Arrive => format!("[{:>12}ns] ARRIVE   {}", self.t_ns, self.job),
            TraceKind::Admit {
                preset,
                devices,
                reservations,
            } => format!(
                "[{:>12}ns] ADMIT    {} preset={} devices={:?} reserve={:?}",
                self.t_ns,
                self.job,
                preset.name(),
                devices,
                reservations
            ),
            TraceKind::Reject { reason } => {
                format!(
                    "[{:>12}ns] REJECT   {} ({})",
                    self.t_ns,
                    self.job,
                    reason.render()
                )
            }
            TraceKind::Complete => format!("[{:>12}ns] COMPLETE {}", self.t_ns, self.job),
            TraceKind::Fault { desc } => {
                format!("[{:>12}ns] FAULT    {} ({})", self.t_ns, self.job, desc)
            }
            TraceKind::Interrupt { device } => format!(
                "[{:>12}ns] INTERRUPT {} (device {} failed)",
                self.t_ns, self.job, device
            ),
            TraceKind::Restart {
                preset,
                devices,
                reservations,
                from_iteration,
            } => format!(
                "[{:>12}ns] RESTART  {} preset={} devices={:?} reserve={:?} from_iter={}",
                self.t_ns,
                self.job,
                preset.name(),
                devices,
                reservations,
                from_iteration
            ),
            TraceKind::Downgrade {
                from,
                to,
                reservations,
            } => format!(
                "[{:>12}ns] DOWNGRADE {} {}->{} reserve={:?}",
                self.t_ns,
                self.job,
                from.name(),
                to.name(),
                reservations
            ),
            TraceKind::Fail { why } => {
                format!("[{:>12}ns] FAIL     {} ({})", self.t_ns, self.job, why)
            }
        }
    }
}

/// Final state of one submitted job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub name: String,
    pub workload: String,
    pub batch: usize,
    pub replicas: usize,
    /// Training job or forward-only serving job?
    pub kind: JobKind,
    pub requested: PolicyPreset,
    /// Preset actually granted (may be memory-stronger than requested).
    pub granted: Option<PolicyPreset>,
    pub devices: Vec<usize>,
    /// Per-replica reserved bytes, parallel to `devices`.
    pub reservations: Vec<u64>,
    pub arrival: SimTime,
    pub started: Option<SimTime>,
    pub completion: Option<SimTime>,
    pub rejected: Option<RejectReason>,
    /// Iterations the job asked for (its useful work when it completes).
    pub iterations: u32,
    /// Times the job was re-placed after an interruption.
    pub restarts: u32,
    /// Iterations executed but lost to interruptions (redone after restart,
    /// or gone for good on permanent failure).
    pub wasted_iterations: u64,
    /// Permanent failure (fault-induced), with the reason. Disjoint from
    /// `rejected` — a failed job *ran* (or retried) and lost.
    pub failed: Option<String>,
    /// Every restart re-admitted at byte-identical per-replica plan peaks
    /// (vacuously true for never-restarted jobs) — the invariant the
    /// `faults` bench gates on.
    pub restart_peak_exact: bool,
}

impl JobOutcome {
    pub(crate) fn pending(job: &JobSpec, arrival: SimTime) -> JobOutcome {
        JobOutcome {
            name: job.name.clone(),
            workload: job.workload.label(),
            batch: job.batch,
            replicas: job.replicas,
            kind: job.kind,
            requested: job.preset,
            granted: None,
            devices: Vec::new(),
            reservations: Vec::new(),
            arrival,
            started: None,
            completion: None,
            rejected: None,
            iterations: job.iterations,
            restarts: 0,
            wasted_iterations: 0,
            failed: None,
            restart_peak_exact: true,
        }
    }

    /// Admission wait: start − arrival.
    pub fn queueing(&self) -> Option<SimTime> {
        self.started.map(|s| s.saturating_sub(self.arrival))
    }

    /// End-to-end latency: completion − arrival.
    pub fn latency(&self) -> Option<SimTime> {
        self.completion.map(|c| c.saturating_sub(self.arrival))
    }
}

/// Fleet-wide results of one simulation run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    pub placement: PlacementPolicy,
    pub fleet_devices: usize,
    pub fleet_dram_bytes: u64,
    pub jobs: Vec<JobOutcome>,
    pub trace: Vec<TraceEvent>,
    pub makespan: SimTime,
    pub completed: usize,
    pub rejected: usize,
    /// Jobs that failed permanently under faults (no recovery, or retries
    /// exhausted). Zero on fault-free runs.
    pub failed: usize,
    /// Jobs still waiting for capacity when the event stream ran dry (a
    /// terminal state only under faults, e.g. a never-released pressure
    /// spike). Zero on fault-free runs.
    pub still_queued: usize,
    /// Total checkpoint restarts across all jobs.
    pub restarts: u64,
    /// Iterations that landed in completed jobs — the goodput numerator.
    pub useful_iterations: u64,
    /// Iterations executed but lost to interruptions.
    pub wasted_iterations: u64,
    /// Useful iterations per virtual second (0 when the makespan is zero —
    /// never inf/NaN).
    pub goodput_iters_per_sec: f64,
    /// All executed iterations (useful + wasted) per virtual second, same
    /// zero-duration guard.
    pub raw_iters_per_sec: f64,
    /// Completed jobs per virtual second over the makespan.
    pub jobs_per_sec: f64,
    pub p50_latency: SimTime,
    pub p99_latency: SimTime,
    pub p999_latency: SimTime,
    pub mean_queueing: SimTime,
    /// Fraction of device-time with at least one tenant.
    pub compute_utilization: f64,
    /// Fraction of fleet DRAM-time held by reservations.
    pub memory_utilization: f64,
    /// Most gangs running at once, cluster-wide.
    pub peak_concurrent_jobs: usize,
    /// Per-device high-water reserved bytes.
    pub peak_reserved: Vec<u64>,
    /// Per-device high-water tenant count.
    pub peak_tenants: Vec<usize>,
    /// Per-device wall time (ns) with at least one tenant — the raw busy
    /// integral the utilization above is derived from. Exposed so the
    /// differential suite can pin the indexed event loop to the reference
    /// loop *bit-for-bit*, not merely to six printed decimals.
    pub busy_ns: Vec<f64>,
    /// Per-device ∫ reserved(t) dt in byte·ns (memory-utilization
    /// numerator), same bit-exactness contract as `busy_ns`.
    pub reserved_integral: Vec<f64>,
    /// Distinct admission predictions the profiler simulated.
    pub predictions_simulated: usize,
}

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// element such that at least `q` of the samples are ≤ it.
///
/// `q` must lie in `(0, 1]`. The old implementation clamped the rank into
/// `1..=len`, which silently made `q = 0.0` (rank 0 — not a percentile any
/// convention defines) return the first element instead of being rejected;
/// the clamp's lower arm existed only to mask that invalid input. Valid
/// `q > 0.0` always yields `ceil(q·n) ≥ 1` on its own, so only the upper
/// guard (against float overshoot at `q = 1.0`) remains.
pub(crate) fn percentile(sorted: &[SimTime], q: f64) -> SimTime {
    assert!(
        q > 0.0 && q <= 1.0,
        "percentile q must be in (0, 1], got {q}"
    );
    if sorted.is_empty() {
        return SimTime::ZERO;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// `count` per virtual second over `makespan`, with a zero-duration guard:
/// a run with no elapsed time (e.g. an empty stream) reports 0.0, never
/// inf or NaN. All goodput/raw-throughput rates go through this.
pub(crate) fn safe_rate(count: u64, makespan: SimTime) -> f64 {
    if makespan.0 == 0 {
        0.0
    } else {
        count as f64 / makespan.as_secs_f64()
    }
}

impl ClusterReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        fleet: &Fleet,
        placement: PlacementPolicy,
        jobs: Vec<JobOutcome>,
        trace: Vec<TraceEvent>,
        makespan: SimTime,
        device_stats: Vec<(f64, f64, u64, usize)>, // (busy_ns, reserved_integral, peak_reserved, peak_tenants)
        peak_concurrent_jobs: usize,
        predictions_simulated: usize,
    ) -> ClusterReport {
        let completed = jobs.iter().filter(|j| j.completion.is_some()).count();
        let rejected = jobs.iter().filter(|j| j.rejected.is_some()).count();
        let failed = jobs.iter().filter(|j| j.failed.is_some()).count();
        let still_queued = jobs
            .iter()
            .filter(|j| j.completion.is_none() && j.rejected.is_none() && j.failed.is_none())
            .count();
        let restarts = jobs.iter().map(|j| u64::from(j.restarts)).sum::<u64>();
        let useful_iterations = jobs
            .iter()
            .filter(|j| j.completion.is_some())
            .map(|j| u64::from(j.iterations))
            .sum::<u64>();
        let wasted_iterations = jobs.iter().map(|j| j.wasted_iterations).sum::<u64>();
        let mut latencies: Vec<SimTime> = jobs.iter().filter_map(|j| j.latency()).collect();
        latencies.sort_unstable();
        let queueing: Vec<SimTime> = jobs.iter().filter_map(|j| j.queueing()).collect();
        let mean_queueing = if queueing.is_empty() {
            SimTime::ZERO
        } else {
            SimTime(queueing.iter().map(|t| t.0).sum::<u64>() / queueing.len() as u64)
        };
        let span_ns = makespan.0.max(1) as f64;
        let compute_utilization = device_stats.iter().map(|(b, ..)| b).sum::<f64>()
            / (span_ns * fleet.len().max(1) as f64);
        let memory_utilization = device_stats.iter().map(|(_, m, ..)| m).sum::<f64>()
            / (span_ns * fleet.total_dram().max(1) as f64);
        ClusterReport {
            placement,
            fleet_devices: fleet.len(),
            fleet_dram_bytes: fleet.total_dram(),
            jobs_per_sec: completed as f64 / makespan.as_secs_f64().max(f64::MIN_POSITIVE),
            p50_latency: percentile(&latencies, 0.50),
            p99_latency: percentile(&latencies, 0.99),
            p999_latency: percentile(&latencies, 0.999),
            mean_queueing,
            compute_utilization,
            memory_utilization,
            peak_concurrent_jobs,
            peak_reserved: device_stats.iter().map(|(_, _, p, _)| *p).collect(),
            peak_tenants: device_stats.iter().map(|(_, _, _, t)| *t).collect(),
            busy_ns: device_stats.iter().map(|(b, ..)| *b).collect(),
            reserved_integral: device_stats.iter().map(|(_, m, ..)| *m).collect(),
            predictions_simulated,
            failed,
            still_queued,
            restarts,
            useful_iterations,
            wasted_iterations,
            goodput_iters_per_sec: safe_rate(useful_iterations, makespan),
            raw_iters_per_sec: safe_rate(useful_iterations + wasted_iterations, makespan),
            jobs,
            trace,
            makespan,
            completed,
            rejected,
        }
    }

    /// Job conservation: every submitted job ends in exactly one terminal
    /// state. The first hard gate of the `faults` bench.
    pub fn conservation_holds(&self) -> bool {
        self.jobs.len() == self.completed + self.rejected + self.failed + self.still_queued
    }

    /// Bit-exact equality against another report: every integer field, the
    /// full schedule trace/JSON renderings, and — the strict part — the
    /// per-device f64 busy/reserved integrals and every derived ratio
    /// compared by *bit pattern* (`to_bits`), not tolerance. This is the
    /// contract the differential suite pins the indexed event loop to the
    /// retained reference loop with: both must perform the same
    /// floating-point operations in the same order, or they are not the
    /// same simulator.
    pub fn bit_identical(&self, other: &ClusterReport) -> bool {
        let f64_bits_eq = |a: &[f64], b: &[f64]| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        };
        self.schedule_fingerprint() == other.schedule_fingerprint()
            && self.to_json() == other.to_json()
            && self.makespan == other.makespan
            && self.completed == other.completed
            && self.rejected == other.rejected
            && self.failed == other.failed
            && self.still_queued == other.still_queued
            && self.restarts == other.restarts
            && self.useful_iterations == other.useful_iterations
            && self.wasted_iterations == other.wasted_iterations
            && self.goodput_iters_per_sec.to_bits() == other.goodput_iters_per_sec.to_bits()
            && self.raw_iters_per_sec.to_bits() == other.raw_iters_per_sec.to_bits()
            && self.peak_concurrent_jobs == other.peak_concurrent_jobs
            && self.peak_reserved == other.peak_reserved
            && self.peak_tenants == other.peak_tenants
            && f64_bits_eq(&self.busy_ns, &other.busy_ns)
            && f64_bits_eq(&self.reserved_integral, &other.reserved_integral)
            && self.jobs_per_sec.to_bits() == other.jobs_per_sec.to_bits()
            && self.compute_utilization.to_bits() == other.compute_utilization.to_bits()
            && self.memory_utilization.to_bits() == other.memory_utilization.to_bits()
            && self.p50_latency == other.p50_latency
            && self.p99_latency == other.p99_latency
            && self.p999_latency == other.p999_latency
            && self.mean_queueing == other.mean_queueing
    }

    /// The whole schedule as one string — byte-identical across runs of the
    /// same job stream (the determinism contract).
    pub fn schedule_fingerprint(&self) -> String {
        let mut out = String::new();
        for e in &self.trace {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Human-readable summary.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "cluster[{} devices, {:.1} GB DRAM, placement={}]\n",
            self.fleet_devices,
            self.fleet_dram_bytes as f64 / (1u64 << 30) as f64,
            self.placement.name()
        ));
        s.push_str(&format!(
            "  jobs: {} submitted / {} completed / {} rejected\n",
            self.jobs.len(),
            self.completed,
            self.rejected
        ));
        if self.failed + self.still_queued > 0 || self.restarts + self.wasted_iterations > 0 {
            s.push_str(&format!(
                "  faults: {} failed / {} still queued / {} restarts   goodput {:.1} iters/s (raw {:.1}, {} wasted)\n",
                self.failed,
                self.still_queued,
                self.restarts,
                self.goodput_iters_per_sec,
                self.raw_iters_per_sec,
                self.wasted_iterations
            ));
        }
        s.push_str(&format!(
            "  makespan {:.3} s   throughput {:.2} jobs/s   peak concurrency {}\n",
            self.makespan.as_secs_f64(),
            self.jobs_per_sec,
            self.peak_concurrent_jobs
        ));
        s.push_str(&format!(
            "  latency p50 {:.3} s  p99 {:.3} s  p999 {:.3} s   mean queueing {:.3} s\n",
            self.p50_latency.as_secs_f64(),
            self.p99_latency.as_secs_f64(),
            self.p999_latency.as_secs_f64(),
            self.mean_queueing.as_secs_f64()
        ));
        s.push_str(&format!(
            "  utilization: compute {:.1}%  memory {:.1}%   ({} admission predictions)\n",
            100.0 * self.compute_utilization,
            100.0 * self.memory_utilization,
            self.predictions_simulated
        ));
        s
    }

    /// Machine-readable JSON (hand-rolled: the workspace builds offline,
    /// without serde_json). Shape is stable for downstream trend tracking.
    pub fn to_json(&self) -> String {
        let mut jobs = String::new();
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                jobs.push(',');
            }
            jobs.push_str(&format!(
                "{{\"name\":{},\"workload\":{},\"batch\":{},\"replicas\":{},\"kind\":{},\
                 \"requested\":{},\"granted\":{},\"devices\":{:?},\
                 \"arrival_ns\":{},\"queueing_ns\":{},\"latency_ns\":{},\"rejected\":{},\
                 \"iterations\":{},\"restarts\":{},\"wasted_iterations\":{},\"failed\":{}}}",
                json_str(&j.name),
                json_str(&j.workload),
                j.batch,
                j.replicas,
                json_str(j.kind.name()),
                json_str(j.requested.name()),
                j.granted
                    .map(|p| json_str(p.name()))
                    .unwrap_or("null".into()),
                j.devices,
                j.arrival.0,
                j.queueing()
                    .map(|t| t.0.to_string())
                    .unwrap_or("null".into()),
                j.latency()
                    .map(|t| t.0.to_string())
                    .unwrap_or("null".into()),
                j.rejected
                    .as_ref()
                    .map(|r| json_str(&r.render()))
                    .unwrap_or("null".into()),
                j.iterations,
                j.restarts,
                j.wasted_iterations,
                j.failed
                    .as_ref()
                    .map(|w| json_str(w))
                    .unwrap_or("null".into()),
            ));
        }
        format!(
            "{{\"placement\":{},\"devices\":{},\"fleet_dram_bytes\":{},\
             \"submitted\":{},\"completed\":{},\"rejected\":{},\
             \"failed\":{},\"still_queued\":{},\"restarts\":{},\
             \"useful_iterations\":{},\"wasted_iterations\":{},\
             \"goodput_iters_per_sec\":{:.6},\"raw_iters_per_sec\":{:.6},\
             \"makespan_ns\":{},\"jobs_per_sec\":{:.6},\
             \"p50_latency_ns\":{},\"p99_latency_ns\":{},\"p999_latency_ns\":{},\
             \"mean_queueing_ns\":{},\
             \"compute_utilization\":{:.6},\"memory_utilization\":{:.6},\
             \"peak_concurrent_jobs\":{},\"predictions_simulated\":{},\
             \"jobs\":[{}]}}",
            json_str(self.placement.name()),
            self.fleet_devices,
            self.fleet_dram_bytes,
            self.jobs.len(),
            self.completed,
            self.rejected,
            self.failed,
            self.still_queued,
            self.restarts,
            self.useful_iterations,
            self.wasted_iterations,
            self.goodput_iters_per_sec,
            self.raw_iters_per_sec,
            self.makespan.0,
            self.jobs_per_sec,
            self.p50_latency.0,
            self.p99_latency.0,
            self.p999_latency.0,
            self.mean_queueing.0,
            self.compute_utilization,
            self.memory_utilization,
            self.peak_concurrent_jobs,
            self.predictions_simulated,
            jobs
        )
    }
}

/// Aggregate results of one *streaming* run ([`ClusterSim::run_stream`]).
///
/// Unlike [`ClusterReport`] this carries no per-job outcomes and no schedule
/// trace — a million-event stream must not materialize a million
/// `JobOutcome`s. What survives is the serving summary: counts, tail
/// latencies over completed jobs, device utilization, and the event count
/// the `service` bench gates throughput on.
///
/// [`ClusterSim::run_stream`]: crate::ClusterSim::run_stream
#[derive(Debug, Clone)]
pub struct ServiceReport {
    pub placement: PlacementPolicy,
    pub fleet_devices: usize,
    /// Jobs pulled from the arrival stream.
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
    /// Jobs that failed permanently under faults. Zero on fault-free runs.
    pub failed: u64,
    /// Jobs still waiting for capacity at stream exhaustion (terminal only
    /// under faults). Zero on fault-free runs.
    pub still_queued: u64,
    /// Gang interruptions observed (a restarted job may contribute many).
    pub interrupted: u64,
    /// Checkpoint restarts performed.
    pub restarts: u64,
    /// Iterations that landed in completed jobs — the goodput numerator.
    pub useful_iterations: u64,
    /// Iterations executed but lost to interruptions.
    pub wasted_iterations: u64,
    /// Useful iterations per virtual second; 0 on a zero makespan (never
    /// inf/NaN — see `safe_rate`).
    pub goodput_iters_per_sec: f64,
    /// All executed iterations (useful + wasted) per virtual second, same
    /// zero-duration guard.
    pub raw_iters_per_sec: f64,
    /// Scheduling events processed (arrivals + completions + admissions) —
    /// the numerator of the events/sec throughput gate.
    pub events: u64,
    pub makespan: SimTime,
    pub jobs_per_sec: f64,
    pub p50_latency: SimTime,
    pub p99_latency: SimTime,
    pub p999_latency: SimTime,
    pub mean_queueing: SimTime,
    pub compute_utilization: f64,
    pub memory_utilization: f64,
    pub peak_concurrent_jobs: usize,
    /// High-water live-job slab slots — the constant-memory evidence: for a
    /// 10^6-job stream this stays near peak concurrency, not near 10^6.
    pub peak_live_jobs: usize,
}

impl ServiceReport {
    /// Job conservation for streaming runs: every pulled job ends in exactly
    /// one terminal state.
    pub fn conservation_holds(&self) -> bool {
        self.submitted == self.completed + self.rejected + self.failed + self.still_queued
    }

    /// Human-readable summary.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "service[{} devices, placement={}]\n",
            self.fleet_devices,
            self.placement.name()
        ));
        s.push_str(&format!(
            "  jobs: {} submitted / {} completed / {} rejected   events {}\n",
            self.submitted, self.completed, self.rejected, self.events
        ));
        if self.failed + self.still_queued + self.interrupted + self.restarts > 0 {
            s.push_str(&format!(
                "  faults: {} failed / {} still queued / {} interrupted / {} restarts   goodput {:.1} iters/s (raw {:.1}, {} wasted)\n",
                self.failed,
                self.still_queued,
                self.interrupted,
                self.restarts,
                self.goodput_iters_per_sec,
                self.raw_iters_per_sec,
                self.wasted_iterations
            ));
        }
        s.push_str(&format!(
            "  makespan {:.3} s   throughput {:.2} jobs/s   peak concurrency {}   peak live slots {}\n",
            self.makespan.as_secs_f64(),
            self.jobs_per_sec,
            self.peak_concurrent_jobs,
            self.peak_live_jobs
        ));
        s.push_str(&format!(
            "  latency p50 {:.3} s  p99 {:.3} s  p999 {:.3} s   mean queueing {:.3} s\n",
            self.p50_latency.as_secs_f64(),
            self.p99_latency.as_secs_f64(),
            self.p999_latency.as_secs_f64(),
            self.mean_queueing.as_secs_f64()
        ));
        s.push_str(&format!(
            "  utilization: compute {:.1}%  memory {:.1}%\n",
            100.0 * self.compute_utilization,
            100.0 * self.memory_utilization
        ));
        s
    }

    /// Machine-readable JSON, same hand-rolled convention as
    /// [`ClusterReport::to_json`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"placement\":{},\"devices\":{},\
             \"submitted\":{},\"completed\":{},\"rejected\":{},\
             \"failed\":{},\"still_queued\":{},\"interrupted\":{},\"restarts\":{},\
             \"useful_iterations\":{},\"wasted_iterations\":{},\
             \"goodput_iters_per_sec\":{:.6},\"raw_iters_per_sec\":{:.6},\
             \"events\":{},\
             \"makespan_ns\":{},\"jobs_per_sec\":{:.6},\
             \"p50_latency_ns\":{},\"p99_latency_ns\":{},\"p999_latency_ns\":{},\
             \"mean_queueing_ns\":{},\
             \"compute_utilization\":{:.6},\"memory_utilization\":{:.6},\
             \"peak_concurrent_jobs\":{},\"peak_live_jobs\":{}}}",
            json_str(self.placement.name()),
            self.fleet_devices,
            self.submitted,
            self.completed,
            self.rejected,
            self.failed,
            self.still_queued,
            self.interrupted,
            self.restarts,
            self.useful_iterations,
            self.wasted_iterations,
            self.goodput_iters_per_sec,
            self.raw_iters_per_sec,
            self.events,
            self.makespan.0,
            self.jobs_per_sec,
            self.p50_latency.0,
            self.p99_latency.0,
            self.p999_latency.0,
            self.mean_queueing.0,
            self.compute_utilization,
            self.memory_utilization,
            self.peak_concurrent_jobs,
            self.peak_live_jobs
        )
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_conventions() {
        let v: Vec<SimTime> = (1..=100).map(SimTime::from_us).collect();
        assert_eq!(percentile(&v, 0.50), SimTime::from_us(50));
        assert_eq!(percentile(&v, 0.99), SimTime::from_us(99));
        assert_eq!(percentile(&v, 1.0), SimTime::from_us(100));
        assert_eq!(percentile(&[], 0.5), SimTime::ZERO);
        assert_eq!(
            percentile(&[SimTime::from_us(7)], 0.99),
            SimTime::from_us(7)
        );
    }

    #[test]
    fn percentile_small_n_nearest_rank() {
        // n = 1: every valid q lands on the only sample.
        let one = [SimTime::from_us(7)];
        assert_eq!(percentile(&one, 0.001), SimTime::from_us(7));
        assert_eq!(percentile(&one, 0.50), SimTime::from_us(7));
        assert_eq!(percentile(&one, 1.0), SimTime::from_us(7));

        // n = 2: nearest-rank splits exactly at q = 0.5 (ceil(0.5·2) = 1).
        let two = [SimTime::from_us(1), SimTime::from_us(2)];
        assert_eq!(percentile(&two, 0.25), SimTime::from_us(1));
        assert_eq!(percentile(&two, 0.50), SimTime::from_us(1));
        assert_eq!(percentile(&two, 0.51), SimTime::from_us(2));
        assert_eq!(percentile(&two, 0.999), SimTime::from_us(2));
        assert_eq!(percentile(&two, 1.0), SimTime::from_us(2));

        // n = 100: p999 must round *up* to the max, never down past it.
        let hundred: Vec<SimTime> = (1..=100).map(SimTime::from_us).collect();
        assert_eq!(percentile(&hundred, 0.001), SimTime::from_us(1));
        assert_eq!(percentile(&hundred, 0.999), SimTime::from_us(100));
    }

    #[test]
    #[should_panic(expected = "percentile q must be in (0, 1]")]
    fn percentile_rejects_q_zero() {
        // The old clamp silently mapped rank 0 to the first element; q = 0
        // is not a percentile under any convention and must panic.
        let v = [SimTime::from_us(1)];
        percentile(&v, 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile q must be in (0, 1]")]
    fn percentile_rejects_q_above_one() {
        let v = [SimTime::from_us(1)];
        percentile(&v, 1.5);
    }

    #[test]
    fn safe_rate_guards_zero_durations() {
        // The satellite contract: goodput/raw rates are never inf or NaN,
        // even for zero-duration runs (empty stream) or zero counts.
        assert_eq!(safe_rate(0, SimTime::ZERO), 0.0);
        assert_eq!(safe_rate(1_000_000, SimTime::ZERO), 0.0);
        let r = safe_rate(10, SimTime::from_ms(1));
        assert!(r.is_finite() && !r.is_nan());
        assert_eq!(r, 10_000.0, "10 iters over 1 ms is 10k/s");
        assert_eq!(safe_rate(0, SimTime::from_ms(1)), 0.0);
        // u64::MAX counts over 1 ns stay finite (f64 range is ample).
        assert!(safe_rate(u64::MAX, SimTime(1)).is_finite());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\ny\"");
    }
}
