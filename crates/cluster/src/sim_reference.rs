//! The retained reference event loop — the PR-4 playbook applied to the
//! scheduler itself.
//!
//! [`ClusterSim::run`] is now an indexed discrete-event core (binary-heap
//! event queue, slab job state, per-device tenant lists, lazy re-anchoring).
//! This module keeps the loop it replaced: O(running) projection recompute
//! and a full device scan on **every** event, plain vectors, the `JobSpec`
//! clone into a parallel `specs` vec — the lot. The differential suite pins
//! the indexed loop to this one with [`ClusterReport::bit_identical`]:
//! outcomes, trace events, and the per-device f64 integrals must match *by
//! bit pattern*, which is only possible if both loops perform the same
//! floating-point operations in the same order.
//!
//! One surgical change was made while retaining it, and it is the change
//! that makes a lazy loop well-defined at all: **anchor-based progress**.
//! The old loop decremented every running gang's `remaining_ns` by `dt/s`
//! on every event; float subtraction is not associative, so no loop that
//! touches fewer gangs per event can reproduce those bits. Instead each
//! gang carries `(anchor_ns, remaining_ns, slowdown)` and folds progress
//! into `remaining_ns` **only when its slowdown actually changes** — the
//! top-of-loop re-anchor pass below. Its projected completion is always
//! `anchor + remaining · slowdown`, whether the gang was touched once or a
//! thousand events ago. The indexed loop performs exactly these operations
//! (triggered through per-device tenant lists instead of a full scan), so
//! the two loops are bit-comparable while doing asymptotically different
//! amounts of work. Mathematically the schedule is unchanged — the same
//! processor-sharing integral, evaluated with fewer roundings.
//!
//! [`ClusterReport::bit_identical`]: crate::report::ClusterReport::bit_identical

use sn_sim::SimTime;
use sn_telemetry::TrackId;

use crate::admission::{feasible_on_idle_fleet, ladder_for, Grant};
use crate::job::JobSpec;
use crate::report::{ClusterReport, JobOutcome, RejectReason, TraceEvent, TraceKind};
use crate::sim::{gang_slowdown, ClusterSim, DeviceState};

/// A gang currently executing, with anchor-based progress accounting.
#[derive(Debug, Clone)]
struct Running {
    job: usize,
    grant: Grant,
    /// Remaining work in ns of *solo* execution time, valid as of
    /// `anchor_ns`.
    remaining_ns: f64,
    /// Virtual time at which `remaining_ns` was last made current.
    anchor_ns: f64,
    /// The processor-sharing slowdown in force since `anchor_ns`.
    slowdown: f64,
}

impl ClusterSim {
    /// Run the job stream to completion with the retained reference loop.
    /// Semantics (and, by the differential suite, bits) are identical to
    /// [`ClusterSim::run`]; cost per event is O(running + pending + devices)
    /// regardless of what the event touches.
    pub fn run_reference(&mut self, arrivals: Vec<(SimTime, JobSpec)>) -> ClusterReport {
        let mut arrivals = arrivals;
        arrivals.sort_by_key(|(t, _)| *t); // stable: ties keep input order

        let n_jobs = arrivals.len();
        let mut outcomes: Vec<JobOutcome> = arrivals
            .iter()
            .map(|(t, j)| JobOutcome::pending(j, *t))
            .collect();
        let specs: Vec<JobSpec> = arrivals.iter().map(|(_, j)| j.clone()).collect();

        // One per-tenant track per job under the "cluster" process; empty
        // when untraced (and every sink call below is guarded).
        let tracing = self.sink.is_enabled();
        let tracks: Vec<TrackId> = if tracing {
            specs
                .iter()
                .map(|j| self.sink.track("cluster", &j.name))
                .collect()
        } else {
            Vec::new()
        };

        let mut devices = vec![DeviceState::default(); self.fleet.len()];
        let mut trace: Vec<TraceEvent> = Vec::new();
        let mut pending: Vec<usize> = Vec::new(); // FIFO queue of job indices
        let mut running: Vec<Running> = Vec::new();
        let mut next_arrival = 0usize;
        let mut now_ns = 0f64;
        let mut peak_concurrent = 0usize;

        loop {
            // Re-anchor pass: fold progress into `remaining_ns` for every
            // gang whose slowdown changed at the previous event (tenant
            // counts moved on one of its devices). Gangs whose slowdown is
            // unchanged are *not touched* — their remaining work stays
            // bit-identical no matter how many events pass.
            for r in running.iter_mut() {
                let s = gang_slowdown(&devices, &r.grant);
                if s != r.slowdown {
                    r.remaining_ns -= (now_ns - r.anchor_ns) / r.slowdown;
                    r.anchor_ns = now_ns;
                    r.slowdown = s;
                }
            }

            // Projected completion per running gang (f64-exact, so the same
            // expression below re-identifies the completing jobs).
            let projections: Vec<f64> = running
                .iter()
                .map(|r| r.anchor_ns + r.remaining_ns * r.slowdown)
                .collect();
            let t_completion = projections.iter().copied().fold(f64::INFINITY, f64::min);
            // Keep the arrival timestamp in integer nanoseconds; its f64
            // projection is only used to order it against completion
            // projections (which are inherently f64 under processor sharing).
            let t_arrival_ns: Option<u64> = arrivals.get(next_arrival).map(|(t, _)| t.0);
            let t_arrival = t_arrival_ns.map(|t| t as f64).unwrap_or(f64::INFINITY);
            let t_next = t_completion.min(t_arrival);
            if t_next.is_infinite() {
                debug_assert!(pending.is_empty(), "queued jobs with no future events");
                break;
            }

            // Advance the clock: device accounting integrates (per-gang
            // progress is implicit in the anchors).
            let dt = t_next - now_ns;
            if dt > 0.0 {
                for d in devices.iter_mut() {
                    if d.tenants > 0 {
                        d.busy_ns += dt;
                    }
                    d.reserved_integral += d.reserved as f64 * dt;
                }
            }
            // Never move the clock backwards: an arrival timestamp past 2^53
            // ns can *round down* below a completion the clock already
            // advanced to.
            now_ns = now_ns.max(t_next);

            // Completions first (freeing capacity for same-instant arrivals),
            // lowest job index first. Partition rather than remove-by-index:
            // several gangs can finish at the same instant. `running` is
            // kept sorted by job index at insertion, so the partition is
            // already in completion-report order — no per-event sort.
            let mut done: Vec<Running> = Vec::new();
            let mut still_running = Vec::with_capacity(running.len());
            for (i, r) in running.into_iter().enumerate() {
                if projections[i] == t_next {
                    done.push(r);
                } else {
                    still_running.push(r);
                }
            }
            running = still_running;
            debug_assert!(done.windows(2).all(|w| w[0].job < w[1].job));
            for r in done {
                for p in &r.grant.placements {
                    devices[p.device].reserved -= p.prediction.peak_bytes;
                    devices[p.device].tenants -= 1;
                }
                outcomes[r.job].completion = Some(SimTime(now_ns.round() as u64));
                trace.push(TraceEvent {
                    t_ns: now_ns.round() as u64,
                    job: specs[r.job].name.clone(),
                    kind: TraceKind::Complete,
                });
                if tracing {
                    let started = outcomes[r.job].started.map(|s| s.0).unwrap_or(0);
                    let end = (now_ns.round() as u64).max(started);
                    let preset = outcomes[r.job].granted.map(|p| p.name()).unwrap_or("?");
                    self.sink.span_with(
                        tracks[r.job],
                        "running".to_string(),
                        "cluster",
                        started,
                        end,
                        vec![
                            ("preset", preset.into()),
                            ("replicas", specs[r.job].replicas.into()),
                        ],
                    );
                }
                if let Some(m) = &self.metrics {
                    m.completed.inc();
                    if let Some(l) = outcomes[r.job].latency() {
                        m.latency_ns.record(l.0);
                    }
                }
            }

            // Arrivals at this instant join the queue in input order. Match
            // on the *integer* nanosecond timestamp, not its f64 projection:
            // beyond 2^53 ns distinct arrival times collapse under `as f64`,
            // and a float-equality match would drop (or spuriously merge)
            // coincident arrivals. Only arrivals sharing the exact SimTime
            // of the one that triggered this event are coincident.
            if t_arrival <= t_next {
                let t_ns = t_arrival_ns.expect("finite arrival projection");
                while next_arrival < n_jobs && arrivals[next_arrival].0 .0 == t_ns {
                    pending.push(next_arrival);
                    trace.push(TraceEvent {
                        t_ns,
                        job: specs[next_arrival].name.clone(),
                        kind: TraceKind::Arrive,
                    });
                    if tracing {
                        self.sink.instant(
                            tracks[next_arrival],
                            "arrive",
                            "cluster",
                            t_ns,
                            Vec::new(),
                        );
                    }
                    if let Some(m) = &self.metrics {
                        m.submitted.inc();
                    }
                    next_arrival += 1;
                }
            }

            // Admission/placement pass: FIFO with backfill — a blocked job
            // stays queued while later, smaller jobs may slot in behind it.
            let mut still_pending = Vec::with_capacity(pending.len());
            for &job_idx in pending.iter() {
                let job = &specs[job_idx];
                match self.try_admit(&devices, job) {
                    Some(grant) => {
                        let step = self.step_time(job, &grant);
                        let work_ns = step.0 as f64 * job.iterations as f64;
                        for p in &grant.placements {
                            let d = p.device;
                            devices[d].reserved += p.prediction.peak_bytes;
                            devices[d].tenants += 1;
                            devices[d].peak_reserved =
                                devices[d].peak_reserved.max(devices[d].reserved);
                            devices[d].peak_tenants =
                                devices[d].peak_tenants.max(devices[d].tenants);
                            debug_assert!(
                                devices[d].reserved <= self.fleet.devices[d].dram_bytes,
                                "reservation exceeds device {d} DRAM"
                            );
                        }
                        let out = &mut outcomes[job_idx];
                        out.started = Some(SimTime(now_ns.round() as u64));
                        out.granted = Some(grant.preset);
                        out.devices = grant.placements.iter().map(|p| p.device).collect();
                        out.reservations = grant
                            .placements
                            .iter()
                            .map(|p| p.prediction.peak_bytes)
                            .collect();
                        trace.push(TraceEvent {
                            t_ns: now_ns.round() as u64,
                            job: job.name.clone(),
                            kind: TraceKind::Admit {
                                preset: grant.preset,
                                devices: out.devices.clone(),
                                reservations: out.reservations.clone(),
                            },
                        });
                        if tracing {
                            let arrival = outcomes[job_idx].arrival.0;
                            let t = (now_ns.round() as u64).max(arrival);
                            self.sink.span_with(
                                tracks[job_idx],
                                "queued".to_string(),
                                "cluster",
                                arrival,
                                t,
                                vec![("preset", grant.preset.name().into())],
                            );
                        }
                        if let Some(m) = &self.metrics {
                            m.admitted.inc();
                            if let Some(q) = outcomes[job_idx].queueing() {
                                m.queueing_ns.record(q.0);
                            }
                        }
                        // The gang's slowdown is read *after* its own
                        // reservations landed; a later same-pass admission
                        // that changes it is folded in by the next event's
                        // re-anchor pass (a zero-dt, bit-safe update).
                        let slowdown = gang_slowdown(&devices, &grant);
                        // Insert in job-index order (admission may start a
                        // long-queued lower-index job after a later one),
                        // keeping `running` — and therefore every `done`
                        // partition — ordered by construction.
                        let pos = running.partition_point(|r| r.job < job_idx);
                        running.insert(
                            pos,
                            Running {
                                job: job_idx,
                                grant,
                                remaining_ns: work_ns,
                                anchor_ns: now_ns,
                                slowdown,
                            },
                        );
                    }
                    None => {
                        if feasible_on_idle_fleet(&self.profiler, &self.fleet, job) {
                            still_pending.push(job_idx); // wait for capacity
                        } else {
                            let reason = if job.replicas == 0 {
                                RejectReason::EmptyGang
                            } else if job.replicas > self.fleet.len() {
                                RejectReason::FleetTooSmall {
                                    replicas: job.replicas,
                                    fleet: self.fleet.len(),
                                }
                            } else {
                                RejectReason::PeakExceedsCapacity {
                                    presets: ladder_for(job).iter().map(|p| p.name()).collect(),
                                }
                            };
                            outcomes[job_idx].rejected = Some(reason.clone());
                            if tracing {
                                self.sink.instant(
                                    tracks[job_idx],
                                    "reject",
                                    "cluster",
                                    now_ns.round() as u64,
                                    vec![("reason", reason.kind().into())],
                                );
                            }
                            if let Some(m) = &self.metrics {
                                m.count_reject(&reason);
                            }
                            trace.push(TraceEvent {
                                t_ns: now_ns.round() as u64,
                                job: job.name.clone(),
                                kind: TraceKind::Reject { reason },
                            });
                        }
                    }
                }
            }
            pending = still_pending;
            peak_concurrent = peak_concurrent.max(running.len());
        }

        let makespan = SimTime(now_ns.round() as u64);
        ClusterReport::assemble(
            &self.fleet,
            self.placement,
            outcomes,
            trace,
            makespan,
            devices
                .iter()
                .map(|d| {
                    (
                        d.busy_ns,
                        d.reserved_integral,
                        d.peak_reserved,
                        d.peak_tenants,
                    )
                })
                .collect(),
            peak_concurrent,
            self.profiler.simulated(),
        )
    }
}
