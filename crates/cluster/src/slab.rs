//! A generation-stamped slab: stable integer keys for job state with O(1)
//! insert/remove and slot reuse.
//!
//! The indexed event loop needs two properties a plain `Vec` or hash map
//! does not give cheaply together:
//!
//! 1. **Constant memory over unbounded streams** — a million-job arrival
//!    stream must not grow job-state storage past the *active* set
//!    (pending + running), so freed slots are recycled;
//! 2. **Safe stale references** — binary-heap events and per-device tenant
//!    lists hold keys to job state that may have been freed (and its slot
//!    reused) by the time the key is dereferenced. Each slot carries a
//!    generation counter, bumped on free; a [`SlotKey`] made for one
//!    occupant can never resolve to a later one.

/// A key into a [`Slab`]: slot index plus the generation it was issued for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SlotKey {
    idx: u32,
    gen: u32,
}

struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// Generational slab. Freed slots go on a free list and are reused with a
/// bumped generation, so total storage is bounded by the high-water count
/// of live entries, not by how many were ever inserted.
pub(crate) struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    pub(crate) fn new() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// High-water slot count (diagnostic: the constant-memory claim).
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn insert(&mut self, value: T) -> SlotKey {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            SlotKey { idx, gen: slot.gen }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
            self.slots.push(Slot {
                gen: 0,
                value: Some(value),
            });
            SlotKey { idx, gen: 0 }
        }
    }

    /// `None` if the key's occupant was removed (even if the slot has been
    /// reused since) — the staleness test heap events rely on.
    pub(crate) fn get(&self, key: SlotKey) -> Option<&T> {
        let slot = self.slots.get(key.idx as usize)?;
        if slot.gen != key.gen {
            return None;
        }
        slot.value.as_ref()
    }

    pub(crate) fn get_mut(&mut self, key: SlotKey) -> Option<&mut T> {
        let slot = self.slots.get_mut(key.idx as usize)?;
        if slot.gen != key.gen {
            return None;
        }
        slot.value.as_mut()
    }

    /// Remove and return the occupant; the slot's generation is bumped so
    /// every outstanding key for it goes stale, then the slot is recycled.
    pub(crate) fn remove(&mut self, key: SlotKey) -> Option<T> {
        let slot = self.slots.get_mut(key.idx as usize)?;
        if slot.gen != key.gen || slot.value.is_none() {
            return None;
        }
        let value = slot.value.take();
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(key.idx);
        self.len -= 1;
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab: Slab<&'static str> = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None, "removed key must be stale");
        assert_eq!(slab.remove(a), None, "double remove is a no-op");
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn reused_slots_do_not_resurrect_stale_keys() {
        let mut slab: Slab<u32> = Slab::new();
        let first = slab.insert(1);
        slab.remove(first);
        let second = slab.insert(2);
        // The freed slot was recycled...
        assert_eq!(slab.capacity(), 1);
        // ...but the old key must not see the new occupant.
        assert_eq!(slab.get(first), None);
        assert_eq!(slab.get(second), Some(&2));
    }

    #[test]
    fn storage_is_bounded_by_the_live_high_water() {
        let mut slab: Slab<u64> = Slab::new();
        let mut live = Vec::new();
        for i in 0..10_000u64 {
            live.push(slab.insert(i));
            if live.len() > 8 {
                let key = live.remove(0);
                assert!(slab.remove(key).is_some());
            }
        }
        assert!(
            slab.capacity() <= 9,
            "10k churned entries must reuse ~9 slots, got {}",
            slab.capacity()
        );
    }
}
