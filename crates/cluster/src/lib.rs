//! # sn-cluster — multi-tenant, memory-aware cluster scheduling over the
//! SuperNeurons runtime
//!
//! The paper scopes SuperNeurons to one GPU: its memory-scheduling policies
//! (`baseline` → `liveness` → `+offload` → `+cost-aware recompute`) shrink a
//! single job's `peak_m` from `Σ l_f + Σ l_b` toward `max_i(l_i)`. This
//! crate lifts that lever to fleet scope: when the scheduler can *predict*
//! each job's peak per policy, policy choice becomes a cluster-capacity
//! knob — a device that fits one `baseline` tenant fits several
//! `superneurons` tenants, and admission can trade (virtual) recompute/PCIe
//! time for tenancy.
//!
//! Pieces:
//!
//! * [`job`] — [`JobSpec`]/[`Workload`]/[`PolicyPreset`]/[`JobKind`]: what
//!   a tenant wants — a training run or a forward-only *inference* service —
//!   and under which policy ladder;
//! * [`fleet`] — [`Fleet`]: the (heterogeneous) device pool + interconnect;
//! * [`admission`] — memoized **plan compilation**
//!   ([`sn_runtime::plan_prediction`]): each candidate (job, preset, capped
//!   device) compiles a [`sn_runtime::MemoryPlan`] whose `peak_bytes` is the
//!   exact runtime high-water — no simulated iteration runs on the hot path
//!   — and the reject/queue/downgrade decision;
//! * [`placement`] — first-fit / best-fit / bin-packing device selection;
//! * [`fault`] — [`FaultPlan`]/[`RecoveryPolicy`]: deterministic fault
//!   injection (device kills, link degradation, pressure spikes at integer
//!   instants) and the recovery ladder (no-recovery → checkpoint/restart →
//!   restart + elastic live-downgrade);
//! * [`sim`] — [`ClusterSim`]: the deterministic virtual-time event loop
//!   with processor-sharing compute and hard memory reservations, gang
//!   scheduling multi-replica jobs through the data-parallel model;
//! * [`report`] — [`ClusterReport`]: per-job latency/queueing, fleet
//!   throughput + utilization, the byte-stable schedule trace, and JSON
//!   rendering for `BENCH_cluster.json`;
//! * [`stream`] — reproducible synthetic job streams.
//!
//! Invariants the test suite enforces:
//!
//! 1. **Admission safety** — a job is only placed where its predicted peak
//!    fits the device's unreserved bytes; reservations never exceed DRAM.
//! 2. **Determinism** — identical job streams produce byte-identical
//!    schedule fingerprints.
//! 3. **Gang atomicity** — all replicas of a job start at the same instant
//!    on distinct devices, or none do.

pub mod admission;
pub mod fault;
pub mod fleet;
pub mod job;
pub mod latency;
pub mod placement;
pub mod report;
pub mod sim;
pub mod sim_reference;
mod slab;
pub mod stream;

pub use admission::{
    feasible_on_device_subset, feasible_on_idle_fleet, Grant, Placement, Profiler,
};
pub use fault::{FaultEvent, FaultPlan, RecoveryMode, RecoveryPolicy};
pub use fleet::Fleet;
pub use job::{JobKind, JobSpec, PolicyPreset, Workload};
pub use latency::LatencySketch;
pub use placement::{Candidate, PlacementPolicy};
pub use report::{ClusterReport, JobOutcome, RejectReason, ServiceReport, TraceEvent, TraceKind};
pub use sim::ClusterSim;
pub use stream::{
    collect_stream, mixed_serving_stream, synthetic_stream, ArrivalStream, PoissonStream,
    ReplayStream,
};
