//! Job descriptions: what a tenant wants to train, at what scale, and under
//! which memory-scheduling policy.

use sn_graph::Net;
use sn_runtime::Policy;

/// Which network a job trains. An enum (rather than a boxed builder closure)
//  keeps `JobSpec` cloneable, hashable for profile memoization, and
/// printable in schedule traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    LeNet,
    AlexNet,
    Vgg16,
    ResNet50,
    InceptionV4,
    /// A synthetic conv tower: `depth` CONV→RELU blocks of `width` channels
    /// over a 32×32 input, then POOL→FC→SOFTMAX. Cheap to simulate, with a
    /// memory footprint that scales predictably — the workhorse for cluster
    /// tests and benches.
    Synthetic {
        width: usize,
        depth: usize,
    },
}

impl Workload {
    /// Build the network at `batch`.
    pub fn build(&self, batch: usize) -> Net {
        match *self {
            Workload::LeNet => sn_models::lenet(batch, 10),
            Workload::AlexNet => sn_models::alexnet(batch),
            Workload::Vgg16 => sn_models::vgg16(batch),
            Workload::ResNet50 => sn_models::resnet50(batch),
            Workload::InceptionV4 => sn_models::inception_v4(batch),
            Workload::Synthetic { width, depth } => {
                let mut net = Net::new("Synthetic", sn_graph::Shape4::new(batch, 3, 32, 32));
                let mut prev = net.data();
                for _ in 0..depth {
                    let c = net.conv(prev, width, 3, 1, 1);
                    prev = net.relu(c);
                }
                let p = net.max_pool(prev, 2, 2, 0);
                let f = net.fc(p, 10);
                net.softmax(f);
                net
            }
        }
    }

    /// Stable label used in traces and reports.
    pub fn label(&self) -> String {
        match *self {
            Workload::LeNet => "lenet".into(),
            Workload::AlexNet => "alexnet".into(),
            Workload::Vgg16 => "vgg16".into(),
            Workload::ResNet50 => "resnet50".into(),
            Workload::InceptionV4 => "inception_v4".into(),
            Workload::Synthetic { width, depth } => format!("synthetic_w{width}_d{depth}"),
        }
    }
}

/// What a job *does* with its network: train it (forward + backward, gangs
/// exchange gradients) or serve it (forward-only inference replicas, no
/// gradient traffic). The admission profiler compiles a training or an
/// inference [`sn_runtime::MemoryPlan`] accordingly — an inference replica
/// of the same `(workload, batch)` reserves a much smaller exact peak, which
/// is what lets the fleet co-locate serving jobs against training jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JobKind {
    #[default]
    Training,
    /// Forward-only serving: one "iteration" serves one batch.
    Inference,
}

impl JobKind {
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Training => "training",
            JobKind::Inference => "inference",
        }
    }
}

/// The paper's policy presets, ordered from weakest to strongest memory
/// efficiency. Admission control walks this ladder when a requested preset
/// does not fit: a stronger preset trades (virtual) compute and PCIe traffic
/// for a smaller `peak_m`, letting more tenants share one device.
///
/// `Tuned` names an autotuned bundle from the [`sn_runtime::tune`] registry.
/// Its variant position — between `LivenessOffload` and `FullMemory` — is
/// its downgrade rank: a tuned policy is built on the offload stack, and
/// when elastic recovery must shed memory it walks up to the hand
/// `FullMemory`/`Superneurons` rungs exactly like any other preset. The
/// [`TunedId`](sn_runtime::tune::TunedId) rides in every admission memo key,
/// so tuned and hand compiles can never alias even if their policies happen
/// to coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyPreset {
    Baseline,
    LivenessOnly,
    LivenessOffload,
    Tuned(sn_runtime::tune::TunedId),
    FullMemory,
    Superneurons,
}

impl PolicyPreset {
    pub const ALL: [PolicyPreset; 5] = [
        PolicyPreset::Baseline,
        PolicyPreset::LivenessOnly,
        PolicyPreset::LivenessOffload,
        PolicyPreset::FullMemory,
        PolicyPreset::Superneurons,
    ];

    /// The runtime policy bundle this preset names. For `Tuned` rungs this
    /// is a registry lookup; an unregistered id panics (a stale-handle bug,
    /// never a runtime condition).
    pub fn policy(self) -> Policy {
        match self {
            PolicyPreset::Baseline => Policy::baseline(),
            PolicyPreset::LivenessOnly => Policy::liveness_only(),
            PolicyPreset::LivenessOffload => Policy::liveness_offload(),
            PolicyPreset::Tuned(id) => sn_runtime::tune::policy_for(id),
            PolicyPreset::FullMemory => Policy::full_memory(),
            PolicyPreset::Superneurons => Policy::superneurons(),
        }
    }

    /// The all-reduce bucket target gang execution should use under this
    /// preset — the tuned value for `Tuned` rungs, the group default
    /// otherwise.
    pub fn bucket_bytes(self) -> u64 {
        match self {
            PolicyPreset::Tuned(id) => sn_runtime::tune::bucket_bytes_for(id),
            _ => sn_runtime::group::DEFAULT_BUCKET_BYTES,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            PolicyPreset::Baseline => "baseline",
            PolicyPreset::LivenessOnly => "liveness_only",
            PolicyPreset::LivenessOffload => "liveness_offload",
            PolicyPreset::Tuned(_) => "tuned",
            PolicyPreset::FullMemory => "full_memory",
            PolicyPreset::Superneurons => "superneurons",
        }
    }

    /// The fallback ladder starting at `self`: this preset, then every
    /// memory-stronger *hand* one up to the full `superneurons` stack.
    /// For hand presets this is identical to the historical
    /// "every `ALL` entry ≥ self"; a `Tuned` rung is followed by the hand
    /// presets ranked above its variant position (`FullMemory`,
    /// `Superneurons`) — tuned policies never appear in another preset's
    /// ladder.
    pub fn ladder(self) -> impl Iterator<Item = PolicyPreset> {
        std::iter::once(self).chain(PolicyPreset::ALL.into_iter().filter(move |p| *p > self))
    }

    /// The next memory-stronger preset, or `None` at the top of the ladder.
    /// Elastic recovery walks running tenants one rung at a time; a `Tuned`
    /// tenant downgrades onto the hand ladder at `FullMemory`.
    pub fn next_stronger(self) -> Option<PolicyPreset> {
        PolicyPreset::ALL.into_iter().find(|p| *p > self)
    }
}

/// One tenant's training request.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique name, reported in traces and the final report.
    pub name: String,
    pub workload: Workload,
    /// Per-replica batch size (the data-parallel sub-batch).
    pub batch: usize,
    /// Training iterations to run.
    pub iterations: u32,
    /// Data-parallel replica count; `> 1` makes this a gang job that needs
    /// that many distinct devices simultaneously.
    pub replicas: usize,
    /// Requested memory-scheduling preset.
    pub preset: PolicyPreset,
    /// May admission fall back to memory-stronger presets when the requested
    /// one does not fit? (`false` = run exactly as requested or queue.)
    pub allow_downgrade: bool,
    /// Training iterations or forward-only serving batches?
    pub kind: JobKind,
}

impl JobSpec {
    pub fn new(name: impl Into<String>, workload: Workload, batch: usize) -> JobSpec {
        JobSpec {
            name: name.into(),
            workload,
            batch,
            iterations: 10,
            replicas: 1,
            preset: PolicyPreset::Superneurons,
            allow_downgrade: true,
            kind: JobKind::Training,
        }
    }

    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations;
        self
    }

    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    pub fn with_preset(mut self, preset: PolicyPreset) -> Self {
        self.preset = preset;
        self
    }

    pub fn with_downgrade(mut self, allow: bool) -> Self {
        self.allow_downgrade = allow;
        self
    }

    pub fn with_kind(mut self, kind: JobKind) -> Self {
        self.kind = kind;
        self
    }

    /// Shorthand: a forward-only serving job.
    pub fn inference(self) -> Self {
        self.with_kind(JobKind::Inference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_walks_toward_superneurons() {
        let from_baseline: Vec<_> = PolicyPreset::Baseline.ladder().collect();
        assert_eq!(from_baseline, PolicyPreset::ALL.to_vec());
        let from_full: Vec<_> = PolicyPreset::FullMemory.ladder().collect();
        assert_eq!(
            from_full,
            vec![PolicyPreset::FullMemory, PolicyPreset::Superneurons]
        );
        let top: Vec<_> = PolicyPreset::Superneurons.ladder().collect();
        assert_eq!(top, vec![PolicyPreset::Superneurons]);
    }

    fn fake_tuned(policy: Policy) -> PolicyPreset {
        let id = sn_runtime::tune::register(sn_runtime::TunedPolicy {
            policy,
            bucket_bytes: 4 << 20,
            step_time: sn_sim::SimTime::from_us(10),
            plan_peak_bytes: 1,
            executed_peak_bytes: 1,
            hand_step_time: sn_sim::SimTime::from_us(12),
            hand_name: "superneurons",
            seed: 0,
            evals: 0,
            pruned: 0,
            trace_digest: 0,
        });
        PolicyPreset::Tuned(id)
    }

    #[test]
    fn tuned_rung_sits_between_offload_and_full_memory() {
        let tuned = fake_tuned(Policy::superneurons());
        assert!(tuned > PolicyPreset::LivenessOffload);
        assert!(tuned < PolicyPreset::FullMemory);
        let ladder: Vec<_> = tuned.ladder().collect();
        assert_eq!(
            ladder,
            vec![tuned, PolicyPreset::FullMemory, PolicyPreset::Superneurons]
        );
        assert_eq!(tuned.next_stronger(), Some(PolicyPreset::FullMemory));
        assert_eq!(tuned.name(), "tuned");
        assert_eq!(tuned.bucket_bytes(), 4 << 20);
        assert_eq!(
            PolicyPreset::Baseline.bucket_bytes(),
            sn_runtime::group::DEFAULT_BUCKET_BYTES
        );
        // Hand ladders are byte-identical to the historical ones.
        let from_baseline: Vec<_> = PolicyPreset::Baseline.ladder().collect();
        assert_eq!(from_baseline, PolicyPreset::ALL.to_vec());
    }

    #[test]
    fn tuned_policy_resolves_through_the_registry() {
        let p = Policy::full_memory().with_prefetch_depth(16);
        let tuned = fake_tuned(p);
        assert_eq!(tuned.policy(), p);
    }

    #[test]
    fn workloads_build_valid_nets() {
        for w in [
            Workload::LeNet,
            Workload::Synthetic {
                width: 16,
                depth: 3,
            },
        ] {
            let net = w.build(4);
            assert!(net.validate().is_ok(), "{} must validate", w.label());
            assert_eq!(net.batch(), 4);
        }
    }

    #[test]
    fn synthetic_width_scales_memory() {
        use sn_graph::NetCost;
        let narrow = NetCost::of(&Workload::Synthetic { width: 8, depth: 3 }.build(8));
        let wide = NetCost::of(
            &Workload::Synthetic {
                width: 32,
                depth: 3,
            }
            .build(8),
        );
        assert!(wide.sum_l_f() > narrow.sum_l_f());
    }
}
