//! Job descriptions: what a tenant wants to train, at what scale, and under
//! which memory-scheduling policy.

use sn_graph::Net;
use sn_runtime::Policy;

/// Which network a job trains. An enum (rather than a boxed builder closure)
//  keeps `JobSpec` cloneable, hashable for profile memoization, and
/// printable in schedule traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    LeNet,
    AlexNet,
    Vgg16,
    ResNet50,
    InceptionV4,
    /// A synthetic conv tower: `depth` CONV→RELU blocks of `width` channels
    /// over a 32×32 input, then POOL→FC→SOFTMAX. Cheap to simulate, with a
    /// memory footprint that scales predictably — the workhorse for cluster
    /// tests and benches.
    Synthetic {
        width: usize,
        depth: usize,
    },
}

impl Workload {
    /// Build the network at `batch`.
    pub fn build(&self, batch: usize) -> Net {
        match *self {
            Workload::LeNet => sn_models::lenet(batch, 10),
            Workload::AlexNet => sn_models::alexnet(batch),
            Workload::Vgg16 => sn_models::vgg16(batch),
            Workload::ResNet50 => sn_models::resnet50(batch),
            Workload::InceptionV4 => sn_models::inception_v4(batch),
            Workload::Synthetic { width, depth } => {
                let mut net = Net::new("Synthetic", sn_graph::Shape4::new(batch, 3, 32, 32));
                let mut prev = net.data();
                for _ in 0..depth {
                    let c = net.conv(prev, width, 3, 1, 1);
                    prev = net.relu(c);
                }
                let p = net.max_pool(prev, 2, 2, 0);
                let f = net.fc(p, 10);
                net.softmax(f);
                net
            }
        }
    }

    /// Stable label used in traces and reports.
    pub fn label(&self) -> String {
        match *self {
            Workload::LeNet => "lenet".into(),
            Workload::AlexNet => "alexnet".into(),
            Workload::Vgg16 => "vgg16".into(),
            Workload::ResNet50 => "resnet50".into(),
            Workload::InceptionV4 => "inception_v4".into(),
            Workload::Synthetic { width, depth } => format!("synthetic_w{width}_d{depth}"),
        }
    }
}

/// What a job *does* with its network: train it (forward + backward, gangs
/// exchange gradients) or serve it (forward-only inference replicas, no
/// gradient traffic). The admission profiler compiles a training or an
/// inference [`sn_runtime::MemoryPlan`] accordingly — an inference replica
/// of the same `(workload, batch)` reserves a much smaller exact peak, which
/// is what lets the fleet co-locate serving jobs against training jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JobKind {
    #[default]
    Training,
    /// Forward-only serving: one "iteration" serves one batch.
    Inference,
}

impl JobKind {
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Training => "training",
            JobKind::Inference => "inference",
        }
    }
}

/// The paper's policy presets, ordered from weakest to strongest memory
/// efficiency. Admission control walks this ladder when a requested preset
/// does not fit: a stronger preset trades (virtual) compute and PCIe traffic
/// for a smaller `peak_m`, letting more tenants share one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyPreset {
    Baseline,
    LivenessOnly,
    LivenessOffload,
    FullMemory,
    Superneurons,
}

impl PolicyPreset {
    pub const ALL: [PolicyPreset; 5] = [
        PolicyPreset::Baseline,
        PolicyPreset::LivenessOnly,
        PolicyPreset::LivenessOffload,
        PolicyPreset::FullMemory,
        PolicyPreset::Superneurons,
    ];

    /// The runtime policy bundle this preset names.
    pub fn policy(self) -> Policy {
        match self {
            PolicyPreset::Baseline => Policy::baseline(),
            PolicyPreset::LivenessOnly => Policy::liveness_only(),
            PolicyPreset::LivenessOffload => Policy::liveness_offload(),
            PolicyPreset::FullMemory => Policy::full_memory(),
            PolicyPreset::Superneurons => Policy::superneurons(),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            PolicyPreset::Baseline => "baseline",
            PolicyPreset::LivenessOnly => "liveness_only",
            PolicyPreset::LivenessOffload => "liveness_offload",
            PolicyPreset::FullMemory => "full_memory",
            PolicyPreset::Superneurons => "superneurons",
        }
    }

    /// The fallback ladder starting at `self`: this preset, then every
    /// memory-stronger one up to the full `superneurons` stack.
    pub fn ladder(self) -> impl Iterator<Item = PolicyPreset> {
        PolicyPreset::ALL.into_iter().filter(move |p| *p >= self)
    }

    /// The next memory-stronger preset, or `None` at the top of the ladder.
    /// Elastic recovery walks running tenants one rung at a time.
    pub fn next_stronger(self) -> Option<PolicyPreset> {
        let idx = PolicyPreset::ALL.iter().position(|p| *p == self)?;
        PolicyPreset::ALL.get(idx + 1).copied()
    }
}

/// One tenant's training request.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique name, reported in traces and the final report.
    pub name: String,
    pub workload: Workload,
    /// Per-replica batch size (the data-parallel sub-batch).
    pub batch: usize,
    /// Training iterations to run.
    pub iterations: u32,
    /// Data-parallel replica count; `> 1` makes this a gang job that needs
    /// that many distinct devices simultaneously.
    pub replicas: usize,
    /// Requested memory-scheduling preset.
    pub preset: PolicyPreset,
    /// May admission fall back to memory-stronger presets when the requested
    /// one does not fit? (`false` = run exactly as requested or queue.)
    pub allow_downgrade: bool,
    /// Training iterations or forward-only serving batches?
    pub kind: JobKind,
}

impl JobSpec {
    pub fn new(name: impl Into<String>, workload: Workload, batch: usize) -> JobSpec {
        JobSpec {
            name: name.into(),
            workload,
            batch,
            iterations: 10,
            replicas: 1,
            preset: PolicyPreset::Superneurons,
            allow_downgrade: true,
            kind: JobKind::Training,
        }
    }

    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations;
        self
    }

    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    pub fn with_preset(mut self, preset: PolicyPreset) -> Self {
        self.preset = preset;
        self
    }

    pub fn with_downgrade(mut self, allow: bool) -> Self {
        self.allow_downgrade = allow;
        self
    }

    pub fn with_kind(mut self, kind: JobKind) -> Self {
        self.kind = kind;
        self
    }

    /// Shorthand: a forward-only serving job.
    pub fn inference(self) -> Self {
        self.with_kind(JobKind::Inference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_walks_toward_superneurons() {
        let from_baseline: Vec<_> = PolicyPreset::Baseline.ladder().collect();
        assert_eq!(from_baseline, PolicyPreset::ALL.to_vec());
        let from_full: Vec<_> = PolicyPreset::FullMemory.ladder().collect();
        assert_eq!(
            from_full,
            vec![PolicyPreset::FullMemory, PolicyPreset::Superneurons]
        );
        let top: Vec<_> = PolicyPreset::Superneurons.ladder().collect();
        assert_eq!(top, vec![PolicyPreset::Superneurons]);
    }

    #[test]
    fn workloads_build_valid_nets() {
        for w in [
            Workload::LeNet,
            Workload::Synthetic {
                width: 16,
                depth: 3,
            },
        ] {
            let net = w.build(4);
            assert!(net.validate().is_ok(), "{} must validate", w.label());
            assert_eq!(net.batch(), 4);
        }
    }

    #[test]
    fn synthetic_width_scales_memory() {
        use sn_graph::NetCost;
        let narrow = NetCost::of(&Workload::Synthetic { width: 8, depth: 3 }.build(8));
        let wide = NetCost::of(
            &Workload::Synthetic {
                width: 32,
                depth: 3,
            }
            .build(8),
        );
        assert!(wide.sum_l_f() > narrow.sum_l_f());
    }
}
