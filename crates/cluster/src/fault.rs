//! Deterministic fault injection and the recovery policy.
//!
//! A [`FaultPlan`] is a time-ordered script of [`FaultEvent`]s — device
//! kills/revivals, interconnect degradation, and memory-pressure spikes —
//! pinned to **integer** [`SimTime`] instants. The plan is either written by
//! hand (tests, targeted scenarios) or drawn from
//! [`FaultPlan::seeded_random`], whose exponential fail/repair process is a
//! pure function of its seed: the same seed yields the same plan bytes, and
//! the indexed event loop delivers the plan's instants exactly like arrival
//! timestamps — matched on integer nanoseconds, immune to the `as f64`
//! collapse past 2^53 ns that PR 2 fixed for arrivals.
//!
//! [`RecoveryPolicy`] is the other half: what [`crate::ClusterSim`] does to
//! the tenants a fault interrupts. The recovery ladder is
//! [`RecoveryMode::NoRecovery`] (interrupted jobs fail permanently, all
//! their progress is wasted), [`RecoveryMode::Restart`] (checkpoint/restart:
//! re-enter admission via capped exponential backoff and resume from the
//! last checkpointed iteration), and [`RecoveryMode::RestartElastic`]
//! (restart, plus live-downgrade of *running* tenants' presets to free the
//! memory a blocked re-admission needs). All backoff/retry arithmetic is
//! integer `u64` nanoseconds end-to-end — no float ever touches a timer.

use sn_sim::SimTime;

use crate::job::JobKind;

/// One scripted fault, applied at an integer instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The device stops executing and drops its tenants; its reservations
    /// are released and every gang with a replica on it is interrupted
    /// atomically.
    DeviceFail { device: usize },
    /// The device rejoins the fleet with empty reservations.
    DeviceRecover { device: usize },
    /// Inter-device bandwidth degrades: gang (`replicas > 1`) step times
    /// stretch by `permille`/1000 until restored. `1000` = nominal.
    LinkDegrade { permille: u32 },
    /// The interconnect returns to nominal speed.
    LinkRestore,
    /// `bytes` of device memory become unavailable to admission (a noisy
    /// neighbor outside the scheduler's control). Running reservations are
    /// untouched — the pressure squeezes future placements only.
    PressureSpike { device: usize, bytes: u64 },
    /// Releases a previous spike's bytes.
    PressureRelease { device: usize, bytes: u64 },
}

impl FaultEvent {
    /// Stable one-line description for the schedule trace.
    pub fn describe(&self) -> String {
        match self {
            FaultEvent::DeviceFail { device } => format!("device {device} failed"),
            FaultEvent::DeviceRecover { device } => format!("device {device} recovered"),
            FaultEvent::LinkDegrade { permille } => {
                format!("link degraded to {permille} permille")
            }
            FaultEvent::LinkRestore => "link restored".to_string(),
            FaultEvent::PressureSpike { device, bytes } => {
                format!("pressure spike on device {device}: {bytes} bytes")
            }
            FaultEvent::PressureRelease { device, bytes } => {
                format!("pressure released on device {device}: {bytes} bytes")
            }
        }
    }
}

/// A deterministic, time-sorted fault script (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Append one event (builder style). Events may be pushed out of order;
    /// the plan is stable-sorted by instant when the simulator takes it, so
    /// same-instant events apply in push order.
    pub fn at(mut self, t: SimTime, event: FaultEvent) -> FaultPlan {
        self.events.push((t, event));
        self
    }

    /// Kill `device` at `t`.
    pub fn kill(self, t: SimTime, device: usize) -> FaultPlan {
        self.at(t, FaultEvent::DeviceFail { device })
    }

    /// Revive `device` at `t`.
    pub fn recover(self, t: SimTime, device: usize) -> FaultPlan {
        self.at(t, FaultEvent::DeviceRecover { device })
    }

    /// Kill `device` at `t` and revive it `outage` later.
    pub fn outage(self, t: SimTime, device: usize, outage: SimTime) -> FaultPlan {
        self.kill(t, device).recover(t + outage, device)
    }

    /// Degrade gang interconnect to `permille`/1000 of nominal speed over
    /// `[t, t + span)`.
    pub fn degraded_link(self, t: SimTime, permille: u32, span: SimTime) -> FaultPlan {
        self.at(t, FaultEvent::LinkDegrade { permille })
            .at(t + span, FaultEvent::LinkRestore)
    }

    /// Withhold `bytes` of `device` memory from admission over
    /// `[t, t + span)`.
    pub fn spike(self, t: SimTime, device: usize, bytes: u64, span: SimTime) -> FaultPlan {
        self.at(t, FaultEvent::PressureSpike { device, bytes })
            .at(t + span, FaultEvent::PressureRelease { device, bytes })
    }

    /// A seeded random fail/repair process: each of `devices` alternates
    /// up → down with exponentially distributed spans of mean `mtbf`
    /// (time-to-failure) and `mttr` (time-to-repair), truncated at
    /// `horizon`. Pure function of the arguments — identical seeds yield
    /// identical plans. A failure whose repair would land past the horizon
    /// leaves the device down for the rest of the run.
    pub fn seeded_random(
        seed: u64,
        devices: usize,
        horizon: SimTime,
        mtbf: SimTime,
        mttr: SimTime,
    ) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for device in 0..devices {
            // Independent per-device sub-streams derived from the seed.
            let mut rng = splitmix64(seed ^ (device as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut t = 0u64;
            loop {
                t = t.saturating_add(exp_sample(&mut rng, mtbf.0));
                if t >= horizon.0 {
                    break;
                }
                plan.events
                    .push((SimTime(t), FaultEvent::DeviceFail { device }));
                t = t.saturating_add(exp_sample(&mut rng, mttr.0));
                if t >= horizon.0 {
                    break;
                }
                plan.events
                    .push((SimTime(t), FaultEvent::DeviceRecover { device }));
            }
        }
        plan.normalize();
        plan
    }

    /// Merge another plan's events into this one (re-sorted on use).
    pub fn merged(mut self, other: FaultPlan) -> FaultPlan {
        self.events.extend(other.events);
        self
    }

    /// Stable-sort by instant: same-instant events keep push order.
    pub(crate) fn normalize(&mut self) {
        self.events.sort_by_key(|(t, _)| *t);
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    pub(crate) fn into_events(mut self) -> Vec<(SimTime, FaultEvent)> {
        self.normalize();
        self.events
    }
}

/// What the scheduler does for tenants a fault interrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Interrupted jobs fail permanently; every completed iteration is
    /// wasted. The ablation baseline.
    NoRecovery,
    /// Checkpoint/restart: interrupted jobs re-enter admission via capped
    /// exponential backoff and resume from the last checkpoint.
    #[default]
    Restart,
    /// Restart, plus elastic pressure response: when a (re-)admission is
    /// blocked, live-downgrade running tenants' presets (through the plan
    /// memo) to free the memory it needs.
    RestartElastic,
}

impl RecoveryMode {
    pub fn name(self) -> &'static str {
        match self {
            RecoveryMode::NoRecovery => "no_recovery",
            RecoveryMode::Restart => "restart",
            RecoveryMode::RestartElastic => "restart_elastic",
        }
    }
}

/// Checkpoint/restart and backoff knobs. All timer fields are integer
/// [`SimTime`] nanoseconds; every derived delay stays in `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    pub mode: RecoveryMode,
    /// Training jobs checkpoint every this-many completed iterations; a
    /// restart resumes from the last multiple. Inference batches are
    /// independently durable (effective interval 1).
    pub checkpoint_interval: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: SimTime,
    /// Exponential backoff saturates here.
    pub backoff_cap: SimTime,
    /// A job whose retries all fail past this count fails permanently.
    pub max_retries: u32,
    /// Seeds the deterministic per-(job, attempt) jitter.
    pub jitter_seed: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            mode: RecoveryMode::Restart,
            checkpoint_interval: 4,
            backoff_base: SimTime::from_ms(1),
            backoff_cap: SimTime::from_ms(64),
            max_retries: 10,
            jitter_seed: 0x5eed_fa17,
        }
    }
}

impl RecoveryPolicy {
    pub fn with_mode(mut self, mode: RecoveryMode) -> Self {
        self.mode = mode;
        self
    }

    pub fn with_checkpoint_interval(mut self, every: u32) -> Self {
        self.checkpoint_interval = every.max(1);
        self
    }

    pub fn with_backoff(mut self, base: SimTime, cap: SimTime) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Capped exponential backoff with seeded jitter, **integer ns
    /// end-to-end**: `min(base·2^attempt, cap)` (saturating shift) plus a
    /// deterministic jitter in `[0, delay/4]` drawn from
    /// `(jitter_seed, job_seq, attempt)`. Never zero, so a retry instant is
    /// always strictly after the failure instant — distinct integer
    /// timestamps even when their f64 projections collapse past 2^53 ns.
    pub fn backoff_delay(&self, attempt: u32, job_seq: u64) -> SimTime {
        let base = self.backoff_base.0.max(1);
        let shifted = if attempt >= 63 {
            u64::MAX
        } else {
            base.saturating_mul(1u64 << attempt.min(62))
        };
        let delay = shifted.min(self.backoff_cap.0.max(1));
        let jitter = splitmix64(
            self.jitter_seed ^ job_seq.rotate_left(17) ^ u64::from(attempt).rotate_left(41),
        ) % (delay / 4 + 1);
        SimTime(delay.saturating_add(jitter))
    }

    /// Iterations retained across an interruption: the last checkpoint at
    /// or below `done` for training, every completed batch for inference.
    pub fn checkpointed(&self, kind: JobKind, done: u32) -> u32 {
        match kind {
            JobKind::Inference => done,
            JobKind::Training => done - done % self.checkpoint_interval.max(1),
        }
    }
}

/// SplitMix64: the standard 64-bit finalizer-based PRNG step. Used for the
/// fault plan's exponential spans and the backoff jitter so neither pulls in
/// simulator state — determinism is a structural property, not a discipline.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One exponential sample with mean `mean_ns`, floored at 1 ns. Uses the
/// inverse CDF over a 53-bit uniform; the float is internal to the draw —
/// the returned span is integer ns.
fn exp_sample(state: &mut u64, mean_ns: u64) -> u64 {
    *state = splitmix64(*state);
    let u = (*state >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    let span = -(1.0 - u).ln() * mean_ns.max(1) as f64;
    (span as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_sort_stably_by_instant() {
        let plan = FaultPlan::new()
            .kill(SimTime(50), 1)
            .recover(SimTime(10), 0)
            .kill(SimTime(10), 2)
            .into_events();
        assert_eq!(
            plan,
            vec![
                (SimTime(10), FaultEvent::DeviceRecover { device: 0 }),
                (SimTime(10), FaultEvent::DeviceFail { device: 2 }),
                (SimTime(50), FaultEvent::DeviceFail { device: 1 }),
            ]
        );
    }

    #[test]
    fn seeded_random_is_a_pure_function_of_the_seed() {
        let mk = |seed| {
            FaultPlan::seeded_random(
                seed,
                8,
                SimTime::from_ms(500),
                SimTime::from_ms(20),
                SimTime::from_ms(5),
            )
        };
        assert_eq!(mk(7), mk(7), "same seed must replay the same plan");
        assert_ne!(mk(7), mk(8), "distinct seeds must diverge");
        let plan = mk(7);
        assert!(!plan.is_empty(), "20 ms MTBF over 500 ms must fire");
        assert!(
            plan.events().windows(2).all(|w| w[0].0 <= w[1].0),
            "plans are time-sorted"
        );
        // Per device, fails and recovers strictly alternate starting at a
        // fail — the invariant the simulator's idempotence guards rely on.
        for d in 0..8 {
            let mut expect_fail = true;
            for (_, ev) in plan.events() {
                match ev {
                    FaultEvent::DeviceFail { device } if *device == d => {
                        assert!(expect_fail, "device {d}: double fail");
                        expect_fail = false;
                    }
                    FaultEvent::DeviceRecover { device } if *device == d => {
                        assert!(!expect_fail, "device {d}: recover while up");
                        expect_fail = true;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn backoff_is_capped_exponential_with_bounded_jitter() {
        let policy = RecoveryPolicy::default();
        let mut prev_floor = 0u64;
        for attempt in 0..12 {
            let d = policy.backoff_delay(attempt, 3).0;
            let floor = policy
                .backoff_base
                .0
                .saturating_mul(1 << attempt.min(62))
                .min(policy.backoff_cap.0);
            assert!(d >= floor, "attempt {attempt}: {d} under floor {floor}");
            assert!(
                d <= floor + floor / 4,
                "attempt {attempt}: jitter out of [0, delay/4]"
            );
            assert!(floor >= prev_floor, "floor must be monotone");
            prev_floor = floor;
        }
        // Saturated attempts stay at the cap (+ jitter), no overflow.
        let big = policy.backoff_delay(200, 3).0;
        assert!(big >= policy.backoff_cap.0 && big <= policy.backoff_cap.0 * 5 / 4);
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_job_and_attempt() {
        let policy = RecoveryPolicy::default();
        assert_eq!(policy.backoff_delay(3, 7), policy.backoff_delay(3, 7));
        // Different jobs de-synchronize (thundering-herd protection): over
        // many seq values at one attempt, at least two distinct delays.
        let distinct: std::collections::HashSet<u64> =
            (0..32).map(|seq| policy.backoff_delay(6, seq).0).collect();
        assert!(distinct.len() > 1, "jitter must vary across jobs");
    }

    #[test]
    fn backoff_instants_stay_distinct_past_2p53() {
        // The PR-2 bug class: distinct integer instants whose f64
        // projections collapse. Timer arithmetic is u64 end-to-end, so
        // chained retry instants remain distinct integers even where
        // `as f64` cannot represent them.
        let policy = RecoveryPolicy {
            backoff_base: SimTime(1),
            backoff_cap: SimTime(1),
            jitter_seed: 0,
            ..RecoveryPolicy::default()
        };
        let base: u64 = (1 << 53) + 4;
        let mut due = base;
        let mut instants = vec![due];
        for attempt in 0..4 {
            due += policy.backoff_delay(attempt, 1).0;
            instants.push(due);
        }
        for w in instants.windows(2) {
            assert!(w[1] > w[0], "integer instants must strictly advance");
        }
        // ...even though several of their f64 projections are equal.
        assert!(
            instants.windows(2).any(|w| (w[0] as f64) == (w[1] as f64)),
            "test premise: some instants collapse under as-f64"
        );
    }

    #[test]
    fn checkpoint_folds_to_the_last_interval() {
        let p = RecoveryPolicy::default().with_checkpoint_interval(4);
        assert_eq!(p.checkpointed(JobKind::Training, 0), 0);
        assert_eq!(p.checkpointed(JobKind::Training, 3), 0);
        assert_eq!(p.checkpointed(JobKind::Training, 4), 4);
        assert_eq!(p.checkpointed(JobKind::Training, 11), 8);
        // Inference batches are durable as served.
        assert_eq!(p.checkpointed(JobKind::Inference, 11), 11);
    }
}
