//! Deterministic synthetic job streams for experiments, benches, and tests.
//!
//! Two layers live here. The original materialized generators
//! ([`synthetic_stream`] / [`mixed_serving_stream`]) use a bare LCG rather
//! than an RNG crate so the stream is a pure, stable function of
//! `(n, seed)` — the determinism tests depend on that. On top of them sits
//! [`ArrivalStream`], the pull interface the indexed event loop consumes:
//! arrivals are generated one at a time, never collected, so an hour of
//! simulated traffic at 10^6+ jobs costs O(1) memory instead of a
//! million-element vector. [`PoissonStream`] is the open-loop generator
//! (seeded exponential inter-arrival gaps over the rand shim);
//! [`ReplayStream`] feeds any recorded trace — including the materialized
//! streams above — through the same interface.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sn_sim::SimTime;

use crate::job::{JobKind, JobSpec, PolicyPreset, Workload};

/// Split-mix style step; good enough spread for workload mixing.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A reproducible stream of `n` jobs arriving over time: mixed synthetic
/// workloads (varying width/depth/batch), mostly single-replica with
/// occasional 2- and 4-replica gangs, all requesting `preset`.
pub fn synthetic_stream(
    n: usize,
    seed: u64,
    preset: PolicyPreset,
    allow_downgrade: bool,
) -> Vec<(SimTime, JobSpec)> {
    let mut state = seed ^ 0x9e3779b97f4a7c15;
    let mut t_ns = 0u64;
    (0..n)
        .map(|i| {
            let width = 8 + 8 * (next(&mut state) % 4) as usize; // 8..=32
            let depth = 2 + (next(&mut state) % 4) as usize; // 2..=5
            let batch = 8 << (next(&mut state) % 3) as usize; // 8/16/32
            let replicas = match next(&mut state) % 10 {
                0 => 4,
                1 | 2 => 2,
                _ => 1,
            };
            let iterations = 3 + (next(&mut state) % 8) as u32; // 3..=10
                                                                // Bursty arrivals: mean ~1 ms apart, occasionally back-to-back.
            t_ns += (next(&mut state) % 2_000_000) * (next(&mut state) % 2);
            let job = JobSpec::new(
                format!("job{i:04}"),
                Workload::Synthetic { width, depth },
                batch,
            )
            .with_iterations(iterations)
            .with_replicas(replicas)
            .with_preset(preset)
            .with_downgrade(allow_downgrade);
            (SimTime(t_ns), job)
        })
        .collect()
}

/// The mixed training + inference serving preset: a reproducible stream in
/// which roughly one job in three is a forward-only serving job (more
/// batches, smaller reservations) co-scheduled against training tenants.
/// Because admission reserves each job's **exact plan peak**, inference
/// replicas slot into the memory training jobs leave unreserved — the
/// co-location the ISSUE-3 tentpole opens.
pub fn mixed_serving_stream(
    n: usize,
    seed: u64,
    preset: PolicyPreset,
    allow_downgrade: bool,
) -> Vec<(SimTime, JobSpec)> {
    let mut state = seed ^ 0xa0761d6478bd642f;
    synthetic_stream(n, seed, preset, allow_downgrade)
        .into_iter()
        .map(|(t, job)| {
            if next(&mut state).is_multiple_of(3) {
                // Serving jobs run more, cheaper "iterations" (batches).
                let batches = job.iterations * 4;
                (t, job.inference().with_iterations(batches))
            } else {
                (t, job)
            }
        })
        .collect()
}

/// A pull-based arrival source for the indexed event loop.
///
/// `next_job` yields `(arrival_time, spec)` pairs with **non-decreasing**
/// times until the stream ends. The loop pulls one arrival ahead of the
/// clock — arrivals are never materialized, so stream length does not
/// bound memory. Implementations must be deterministic for reproducible
/// runs (seed them explicitly).
pub trait ArrivalStream {
    fn next_job(&mut self) -> Option<(SimTime, JobSpec)>;
}

/// Replays a recorded arrival trace through the [`ArrivalStream`]
/// interface. This is how the materialized generators ([`synthetic_stream`]
/// and friends) — and the retained reference loop's input vectors — feed
/// the indexed loop; the differential suite leans on it to run both loops
/// from byte-identical arrivals.
pub struct ReplayStream {
    trace: std::vec::IntoIter<(SimTime, JobSpec)>,
}

impl ReplayStream {
    /// `trace` must already be sorted by arrival time (ties keep order).
    pub fn new(trace: Vec<(SimTime, JobSpec)>) -> ReplayStream {
        debug_assert!(trace.windows(2).all(|w| w[0].0 <= w[1].0));
        ReplayStream {
            trace: trace.into_iter(),
        }
    }
}

impl ArrivalStream for ReplayStream {
    fn next_job(&mut self) -> Option<(SimTime, JobSpec)> {
        self.trace.next()
    }
}

/// Open-loop Poisson arrivals: exponential inter-arrival gaps around a mean,
/// jobs drawn from a small fixed template mix. Deterministic per seed (the
/// rand shim's `SmallRng` is a pure function of its seed), O(1) state, and
/// deliberately *template-bounded*: a serving fleet sees a stable catalog of
/// model shapes, so the admission profiler's memo saturates after the first
/// few arrivals and the loop measures scheduling, not plan compilation.
pub struct PoissonStream {
    rng: SmallRng,
    remaining: u64,
    t_ns: u64,
    mean_gap_ns: f64,
    templates: Vec<JobSpec>,
    seq: u64,
}

impl PoissonStream {
    /// `n` jobs at exponential gaps averaging `mean_gap`; the template mix
    /// requests `preset` (downgrades allowed) and serves roughly one
    /// forward-only inference job in three.
    pub fn new(n: u64, seed: u64, mean_gap: SimTime, preset: PolicyPreset) -> PoissonStream {
        let mut templates = Vec::new();
        for (width, depth, batch, replicas) in [
            (8, 2, 8, 1),
            (16, 3, 16, 1),
            (24, 4, 16, 2),
            (32, 2, 32, 1),
            (16, 5, 8, 1),
            (8, 3, 32, 4),
        ] {
            templates.push(
                JobSpec::new("tmpl", Workload::Synthetic { width, depth }, batch)
                    .with_replicas(replicas)
                    .with_preset(preset)
                    .with_downgrade(true),
            );
        }
        // Two serving shapes: forward-only, more (cheaper) iterations.
        for (width, depth, batch) in [(16, 3, 16), (32, 2, 8)] {
            templates.push(
                JobSpec::new("tmpl", Workload::Synthetic { width, depth }, batch)
                    .with_kind(JobKind::Inference)
                    .with_iterations(24)
                    .with_preset(preset)
                    .with_downgrade(true),
            );
        }
        PoissonStream {
            rng: SmallRng::seed_from_u64(seed ^ 0x005e_edab_1e0f_u64),
            remaining: n,
            t_ns: 0,
            mean_gap_ns: mean_gap.0 as f64,
            templates,
            seq: 0,
        }
    }
}

impl ArrivalStream for PoissonStream {
    fn next_job(&mut self) -> Option<(SimTime, JobSpec)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Inverse-CDF exponential gap; u ∈ [0, 1) keeps ln finite.
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let gap = -(1.0 - u).ln() * self.mean_gap_ns;
        self.t_ns = self.t_ns.saturating_add(gap as u64);
        let which = self.rng.gen_range(0usize..self.templates.len());
        let iterations = self.rng.gen_range(3u32..=10);
        let mut job = self.templates[which].clone();
        job.name = format!("pj{:07}", self.seq);
        if job.kind == JobKind::Training {
            job.iterations = iterations;
        }
        self.seq += 1;
        Some((SimTime(self.t_ns), job))
    }
}

/// Drain a stream into a vector — for tests and for feeding the retained
/// reference loop (which wants materialized arrivals) the exact jobs a
/// streaming run would see. Not for million-event runs, obviously.
pub fn collect_stream(stream: &mut dyn ArrivalStream) -> Vec<(SimTime, JobSpec)> {
    let mut out = Vec::new();
    while let Some(a) = stream.next_job() {
        out.push(a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    #[test]
    fn stream_is_deterministic_and_ordered() {
        let a = synthetic_stream(50, 7, PolicyPreset::Superneurons, true);
        let b = synthetic_stream(50, 7, PolicyPreset::Superneurons, true);
        assert_eq!(a.len(), 50);
        for ((ta, ja), (tb, jb)) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
            assert_eq!(ja.name, jb.name);
            assert_eq!(ja.workload, jb.workload);
            assert_eq!(ja.batch, jb.batch);
            assert_eq!(ja.replicas, jb.replicas);
        }
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "arrivals sorted");
    }

    #[test]
    fn mixed_stream_contains_both_kinds_deterministically() {
        let a = mixed_serving_stream(60, 4, PolicyPreset::Superneurons, true);
        let b = mixed_serving_stream(60, 4, PolicyPreset::Superneurons, true);
        for ((ta, ja), (tb, jb)) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
            assert_eq!(ja.kind, jb.kind);
        }
        let inf = a
            .iter()
            .filter(|(_, j)| j.kind == JobKind::Inference)
            .count();
        assert!(inf > 0, "stream must carry serving jobs");
        assert!(inf < a.len(), "stream must carry training jobs");
    }

    #[test]
    fn replay_stream_yields_the_trace_in_order() {
        let trace = synthetic_stream(25, 9, PolicyPreset::Superneurons, true);
        let mut s = ReplayStream::new(trace.clone());
        let drained = collect_stream(&mut s);
        assert_eq!(drained.len(), trace.len());
        for ((ta, ja), (tb, jb)) in drained.iter().zip(&trace) {
            assert_eq!(ta, tb);
            assert_eq!(ja.name, jb.name);
        }
        assert!(s.next_job().is_none(), "stream stays exhausted");
    }

    #[test]
    fn poisson_stream_is_deterministic_and_nondecreasing() {
        let mut a = PoissonStream::new(500, 11, SimTime::from_us(200), PolicyPreset::Superneurons);
        let mut b = PoissonStream::new(500, 11, SimTime::from_us(200), PolicyPreset::Superneurons);
        let va = collect_stream(&mut a);
        let vb = collect_stream(&mut b);
        assert_eq!(va.len(), 500);
        assert!(va.windows(2).all(|w| w[0].0 <= w[1].0), "non-decreasing");
        for ((ta, ja), (tb, jb)) in va.iter().zip(&vb) {
            assert_eq!(ta, tb);
            assert_eq!(ja.name, jb.name);
            assert_eq!(ja.workload, jb.workload);
            assert_eq!(ja.iterations, jb.iterations);
        }
        // The mean gap should land in the right ballpark (±50% is plenty
        // for 500 exponential samples — this guards unit mix-ups, not
        // statistics).
        let span = va.last().unwrap().0 .0 as f64;
        let mean = span / 499.0;
        assert!(
            (100_000.0..400_000.0).contains(&mean),
            "mean gap {mean} ns vs requested 200_000"
        );
        let kinds: std::collections::HashSet<_> = va.iter().map(|(_, j)| j.kind).collect();
        assert_eq!(kinds.len(), 2, "mix carries training and inference");
    }

    #[test]
    fn poisson_templates_bound_the_profile_space() {
        let mut s = PoissonStream::new(200, 3, SimTime::from_us(100), PolicyPreset::Superneurons);
        let shapes: std::collections::HashSet<_> = collect_stream(&mut s)
            .into_iter()
            .map(|(_, j)| (j.workload, j.batch, j.replicas, j.kind))
            .collect();
        assert!(
            shapes.len() <= 8,
            "template mix must stay small, got {}",
            shapes.len()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic_stream(20, 1, PolicyPreset::Superneurons, true);
        let b = synthetic_stream(20, 2, PolicyPreset::Superneurons, true);
        assert!(
            a.iter()
                .zip(&b)
                .any(|((_, ja), (_, jb))| ja.workload != jb.workload || ja.batch != jb.batch),
            "seeds must shape the stream"
        );
    }
}
