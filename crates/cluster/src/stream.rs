//! Deterministic synthetic job streams for experiments, benches, and tests.
//!
//! Uses a bare LCG rather than an RNG crate so the stream is a pure,
//! stable function of `(n, seed)` — the determinism tests depend on that.

use sn_sim::SimTime;

use crate::job::{JobSpec, PolicyPreset, Workload};

/// Split-mix style step; good enough spread for workload mixing.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A reproducible stream of `n` jobs arriving over time: mixed synthetic
/// workloads (varying width/depth/batch), mostly single-replica with
/// occasional 2- and 4-replica gangs, all requesting `preset`.
pub fn synthetic_stream(
    n: usize,
    seed: u64,
    preset: PolicyPreset,
    allow_downgrade: bool,
) -> Vec<(SimTime, JobSpec)> {
    let mut state = seed ^ 0x9e3779b97f4a7c15;
    let mut t_ns = 0u64;
    (0..n)
        .map(|i| {
            let width = 8 + 8 * (next(&mut state) % 4) as usize; // 8..=32
            let depth = 2 + (next(&mut state) % 4) as usize; // 2..=5
            let batch = 8 << (next(&mut state) % 3) as usize; // 8/16/32
            let replicas = match next(&mut state) % 10 {
                0 => 4,
                1 | 2 => 2,
                _ => 1,
            };
            let iterations = 3 + (next(&mut state) % 8) as u32; // 3..=10
                                                                // Bursty arrivals: mean ~1 ms apart, occasionally back-to-back.
            t_ns += (next(&mut state) % 2_000_000) * (next(&mut state) % 2);
            let job = JobSpec::new(
                format!("job{i:04}"),
                Workload::Synthetic { width, depth },
                batch,
            )
            .with_iterations(iterations)
            .with_replicas(replicas)
            .with_preset(preset)
            .with_downgrade(allow_downgrade);
            (SimTime(t_ns), job)
        })
        .collect()
}

/// The mixed training + inference serving preset: a reproducible stream in
/// which roughly one job in three is a forward-only serving job (more
/// batches, smaller reservations) co-scheduled against training tenants.
/// Because admission reserves each job's **exact plan peak**, inference
/// replicas slot into the memory training jobs leave unreserved — the
/// co-location the ISSUE-3 tentpole opens.
pub fn mixed_serving_stream(
    n: usize,
    seed: u64,
    preset: PolicyPreset,
    allow_downgrade: bool,
) -> Vec<(SimTime, JobSpec)> {
    let mut state = seed ^ 0xa0761d6478bd642f;
    synthetic_stream(n, seed, preset, allow_downgrade)
        .into_iter()
        .map(|(t, job)| {
            if next(&mut state).is_multiple_of(3) {
                // Serving jobs run more, cheaper "iterations" (batches).
                let batches = job.iterations * 4;
                (t, job.inference().with_iterations(batches))
            } else {
                (t, job)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    #[test]
    fn stream_is_deterministic_and_ordered() {
        let a = synthetic_stream(50, 7, PolicyPreset::Superneurons, true);
        let b = synthetic_stream(50, 7, PolicyPreset::Superneurons, true);
        assert_eq!(a.len(), 50);
        for ((ta, ja), (tb, jb)) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
            assert_eq!(ja.name, jb.name);
            assert_eq!(ja.workload, jb.workload);
            assert_eq!(ja.batch, jb.batch);
            assert_eq!(ja.replicas, jb.replicas);
        }
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "arrivals sorted");
    }

    #[test]
    fn mixed_stream_contains_both_kinds_deterministically() {
        let a = mixed_serving_stream(60, 4, PolicyPreset::Superneurons, true);
        let b = mixed_serving_stream(60, 4, PolicyPreset::Superneurons, true);
        for ((ta, ja), (tb, jb)) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
            assert_eq!(ja.kind, jb.kind);
        }
        let inf = a
            .iter()
            .filter(|(_, j)| j.kind == JobKind::Inference)
            .count();
        assert!(inf > 0, "stream must carry serving jobs");
        assert!(inf < a.len(), "stream must carry training jobs");
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic_stream(20, 1, PolicyPreset::Superneurons, true);
        let b = synthetic_stream(20, 2, PolicyPreset::Superneurons, true);
        assert!(
            a.iter()
                .zip(&b)
                .any(|((_, ja), (_, jb))| ja.workload != jb.workload || ja.batch != jb.batch),
            "seeds must shape the stream"
        );
    }
}
