//! Memory-aware admission control.
//!
//! Before a job touches a device, the scheduler predicts its peak device
//! bytes under each candidate policy preset by **compiling a
//! [`sn_runtime::MemoryPlan`]** ([`sn_runtime::plan_prediction`] /
//! [`sn_runtime::plan_prediction_inference`]) — no simulated iteration runs
//! on the admission hot path. The plan's peak walks the paper's `peak_m`
//! progression (baseline `Σ l_f + Σ l_b` down to `max_i(l_i)` for the full
//! stack) and is **exact**: the executor replays the plan's alloc/free
//! sequence, so the reservation equals the runtime high-water to the byte.
//! A job is only placed where that peak fits the device's *unreserved*
//! bytes, so the sum of reservations on a device can never exceed its DRAM
//! — the central multi-tenancy invariant.
//!
//! Predictions are made against a device capped to the candidate budget
//! (`spec.with_dram(budget)`), because the runtime adapts to pressure: the
//! dynamic workspace policy and the Tensor Cache shrink their footprint when
//! memory is scarce. The returned peak is the high-water mark of that exact
//! adaptive plan, so reserving it is sound by construction.
//!
//! Gang replicas reserve the same per-replica plan peak: the group runtime's
//! collectives stage through `GroupPlan::comm_workspace_bytes`, which is
//! modeled *outside* the heap pool (that separation is what keeps the peak
//! byte-identical to the single-device plan). The comm staging is reported,
//! not reserved — a deployment sizing real NCCL-style ring buffers would
//! add that fixed figure to each gang replica's reservation.

use std::sync::Mutex;

use fxhash::FxHashMap;
use sn_runtime::{
    plan_prediction, plan_prediction_inference, GroupConfig, GroupExecutor, Interconnect,
    PeakPrediction,
};
use sn_sim::{DeviceSpec, SimTime};

use crate::job::{JobKind, JobSpec, PolicyPreset, Workload};

/// Memoization key: everything the prediction depends on. Perf-relevant
/// device fields are folded in bit-exactly so heterogeneous fleets that
/// reuse a card name cannot alias — and the key carries the **device-spec
/// cap** the prediction was compiled against (`capped_dram`, the DRAM of
/// `spec.with_dram(budget)`), not just the preset: the planner adapts its
/// evictions and workspaces to that cap, so a peak compiled for a larger
/// device must never be reused for a smaller one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProfileKey {
    workload: Workload,
    batch: usize,
    preset: PolicyPreset,
    kind: JobKind,
    device: String,
    /// The cap applied to the prediction device: `capped.dram_bytes`.
    capped_dram: u64,
    gflops_bits: u64,
    mem_bw_bits: u64,
    h2d_bits: u64,
    d2h_bits: u64,
    unpinned_bits: u64,
    malloc_base_ns: u64,
    malloc_per_mib_ns: u64,
    free_base_ns: u64,
    kernel_launch_ns: u64,
}

impl ProfileKey {
    fn new(
        w: Workload,
        batch: usize,
        preset: PolicyPreset,
        kind: JobKind,
        capped: &DeviceSpec,
    ) -> Self {
        ProfileKey {
            workload: w,
            batch,
            preset,
            kind,
            device: capped.name.clone(),
            capped_dram: capped.dram_bytes,
            gflops_bits: capped.peak_gflops.to_bits(),
            mem_bw_bits: capped.mem_bw_gbps.to_bits(),
            h2d_bits: capped.pcie_h2d_gbps.to_bits(),
            d2h_bits: capped.pcie_d2h_gbps.to_bits(),
            unpinned_bits: capped.unpinned_factor.to_bits(),
            malloc_base_ns: capped.malloc_base.0,
            malloc_per_mib_ns: capped.malloc_per_mib.0,
            free_base_ns: capped.free_base.0,
            kernel_launch_ns: capped.kernel_launch.0,
        }
    }
}

/// Gang measurement key: the replica's profile key extended with the gang
/// size and the fabric — replica counts can never alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GangKey {
    profile: ProfileKey,
    replicas: usize,
    ic_gbps_bits: u64,
    ic_latency_ns: u64,
}

/// Memoizing wrapper around the plan compiler: the cluster loop re-evaluates
/// queued jobs at every event, but distinct (workload, batch, preset, kind,
/// capped device) tuples are few, so each prediction compiles at most once.
/// `None` records "does not fit within this budget".
///
/// The caches are `Mutex`-guarded Fx-hashed maps (the keys are internal
/// structs — no untrusted input, no need for SipHash), which makes the
/// profiler `Sync`: admission sweeps evaluate ladder candidates for many
/// devices concurrently over the rayon shim, all sharing this memo. A
/// concurrent miss may compile the same prediction twice; both results are
/// identical (compilation is deterministic) and the last insert wins.
#[derive(Default)]
pub struct Profiler {
    cache: Mutex<FxHashMap<ProfileKey, Option<PeakPrediction>>>,
    /// Measured gang step times: one group execution per distinct
    /// (workload, batch, preset, capped device, replicas, fabric) tuple.
    gang: Mutex<FxHashMap<GangKey, Option<SimTime>>>,
}

impl Profiler {
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Predicted cost of one replica of (`workload`, `batch`, `kind`) under
    /// `preset` on `spec` given `budget` bytes of device memory, or `None`
    /// if it cannot run within the budget. Compile-only: no iteration is
    /// simulated.
    pub fn profile_kind(
        &self,
        workload: Workload,
        batch: usize,
        preset: PolicyPreset,
        kind: JobKind,
        spec: &DeviceSpec,
        budget: u64,
    ) -> Option<PeakPrediction> {
        let capped = spec.clone().with_dram(budget);
        let key = ProfileKey::new(workload, batch, preset, kind, &capped);
        if let Some(hit) = self.cache.lock().unwrap().get(&key) {
            return *hit;
        }
        let net = workload.build(batch);
        let result = match kind {
            JobKind::Training => plan_prediction(&net, &capped, preset.policy()).ok(),
            JobKind::Inference => plan_prediction_inference(&net, &capped, preset.policy()).ok(),
        };
        self.cache.lock().unwrap().insert(key, result);
        result
    }

    /// Is this prediction already memoized? One hash lookup — the cluster
    /// loop uses it to decide whether a candidate sweep has any cold
    /// compiles worth fanning out worker threads for (a warm sweep is a
    /// handful of map hits; spawning threads for it costs more than it
    /// saves).
    pub fn is_cached(
        &self,
        workload: Workload,
        batch: usize,
        preset: PolicyPreset,
        kind: JobKind,
        spec: &DeviceSpec,
        budget: u64,
    ) -> bool {
        let capped = spec.clone().with_dram(budget);
        let key = ProfileKey::new(workload, batch, preset, kind, &capped);
        self.cache.lock().unwrap().contains_key(&key)
    }

    /// [`Profiler::profile_kind`] for training jobs (the historical entry
    /// point, kept for tests and benches).
    pub fn profile(
        &self,
        workload: Workload,
        batch: usize,
        preset: PolicyPreset,
        spec: &DeviceSpec,
        budget: u64,
    ) -> Option<PeakPrediction> {
        self.profile_kind(workload, batch, preset, JobKind::Training, spec, budget)
    }

    /// Measured step time of a `replicas`-wide gang of (`workload`,
    /// `batch`) under `preset` on `spec` (the *capped* device the replica
    /// profile was compiled against): compiles the
    /// [`sn_runtime::GroupPlan`] — whose per-replica bytes are the exact
    /// plan the reservation came from — and drives the group interpreter
    /// for a cold and a warm iteration, returning the warm gang step
    /// (slowest replica + overlapped bucketed all-reduce). Memoized; the
    /// gang key carries the replica count, so gang sizes never alias.
    /// `None` means the gang cannot run within the budget.
    pub fn gang_step_time(
        &self,
        workload: Workload,
        batch: usize,
        preset: PolicyPreset,
        replicas: usize,
        spec: &DeviceSpec,
        interconnect: Interconnect,
    ) -> Option<SimTime> {
        let key = GangKey {
            profile: ProfileKey::new(workload, batch, preset, JobKind::Training, spec),
            replicas,
            ic_gbps_bits: interconnect.gbps.to_bits(),
            ic_latency_ns: interconnect.latency.0,
        };
        if let Some(hit) = self.gang.lock().unwrap().get(&key) {
            return *hit;
        }
        let net = workload.build(batch);
        // Tuned presets carry their own all-reduce bucket target; the gang
        // must be measured with it or the tuned step time would be fiction.
        let cfg = GroupConfig::new(replicas, interconnect).with_bucket_bytes(preset.bucket_bytes());
        let result = GroupExecutor::new(&net, spec.clone(), preset.policy(), cfg)
            .ok()
            .and_then(|mut gx| {
                gx.run_iteration().ok()?; // cold (allocator warm-up)
                let warm = gx.run_iteration().ok()?;
                debug_assert!(warm.peaks_match, "gang replica diverged from its plan");
                Some(warm.step_time)
            });
        self.gang.lock().unwrap().insert(key, result);
        result
    }

    /// Number of distinct predictions compiled so far.
    pub fn simulated(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Number of distinct gang step measurements executed so far.
    pub fn gangs_measured(&self) -> usize {
        self.gang.lock().unwrap().len()
    }
}

/// One replica's placement: the concrete device, the quantized budget its
/// plan was compiled against, and the prediction read off that plan. The
/// budget rides along so gang execution can be measured against the *exact*
/// capped device the reservation was predicted on.
#[derive(Debug, Clone)]
pub struct Placement {
    pub device: usize,
    pub budget: u64,
    pub prediction: PeakPrediction,
}

/// A successful admission: the preset the job will actually run under (may
/// be memory-stronger than requested) and one [`Placement`] per replica on
/// distinct devices (gang scheduling).
#[derive(Debug, Clone)]
pub struct Grant {
    pub preset: PolicyPreset,
    pub placements: Vec<Placement>,
}

impl Grant {
    /// The slowest replica's iteration time — the gang's lockstep pace.
    pub fn replica_iter_time(&self) -> sn_sim::SimTime {
        self.placements
            .iter()
            .map(|p| p.prediction.iter_time)
            .max()
            .unwrap_or(sn_sim::SimTime::ZERO)
    }

    /// Gradient payload for the gang's per-iteration all-reduce.
    pub fn weight_bytes(&self) -> u64 {
        self.placements
            .first()
            .map(|p| p.prediction.weight_bytes)
            .unwrap_or(0)
    }

    /// The placement that paces the gang (largest predicted iteration
    /// time; ties break toward the lowest device index for determinism).
    pub fn slowest(&self) -> Option<&Placement> {
        self.placements
            .iter()
            .min_by_key(|p| (std::cmp::Reverse(p.prediction.iter_time), p.device))
    }
}

/// Prediction budget for a device with `free` unreserved bytes: rounded
/// *down* to a 1/32-of-DRAM quantum. Sound (the predicted peak fits under
/// the real free space) and it collapses the profiler's memo key space to at
/// most 32 budgets per device. Admission and the idle-fleet feasibility
/// check MUST use the same rounding, or a boundary job could be judged
/// feasible yet never admitted.
pub fn quantized_budget(spec: &DeviceSpec, free: u64) -> u64 {
    let quantum = (spec.dram_bytes / 32).max(1);
    free - free % quantum
}

/// Check whether `job` could run on an *idle* fleet — the "reject vs queue"
/// discriminator. Walks the same preset ladder (and budget rounding) that
/// admission uses.
pub fn feasible_on_idle_fleet(
    profiler: &Profiler,
    fleet: &crate::fleet::Fleet,
    job: &JobSpec,
) -> bool {
    if job.replicas == 0 || job.replicas > fleet.len() {
        return false;
    }
    for preset in ladder_for(job) {
        // One compile per distinct device spec. Cold predictions are swept
        // concurrently; when everything is already memoized (the common
        // case — the cluster loop re-asks at every event) the sweep is a
        // few map hits and runs inline rather than spawning workers.
        let check = |spec: &DeviceSpec| {
            let budget = quantized_budget(spec, spec.dram_bytes);
            budget > 0
                && profiler
                    .profile_kind(job.workload, job.batch, preset, job.kind, spec, budget)
                    .is_some()
        };
        let any_cold = rayon::current_num_threads() > 1
            && fleet.devices.iter().any(|spec| {
                let budget = quantized_budget(spec, spec.dram_bytes);
                budget > 0
                    && !profiler.is_cached(job.workload, job.batch, preset, job.kind, spec, budget)
            });
        let fitting = if any_cold {
            rayon::par_map(&fleet.devices, check)
                .into_iter()
                .filter(|ok| *ok)
                .count()
        } else {
            fleet.devices.iter().filter(|spec| check(spec)).count()
        };
        if fitting >= job.replicas {
            return true;
        }
    }
    false
}

/// [`feasible_on_idle_fleet`] restricted to an arbitrary device subset —
/// the live (non-failed) devices, under fault injection. Discriminates
/// "wait for the fleet to heal" (feasible on the full fleet but not here:
/// backoff and retry) from "wait for reservations to drain" (feasible here:
/// stay queued). Serial: it runs only when the live set shrank, which is
/// rare next to admission passes.
pub fn feasible_on_device_subset(
    profiler: &Profiler,
    devices: &[&DeviceSpec],
    job: &JobSpec,
) -> bool {
    if job.replicas == 0 || job.replicas > devices.len() {
        return false;
    }
    for preset in ladder_for(job) {
        let fitting = devices
            .iter()
            .filter(|spec| {
                let budget = quantized_budget(spec, spec.dram_bytes);
                budget > 0
                    && profiler
                        .profile_kind(job.workload, job.batch, preset, job.kind, spec, budget)
                        .is_some()
            })
            .count();
        if fitting >= job.replicas {
            return true;
        }
    }
    false
}

/// The preset sequence admission tries for `job`.
pub fn ladder_for(job: &JobSpec) -> Vec<PolicyPreset> {
    if job.allow_downgrade {
        job.preset.ladder().collect()
    } else {
        vec![job.preset]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;
    use sn_runtime::Interconnect;

    fn tiny_fleet(dram: u64) -> Fleet {
        Fleet::homogeneous(2, DeviceSpec::k40c().with_dram(dram), Interconnect::pcie())
    }

    #[test]
    fn profiler_memoizes() {
        let p = Profiler::new();
        let w = Workload::Synthetic { width: 8, depth: 2 };
        let spec = DeviceSpec::k40c();
        let a = p.profile(w, 8, PolicyPreset::Superneurons, &spec, spec.dram_bytes);
        let b = p.profile(w, 8, PolicyPreset::Superneurons, &spec, spec.dram_bytes);
        assert_eq!(a, b);
        assert_eq!(p.simulated(), 1);
        p.profile(w, 8, PolicyPreset::Baseline, &spec, spec.dram_bytes);
        assert_eq!(p.simulated(), 2);
    }

    #[test]
    fn prediction_respects_budget() {
        let p = Profiler::new();
        let w = Workload::Synthetic {
            width: 32,
            depth: 6,
        };
        let spec = DeviceSpec::k40c();
        let full = p
            .profile(w, 32, PolicyPreset::Superneurons, &spec, spec.dram_bytes)
            .expect("fits a 12 GB device");
        assert!(full.peak_bytes <= spec.dram_bytes);
        // Within a tiny budget the same job must either adapt below the
        // budget or be declared infeasible — never "fit" above it.
        let budget = 16 << 20;
        if let Some(tight) = p.profile(w, 32, PolicyPreset::Superneurons, &spec, budget) {
            assert!(tight.peak_bytes <= budget);
        }
    }

    #[test]
    fn stronger_presets_predict_smaller_peaks() {
        let p = Profiler::new();
        let w = Workload::Synthetic {
            width: 32,
            depth: 8,
        };
        let spec = DeviceSpec::k40c();
        let base = p
            .profile(w, 16, PolicyPreset::Baseline, &spec, spec.dram_bytes)
            .unwrap();
        let sn = p
            .profile(w, 16, PolicyPreset::Superneurons, &spec, spec.dram_bytes)
            .unwrap();
        assert!(
            sn.peak_bytes < base.peak_bytes,
            "superneurons {} must undercut baseline {}",
            sn.peak_bytes,
            base.peak_bytes
        );
    }

    #[test]
    fn memo_key_includes_the_device_cap() {
        // Satellite regression: heterogeneous fleets reuse card names, and
        // the planner adapts to the capped DRAM — a peak compiled for a
        // larger cap must never be served for a smaller one. Two budgets on
        // the "same" card must produce two cache entries (and, under real
        // pressure, different adaptive peaks).
        let p = Profiler::new();
        let w = Workload::Synthetic {
            width: 64,
            depth: 8,
        };
        let spec = DeviceSpec::k40c();
        let roomy = p
            .profile(w, 32, PolicyPreset::Superneurons, &spec, spec.dram_bytes)
            .expect("fits uncapped");
        let tight = p
            .profile(w, 32, PolicyPreset::Superneurons, &spec, 48 << 20)
            .expect("adapts under a 48 MB cap");
        assert_eq!(p.simulated(), 2, "distinct caps must not share an entry");
        assert!(tight.peak_bytes <= 48 << 20);
        assert!(
            tight.peak_bytes < roomy.peak_bytes,
            "the adaptive plan must shrink under the cap: {} vs {}",
            tight.peak_bytes,
            roomy.peak_bytes
        );
    }

    #[test]
    fn inference_profiles_reserve_less_than_training() {
        let p = Profiler::new();
        let w = Workload::Synthetic {
            width: 32,
            depth: 6,
        };
        let spec = DeviceSpec::k40c();
        let train = p
            .profile_kind(
                w,
                32,
                PolicyPreset::Superneurons,
                JobKind::Training,
                &spec,
                spec.dram_bytes,
            )
            .unwrap();
        let infer = p
            .profile_kind(
                w,
                32,
                PolicyPreset::Superneurons,
                JobKind::Inference,
                &spec,
                spec.dram_bytes,
            )
            .unwrap();
        assert_eq!(p.simulated(), 2, "kinds must not alias in the memo key");
        assert!(
            infer.peak_bytes < train.peak_bytes,
            "forward-only {} must undercut training {}",
            infer.peak_bytes,
            train.peak_bytes
        );
        assert!(infer.iter_time < train.iter_time);
    }

    #[test]
    fn tuned_and_hand_presets_never_alias_in_the_memo() {
        // A tuned bundle whose policy happens to coincide with the full
        // superneurons stack: the preset rides in the memo key, so the two
        // predictions must occupy distinct entries (and a later change to
        // the tuned policy could never be served a stale hand compile).
        let id = sn_runtime::tune::register(sn_runtime::TunedPolicy {
            policy: sn_runtime::Policy::superneurons(),
            bucket_bytes: 8 << 20,
            step_time: SimTime::from_us(10),
            plan_peak_bytes: 1,
            executed_peak_bytes: 1,
            hand_step_time: SimTime::from_us(12),
            hand_name: "superneurons",
            seed: 0,
            evals: 0,
            pruned: 0,
            trace_digest: 0,
        });
        let p = Profiler::new();
        let w = Workload::Synthetic { width: 8, depth: 2 };
        let spec = DeviceSpec::k40c();
        let hand = p
            .profile(w, 8, PolicyPreset::Superneurons, &spec, spec.dram_bytes)
            .unwrap();
        let tuned = p
            .profile(w, 8, PolicyPreset::Tuned(id), &spec, spec.dram_bytes)
            .unwrap();
        assert_eq!(hand, tuned, "identical policies predict identically");
        assert_eq!(p.simulated(), 2, "but they must never share a memo entry");
        // The gang path must measure tuned gangs with their tuned bucket.
        assert_eq!(PolicyPreset::Tuned(id).bucket_bytes(), 8 << 20);
        let step = p.gang_step_time(
            w,
            8,
            PolicyPreset::Tuned(id),
            2,
            &spec,
            Interconnect::pcie(),
        );
        assert!(step.is_some());
        assert_eq!(p.gangs_measured(), 1);
    }

    #[test]
    fn infeasible_jobs_are_detected_on_idle_fleet() {
        let profiler = Profiler::new();
        // 32 MB devices: a wide synthetic net under pure baseline won't fit
        // (peak ≈ 262 MB), but the adaptive full stack squeezes under the
        // cap (peak ≈ 30 MB).
        let fleet = tiny_fleet(32 << 20);
        let job = JobSpec::new(
            "big",
            Workload::Synthetic {
                width: 64,
                depth: 8,
            },
            32,
        )
        .with_preset(PolicyPreset::Baseline)
        .with_downgrade(false);
        assert!(!feasible_on_idle_fleet(&profiler, &fleet, &job));
        // With the downgrade ladder the full memory stack squeezes it in.
        let job = job.with_downgrade(true);
        assert!(feasible_on_idle_fleet(&profiler, &fleet, &job));
        // More replicas than devices is never feasible.
        let gang = JobSpec::new("gang", Workload::LeNet, 8).with_replicas(3);
        assert!(!feasible_on_idle_fleet(&profiler, &fleet, &gang));
    }
}
