//! The device fleet: a set of (possibly heterogeneous) simulated GPUs plus
//! the interconnect gang-scheduled replicas exchange gradients over.

use sn_runtime::Interconnect;
use sn_sim::DeviceSpec;

/// A cluster of simulated devices.
#[derive(Clone)]
pub struct Fleet {
    pub devices: Vec<DeviceSpec>,
    pub interconnect: Interconnect,
}

impl Fleet {
    /// `n` identical devices.
    pub fn homogeneous(n: usize, spec: DeviceSpec, interconnect: Interconnect) -> Fleet {
        Fleet {
            devices: vec![spec; n],
            interconnect,
        }
    }

    pub fn len(&self) -> usize {
        self.devices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Aggregate DRAM across the fleet.
    pub fn total_dram(&self) -> u64 {
        self.devices.iter().map(|d| d.dram_bytes).sum()
    }

    /// The largest single-device DRAM — the upper bound any one replica's
    /// reservation can ever reach.
    pub fn max_device_dram(&self) -> u64 {
        self.devices.iter().map(|d| d.dram_bytes).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_fleet_sums_dram() {
        let f = Fleet::homogeneous(
            4,
            DeviceSpec::k40c().with_dram(1 << 30),
            Interconnect::pcie(),
        );
        assert_eq!(f.len(), 4);
        assert_eq!(f.total_dram(), 4 << 30);
        assert_eq!(f.max_device_dram(), 1 << 30);
    }
}
