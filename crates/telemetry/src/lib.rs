//! # sn-telemetry — the unified observability substrate
//!
//! Every layer of the stack — the discrete-event sim engine, the
//! plan/interpret runtime, the device group, the cluster scheduler — needs
//! to be *seen into* before it can be optimized: the paper's own evidence is
//! observational (Fig. 10 plots per-step resident bytes, Table 3 decomposes
//! iteration time into compute vs. transfer). This crate provides the two
//! pillars that instrumentation reports through, with **zero dependencies**
//! (std only — the workspace builds offline):
//!
//! * **[`TraceSink`]** — a timeline recorder of spans, instants and flow
//!   arrows over named tracks, exported as Chrome trace-event JSON
//!   (`.trace.json`, loadable in Perfetto or `chrome://tracing`). The sim
//!   engine feeds it one track per stream (compute, H2D, D2H, Link × device)
//!   and draws a flow arrow for every cross-stream `Event` gate, so overlap
//!   and lockstep collective gating are visually inspectable.
//! * **[`MetricsRegistry`]** — typed [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s behind cheap cloneable handles, with a
//!   stable JSON snapshot format the bench harness embeds into
//!   `BENCH_*.json` artifacts.
//!
//! **The zero-overhead-when-disabled contract**: a [`TraceSink::off`] sink
//! records nothing and allocates nothing; instrumented code guards every
//! label construction behind an is-enabled check, so the disabled path costs
//! one branch per operation. The `compile` bench's `serial_ok` gate (planner
//! throughput ≥3x the reference) runs with the no-op sink and is the CI
//! proof that instrumentation is free when off.

pub mod metrics;
pub mod trace;

pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{
    ArgValue, FlowData, InstantData, SpanData, SpanId, TraceCheck, TraceData, TraceSink, TrackData,
    TrackId,
};

/// Minimal JSON string escaping (quotes, backslash, control characters) —
/// the same convention `sn-cluster`'s hand-rolled report JSON uses; kept
/// here so both pillars emit valid JSON without a serde dependency.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::json_str;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny\u{1}"), "\"x\\ny\\u0001\"");
    }
}
