//! The metrics registry: typed counters, gauges, and log₂-bucketed
//! histograms behind cheap cloneable handles.
//!
//! A [`MetricsRegistry`] maps stable dotted names (`"plan.memo.hit"`,
//! `"cluster.latency_ns"`) to metrics. Instrumented code calls
//! [`counter`](MetricsRegistry::counter) / [`gauge`](MetricsRegistry::gauge)
//! / [`histogram`](MetricsRegistry::histogram) **once** to obtain a handle
//! (an `Arc`-shared atomic), then updates through the handle on the hot path
//! — no name lookup, no lock, just a relaxed atomic op.
//! [`snapshot`](MetricsRegistry::snapshot) freezes everything into a sorted
//! [`MetricsSnapshot`] whose [`to_json`](MetricsSnapshot::to_json) is the
//! stable schema the bench harness embeds into `BENCH_*.json`.
//!
//! Histograms bucket by log₂: bucket 0 counts zero values, bucket *i* ≥ 1
//! covers `[2^(i-1), 2^i)`. 65 buckets span the full `u64` range, so
//! nanosecond latencies and byte sizes both fit without configuration.
//!
//! There is one process-wide [`global`] registry for metrics owned by
//! process-wide caches (the plan and group memos); everything per-run
//! (executor counters, cluster admission) takes an explicit registry so
//! concurrent tests never observe each other's counts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json_str;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value (resident bytes, queue depth).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per possible
/// `u64` bit length.
pub const HIST_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistInner {
    fn default() -> HistInner {
        HistInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistInner>);

/// Bucket index of a value: 0 for 0, else `1 + floor(log2 v)` so bucket
/// `i ≥ 1` covers `[2^(i-1), 2^i)`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    pub fn record(&self, v: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// A frozen histogram: total count/sum plus per-bucket counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i <= 1 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// The mean sample, or 0.0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The named-metric registry. Cloning shares the underlying map.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get-or-create the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// Get-or-create the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} is not a gauge: {other:?}"),
        }
    }

    /// Get-or-create the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    /// Freeze every registered metric into a sorted snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// The process-wide registry, for metrics owned by process-wide state (the
/// plan and group memo caches). Per-run instrumentation should take an
/// explicit [`MetricsRegistry`] instead.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::default)
}

/// A frozen registry: every metric by (sorted) name. `to_json` is the
/// stable snapshot schema embedded in bench artifacts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The stable JSON schema:
    ///
    /// ```json
    /// {"counters":{"name":n,...},
    ///  "gauges":{"name":n,...},
    ///  "histograms":{"name":{"count":n,"sum":n,"buckets":[{"lo":n,"n":n},...]},...}}
    /// ```
    ///
    /// Names are sorted; empty histogram buckets are omitted from the
    /// bucket list (their `lo` bounds make the encoding self-describing).
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("{}:{v}", json_str(n)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(n, v)| format!("{}:{v}", json_str(n)))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c > 0)
                    .map(|(i, c)| {
                        format!("{{\"lo\":{},\"n\":{c}}}", HistogramSnapshot::bucket_lo(i))
                    })
                    .collect();
                format!(
                    "{}:{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                    json_str(n),
                    h.count,
                    h.sum,
                    buckets.join(",")
                )
            })
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counter("x"), Some(5));
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        assert_eq!(reg.snapshot().gauge("depth"), Some(5));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);

        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [0u64, 1, 2, 3, 1024] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1030);
        assert_eq!(snap.buckets[0], 1); // the zero
        assert_eq!(snap.buckets[1], 1); // 1
        assert_eq!(snap.buckets[2], 2); // 2, 3
        assert_eq!(snap.buckets[11], 1); // 1024 in [1024, 2048)
                                         // Bucket totals always equal the count.
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn bucket_bounds_are_self_describing() {
        assert_eq!(HistogramSnapshot::bucket_lo(0), 0);
        assert_eq!(HistogramSnapshot::bucket_lo(1), 0);
        assert_eq!(HistogramSnapshot::bucket_lo(2), 2);
        assert_eq!(HistogramSnapshot::bucket_lo(11), 1024);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.gauge("x");
        reg.counter("x");
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").inc();
        reg.gauge("depth").set(-3);
        reg.histogram("lat").record(5);
        let json = reg.snapshot().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a.first\":1,\"b.second\":2},\
             \"gauges\":{\"depth\":-3},\
             \"histograms\":{\"lat\":{\"count\":1,\"sum\":5,\"buckets\":[{\"lo\":4,\"n\":1}]}}}"
        );
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("test.global.shared");
        let before = c.get();
        global().counter("test.global.shared").inc();
        assert_eq!(c.get(), before + 1);
    }

    #[test]
    fn mean_of_empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().mean(), 0.0);
        h.record(4);
        h.record(6);
        assert_eq!(h.snapshot().mean(), 5.0);
    }
}
