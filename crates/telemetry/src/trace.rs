//! Timeline tracing: tracks, spans, instants and flow arrows, exported as
//! Chrome trace-event JSON.
//!
//! The model mirrors what Perfetto renders. A **track** is one horizontal
//! lane, grouped under a named **process** (here: one process per simulated
//! device, one track per engine stream, plus a "cluster" process with one
//! track per tenant). A **span** is a closed interval on a track (a kernel,
//! a DMA, a collective, a job's running phase); an **instant** is a point
//! marker (arrival, rejection); a **flow** is an arrow from the end of one
//! span to the start of another, used to draw cross-stream [`Event`] gates
//! (prefetch → kernel, backward → all-reduce).
//!
//! [`TraceSink`] is the cheap cloneable handle instrumented code holds. The
//! disabled sink ([`TraceSink::off`]) carries no storage at all; every
//! recording method returns immediately, and callers are expected to guard
//! label *construction* behind [`TraceSink::is_enabled`] (or the engine's
//! `tracing()` convenience) so the off path never allocates.
//!
//! Times are integer nanoseconds, matching `sn-sim`'s `SimTime`; the Chrome
//! exporter emits microseconds with three decimals, so no precision is lost.
//!
//! [`Event`]: https://docs.rs/sn-sim (the sim engine's completion events)

use std::sync::{Arc, Mutex};

use crate::json_str;

/// Identifies a track (one timeline lane) within a sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub u32);

/// Identifies a recorded span within a sink. [`SpanId::NONE`] is the null
/// id: flow arrows with a `NONE` endpoint are silently dropped, so callers
/// can pass through failed lookups without branching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The null span id; flows referencing it are ignored.
    pub const NONE: SpanId = SpanId(u32::MAX);

    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }
}

/// A typed span-argument value, shown in Perfetto's detail pane.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    U64(u64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::U64(v as u64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> ArgValue {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> ArgValue {
        ArgValue::Bool(v)
    }
}

impl ArgValue {
    fn to_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::F64(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    // JSON has no NaN/Inf; stringify rather than corrupt.
                    json_str(&v.to_string())
                }
            }
            ArgValue::Str(s) => json_str(s),
            ArgValue::Bool(b) => b.to_string(),
        }
    }
}

/// A track definition: a lane named `name` under process `process`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackData {
    pub process: String,
    pub name: String,
}

/// One closed interval on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanData {
    pub track: TrackId,
    pub name: String,
    /// Category string (Chrome `cat` field) — groups spans for filtering,
    /// e.g. `"kernel"`, `"dma"`, `"collective"`, `"job"`.
    pub cat: &'static str,
    pub start_ns: u64,
    pub end_ns: u64,
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A point marker on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantData {
    pub track: TrackId,
    pub name: String,
    pub cat: &'static str,
    pub at_ns: u64,
    pub args: Vec<(&'static str, ArgValue)>,
}

/// An arrow from the end of span `from` to the start of span `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowData {
    pub from: SpanId,
    pub to: SpanId,
}

/// The recorded trace: everything a sink has accumulated, in emission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    pub tracks: Vec<TrackData>,
    pub spans: Vec<SpanData>,
    pub instants: Vec<InstantData>,
    pub flows: Vec<FlowData>,
}

/// Result of [`TraceSink::validate`] / [`TraceData::validate`]: the
/// structural invariants every exported trace must satisfy, plus event
/// counts for gating "the trace is non-trivial".
#[derive(Debug, Clone, Default)]
pub struct TraceCheck {
    pub tracks: usize,
    pub spans: usize,
    pub instants: usize,
    pub flows: usize,
    /// Human-readable invariant violations; empty means the trace is valid.
    pub errors: Vec<String>,
}

impl TraceCheck {
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }
}

/// The recording handle. Cloning shares the underlying buffer; the
/// [`off`](TraceSink::off) sink holds no buffer and records nothing.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Mutex<TraceData>>>,
}

impl TraceSink {
    /// The no-op sink: records nothing, allocates nothing. This is the
    /// zero-overhead-when-disabled configuration.
    pub fn off() -> TraceSink {
        TraceSink { inner: None }
    }

    /// A live sink recording into a fresh shared buffer.
    pub fn recording() -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(Mutex::new(TraceData::default()))),
        }
    }

    /// Whether this sink records. Instrumented code should guard any label
    /// construction (formatting, cloning names) behind this.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Get-or-create the track named `name` under `process`. Returns a
    /// stable id; calling again with the same pair returns the same id.
    /// On a disabled sink returns `TrackId(0)` (which no span will record).
    pub fn track(&self, process: &str, name: &str) -> TrackId {
        let Some(inner) = &self.inner else {
            return TrackId(0);
        };
        let mut data = inner.lock().unwrap();
        if let Some(i) = data
            .tracks
            .iter()
            .position(|t| t.process == process && t.name == name)
        {
            return TrackId(i as u32);
        }
        data.tracks.push(TrackData {
            process: process.to_string(),
            name: name.to_string(),
        });
        TrackId((data.tracks.len() - 1) as u32)
    }

    /// Record a span with no arguments. Returns its id ([`SpanId::NONE`]
    /// on a disabled sink).
    pub fn span(
        &self,
        track: TrackId,
        name: &str,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanId {
        self.span_with(track, name.to_string(), cat, start_ns, end_ns, Vec::new())
    }

    /// Record a span with arguments, taking ownership of the label to avoid
    /// a second allocation on the hot path.
    pub fn span_with(
        &self,
        track: TrackId,
        name: String,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        debug_assert!(start_ns <= end_ns, "span {name:?} ends before it starts");
        let mut data = inner.lock().unwrap();
        data.spans.push(SpanData {
            track,
            name,
            cat,
            start_ns,
            end_ns,
            args,
        });
        SpanId((data.spans.len() - 1) as u32)
    }

    /// Record a point marker.
    pub fn instant(
        &self,
        track: TrackId,
        name: &str,
        cat: &'static str,
        at_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let Some(inner) = &self.inner else { return };
        inner.lock().unwrap().instants.push(InstantData {
            track,
            name: name.to_string(),
            cat,
            at_ns,
            args,
        });
    }

    /// Record a flow arrow between two recorded spans. A [`SpanId::NONE`]
    /// endpoint (failed lookup, disabled sink) drops the arrow silently, so
    /// every recorded flow references real spans by construction.
    pub fn flow(&self, from: SpanId, to: SpanId) {
        if from.is_none() || to.is_none() {
            return;
        }
        let Some(inner) = &self.inner else { return };
        inner.lock().unwrap().flows.push(FlowData { from, to });
    }

    /// A snapshot of everything recorded so far.
    pub fn data(&self) -> TraceData {
        match &self.inner {
            Some(inner) => inner.lock().unwrap().clone(),
            None => TraceData::default(),
        }
    }

    /// Check structural invariants; see [`TraceData::validate`].
    pub fn validate(&self) -> TraceCheck {
        self.data().validate()
    }

    /// Export as Chrome trace-event JSON; see [`TraceData::export_chrome_json`].
    pub fn export_chrome_json(&self) -> String {
        self.data().export_chrome_json()
    }
}

impl TraceData {
    /// Verify the invariants the bench gates rely on:
    /// 1. every span/instant references a defined track;
    /// 2. per track, spans are time-ordered and non-overlapping (the engine
    ///    serializes each stream, so its track must read as a sequence);
    /// 3. every flow arrow's endpoints are recorded spans, with the arrow
    ///    pointing forward in time (destination starts no earlier than the
    ///    source ends).
    pub fn validate(&self) -> TraceCheck {
        let mut check = TraceCheck {
            tracks: self.tracks.len(),
            spans: self.spans.len(),
            instants: self.instants.len(),
            flows: self.flows.len(),
            errors: Vec::new(),
        };
        for (i, s) in self.spans.iter().enumerate() {
            if s.track.0 as usize >= self.tracks.len() {
                check.errors.push(format!(
                    "span {i} ({}) on undefined track {:?}",
                    s.name, s.track
                ));
            }
            if s.start_ns > s.end_ns {
                check
                    .errors
                    .push(format!("span {i} ({}) ends before it starts", s.name));
            }
        }
        for (i, m) in self.instants.iter().enumerate() {
            if m.track.0 as usize >= self.tracks.len() {
                check.errors.push(format!(
                    "instant {i} ({}) on undefined track {:?}",
                    m.name, m.track
                ));
            }
        }
        // Per-track ordering: spans are recorded in submission order, and
        // each engine stream serializes, so within a track the sequence must
        // be non-overlapping and non-decreasing.
        let mut last_end: Vec<Option<(u64, usize)>> = vec![None; self.tracks.len()];
        for (i, s) in self.spans.iter().enumerate() {
            let t = s.track.0 as usize;
            if t >= last_end.len() {
                continue; // already reported above
            }
            if let Some((end, prev)) = last_end[t] {
                if s.start_ns < end {
                    check.errors.push(format!(
                        "track {:?}: span {i} ({}) starts at {}ns before span {prev} ends at {end}ns",
                        s.track, s.name, s.start_ns
                    ));
                }
            }
            last_end[t] = Some((s.end_ns, i));
        }
        for (i, f) in self.flows.iter().enumerate() {
            let from = f.from.0 as usize;
            let to = f.to.0 as usize;
            if from >= self.spans.len() || to >= self.spans.len() {
                check
                    .errors
                    .push(format!("flow {i} references unrecorded spans {:?}", f));
                continue;
            }
            if self.spans[to].start_ns < self.spans[from].end_ns {
                check.errors.push(format!(
                    "flow {i} points backward in time: {} ends at {}ns, {} starts at {}ns",
                    self.spans[from].name,
                    self.spans[from].end_ns,
                    self.spans[to].name,
                    self.spans[to].start_ns
                ));
            }
        }
        check
    }

    /// Serialize as a Chrome trace-event JSON object (`{"traceEvents": [...]}`),
    /// loadable in Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`.
    ///
    /// Layout conventions: each distinct process name becomes one Chrome
    /// `pid` (emitted via `process_name` metadata), each track one `tid`
    /// under its process (via `thread_name` metadata, with
    /// `thread_sort_index` preserving definition order). Spans are `"X"`
    /// complete events; instants are `"i"` thread-scoped instants; flows are
    /// `"s"`/`"f"` pairs bound to the end of the source span and the start
    /// of the destination span. Timestamps are microseconds with nanosecond
    /// precision (three decimals).
    pub fn export_chrome_json(&self) -> String {
        // Map process names to pids (1-based, in order of first appearance)
        // and tracks to tids (1-based, definition order within the sink).
        let mut processes: Vec<&str> = Vec::new();
        let mut pid_of = Vec::with_capacity(self.tracks.len());
        for t in &self.tracks {
            let pid = match processes.iter().position(|p| *p == t.process) {
                Some(i) => i + 1,
                None => {
                    processes.push(&t.process);
                    processes.len()
                }
            };
            pid_of.push(pid);
        }

        let us = |ns: u64| format!("{}.{:03}", ns / 1_000, ns % 1_000);
        let args_json = |args: &[(&'static str, ArgValue)]| {
            let body: Vec<String> = args
                .iter()
                .map(|(k, v)| format!("{}:{}", json_str(k), v.to_json()))
                .collect();
            format!("{{{}}}", body.join(","))
        };

        let mut ev: Vec<String> = Vec::new();
        for (i, p) in processes.iter().enumerate() {
            ev.push(format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":{}}}}}",
                i + 1,
                json_str(p)
            ));
        }
        for (i, t) in self.tracks.iter().enumerate() {
            let (pid, tid) = (pid_of[i], i + 1);
            ev.push(format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
                json_str(&t.name)
            ));
            ev.push(format!(
                "{{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"sort_index\":{tid}}}}}"
            ));
        }
        for s in &self.spans {
            let (pid, tid) = (pid_of[s.track.0 as usize], s.track.0 as usize + 1);
            ev.push(format!(
                "{{\"ph\":\"X\",\"name\":{},\"cat\":{},\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{}}}",
                json_str(&s.name),
                json_str(s.cat),
                us(s.start_ns),
                us(s.end_ns - s.start_ns),
                args_json(&s.args)
            ));
        }
        for m in &self.instants {
            let (pid, tid) = (pid_of[m.track.0 as usize], m.track.0 as usize + 1);
            ev.push(format!(
                "{{\"ph\":\"i\",\"name\":{},\"cat\":{},\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"args\":{}}}",
                json_str(&m.name),
                json_str(m.cat),
                us(m.at_ns),
                args_json(&m.args)
            ));
        }
        for (i, f) in self.flows.iter().enumerate() {
            let (Some(from), Some(to)) = (
                self.spans.get(f.from.0 as usize),
                self.spans.get(f.to.0 as usize),
            ) else {
                continue; // invalid flows are reported by validate(), not exported
            };
            let (fp, ft) = (pid_of[from.track.0 as usize], from.track.0 as usize + 1);
            let (tp, tt) = (pid_of[to.track.0 as usize], to.track.0 as usize + 1);
            ev.push(format!(
                "{{\"ph\":\"s\",\"name\":\"gate\",\"cat\":\"flow\",\"id\":{},\"pid\":{fp},\"tid\":{ft},\"ts\":{}}}",
                i + 1,
                us(from.end_ns)
            ));
            ev.push(format!(
                "{{\"ph\":\"f\",\"name\":\"gate\",\"cat\":\"flow\",\"bp\":\"e\",\"id\":{},\"pid\":{tp},\"tid\":{tt},\"ts\":{}}}",
                i + 1,
                us(to.start_ns)
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}",
            ev.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_sink_records_nothing_and_returns_none_ids() {
        let sink = TraceSink::off();
        assert!(!sink.is_enabled());
        let t = sink.track("device 0", "compute");
        let s = sink.span(t, "kernel", "kernel", 0, 10);
        assert!(s.is_none());
        sink.flow(s, s);
        sink.instant(t, "arrive", "job", 5, Vec::new());
        let data = sink.data();
        assert!(data.tracks.is_empty());
        assert!(data.spans.is_empty());
        assert!(data.instants.is_empty());
        assert!(data.flows.is_empty());
        assert!(sink.validate().is_valid());
    }

    #[test]
    fn tracks_are_interned_by_process_and_name() {
        let sink = TraceSink::recording();
        let a = sink.track("device 0", "compute");
        let b = sink.track("device 0", "h2d");
        let a2 = sink.track("device 0", "compute");
        let c = sink.track("device 1", "compute");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(sink.data().tracks.len(), 3);
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = TraceSink::recording();
        let clone = sink.clone();
        let t = clone.track("p", "t");
        clone.span(t, "s", "kernel", 0, 1);
        assert_eq!(sink.data().spans.len(), 1);
    }

    #[test]
    fn validate_catches_overlap_and_bad_flows() {
        let sink = TraceSink::recording();
        let t = sink.track("p", "t");
        let a = sink.span(t, "a", "kernel", 0, 10);
        let b = sink.span(t, "b", "kernel", 5, 15); // overlaps a
        sink.flow(b, a); // points backward in time
        sink.flow(a, SpanId(99)); // NONE-free but unrecorded id
        let check = sink.validate();
        assert!(!check.is_valid());
        assert_eq!(check.errors.len(), 3);
    }

    #[test]
    fn validate_accepts_a_well_formed_trace() {
        let sink = TraceSink::recording();
        let t0 = sink.track("device 0", "compute");
        let t1 = sink.track("device 0", "h2d");
        let p = sink.span(t1, "prefetch CONV1_w", "dma", 0, 400);
        let k = sink.span(t0, "CONV1", "kernel", 400, 1_900);
        sink.span(t0, "POOL1", "kernel", 1_900, 2_200);
        sink.flow(p, k);
        sink.instant(t0, "iter end", "marker", 2_200, vec![("iter", 1u64.into())]);
        let check = sink.validate();
        assert!(check.is_valid(), "unexpected errors: {:?}", check.errors);
        assert_eq!(check.spans, 3);
        assert_eq!(check.flows, 1);
        assert_eq!(check.instants, 1);
    }

    /// Golden round-trip of a hand-built trace: the exported JSON must be
    /// byte-stable (downstream diffs depend on it) and contain exactly the
    /// event structure Perfetto needs.
    #[test]
    fn golden_chrome_export() {
        let sink = TraceSink::recording();
        let compute = sink.track("device 0", "compute");
        let h2d = sink.track("device 0", "h2d");
        let p = sink.span_with(
            h2d,
            "prefetch".to_string(),
            "dma",
            0,
            1_500,
            vec![("bytes", ArgValue::U64(4096))],
        );
        let k = sink.span_with(
            compute,
            "CONV1".to_string(),
            "kernel",
            1_500,
            4_000,
            vec![("step", 0u64.into()), ("phase", "forward".into())],
        );
        sink.flow(p, k);
        sink.instant(compute, "done", "marker", 4_000, Vec::new());

        let json = sink.export_chrome_json();
        let expected = concat!(
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"device 0\"}},\n",
            "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"compute\"}},\n",
            "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":1,\"tid\":1,\"args\":{\"sort_index\":1}},\n",
            "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":2,\"args\":{\"name\":\"h2d\"}},\n",
            "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":1,\"tid\":2,\"args\":{\"sort_index\":2}},\n",
            "{\"ph\":\"X\",\"name\":\"prefetch\",\"cat\":\"dma\",\"pid\":1,\"tid\":2,\"ts\":0.000,\"dur\":1.500,\"args\":{\"bytes\":4096}},\n",
            "{\"ph\":\"X\",\"name\":\"CONV1\",\"cat\":\"kernel\",\"pid\":1,\"tid\":1,\"ts\":1.500,\"dur\":2.500,\"args\":{\"step\":0,\"phase\":\"forward\"}},\n",
            "{\"ph\":\"i\",\"name\":\"done\",\"cat\":\"marker\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":4.000,\"args\":{}},\n",
            "{\"ph\":\"s\",\"name\":\"gate\",\"cat\":\"flow\",\"id\":1,\"pid\":1,\"tid\":2,\"ts\":1.500},\n",
            "{\"ph\":\"f\",\"name\":\"gate\",\"cat\":\"flow\",\"bp\":\"e\",\"id\":1,\"pid\":1,\"tid\":1,\"ts\":1.500}",
            "]}"
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn export_timestamps_keep_nanosecond_precision() {
        let sink = TraceSink::recording();
        let t = sink.track("p", "t");
        sink.span(t, "s", "kernel", 1, 1_000_001);
        let json = sink.export_chrome_json();
        assert!(json.contains("\"ts\":0.001"), "{json}");
        assert!(json.contains("\"dur\":1000.000"), "{json}");
    }
}
