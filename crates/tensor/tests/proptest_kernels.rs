//! Property tests on the numeric kernels: algorithm equivalence (im2col-GEMM
//! convolution vs the direct reference) and algebraic identities, over
//! random shapes and data.

use proptest::prelude::*;
use sn_tensor::conv::{conv2d_backward, conv2d_forward, conv2d_forward_direct, ConvParams};
use sn_tensor::gemm::{sgemm, sgemm_reference};
use sn_tensor::loss::{cross_entropy, softmax_forward};
use sn_tensor::pool::{maxpool_backward, maxpool_forward, PoolParams};
use sn_tensor::{Shape4, Tensor};

fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_matches_reference(
        m in 1usize..24, n in 1usize..24, k in 1usize..48,
        seed in 0u64..1_000,
    ) {
        let a = Tensor::rand_uniform(Shape4::flat(m, k), 1.0, seed);
        let b = Tensor::rand_uniform(Shape4::flat(k, n), 1.0, seed + 1);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        sgemm(m, n, k, 1.0, a.data(), b.data(), 0.0, &mut c1);
        sgemm_reference(m, n, k, 1.0, a.data(), b.data(), 0.0, &mut c2);
        for (x, y) in c1.iter().zip(c2.iter()) {
            prop_assert!(close(*x, *y, 1e-5), "{x} vs {y}");
        }
    }

    #[test]
    fn im2col_conv_equals_direct_conv(
        n in 1usize..3, cin in 1usize..4, cout in 1usize..4,
        hw in 4usize..10, kernel in 1usize..4_usize,
        stride in 1usize..3, seed in 0u64..1_000,
    ) {
        prop_assume!(hw + 2 * (kernel / 2) >= kernel);
        let p = ConvParams { out_channels: cout, kernel, stride, pad: kernel / 2 };
        let input = Tensor::rand_uniform(Shape4::new(n, cin, hw, hw), 1.0, seed);
        let weight = Tensor::rand_uniform(p.weight_shape(cin), 0.7, seed + 7);
        let bias: Vec<f32> = (0..cout).map(|i| i as f32 * 0.1).collect();
        let fast = conv2d_forward(&input, &weight, &bias, &p);
        let slow = conv2d_forward_direct(&input, &weight, &bias, &p);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-4,
            "algorithms disagree by {}", fast.max_abs_diff(&slow));
    }

    #[test]
    fn conv_gradient_is_linear_in_upstream_gradient(
        seed in 0u64..500,
    ) {
        // d/dx is linear: backward(2·g) == 2·backward(g).
        let p = ConvParams { out_channels: 3, kernel: 3, stride: 1, pad: 1 };
        let input = Tensor::rand_uniform(Shape4::new(2, 2, 6, 6), 1.0, seed);
        let weight = Tensor::rand_uniform(p.weight_shape(2), 0.5, seed + 3);
        let g = Tensor::rand_uniform(p.out_shape(input.shape()), 1.0, seed + 5);
        let mut g2 = g.clone();
        g2.data_mut().iter_mut().for_each(|v| *v *= 2.0);
        let (gi1, gw1, gb1) = conv2d_backward(&input, &weight, &g, &p);
        let (gi2, gw2, gb2) = conv2d_backward(&input, &weight, &g2, &p);
        for (a, b) in gi1.data().iter().zip(gi2.data()) {
            prop_assert!(close(2.0 * a, *b, 1e-4));
        }
        for (a, b) in gw1.data().iter().zip(gw2.data()) {
            prop_assert!(close(2.0 * a, *b, 1e-4));
        }
        for (a, b) in gb1.iter().zip(gb2.iter()) {
            prop_assert!(close(2.0 * a, *b, 1e-4));
        }
    }

    #[test]
    fn maxpool_gradient_mass_is_conserved(
        n in 1usize..3, c in 1usize..4, hw in 4usize..12, seed in 0u64..1_000,
    ) {
        // Non-overlapping 2x2 max pool: every output routes its gradient to
        // exactly one input, so total gradient mass is preserved.
        let p = PoolParams { kernel: 2, stride: 2, pad: 0 };
        let input = Tensor::rand_uniform(Shape4::new(n, c, hw - hw % 2, hw - hw % 2), 1.0, seed);
        let (out, argmax) = maxpool_forward(&input, &p);
        let g = Tensor::rand_uniform(out.shape(), 1.0, seed + 11);
        let gi = maxpool_backward(input.shape(), &g, &argmax);
        prop_assert!(close(gi.sum(), g.sum(), 1e-4), "{} vs {}", gi.sum(), g.sum());
    }

    #[test]
    fn softmax_cross_entropy_is_bounded_below_by_zero(
        rows in 1usize..6, cols in 2usize..12, seed in 0u64..1_000,
    ) {
        let logits = Tensor::rand_uniform(Shape4::flat(rows, cols), 4.0, seed);
        let probs = softmax_forward(&logits);
        let labels: Vec<usize> = (0..rows).map(|i| (seed as usize + i) % cols).collect();
        let loss = cross_entropy(&probs, &labels);
        prop_assert!(loss >= 0.0);
        prop_assert!(loss.is_finite());
        // And bounded above by -ln(min prob) which is finite for finite logits.
        prop_assert!(loss < 100.0);
    }
}
