//! Batch normalization (per-channel, training mode with batch statistics).

use crate::tensor::Tensor;

/// Saved statistics from a BN forward pass, needed by backward. These are
/// `2·C` floats — negligible next to activations, so the runtime keeps them
/// resident (the paper's "small saved mean/var" case).
#[derive(Debug, Clone)]
pub struct BnSaved {
    pub mean: Vec<f32>,
    pub inv_std: Vec<f32>,
}

const BN_EPS: f32 = 1e-5;

/// BN forward over NCHW with per-channel `gamma`/`beta`.
/// Returns `(output, saved)`.
pub fn bn_forward(input: &Tensor, gamma: &[f32], beta: &[f32]) -> (Tensor, BnSaved) {
    let s = input.shape();
    assert_eq!(gamma.len(), s.c);
    assert_eq!(beta.len(), s.c);
    let hw = s.h * s.w;
    let per_c = (s.n * hw) as f32;
    let mut mean = vec![0.0f32; s.c];
    let mut var = vec![0.0f32; s.c];

    for n in 0..s.n {
        for c in 0..s.c {
            let base = (n * s.c + c) * hw;
            let slice = &input.data()[base..base + hw];
            mean[c] += slice.iter().sum::<f32>();
        }
    }
    for m in &mut mean {
        *m /= per_c;
    }
    for n in 0..s.n {
        for c in 0..s.c {
            let base = (n * s.c + c) * hw;
            for &v in &input.data()[base..base + hw] {
                let d = v - mean[c];
                var[c] += d * d;
            }
        }
    }
    let inv_std: Vec<f32> = var
        .iter()
        .map(|v| 1.0 / (v / per_c + BN_EPS).sqrt())
        .collect();

    let mut out = Tensor::zeros(s);
    for n in 0..s.n {
        for c in 0..s.c {
            let base = (n * s.c + c) * hw;
            let (g, b, m, is) = (gamma[c], beta[c], mean[c], inv_std[c]);
            for i in 0..hw {
                out.data_mut()[base + i] = (input.data()[base + i] - m) * is * g + b;
            }
        }
    }
    (out, BnSaved { mean, inv_std })
}

/// BN backward: returns `(grad_input, grad_gamma, grad_beta)`.
pub fn bn_backward(
    input: &Tensor,
    grad_out: &Tensor,
    gamma: &[f32],
    saved: &BnSaved,
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let s = input.shape();
    let hw = s.h * s.w;
    let per_c = (s.n * hw) as f32;
    let mut dgamma = vec![0.0f32; s.c];
    let mut dbeta = vec![0.0f32; s.c];
    let mut dxhat_sum = vec![0.0f32; s.c];
    let mut dxhat_xhat_sum = vec![0.0f32; s.c];

    for n in 0..s.n {
        for c in 0..s.c {
            let base = (n * s.c + c) * hw;
            let (m, is) = (saved.mean[c], saved.inv_std[c]);
            for i in 0..hw {
                let xhat = (input.data()[base + i] - m) * is;
                let dy = grad_out.data()[base + i];
                dgamma[c] += dy * xhat;
                dbeta[c] += dy;
                let dxhat = dy * gamma[c];
                dxhat_sum[c] += dxhat;
                dxhat_xhat_sum[c] += dxhat * xhat;
            }
        }
    }

    let mut gi = Tensor::zeros(s);
    for n in 0..s.n {
        for c in 0..s.c {
            let base = (n * s.c + c) * hw;
            let (m, is) = (saved.mean[c], saved.inv_std[c]);
            for i in 0..hw {
                let xhat = (input.data()[base + i] - m) * is;
                let dxhat = grad_out.data()[base + i] * gamma[c];
                gi.data_mut()[base + i] =
                    is / per_c * (per_c * dxhat - dxhat_sum[c] - xhat * dxhat_xhat_sum[c]);
            }
        }
    }
    (gi, dgamma, dbeta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    #[test]
    fn forward_normalizes_each_channel() {
        let x = Tensor::rand_uniform(Shape4::new(4, 3, 5, 5), 2.0, 13);
        let gamma = vec![1.0; 3];
        let beta = vec![0.0; 3];
        let (y, _) = bn_forward(&x, &gamma, &beta);
        let s = x.shape();
        let hw = s.h * s.w;
        for c in 0..s.c {
            let mut sum = 0.0f32;
            let mut sq = 0.0f32;
            for n in 0..s.n {
                let base = (n * s.c + c) * hw;
                for &v in &y.data()[base..base + hw] {
                    sum += v;
                    sq += v * v;
                }
            }
            let cnt = (s.n * hw) as f32;
            let mean = sum / cnt;
            let var = sq / cnt - mean * mean;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
    }

    #[test]
    fn gamma_beta_shift_and_scale() {
        let x = Tensor::rand_uniform(Shape4::new(2, 1, 4, 4), 1.0, 14);
        let (y, _) = bn_forward(&x, &[2.0], &[3.0]);
        let mean: f32 = y.sum() / y.shape().numel() as f32;
        assert!((mean - 3.0).abs() < 1e-4);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let x = Tensor::rand_uniform(Shape4::new(2, 2, 3, 3), 1.0, 15);
        let gamma = vec![1.5, 0.5];
        let beta = vec![0.1, -0.1];
        let dy = Tensor::rand_uniform(x.shape(), 1.0, 16);
        let (_, saved) = bn_forward(&x, &gamma, &beta);
        let (dx, dg, db) = bn_backward(&x, &dy, &gamma, &saved);

        let loss = |inp: &Tensor, g: &[f32], b: &[f32]| -> f32 {
            let (y, _) = bn_forward(inp, g, b);
            y.data().iter().zip(dy.data()).map(|(a, d)| a * d).sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 7, 20, 35] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &gamma, &beta) - loss(&xm, &gamma, &beta)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 3e-2,
                "dX[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
        for c in 0..2 {
            let mut gp = gamma.clone();
            gp[c] += eps;
            let mut gm = gamma.clone();
            gm[c] -= eps;
            let num = (loss(&x, &gp, &beta) - loss(&x, &gm, &beta)) / (2.0 * eps);
            assert!(
                (num - dg[c]).abs() < 3e-2,
                "dGamma[{c}]: {num} vs {}",
                dg[c]
            );

            let mut bp = beta.clone();
            bp[c] += eps;
            let mut bm = beta.clone();
            bm[c] -= eps;
            let num = (loss(&x, &gamma, &bp) - loss(&x, &gamma, &bm)) / (2.0 * eps);
            assert!((num - db[c]).abs() < 3e-2, "dBeta[{c}]: {num} vs {}", db[c]);
        }
    }
}
