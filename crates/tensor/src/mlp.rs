//! Transformer MLP block: two fully-connected layers with a ReLU between,
//! applied independently at every sequence position.
//!
//! Weights are packed `[W1 (hidden×d), W2 (d×hidden)]` row-major `[out, in]`,
//! biases `[b1 (hidden), b2 (d)]`. Backward re-derives the hidden
//! pre-activation from the input (input-formulated), like the other
//! transformer kernels.

use crate::gemm::{sgemm, sgemm_at, sgemm_bt};
use crate::tensor::Tensor;

fn to_pos_major(x: &[f32], n: usize, d: usize, s: usize) -> Vec<f32> {
    let base = n * d * s;
    let mut m = vec![0.0f32; s * d];
    for ch in 0..d {
        for pos in 0..s {
            m[pos * d + ch] = x[base + ch * s + pos];
        }
    }
    m
}

fn from_pos_major(m: &[f32], out: &mut [f32], n: usize, d: usize, s: usize) {
    let base = n * d * s;
    for ch in 0..d {
        for pos in 0..s {
            out[base + ch * s + pos] = m[pos * d + ch];
        }
    }
}

/// Hidden pre-activation for one batch item: `xp·W1ᵀ + b1`, `[S, hidden]`.
fn hidden_pre(
    xp: &[f32],
    weight: &[f32],
    bias: &[f32],
    hidden: usize,
    d: usize,
    s: usize,
) -> Vec<f32> {
    let mut h = vec![0.0f32; s * hidden];
    sgemm_bt(s, hidden, d, 1.0, xp, &weight[0..hidden * d], 0.0, &mut h);
    for row in h.chunks_mut(hidden) {
        for (v, b) in row.iter_mut().zip(&bias[0..hidden]) {
            *v += b;
        }
    }
    h
}

/// MLP forward: `y = relu(x·W1ᵀ + b1)·W2ᵀ + b2`, shape-preserving.
pub fn mlp_forward(input: &Tensor, weight: &[f32], bias: &[f32], hidden: usize) -> Tensor {
    let sh = input.shape();
    let (d, s) = (sh.c, sh.h * sh.w);
    assert_eq!(weight.len(), 2 * hidden * d);
    assert_eq!(bias.len(), hidden + d);
    let mut out = Tensor::zeros(sh);
    for n in 0..sh.n {
        let xp = to_pos_major(input.data(), n, d, s);
        let mut h = hidden_pre(&xp, weight, bias, hidden, d, s);
        h.iter_mut().for_each(|v| *v = v.max(0.0));
        let mut y = vec![0.0f32; s * d];
        sgemm_bt(s, d, hidden, 1.0, &h, &weight[hidden * d..], 0.0, &mut y);
        for row in y.chunks_mut(d) {
            for (v, b) in row.iter_mut().zip(&bias[hidden..]) {
                *v += b;
            }
        }
        from_pos_major(&y, out.data_mut(), n, d, s);
    }
    out
}

/// MLP backward: returns `(grad_input, grad_weight, grad_bias)` in the same
/// packed layouts as the forward arguments.
pub fn mlp_backward(
    input: &Tensor,
    weight: &[f32],
    bias: &[f32],
    grad_out: &Tensor,
    hidden: usize,
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let sh = input.shape();
    assert_eq!(sh, grad_out.shape());
    let (d, s) = (sh.c, sh.h * sh.w);
    let hd = hidden * d;
    let mut gi = Tensor::zeros(sh);
    let mut dw = vec![0.0f32; 2 * hd];
    let mut db = vec![0.0f32; hidden + d];
    for n in 0..sh.n {
        let xp = to_pos_major(input.data(), n, d, s);
        let g = to_pos_major(grad_out.data(), n, d, s);
        let hpre = hidden_pre(&xp, weight, bias, hidden, d, s);
        let h: Vec<f32> = hpre.iter().map(|v| v.max(0.0)).collect();

        // Second FC: dW2 += gᵀ·h, db2 += col-sums, dh = g·W2, masked by relu.
        sgemm_at(d, hidden, s, 1.0, &g, &h, 1.0, &mut dw[hd..]);
        for row in g.chunks(d) {
            for (acc, &v) in db[hidden..].iter_mut().zip(row) {
                *acc += v;
            }
        }
        let mut dh = vec![0.0f32; s * hidden];
        sgemm(s, hidden, d, 1.0, &g, &weight[hd..], 0.0, &mut dh);
        for (dv, &pre) in dh.iter_mut().zip(&hpre) {
            if pre <= 0.0 {
                *dv = 0.0;
            }
        }

        // First FC.
        sgemm_at(hidden, d, s, 1.0, &dh, &xp, 1.0, &mut dw[0..hd]);
        for row in dh.chunks(hidden) {
            for (acc, &v) in db[0..hidden].iter_mut().zip(row) {
                *acc += v;
            }
        }
        let mut dxp = vec![0.0f32; s * d];
        sgemm(s, d, hidden, 1.0, &dh, &weight[0..hd], 0.0, &mut dxp);
        from_pos_major(&dxp, gi.data_mut(), n, d, s);
    }
    (gi, dw, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    #[test]
    fn backward_matches_finite_differences() {
        let (d, s, hidden) = (3usize, 4usize, 5usize);
        let x = Tensor::rand_uniform(Shape4::new(2, d, s, 1), 1.0, 51);
        let w: Vec<f32> = Tensor::rand_uniform(Shape4::flat(2 * hidden, d), 0.6, 52)
            .data()
            .to_vec();
        let b: Vec<f32> = Tensor::rand_uniform(Shape4::flat(1, hidden + d), 0.2, 53)
            .data()
            .to_vec();
        let dy = Tensor::rand_uniform(x.shape(), 1.0, 54);
        let (dx, dw, db) = mlp_backward(&x, &w, &b, &dy, hidden);

        let loss = |inp: &Tensor, ww: &[f32], bb: &[f32]| -> f32 {
            mlp_forward(inp, ww, bb, hidden)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, g)| a * g)
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 7, 13, 23] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 4e-2,
                "dX[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
        for &i in &[2usize, hidden * d + 4, 2 * hidden * d - 1] {
            let mut wp = w.clone();
            wp[i] += eps;
            let mut wm = w.clone();
            wm[i] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!((num - dw[i]).abs() < 4e-2, "dW[{i}]: {num} vs {}", dw[i]);
        }
        for &i in &[0usize, hidden - 1, hidden + 1] {
            let mut bp = b.clone();
            bp[i] += eps;
            let mut bm = b.clone();
            bm[i] -= eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!((num - db[i]).abs() < 4e-2, "dB[{i}]: {num} vs {}", db[i]);
        }
    }

    #[test]
    fn relu_gate_blocks_dead_hidden_units() {
        // With strongly negative b1 every hidden unit is dead, so the output
        // is exactly the bias b2 and grad_input is exactly zero.
        let (d, s, hidden) = (2usize, 3usize, 4usize);
        let x = Tensor::rand_uniform(Shape4::new(1, d, s, 1), 0.1, 55);
        let w = vec![0.01f32; 2 * hidden * d];
        let mut b = vec![0.0f32; hidden + d];
        for v in &mut b[0..hidden] {
            *v = -10.0;
        }
        b[hidden] = 0.7;
        b[hidden + 1] = -0.3;
        let y = mlp_forward(&x, &w, &b, hidden);
        for pos in 0..s {
            assert_eq!(y.data()[pos], 0.7);
            assert_eq!(y.data()[s + pos], -0.3);
        }
        let dy = Tensor::full(x.shape(), 1.0);
        let (dx, _, _) = mlp_backward(&x, &w, &b, &dy, hidden);
        assert_eq!(dx.max_abs(), 0.0);
    }
}
