//! Layer normalization over the channel (feature) dimension.
//!
//! Each `(n, h, w)` position is normalized across its `C` features — the
//! transformer convention, where `C` is the model dimension and `H·W` the
//! sequence. The backward pass re-derives mean/variance from the input
//! (input-formulated), so no saved statistics survive the forward pass and
//! cost-aware recomputation replays it exactly.

use crate::tensor::Tensor;

const LN_EPS: f32 = 1e-5;

#[inline]
fn stats(x: &[f32], base: usize, c: usize, hw: usize, pos: usize) -> (f32, f32) {
    let mut mean = 0.0f32;
    for ch in 0..c {
        mean += x[base + ch * hw + pos];
    }
    mean /= c as f32;
    let mut var = 0.0f32;
    for ch in 0..c {
        let d = x[base + ch * hw + pos] - mean;
        var += d * d;
    }
    let inv_std = 1.0 / (var / c as f32 + LN_EPS).sqrt();
    (mean, inv_std)
}

/// LayerNorm forward with per-feature `gamma`/`beta` (each `C` long).
pub fn layernorm_forward(input: &Tensor, gamma: &[f32], beta: &[f32]) -> Tensor {
    let s = input.shape();
    assert_eq!(gamma.len(), s.c);
    assert_eq!(beta.len(), s.c);
    let hw = s.h * s.w;
    let x = input.data();
    let mut out = Tensor::zeros(s);
    for n in 0..s.n {
        let base = n * s.c * hw;
        for pos in 0..hw {
            let (mean, inv_std) = stats(x, base, s.c, hw, pos);
            for ch in 0..s.c {
                let i = base + ch * hw + pos;
                out.data_mut()[i] = (x[i] - mean) * inv_std * gamma[ch] + beta[ch];
            }
        }
    }
    out
}

/// LayerNorm backward: returns `(grad_input, grad_gamma, grad_beta)`.
pub fn layernorm_backward(
    input: &Tensor,
    grad_out: &Tensor,
    gamma: &[f32],
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let s = input.shape();
    assert_eq!(s, grad_out.shape());
    let hw = s.h * s.w;
    let cn = s.c as f32;
    let x = input.data();
    let dy = grad_out.data();
    let mut gi = Tensor::zeros(s);
    let mut dgamma = vec![0.0f32; s.c];
    let mut dbeta = vec![0.0f32; s.c];
    for n in 0..s.n {
        let base = n * s.c * hw;
        for pos in 0..hw {
            let (mean, inv_std) = stats(x, base, s.c, hw, pos);
            let mut dxhat_sum = 0.0f32;
            let mut dxhat_xhat_sum = 0.0f32;
            for ch in 0..s.c {
                let i = base + ch * hw + pos;
                let xhat = (x[i] - mean) * inv_std;
                dgamma[ch] += dy[i] * xhat;
                dbeta[ch] += dy[i];
                let dxhat = dy[i] * gamma[ch];
                dxhat_sum += dxhat;
                dxhat_xhat_sum += dxhat * xhat;
            }
            for ch in 0..s.c {
                let i = base + ch * hw + pos;
                let xhat = (x[i] - mean) * inv_std;
                let dxhat = dy[i] * gamma[ch];
                gi.data_mut()[i] = inv_std / cn * (cn * dxhat - dxhat_sum - xhat * dxhat_xhat_sum);
            }
        }
    }
    (gi, dgamma, dbeta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    #[test]
    fn forward_normalizes_each_position() {
        let x = Tensor::rand_uniform(Shape4::new(2, 8, 3, 1), 2.0, 31);
        let y = layernorm_forward(&x, &[1.0; 8], &[0.0; 8]);
        let s = x.shape();
        let hw = s.h * s.w;
        for n in 0..s.n {
            for pos in 0..hw {
                let vals: Vec<f32> = (0..s.c)
                    .map(|c| y.data()[(n * s.c + c) * hw + pos])
                    .collect();
                let mean: f32 = vals.iter().sum::<f32>() / s.c as f32;
                let var: f32 =
                    vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / s.c as f32;
                assert!(mean.abs() < 1e-4, "pos ({n},{pos}) mean {mean}");
                assert!((var - 1.0).abs() < 1e-2, "pos ({n},{pos}) var {var}");
            }
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let x = Tensor::rand_uniform(Shape4::new(2, 4, 3, 1), 1.0, 32);
        let gamma = vec![1.5, 0.5, -0.7, 1.1];
        let beta = vec![0.1, -0.2, 0.3, 0.0];
        let dy = Tensor::rand_uniform(x.shape(), 1.0, 33);
        let (dx, dg, db) = layernorm_backward(&x, &dy, &gamma);
        let loss = |inp: &Tensor, g: &[f32], b: &[f32]| -> f32 {
            layernorm_forward(inp, g, b)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, d)| a * d)
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 5, 13, 22] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &gamma, &beta) - loss(&xm, &gamma, &beta)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 3e-2,
                "dX[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
        for c in 0..4 {
            let mut gp = gamma.clone();
            gp[c] += eps;
            let mut gm = gamma.clone();
            gm[c] -= eps;
            let num = (loss(&x, &gp, &beta) - loss(&x, &gm, &beta)) / (2.0 * eps);
            assert!(
                (num - dg[c]).abs() < 3e-2,
                "dGamma[{c}]: {num} vs {}",
                dg[c]
            );
            let mut bp = beta.clone();
            bp[c] += eps;
            let mut bm = beta.clone();
            bm[c] -= eps;
            let num = (loss(&x, &gamma, &bp) - loss(&x, &gamma, &bm)) / (2.0 * eps);
            assert!((num - db[c]).abs() < 3e-2, "dBeta[{c}]: {num} vs {}", db[c]);
        }
    }
}
