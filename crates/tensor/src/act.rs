//! Activation-family layers: ReLU, cross-channel LRN, and dropout.
//!
//! Dropout uses a *counter-based* mask derived from `(seed, element index)`:
//! the mask is never stored, so when cost-aware recomputation replays a
//! dropout layer in the backward pass it regenerates the identical mask —
//! the property that makes recomputation numerically exact.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::tensor::Tensor;

/// ReLU forward: `y = max(x, 0)`.
pub fn relu_forward(input: &Tensor) -> Tensor {
    let mut out = input.clone();
    out.data_mut().par_iter_mut().for_each(|v| {
        if *v < 0.0 {
            *v = 0.0;
        }
    });
    out
}

/// ReLU backward: `dx = dy * [x > 0]`.
///
/// Since `y = max(x, 0)`, the mask `[x > 0]` equals `[y > 0]`, so this single
/// kernel serves both the input-formulated scheduling the runtime declares
/// and in-place execution (where the buffer passed is the shared one).
pub fn relu_backward(input_or_output: &Tensor, grad_out: &Tensor) -> Tensor {
    assert_eq!(input_or_output.shape(), grad_out.shape());
    let mut gi = grad_out.clone();
    gi.data_mut()
        .par_iter_mut()
        .zip(input_or_output.data().par_iter())
        .for_each(|(g, &x)| {
            if x <= 0.0 {
                *g = 0.0;
            }
        });
    gi
}

/// Local response normalization parameters (AlexNet defaults).
#[derive(Debug, Clone, Copy)]
pub struct LrnParams {
    pub local_size: usize,
    pub alpha: f32,
    pub beta: f32,
    pub k: f32,
}

impl Default for LrnParams {
    fn default() -> Self {
        LrnParams {
            local_size: 5,
            alpha: 1e-4,
            beta: 0.75,
            k: 2.0,
        }
    }
}

/// Cross-channel LRN forward:
/// `y = x / (k + alpha/n * sum_{c'∈window} x_{c'}^2)^beta`.
pub fn lrn_forward(input: &Tensor, p: &LrnParams) -> Tensor {
    let s = input.shape();
    let mut out = Tensor::zeros(s);
    let half = p.local_size / 2;
    let hw = s.h * s.w;
    let scale = p.alpha / p.local_size as f32;
    let src = input.data();

    out.data_mut()
        .par_chunks_mut(s.c * hw)
        .enumerate()
        .for_each(|(n, oimg)| {
            let ibase = n * s.c * hw;
            for c in 0..s.c {
                let lo = c.saturating_sub(half);
                let hi = (c + half).min(s.c - 1);
                for i in 0..hw {
                    let mut sq = 0.0f32;
                    for cc in lo..=hi {
                        let v = src[ibase + cc * hw + i];
                        sq += v * v;
                    }
                    let denom = (p.k + scale * sq).powf(p.beta);
                    oimg[c * hw + i] = src[ibase + c * hw + i] / denom;
                }
            }
        });
    out
}

/// LRN backward, input-formulated: the denominators (and thereby `y`) are
/// re-derived from `x`, so the output tensor need not be kept for backward —
/// the property the runtime's liveness analysis declares.
pub fn lrn_backward(input: &Tensor, grad_out: &Tensor, p: &LrnParams) -> Tensor {
    let s = input.shape();
    assert_eq!(s, grad_out.shape());
    let half = p.local_size / 2;
    let hw = s.h * s.w;
    let scale = p.alpha / p.local_size as f32;
    let x = input.data();
    let dy = grad_out.data();
    let mut gi = Tensor::zeros(s);

    gi.data_mut()
        .par_chunks_mut(s.c * hw)
        .enumerate()
        .for_each(|(n, gimg)| {
            let base = n * s.c * hw;
            // Recompute the per-position denominators once.
            let mut denom = vec![0.0f32; s.c * hw];
            for c in 0..s.c {
                let lo = c.saturating_sub(half);
                let hi = (c + half).min(s.c - 1);
                for i in 0..hw {
                    let mut sq = 0.0f32;
                    for cc in lo..=hi {
                        let v = x[base + cc * hw + i];
                        sq += v * v;
                    }
                    denom[c * hw + i] = p.k + scale * sq;
                }
            }
            // With y = x / denom^beta:
            // dx_c = dy_c/denom_c^beta
            //      - 2*scale*beta * x_c * Σ_{c'∋c} dy_{c'} x_{c'} / denom_{c'}^{beta+1}
            for c in 0..s.c {
                let lo = c.saturating_sub(half);
                let hi = (c + half).min(s.c - 1);
                for i in 0..hw {
                    let mut acc = 0.0f32;
                    for cc in lo..=hi {
                        let j = cc * hw + i;
                        acc += dy[base + j] * x[base + j] / denom[j].powf(p.beta + 1.0);
                    }
                    let j = c * hw + i;
                    gimg[j] = dy[base + j] / denom[j].powf(p.beta)
                        - 2.0 * scale * p.beta * x[base + j] * acc;
                }
            }
        });
    gi
}

/// Deterministic keep-mask bit for dropout at `(seed, index)`.
#[inline]
fn dropout_keep(seed: u64, index: usize, keep_prob: f32) -> bool {
    // SplitMix64 on (seed ^ index) — a counter-based RNG: stateless, so
    // recomputation regenerates the identical mask.
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 24) as f32 % 1.0 < keep_prob
}

/// Dropout forward with inverted scaling: kept elements are multiplied by
/// `1/keep_prob` so inference needs no rescale.
pub fn dropout_forward(input: &Tensor, drop_prob: f32, seed: u64) -> Tensor {
    assert!((0.0..1.0).contains(&drop_prob));
    let keep = 1.0 - drop_prob;
    let inv = 1.0 / keep;
    let mut out = input.clone();
    out.data_mut()
        .par_iter_mut()
        .enumerate()
        .for_each(|(i, v)| {
            if dropout_keep(seed, i, keep) {
                *v *= inv;
            } else {
                *v = 0.0;
            }
        });
    out
}

/// Dropout backward, regenerating the mask from the same `(seed)`.
pub fn dropout_backward(grad_out: &Tensor, drop_prob: f32, seed: u64) -> Tensor {
    let keep = 1.0 - drop_prob;
    let inv = 1.0 / keep;
    let mut gi = grad_out.clone();
    gi.data_mut().par_iter_mut().enumerate().for_each(|(i, v)| {
        if dropout_keep(seed, i, keep) {
            *v *= inv;
        } else {
            *v = 0.0;
        }
    });
    gi
}

/// Elementwise addition (the ResNet `join`): `y = a + b`.
pub fn eltwise_add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape());
    let mut out = a.clone();
    out.data_mut()
        .par_iter_mut()
        .zip(b.data().par_iter())
        .for_each(|(o, &v)| *o += v);
    out
}

/// Deterministic synthetic batch generator — a stand-in for an input
/// pipeline; produces a separable pattern so numeric training can converge.
pub fn synthetic_batch(
    shape: crate::shape::Shape4,
    classes: usize,
    seed: u64,
) -> (Tensor, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = Tensor::zeros(shape);
    let mut labels = Vec::with_capacity(shape.n);
    let fpc = shape.features();
    for n in 0..shape.n {
        let label = rng.gen_range(0..classes);
        labels.push(label);
        for i in 0..fpc {
            // Class-dependent mean + noise: linearly separable-ish.
            let mean = if i % classes == label { 0.8 } else { -0.2 };
            let noise: f32 = rng.gen_range(-0.3..0.3);
            data.data_mut()[n * fpc + i] = mean + noise;
        }
    }
    (data, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(Shape4::flat(1, 4), vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu_forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks_by_output() {
        let y = Tensor::from_vec(Shape4::flat(1, 3), vec![0.0, 1.0, 2.0]);
        let dy = Tensor::from_vec(Shape4::flat(1, 3), vec![5.0, 5.0, 5.0]);
        let dx = relu_backward(&y, &dy);
        assert_eq!(dx.data(), &[0.0, 5.0, 5.0]);
    }

    #[test]
    fn lrn_normalizes_and_matches_finite_diff() {
        let p = LrnParams::default();
        let x = Tensor::rand_uniform(Shape4::new(1, 6, 2, 2), 1.0, 9);
        let y = lrn_forward(&x, &p);
        // |y| <= |x| since denom >= k^beta > 1.
        for (xv, yv) in x.data().iter().zip(y.data()) {
            assert!(yv.abs() <= xv.abs() + 1e-6);
        }
        let dy = Tensor::rand_uniform(x.shape(), 1.0, 10);
        let dx = lrn_backward(&x, &dy, &p);
        let loss = |inp: &Tensor| -> f32 {
            lrn_forward(inp, &p)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, g)| a * g)
                .sum()
        };
        let eps = 1e-2;
        for &i in &[0usize, 5, 11, 23] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 5e-2,
                "dLRN[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn dropout_mask_is_reproducible() {
        let x = Tensor::rand_uniform(Shape4::flat(4, 100), 1.0, 11);
        let a = dropout_forward(&x, 0.5, 77);
        let b = dropout_forward(&x, 0.5, 77);
        assert_eq!(
            a, b,
            "same seed must give the same mask (recompute exactness)"
        );
        let c = dropout_forward(&x, 0.5, 78);
        assert_ne!(a, c);
    }

    #[test]
    fn dropout_rate_is_approximately_honoured() {
        let x = Tensor::full(Shape4::flat(1, 10_000), 1.0);
        let y = dropout_forward(&x, 0.5, 3);
        let kept = y.data().iter().filter(|v| **v != 0.0).count();
        assert!((4500..5500).contains(&kept), "kept {kept} of 10000");
        // Inverted scaling keeps the expectation.
        assert!((y.sum() / 10_000.0 - 1.0).abs() < 0.1);
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let x = Tensor::rand_uniform(Shape4::flat(1, 64), 1.0, 12);
        let y = dropout_forward(&x, 0.3, 99);
        let dy = Tensor::full(x.shape(), 1.0);
        let dx = dropout_backward(&dy, 0.3, 99);
        for (yv, dxv) in y.data().iter().zip(dx.data()) {
            assert_eq!(*yv == 0.0, *dxv == 0.0, "mask must agree fwd/bwd");
        }
    }

    #[test]
    fn eltwise_adds() {
        let a = Tensor::full(Shape4::flat(1, 3), 1.0);
        let b = Tensor::from_vec(Shape4::flat(1, 3), vec![1.0, 2.0, 3.0]);
        assert_eq!(eltwise_add(&a, &b).data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn synthetic_batch_is_deterministic() {
        let s = Shape4::new(4, 1, 4, 4);
        let (d1, l1) = synthetic_batch(s, 4, 5);
        let (d2, l2) = synthetic_batch(s, 4, 5);
        assert_eq!(d1, d2);
        assert_eq!(l1, l2);
        assert!(l1.iter().all(|l| *l < 4));
    }
}
