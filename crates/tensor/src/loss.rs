//! Softmax and cross-entropy loss (the paper's terminal Softmax layer).

use crate::shape::Shape4;
use crate::tensor::Tensor;

/// Row-wise softmax over the feature dimension (numerically stabilized).
pub fn softmax_forward(input: &Tensor) -> Tensor {
    let n = input.shape().n;
    let f = input.shape().features();
    let mut out = Tensor::zeros(Shape4::flat(n, f));
    for (orow, irow) in out.data_mut().chunks_mut(f).zip(input.data().chunks(f)) {
        let max = irow.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for (o, &x) in orow.iter_mut().zip(irow.iter()) {
            *o = (x - max).exp();
            sum += *o;
        }
        let inv = 1.0 / sum;
        orow.iter_mut().for_each(|v| *v *= inv);
    }
    out
}

/// Mean cross-entropy of softmax probabilities against integer labels.
pub fn cross_entropy(probs: &Tensor, labels: &[usize]) -> f32 {
    let n = probs.shape().n;
    let f = probs.shape().features();
    assert_eq!(labels.len(), n);
    let mut loss = 0.0f32;
    for (row, &label) in probs.data().chunks(f).zip(labels.iter()) {
        assert!(label < f, "label {label} out of range {f}");
        loss -= row[label].max(1e-12).ln();
    }
    loss / n as f32
}

/// Combined softmax + cross-entropy gradient w.r.t. the *logits*:
/// `(p - onehot(label)) / N`.
pub fn softmax_xent_backward(probs: &Tensor, labels: &[usize]) -> Tensor {
    let n = probs.shape().n;
    let f = probs.shape().features();
    let mut gi = probs.clone();
    let scale = 1.0 / n as f32;
    for (row, &label) in gi.data_mut().chunks_mut(f).zip(labels.iter()) {
        for v in row.iter_mut() {
            *v *= scale;
        }
        row[label] -= scale;
    }
    gi
}

/// Top-1 accuracy of probability rows against labels.
pub fn accuracy(probs: &Tensor, labels: &[usize]) -> f32 {
    let n = probs.shape().n;
    let f = probs.shape().features();
    let mut correct = 0usize;
    for (row, &label) in probs.data().chunks(f).zip(labels.iter()) {
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if argmax == label {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::rand_uniform(Shape4::flat(5, 7), 3.0, 23);
        let p = softmax_forward(&x);
        for row in p.data().chunks(7) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|v| *v > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(Shape4::flat(1, 3), vec![1.0, 2.0, 3.0]);
        let y = Tensor::from_vec(Shape4::flat(1, 3), vec![101.0, 102.0, 103.0]);
        let px = softmax_forward(&x);
        let py = softmax_forward(&y);
        assert!(px.max_abs_diff(&py) < 1e-6);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_zero() {
        let p = Tensor::from_vec(Shape4::flat(1, 3), vec![0.0, 1.0, 0.0]);
        assert!(cross_entropy(&p, &[1]) < 1e-6);
    }

    #[test]
    fn uniform_prediction_costs_log_classes() {
        let p = Tensor::full(Shape4::flat(2, 4), 0.25);
        let l = cross_entropy(&p, &[0, 3]);
        assert!((l - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::rand_uniform(Shape4::flat(2, 5), 1.0, 24);
        let labels = vec![1usize, 4];
        let p = softmax_forward(&logits);
        let g = softmax_xent_backward(&p, &labels);
        let eps = 1e-2f32;
        for &i in &[0usize, 3, 7, 9] {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (cross_entropy(&softmax_forward(&lp), &labels)
                - cross_entropy(&softmax_forward(&lm), &labels))
                / (2.0 * eps);
            assert!(
                (num - g.data()[i]).abs() < 1e-3,
                "dlogit[{i}]: {num} vs {}",
                g.data()[i]
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let p = Tensor::from_vec(Shape4::flat(2, 3), vec![0.7, 0.2, 0.1, 0.1, 0.1, 0.8]);
        assert_eq!(accuracy(&p, &[0, 2]), 1.0);
        assert_eq!(accuracy(&p, &[1, 2]), 0.5);
    }
}
