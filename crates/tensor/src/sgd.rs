//! Stochastic gradient descent with momentum and weight decay — the update
//! rule the data-parallel training loop applies after gradient aggregation.

use crate::tensor::Tensor;

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SgdParams {
    pub lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
}

impl Default for SgdParams {
    fn default() -> Self {
        SgdParams {
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
        }
    }
}

/// Momentum buffer paired with a parameter tensor.
#[derive(Debug, Clone)]
pub struct SgdState {
    velocity: Vec<f32>,
}

impl SgdState {
    pub fn new(param_len: usize) -> Self {
        SgdState {
            velocity: vec![0.0; param_len],
        }
    }

    /// `v = momentum·v + (grad + wd·param)`; `param -= lr·v`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], hp: &SgdParams) {
        assert_eq!(params.len(), grads.len());
        assert_eq!(params.len(), self.velocity.len());
        for ((p, &g), v) in params
            .iter_mut()
            .zip(grads.iter())
            .zip(self.velocity.iter_mut())
        {
            let g = g + hp.weight_decay * *p;
            *v = hp.momentum * *v + g;
            *p -= hp.lr * *v;
        }
    }

    /// Tensor-typed convenience wrapper.
    pub fn step_tensor(&mut self, param: &mut Tensor, grad: &Tensor, hp: &SgdParams) {
        self.step(param.data_mut(), grad.data(), hp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    #[test]
    fn plain_sgd_descends_a_quadratic() {
        // f(x) = x², grad = 2x; repeated steps must shrink |x|.
        let hp = SgdParams {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        };
        let mut x = vec![5.0f32];
        let mut st = SgdState::new(1);
        for _ in 0..50 {
            let g = vec![2.0 * x[0]];
            st.step(&mut x, &g, &hp);
        }
        assert!(x[0].abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn momentum_accelerates_but_still_converges() {
        let hp = SgdParams {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        let mut x = vec![5.0f32];
        let mut st = SgdState::new(1);
        for _ in 0..200 {
            let g = vec![2.0 * x[0]];
            st.step(&mut x, &g, &hp);
        }
        assert!(x[0].abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn weight_decay_shrinks_params_with_zero_grad() {
        let hp = SgdParams {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.5,
        };
        let mut x = vec![1.0f32];
        let mut st = SgdState::new(1);
        st.step(&mut x, &[0.0], &hp);
        assert!((x[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn tensor_wrapper_updates_in_place() {
        let hp = SgdParams {
            lr: 1.0,
            momentum: 0.0,
            weight_decay: 0.0,
        };
        let mut p = Tensor::full(Shape4::flat(1, 3), 1.0);
        let g = Tensor::from_vec(Shape4::flat(1, 3), vec![0.1, 0.2, 0.3]);
        let mut st = SgdState::new(3);
        st.step_tensor(&mut p, &g, &hp);
        assert_eq!(p.data(), &[0.9, 0.8, 0.7]);
    }
}
