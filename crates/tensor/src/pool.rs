//! Max and average pooling.
//!
//! Max pooling records the argmax index of every output element so the
//! backward pass routes gradients without re-scanning the window; the mask
//! tensor is exactly the "workspace" memory the cost model charges POOL
//! layers for.

use rayon::prelude::*;

use crate::shape::Shape4;
use crate::tensor::Tensor;

/// Pooling hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolParams {
    pub kernel: usize,
    pub stride: usize,
    pub pad: usize,
}

impl PoolParams {
    pub fn out_shape(&self, input: Shape4) -> Shape4 {
        Shape4::new(
            input.n,
            input.c,
            Shape4::conv_out_dim(input.h, self.kernel, self.stride, self.pad),
            Shape4::conv_out_dim(input.w, self.kernel, self.stride, self.pad),
        )
    }
}

/// Max-pool forward: returns `(output, argmax)` where `argmax[i]` is the flat
/// input index that won output element `i`.
pub fn maxpool_forward(input: &Tensor, p: &PoolParams) -> (Tensor, Vec<u32>) {
    let ishape = input.shape();
    let oshape = p.out_shape(ishape);
    let mut out = Tensor::zeros(oshape);
    let mut argmax = vec![0u32; oshape.numel()];
    let ihw = ishape.h * ishape.w;
    let ohw = oshape.h * oshape.w;

    out.data_mut()
        .par_chunks_mut(ohw)
        .zip(argmax.par_chunks_mut(ohw))
        .enumerate()
        .for_each(|(nc, (oplane, aplane))| {
            let n = nc / ishape.c;
            let c = nc % ishape.c;
            let ibase = (n * ishape.c + c) * ihw;
            let iplane = &input.data()[ibase..ibase + ihw];
            for oy in 0..oshape.h {
                for ox in 0..oshape.w {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for kr in 0..p.kernel {
                        let iy = (oy * p.stride + kr) as isize - p.pad as isize;
                        if iy < 0 || iy as usize >= ishape.h {
                            continue;
                        }
                        for kc in 0..p.kernel {
                            let ix = (ox * p.stride + kc) as isize - p.pad as isize;
                            if ix < 0 || ix as usize >= ishape.w {
                                continue;
                            }
                            let idx = iy as usize * ishape.w + ix as usize;
                            if iplane[idx] > best {
                                best = iplane[idx];
                                best_idx = ibase + idx;
                            }
                        }
                    }
                    oplane[oy * oshape.w + ox] = best;
                    aplane[oy * oshape.w + ox] = best_idx as u32;
                }
            }
        });
    (out, argmax)
}

/// Max-pool backward: scatter `grad_out` to the recorded argmax positions.
pub fn maxpool_backward(input_shape: Shape4, grad_out: &Tensor, argmax: &[u32]) -> Tensor {
    assert_eq!(grad_out.shape().numel(), argmax.len());
    let mut gi = Tensor::zeros(input_shape);
    let gdata = gi.data_mut();
    for (g, &idx) in grad_out.data().iter().zip(argmax.iter()) {
        gdata[idx as usize] += g;
    }
    gi
}

/// Average-pool forward.
pub fn avgpool_forward(input: &Tensor, p: &PoolParams) -> Tensor {
    let ishape = input.shape();
    let oshape = p.out_shape(ishape);
    let mut out = Tensor::zeros(oshape);
    let ihw = ishape.h * ishape.w;
    let ohw = oshape.h * oshape.w;
    let window = (p.kernel * p.kernel) as f32;

    out.data_mut()
        .par_chunks_mut(ohw)
        .enumerate()
        .for_each(|(nc, oplane)| {
            let ibase = nc * ihw;
            let iplane = &input.data()[ibase..ibase + ihw];
            for oy in 0..oshape.h {
                for ox in 0..oshape.w {
                    let mut acc = 0.0;
                    for kr in 0..p.kernel {
                        let iy = (oy * p.stride + kr) as isize - p.pad as isize;
                        if iy < 0 || iy as usize >= ishape.h {
                            continue;
                        }
                        for kc in 0..p.kernel {
                            let ix = (ox * p.stride + kc) as isize - p.pad as isize;
                            if ix < 0 || ix as usize >= ishape.w {
                                continue;
                            }
                            acc += iplane[iy as usize * ishape.w + ix as usize];
                        }
                    }
                    oplane[oy * oshape.w + ox] = acc / window;
                }
            }
        });
    out
}

/// Average-pool backward.
pub fn avgpool_backward(input_shape: Shape4, grad_out: &Tensor, p: &PoolParams) -> Tensor {
    let oshape = grad_out.shape();
    let mut gi = Tensor::zeros(input_shape);
    let ihw = input_shape.h * input_shape.w;
    let ohw = oshape.h * oshape.w;
    let window = (p.kernel * p.kernel) as f32;
    for nc in 0..input_shape.n * input_shape.c {
        let gplane = &grad_out.data()[nc * ohw..(nc + 1) * ohw];
        let iplane = &mut gi.data_mut()[nc * ihw..(nc + 1) * ihw];
        for oy in 0..oshape.h {
            for ox in 0..oshape.w {
                let g = gplane[oy * oshape.w + ox] / window;
                for kr in 0..p.kernel {
                    let iy = (oy * p.stride + kr) as isize - p.pad as isize;
                    if iy < 0 || iy as usize >= input_shape.h {
                        continue;
                    }
                    for kc in 0..p.kernel {
                        let ix = (ox * p.stride + kc) as isize - p.pad as isize;
                        if ix < 0 || ix as usize >= input_shape.w {
                            continue;
                        }
                        iplane[iy as usize * input_shape.w + ix as usize] += g;
                    }
                }
            }
        }
    }
    gi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_maxima() {
        let p = PoolParams {
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        let input = Tensor::from_vec(
            Shape4::new(1, 1, 4, 4),
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let (out, argmax) = maxpool_forward(&input, &p);
        assert_eq!(out.data(), &[4., 8., 12., 16.]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let p = PoolParams {
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        let input = Tensor::rand_uniform(Shape4::new(1, 2, 4, 4), 1.0, 5);
        let (out, argmax) = maxpool_forward(&input, &p);
        let gout = Tensor::full(out.shape(), 1.0);
        let gi = maxpool_backward(input.shape(), &gout, &argmax);
        // Every output contributes exactly one unit of gradient.
        assert_eq!(gi.sum(), out.shape().numel() as f32);
        // Gradient only lands on argmax positions.
        for (i, v) in gi.data().iter().enumerate() {
            if *v != 0.0 {
                assert!(argmax.contains(&(i as u32)));
            }
        }
    }

    #[test]
    fn avgpool_averages() {
        let p = PoolParams {
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        let input = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 6.0]);
        let out = avgpool_forward(&input, &p);
        assert_eq!(out.data(), &[3.0]);
    }

    #[test]
    fn avgpool_backward_spreads_evenly() {
        let p = PoolParams {
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        let gout = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![4.0]);
        let gi = avgpool_backward(Shape4::new(1, 1, 2, 2), &gout, &p);
        assert_eq!(gi.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn overlapping_maxpool_like_alexnet() {
        // AlexNet pools are 3x3 stride 2 (overlapping).
        let p = PoolParams {
            kernel: 3,
            stride: 2,
            pad: 0,
        };
        let input = Tensor::rand_uniform(Shape4::new(2, 3, 7, 7), 1.0, 6);
        let (out, _) = maxpool_forward(&input, &p);
        assert_eq!(out.shape(), Shape4::new(2, 3, 3, 3));
        // Output elements must be >= every strided sample they cover.
        assert!(out.data().iter().all(|v| v.is_finite()));
    }
}
