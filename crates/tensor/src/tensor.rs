//! Host-side dense `f32` tensor.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::shape::Shape4;

/// A dense NCHW `f32` tensor.
///
/// In numeric mode the runtime moves these between the simulated device
/// arena and the host pool; the kernels in this crate operate on slices so
/// they are agnostic to where the bytes "live".
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape4,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(shape: Shape4) -> Self {
        Tensor {
            shape,
            data: vec![0.0; shape.numel()],
        }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: Shape4, v: f32) -> Self {
        Tensor {
            shape,
            data: vec![v; shape.numel()],
        }
    }

    /// Deterministic uniform fill in `[-scale, scale]` from a seed.
    pub fn rand_uniform(shape: Shape4, scale: f32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = (0..shape.numel())
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Tensor { shape, data }
    }

    /// Kaiming-style init for a conv/fc weight with `fan_in` inputs.
    pub fn kaiming(shape: Shape4, fan_in: usize, seed: u64) -> Self {
        let scale = (2.0 / fan_in.max(1) as f32).sqrt();
        Self::rand_uniform(shape, scale, seed)
    }

    /// Build from raw data (length must match the shape).
    pub fn from_vec(shape: Shape4, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), shape.numel(), "data length must match shape");
        Tensor { shape, data }
    }

    #[inline]
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.idx(n, c, h, w)]
    }

    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.shape.idx(n, c, h, w);
        self.data[i] = v;
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(mut self, shape: Shape4) -> Self {
        assert_eq!(
            self.shape.numel(),
            shape.numel(),
            "reshape must preserve numel"
        );
        self.shape = shape;
        self
    }

    /// Sum of all elements (used by loss reporting and tests).
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Max absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Elementwise `self += alpha * other` (SAXPY).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Fill with zeros in place (buffer reuse).
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Largest elementwise absolute difference against another tensor.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let s = Shape4::new(1, 2, 2, 2);
        assert_eq!(Tensor::zeros(s).sum(), 0.0);
        assert_eq!(Tensor::full(s, 0.5).sum(), 4.0);
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let s = Shape4::new(2, 3, 4, 4);
        let a = Tensor::rand_uniform(s, 1.0, 42);
        let b = Tensor::rand_uniform(s, 1.0, 42);
        let c = Tensor::rand_uniform(s, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.max_abs() <= 1.0);
    }

    #[test]
    fn indexing_roundtrip() {
        let s = Shape4::new(2, 2, 3, 3);
        let mut t = Tensor::zeros(s);
        t.set(1, 1, 2, 2, 7.5);
        assert_eq!(t.at(1, 1, 2, 2), 7.5);
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let s = Shape4::flat(1, 3);
        let mut a = Tensor::from_vec(s, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(s, vec![10.0, 10.0, 10.0]);
        a.axpy(0.1, &b);
        assert_eq!(a.data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "must match shape")]
    fn from_vec_validates_length() {
        Tensor::from_vec(Shape4::flat(1, 3), vec![0.0; 2]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1., 2., 3., 4.]);
        let r = t.reshape(Shape4::flat(1, 4));
        assert_eq!(r.data(), &[1., 2., 3., 4.]);
    }
}
