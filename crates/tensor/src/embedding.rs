//! Token-embedding lookup.
//!
//! The data pipeline produces `f32` batches, so the embedding layer derives a
//! token id from each input element with a counter-style hash of its bit
//! pattern (stateless, like the dropout mask): the same input always selects
//! the same row, which keeps recomputation exact. Input is `N×1×H×W` (one
//! scalar per sequence position); output is `N×dim×H×W`.

use crate::shape::Shape4;
use crate::tensor::Tensor;

/// Deterministic token id for one input element (SplitMix64 on the bits).
#[inline]
pub fn token_of(bits: u32, vocab: usize) -> usize {
    let mut z = (bits as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z % vocab as u64) as usize
}

/// Embedding forward: gather `table` rows (`vocab×dim`, row-major) by the
/// token id of each input position.
pub fn embedding_forward(input: &Tensor, table: &[f32], vocab: usize, dim: usize) -> Tensor {
    let s = input.shape();
    assert_eq!(s.c, 1, "embedding input carries one token id per position");
    assert_eq!(table.len(), vocab * dim);
    let hw = s.h * s.w;
    let mut out = Tensor::zeros(Shape4::new(s.n, dim, s.h, s.w));
    for n in 0..s.n {
        for pos in 0..hw {
            let t = token_of(input.data()[n * hw + pos].to_bits(), vocab);
            let row = &table[t * dim..(t + 1) * dim];
            for (d, &v) in row.iter().enumerate() {
                out.data_mut()[(n * dim + d) * hw + pos] = v;
            }
        }
    }
    out
}

/// Embedding backward: scatter-add the output gradient into the table
/// gradient. Token ids are not differentiable, so `grad_input` is zero.
pub fn embedding_backward(
    input: &Tensor,
    grad_out: &Tensor,
    vocab: usize,
    dim: usize,
) -> (Tensor, Vec<f32>) {
    let s = input.shape();
    let hw = s.h * s.w;
    assert_eq!(grad_out.shape(), Shape4::new(s.n, dim, s.h, s.w));
    let mut dtable = vec![0.0f32; vocab * dim];
    for n in 0..s.n {
        for pos in 0..hw {
            let t = token_of(input.data()[n * hw + pos].to_bits(), vocab);
            for d in 0..dim {
                dtable[t * dim + d] += grad_out.data()[(n * dim + d) * hw + pos];
            }
        }
    }
    (Tensor::zeros(s), dtable)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_is_deterministic_and_row_aligned() {
        let (vocab, dim) = (7, 3);
        let table: Vec<f32> = (0..vocab * dim).map(|i| i as f32).collect();
        let x = Tensor::rand_uniform(Shape4::new(2, 1, 4, 1), 1.0, 21);
        let y1 = embedding_forward(&x, &table, vocab, dim);
        let y2 = embedding_forward(&x, &table, vocab, dim);
        assert_eq!(y1, y2, "same input must select the same rows");
        // Every output position is an exact table row.
        let hw = 4;
        for n in 0..2 {
            for pos in 0..hw {
                let t = token_of(x.data()[n * hw + pos].to_bits(), vocab);
                for d in 0..dim {
                    assert_eq!(y1.data()[(n * dim + d) * hw + pos], table[t * dim + d]);
                }
            }
        }
    }

    #[test]
    fn backward_scatters_exactly_where_forward_gathered() {
        let (vocab, dim) = (5, 2);
        let table = vec![0.5f32; vocab * dim];
        let x = Tensor::rand_uniform(Shape4::new(1, 1, 6, 1), 1.0, 22);
        let dy = Tensor::full(Shape4::new(1, dim, 6, 1), 1.0);
        let (dx, dt) = embedding_backward(&x, &dy, vocab, dim);
        assert_eq!(dx.sum(), 0.0, "token ids carry no gradient");
        // Six positions each add 1.0 to `dim` slots.
        assert_eq!(dt.iter().sum::<f32>(), 6.0 * dim as f32);
        // Touched rows are consistent with the forward gather.
        let used: std::collections::HashSet<usize> = (0..6)
            .map(|p| token_of(x.data()[p].to_bits(), vocab))
            .collect();
        for t in 0..vocab {
            let touched = (0..dim).any(|d| dt[t * dim + d] != 0.0);
            assert_eq!(touched, used.contains(&t), "row {t}");
        }
        let _ = embedding_forward(&x, &table, vocab, dim);
    }
}
