//! Fully-connected (inner product) layer.

use crate::gemm::{sgemm, sgemm_at, sgemm_bt};
use crate::shape::Shape4;
use crate::tensor::Tensor;

/// FC forward: `y[N×K] = x[N×F] · W[K×F]ᵀ + b`, where the input is viewed as
/// `N × features` regardless of its spatial layout.
pub fn fc_forward(input: &Tensor, weight: &Tensor, bias: &[f32]) -> Tensor {
    let n = input.shape().n;
    let f = input.shape().features();
    let k = weight.shape().n;
    assert_eq!(
        weight.shape().features(),
        f,
        "weight features must match input"
    );
    assert_eq!(bias.len(), k);
    let mut out = Tensor::zeros(Shape4::flat(n, k));
    // y = x · Wᵀ
    sgemm_bt(
        n,
        k,
        f,
        1.0,
        input.data(),
        weight.data(),
        0.0,
        out.data_mut(),
    );
    for row in out.data_mut().chunks_mut(k) {
        for (v, b) in row.iter_mut().zip(bias.iter()) {
            *v += b;
        }
    }
    out
}

/// FC backward: `(grad_input, grad_weight, grad_bias)`.
pub fn fc_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
) -> (Tensor, Tensor, Vec<f32>) {
    let n = input.shape().n;
    let f = input.shape().features();
    let k = weight.shape().n;
    assert_eq!(grad_out.shape().n, n);
    assert_eq!(grad_out.shape().features(), k);

    // dX[N×F] = dY[N×K] · W[K×F]
    let mut gi = Tensor::zeros(input.shape());
    sgemm(
        n,
        f,
        k,
        1.0,
        grad_out.data(),
        weight.data(),
        0.0,
        gi.data_mut(),
    );

    // dW[K×F] = dY[N×K]ᵀ · X[N×F]
    let mut gw = Tensor::zeros(weight.shape());
    sgemm_at(
        k,
        f,
        n,
        1.0,
        grad_out.data(),
        input.data(),
        0.0,
        gw.data_mut(),
    );

    // dB[K] = column sums of dY
    let mut gb = vec![0.0f32; k];
    for row in grad_out.data().chunks(k) {
        for (g, v) in gb.iter_mut().zip(row.iter()) {
            *g += v;
        }
    }
    (gi, gw, gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_computes_affine_map() {
        // x = [[1, 2]], W = [[1, 0], [0, 1], [1, 1]], b = [0.5, 0.5, 0.5]
        let x = Tensor::from_vec(Shape4::flat(1, 2), vec![1.0, 2.0]);
        let w = Tensor::from_vec(Shape4::flat(3, 2), vec![1., 0., 0., 1., 1., 1.]);
        let y = fc_forward(&x, &w, &[0.5, 0.5, 0.5]);
        assert_eq!(y.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn forward_flattens_spatial_input() {
        let x = Tensor::full(Shape4::new(2, 2, 2, 2), 1.0); // 8 features
        let w = Tensor::full(Shape4::flat(4, 8), 0.25);
        let y = fc_forward(&x, &w, &[0.0; 4]);
        assert_eq!(y.shape(), Shape4::flat(2, 4));
        for v in y.data() {
            assert!((*v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let x = Tensor::rand_uniform(Shape4::flat(3, 5), 1.0, 17);
        let w = Tensor::rand_uniform(Shape4::flat(4, 5), 0.5, 18);
        let b = vec![0.1, 0.2, -0.1, 0.0];
        let dy = Tensor::rand_uniform(Shape4::flat(3, 4), 1.0, 19);
        let (dx, dw, db) = fc_backward(&x, &w, &dy);

        let loss = |inp: &Tensor, wt: &Tensor| -> f32 {
            fc_forward(inp, wt, &b)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, g)| a * g)
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 6, 14] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-2);
        }
        for &i in &[0usize, 9, 19] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - dw.data()[i]).abs() < 1e-2);
        }
        // dB equals column sums of dY.
        for c in 0..4 {
            let expect: f32 = (0..3).map(|r| dy.data()[r * 4 + c]).sum();
            assert!((db[c] - expect).abs() < 1e-6);
        }
    }
}
