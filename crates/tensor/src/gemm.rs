//! Single-precision GEMM: `C = alpha * A·B + beta * C`, row-major.
//!
//! This is the workhorse under FC layers and im2col convolution. The kernel
//! parallelizes over row blocks with rayon and micro-blocks over K to stay in
//! cache; it is not a BLAS contender, but it is exact and fast enough to
//! train the numeric-mode networks in tests and examples.

use rayon::prelude::*;

/// `C[m×n] = alpha · A[m×k] · B[k×n] + beta · C`, all row-major, no
/// transposes (callers materialize transposed views when needed).
pub fn sgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");

    // Scale C by beta up front so the accumulation loop is pure FMA.
    if beta == 0.0 {
        c.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|v| *v *= beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    const KB: usize = 64; // K-blocking keeps a B panel in L1/L2.
    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        let arow = &a[i * k..(i + 1) * k];
        let mut kk = 0;
        while kk < k {
            let kend = (kk + KB).min(k);
            for (p, &av) in arow[kk..kend].iter().enumerate() {
                let scaled = alpha * av;
                if scaled == 0.0 {
                    continue;
                }
                let brow = &b[(kk + p) * n..(kk + p + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += scaled * bv;
                }
            }
            kk = kend;
        }
    });
}

/// `C[m×n] = alpha · Aᵀ[m×k] · B[k×n] + beta · C` where `a` is stored `k×m`.
/// Used by convolution filter gradients.
pub fn sgemm_at(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32], // k×m
    b: &[f32], // k×n
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), k * m, "A must be k×m (transposed)");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");
    if beta == 0.0 {
        c.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|v| *v *= beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        for p in 0..k {
            let scaled = alpha * a[p * m + i];
            if scaled == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += scaled * bv;
            }
        }
    });
}

/// `C[m×n] = alpha · A[m×k] · Bᵀ[k×n] + beta · C` where `b` is stored `n×k`.
/// Used by FC backward-data and conv backward-data.
pub fn sgemm_bt(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32], // m×k
    b: &[f32], // n×k (transposed)
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), n * k, "B must be n×k (transposed)");
    assert_eq!(c.len(), m * n, "C must be m×n");
    if beta == 0.0 {
        c.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|v| *v *= beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        let arow = &a[i * k..(i + 1) * k];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *cv += alpha * acc;
        }
    });
}

/// Sequential GEMM for use *inside* an outer rayon parallel region (e.g. the
/// per-image loop of im2col convolution), where nested parallelism would
/// oversubscribe the pool.
pub fn sgemm_seq(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");
    if beta == 0.0 {
        c.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|v| *v *= beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            let scaled = alpha * av;
            if scaled == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += scaled * bv;
            }
        }
    }
}

/// Naive reference used only by tests.
#[doc(hidden)]
pub fn sgemm_reference(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn randv(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_reference_various_sizes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (16, 16, 16),
            (33, 17, 129),
            (64, 1, 200),
        ] {
            let a = randv(m * k, 1);
            let b = randv(k * n, 2);
            let mut c1 = randv(m * n, 3);
            let mut c2 = c1.clone();
            sgemm(m, n, k, 0.7, &a, &b, 0.3, &mut c1);
            sgemm_reference(m, n, k, 0.7, &a, &b, 0.3, &mut c2);
            assert_close(&c1, &c2, 1e-5);
        }
    }

    #[test]
    fn at_variant_matches_explicit_transpose() {
        let (m, n, k) = (13, 9, 21);
        let at = randv(k * m, 4); // stored k×m
        let b = randv(k * n, 5);
        // materialize A = atᵀ (m×k)
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        sgemm_at(m, n, k, 1.0, &at, &b, 0.0, &mut c1);
        sgemm_reference(m, n, k, 1.0, &a, &b, 0.0, &mut c2);
        assert_close(&c1, &c2, 1e-5);
    }

    #[test]
    fn bt_variant_matches_explicit_transpose() {
        let (m, n, k) = (7, 11, 15);
        let a = randv(m * k, 6);
        let bt = randv(n * k, 7); // stored n×k
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        sgemm_bt(m, n, k, 1.0, &a, &bt, 0.0, &mut c1);
        sgemm_reference(m, n, k, 1.0, &a, &b, 0.0, &mut c2);
        assert_close(&c1, &c2, 1e-5);
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let (m, n, k) = (2, 2, 2);
        let a = vec![1.0; 4];
        let b = vec![1.0; 4];
        let mut c = vec![f32::NAN; 4];
        sgemm(m, n, k, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, vec![2.0; 4]);
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let (m, n, k) = (2, 3, 4);
        let a = randv(m * k, 8);
        let b = randv(k * n, 9);
        let mut c = vec![2.0; m * n];
        sgemm(m, n, k, 0.0, &a, &b, 0.5, &mut c);
        assert_eq!(c, vec![1.0; m * n]);
    }
}
