//! 2-D convolution: im2col + GEMM (the "explicit GEMM" cuDNN algorithm whose
//! workspace the paper's dynamic allocator provisions), a direct reference
//! kernel, and the data/filter gradients.

use rayon::prelude::*;

use crate::gemm::sgemm_at;
use crate::shape::Shape4;
use crate::tensor::Tensor;

/// Convolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvParams {
    pub out_channels: usize,
    pub kernel: usize,
    pub stride: usize,
    pub pad: usize,
}

impl ConvParams {
    pub fn out_shape(&self, input: Shape4) -> Shape4 {
        let oh = Shape4::conv_out_dim(input.h, self.kernel, self.stride, self.pad);
        let ow = Shape4::conv_out_dim(input.w, self.kernel, self.stride, self.pad);
        Shape4::new(input.n, self.out_channels, oh, ow)
    }

    /// Filter shape: `K × C × R × S`.
    pub fn weight_shape(&self, in_channels: usize) -> Shape4 {
        Shape4::new(self.out_channels, in_channels, self.kernel, self.kernel)
    }

    /// Per-image im2col buffer size in elements: `C·R·S × OH·OW`.
    pub fn im2col_elems(&self, input: Shape4) -> usize {
        let out = self.out_shape(input);
        input.c * self.kernel * self.kernel * out.h * out.w
    }
}

/// Expand one image (`C×H×W` slice) into the `C·R·S × OH·OW` column matrix.
pub fn im2col(input: &[f32], c: usize, h: usize, w: usize, p: &ConvParams, cols: &mut [f32]) {
    let oh = Shape4::conv_out_dim(h, p.kernel, p.stride, p.pad);
    let ow = Shape4::conv_out_dim(w, p.kernel, p.stride, p.pad);
    let k = p.kernel;
    assert_eq!(cols.len(), c * k * k * oh * ow);
    let mut row = 0usize;
    for ch in 0..c {
        for kr in 0..k {
            for kc in 0..k {
                let base = row * oh * ow;
                row += 1;
                for oy in 0..oh {
                    let iy = (oy * p.stride + kr) as isize - p.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kc) as isize - p.pad as isize;
                        let v = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            input[(ch * h + iy as usize) * w + ix as usize]
                        } else {
                            0.0
                        };
                        cols[base + oy * ow + ox] = v;
                    }
                }
            }
        }
    }
}

/// Scatter a column matrix back into an image (the adjoint of [`im2col`]),
/// accumulating into `grad_input`.
pub fn col2im(cols: &[f32], c: usize, h: usize, w: usize, p: &ConvParams, grad_input: &mut [f32]) {
    let oh = Shape4::conv_out_dim(h, p.kernel, p.stride, p.pad);
    let ow = Shape4::conv_out_dim(w, p.kernel, p.stride, p.pad);
    let k = p.kernel;
    assert_eq!(cols.len(), c * k * k * oh * ow);
    let mut row = 0usize;
    for ch in 0..c {
        for kr in 0..k {
            for kc in 0..k {
                let base = row * oh * ow;
                row += 1;
                for oy in 0..oh {
                    let iy = (oy * p.stride + kr) as isize - p.pad as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kc) as isize - p.pad as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        grad_input[(ch * h + iy as usize) * w + ix as usize] +=
                            cols[base + oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Forward convolution via im2col + GEMM. `bias` is per-output-channel.
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, bias: &[f32], p: &ConvParams) -> Tensor {
    let ishape = input.shape();
    let wshape = weight.shape();
    assert_eq!(wshape.c, ishape.c, "filter channels must match input");
    assert_eq!(wshape.n, p.out_channels);
    assert_eq!(bias.len(), p.out_channels);
    let oshape = p.out_shape(ishape);
    let mut out = Tensor::zeros(oshape);

    let crs = ishape.c * p.kernel * p.kernel;
    let ohw = oshape.h * oshape.w;
    let in_stride = ishape.features();
    let out_stride = oshape.features();

    // Parallel over images: each expands its own column buffer and runs a
    // (K × CRS)·(CRS × OHW) GEMM.
    out.data_mut()
        .par_chunks_mut(out_stride)
        .zip(input.data().par_chunks(in_stride))
        .for_each(|(oimg, iimg)| {
            let mut cols = vec![0.0f32; crs * ohw];
            im2col(iimg, ishape.c, ishape.h, ishape.w, p, &mut cols);
            // weight is K×CRS row-major already.
            crate::gemm::sgemm_seq(
                p.out_channels,
                ohw,
                crs,
                1.0,
                weight.data(),
                &cols,
                0.0,
                oimg,
            );
            for k in 0..p.out_channels {
                let b = bias[k];
                if b != 0.0 {
                    for v in &mut oimg[k * ohw..(k + 1) * ohw] {
                        *v += b;
                    }
                }
            }
        });
    out
}

/// Direct (naive) forward convolution — the correctness reference.
pub fn conv2d_forward_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: &[f32],
    p: &ConvParams,
) -> Tensor {
    let ishape = input.shape();
    let oshape = p.out_shape(ishape);
    let mut out = Tensor::zeros(oshape);
    for n in 0..ishape.n {
        for k in 0..p.out_channels {
            for oy in 0..oshape.h {
                for ox in 0..oshape.w {
                    let mut acc = bias[k];
                    for c in 0..ishape.c {
                        for kr in 0..p.kernel {
                            let iy = (oy * p.stride + kr) as isize - p.pad as isize;
                            if iy < 0 || iy as usize >= ishape.h {
                                continue;
                            }
                            for kc in 0..p.kernel {
                                let ix = (ox * p.stride + kc) as isize - p.pad as isize;
                                if ix < 0 || ix as usize >= ishape.w {
                                    continue;
                                }
                                acc += input.at(n, c, iy as usize, ix as usize)
                                    * weight.at(k, c, kr, kc);
                            }
                        }
                    }
                    out.set(n, k, oy, ox, acc);
                }
            }
        }
    }
    out
}

/// Gradients of a convolution: `(grad_input, grad_weight, grad_bias)`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    p: &ConvParams,
) -> (Tensor, Tensor, Vec<f32>) {
    let ishape = input.shape();
    let wshape = weight.shape();
    let oshape = grad_out.shape();
    assert_eq!(oshape, p.out_shape(ishape));

    let crs = ishape.c * p.kernel * p.kernel;
    let ohw = oshape.h * oshape.w;
    let in_stride = ishape.features();
    let out_stride = oshape.features();

    let mut grad_input = Tensor::zeros(ishape);
    let mut grad_weight = Tensor::zeros(wshape);
    let mut grad_bias = vec![0.0f32; p.out_channels];

    // grad_bias: sum of grad_out over N, OH, OW per channel.
    for n in 0..oshape.n {
        let img = &grad_out.data()[n * out_stride..(n + 1) * out_stride];
        for k in 0..p.out_channels {
            grad_bias[k] += img[k * ohw..(k + 1) * ohw].iter().sum::<f32>();
        }
    }

    // Per-image: dW += dY · colsᵀ ; dcols = Wᵀ · dY ; dX += col2im(dcols).
    // Weight gradient accumulates across images, so that part is sequential;
    // the expensive GEMMs inside still use the parallel kernels.
    let mut cols = vec![0.0f32; crs * ohw];
    let mut dcols = vec![0.0f32; crs * ohw];
    for n in 0..ishape.n {
        let iimg = &input.data()[n * in_stride..(n + 1) * in_stride];
        let oimg = &grad_out.data()[n * out_stride..(n + 1) * out_stride];
        im2col(iimg, ishape.c, ishape.h, ishape.w, p, &mut cols);
        // dW[K×CRS] += dY[K×OHW] · cols[CRS×OHW]ᵀ
        crate::gemm::sgemm_bt(
            p.out_channels,
            crs,
            ohw,
            1.0,
            oimg,
            &cols,
            1.0,
            grad_weight.data_mut(),
        );
        // dcols[CRS×OHW] = W[K×CRS]ᵀ · dY[K×OHW]
        sgemm_at(
            crs,
            ohw,
            p.out_channels,
            1.0,
            weight.data(),
            oimg,
            0.0,
            &mut dcols,
        );
        let gimg = &mut grad_input.data_mut()[n * in_stride..(n + 1) * in_stride];
        col2im(&dcols, ishape.c, ishape.h, ishape.w, p, gimg);
    }
    (grad_input, grad_weight, grad_bias)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_case() -> (Tensor, Tensor, Vec<f32>, ConvParams) {
        let p = ConvParams {
            out_channels: 3,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let input = Tensor::rand_uniform(Shape4::new(2, 2, 7, 7), 1.0, 11);
        let weight = Tensor::rand_uniform(p.weight_shape(2), 0.5, 12);
        let bias = vec![0.1, -0.2, 0.3];
        (input, weight, bias, p)
    }

    #[test]
    fn gemm_conv_matches_direct() {
        let (input, weight, bias, p) = small_case();
        let a = conv2d_forward(&input, &weight, &bias, &p);
        let b = conv2d_forward_direct(&input, &weight, &bias, &p);
        assert!(a.max_abs_diff(&b) < 1e-4, "diff {}", a.max_abs_diff(&b));
    }

    #[test]
    fn output_shape_is_correct() {
        let (input, weight, bias, p) = small_case();
        let out = conv2d_forward(&input, &weight, &bias, &p);
        assert_eq!(out.shape(), Shape4::new(2, 3, 4, 4));
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property.
        let p = ConvParams {
            out_channels: 1,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let (c, h, w) = (2, 5, 5);
        let x = Tensor::rand_uniform(Shape4::new(1, c, h, w), 1.0, 21);
        let cols_len = p.im2col_elems(x.shape());
        let y = Tensor::rand_uniform(Shape4::flat(1, cols_len), 1.0, 22);
        let mut cols = vec![0.0; cols_len];
        im2col(x.data(), c, h, w, &p, &mut cols);
        let lhs: f32 = cols.iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let mut xadj = vec![0.0; c * h * w];
        col2im(y.data(), c, h, w, &p, &mut xadj);
        let rhs: f32 = x.data().iter().zip(xadj.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let p = ConvParams {
            out_channels: 2,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let input = Tensor::rand_uniform(Shape4::new(1, 2, 4, 4), 1.0, 31);
        let weight = Tensor::rand_uniform(p.weight_shape(2), 0.5, 32);
        let bias = vec![0.05, -0.05];
        let gout = Tensor::rand_uniform(p.out_shape(input.shape()), 1.0, 33);
        let (gi, gw, gb) = conv2d_backward(&input, &weight, &gout, &p);

        let loss = |inp: &Tensor, w: &Tensor, b: &[f32]| -> f32 {
            let y = conv2d_forward(inp, w, b, &p);
            y.data().iter().zip(gout.data()).map(|(a, g)| a * g).sum()
        };
        let eps = 1e-2f32;
        // input gradient at a few positions
        for &i in &[0usize, 5, 17, 31] {
            let mut ip = input.clone();
            ip.data_mut()[i] += eps;
            let mut im = input.clone();
            im.data_mut()[i] -= eps;
            let num = (loss(&ip, &weight, &bias) - loss(&im, &weight, &bias)) / (2.0 * eps);
            assert!(
                (num - gi.data()[i]).abs() < 2e-2,
                "dX[{i}]: {num} vs {}",
                gi.data()[i]
            );
        }
        // weight gradient
        for &i in &[0usize, 7, 20] {
            let mut wp = weight.clone();
            wp.data_mut()[i] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
            assert!(
                (num - gw.data()[i]).abs() < 2e-2,
                "dW[{i}]: {num} vs {}",
                gw.data()[i]
            );
        }
        // bias gradient
        for i in 0..2 {
            let mut bp = bias.clone();
            bp[i] += eps;
            let mut bm = bias.clone();
            bm[i] -= eps;
            let num = (loss(&input, &weight, &bp) - loss(&input, &weight, &bm)) / (2.0 * eps);
            assert!((num - gb[i]).abs() < 2e-2, "dB[{i}]: {num} vs {}", gb[i]);
        }
    }

    #[test]
    fn stride_without_pad() {
        let p = ConvParams {
            out_channels: 1,
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        // 1×1×4×4 ones, 2×2 ones kernel, stride 2 → every output = 4.
        let input = Tensor::full(Shape4::new(1, 1, 4, 4), 1.0);
        let weight = Tensor::full(p.weight_shape(1), 1.0);
        let out = conv2d_forward(&input, &weight, &[0.0], &p);
        assert_eq!(out.shape(), Shape4::new(1, 1, 2, 2));
        assert_eq!(out.data(), &[4.0, 4.0, 4.0, 4.0]);
    }
}
