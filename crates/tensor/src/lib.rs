//! # sn-tensor — real NCHW tensor kernels for the numeric execution mode
//!
//! SuperNeurons schedules *tensors*; to prove the runtime actually trains
//! networks (and that recomputation reconstructs bit-identical activations)
//! we implement every layer the paper's networks use, forward and backward,
//! on the CPU:
//!
//! * blocked, rayon-parallel single-precision [`gemm`](gemm::sgemm);
//! * convolution via `im2col` + GEMM and via a direct loop (the two must
//!   agree — a property test enforces it), plus data/filter gradients;
//! * max/average pooling with argmax bookkeeping;
//! * ReLU, LRN (cross-channel), batch normalization, dropout (counter-based
//!   mask so recomputation regenerates the identical mask without storing
//!   it), softmax + cross-entropy loss;
//! * fully-connected layers and SGD with momentum;
//! * the transformer family: token [`embedding`](embedding::embedding_forward)
//!   (hash-gathered, recompute-exact), [`layernorm`](layernorm::layernorm_forward)
//!   over the channel axis, multi-head self-[`attention`](attention::attention_forward),
//!   and the position-wise [`mlp`](mlp::mlp_forward) block — all
//!   input-formulated so cost-aware recomputation replays them exactly.
//!
//! Byte accounting is precision-aware: [`DType`] gives bytes
//! per element and [`Shape4::bytes_of`] sizes a tensor at any precision
//! (`Shape4::bytes` remains the fp32 shorthand). Numeric kernels stay f32 —
//! dtype affects the *memory model*, not reference numerics.
//!
//! Kernels favour clarity + data-parallelism over peak FLOPs: the paper's
//! experiments run in *virtual* mode (cost models), while numeric mode exists
//! to validate correctness end-to-end on small networks.

// Kernel style: BLAS-shaped signatures (m, n, k, alpha, ...) and explicit
// index loops mirror the reference maths; clippy's preferences here would
// obscure the correspondence.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

pub mod act;
pub mod attention;
pub mod conv;
pub mod embedding;
pub mod gemm;
pub mod layernorm;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod norm;
pub mod pool;
pub mod sgd;
pub mod shape;
pub mod tensor;

pub use shape::{DType, Shape4};
pub use tensor::Tensor;
