//! Multi-head self-attention over the sequence axis.
//!
//! Layout convention matches the rest of the stack: activations are NCHW
//! with `C` the model dimension and `H·W` the flattened sequence. Weights
//! are packed `[Wq, Wk, Wv, Wo]` (each `d×d`, row-major `[out, in]`) with
//! biases `[bq, bk, bv, bo]` (each `d`). The backward kernel re-derives
//! every intermediate (q/k/v, softmax probabilities, context) from the
//! input, so the layer is input-formulated and recomputation-exact.

use crate::gemm::{sgemm, sgemm_at, sgemm_bt};
use crate::tensor::Tensor;

/// Gather one batch item into a position-major `[S, d]` matrix.
fn to_pos_major(x: &[f32], n: usize, d: usize, s: usize) -> Vec<f32> {
    let base = n * d * s;
    let mut m = vec![0.0f32; s * d];
    for ch in 0..d {
        for pos in 0..s {
            m[pos * d + ch] = x[base + ch * s + pos];
        }
    }
    m
}

/// Scatter a position-major `[S, d]` matrix back into one NCHW batch item.
fn from_pos_major(m: &[f32], out: &mut [f32], n: usize, d: usize, s: usize) {
    let base = n * d * s;
    for ch in 0..d {
        for pos in 0..s {
            out[base + ch * s + pos] = m[pos * d + ch];
        }
    }
}

fn add_bias(m: &mut [f32], bias: &[f32], d: usize) {
    for row in m.chunks_mut(d) {
        for (v, b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Extract head `h` (`hd` columns starting at `h*hd`) into a dense `[S, hd]`.
fn head(m: &[f32], h: usize, hd: usize, d: usize, s: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; s * hd];
    for pos in 0..s {
        out[pos * hd..(pos + 1) * hd].copy_from_slice(&m[pos * d + h * hd..pos * d + h * hd + hd]);
    }
    out
}

fn head_add(dst: &mut [f32], src: &[f32], h: usize, hd: usize, d: usize, s: usize) {
    for pos in 0..s {
        for j in 0..hd {
            dst[pos * d + h * hd + j] += src[pos * hd + j];
        }
    }
}

fn softmax_rows(m: &mut [f32], s: usize) {
    for row in m.chunks_mut(s) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// One batch item's forward intermediates, re-derived identically by backward.
struct Fwd {
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    /// Per-head softmax probabilities, `heads × S × S`.
    probs: Vec<Vec<f32>>,
    ctx: Vec<f32>,
}

fn forward_one(xp: &[f32], weight: &[f32], bias: &[f32], heads: usize, d: usize, s: usize) -> Fwd {
    let dd = d * d;
    let hd = d / heads;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut q = vec![0.0f32; s * d];
    let mut k = vec![0.0f32; s * d];
    let mut v = vec![0.0f32; s * d];
    sgemm_bt(s, d, d, 1.0, xp, &weight[0..dd], 0.0, &mut q);
    sgemm_bt(s, d, d, 1.0, xp, &weight[dd..2 * dd], 0.0, &mut k);
    sgemm_bt(s, d, d, 1.0, xp, &weight[2 * dd..3 * dd], 0.0, &mut v);
    add_bias(&mut q, &bias[0..d], d);
    add_bias(&mut k, &bias[d..2 * d], d);
    add_bias(&mut v, &bias[2 * d..3 * d], d);

    let mut probs = Vec::with_capacity(heads);
    let mut ctx = vec![0.0f32; s * d];
    for h in 0..heads {
        let qh = head(&q, h, hd, d, s);
        let kh = head(&k, h, hd, d, s);
        let vh = head(&v, h, hd, d, s);
        let mut p = vec![0.0f32; s * s];
        sgemm_bt(s, s, hd, scale, &qh, &kh, 0.0, &mut p);
        softmax_rows(&mut p, s);
        let mut ch = vec![0.0f32; s * hd];
        sgemm(s, hd, s, 1.0, &p, &vh, 0.0, &mut ch);
        head_add(&mut ctx, &ch, h, hd, d, s);
        probs.push(p);
    }
    Fwd {
        q,
        k,
        v,
        probs,
        ctx,
    }
}

/// Attention forward: `y = MHA(x)·Woᵀ + bo`, shape-preserving.
pub fn attention_forward(input: &Tensor, weight: &[f32], bias: &[f32], heads: usize) -> Tensor {
    let sh = input.shape();
    let (d, s) = (sh.c, sh.h * sh.w);
    assert_eq!(
        d % heads,
        0,
        "model dim {d} must split across {heads} heads"
    );
    assert_eq!(weight.len(), 4 * d * d);
    assert_eq!(bias.len(), 4 * d);
    let dd = d * d;
    let mut out = Tensor::zeros(sh);
    for n in 0..sh.n {
        let xp = to_pos_major(input.data(), n, d, s);
        let f = forward_one(&xp, weight, bias, heads, d, s);
        let mut y = vec![0.0f32; s * d];
        sgemm_bt(s, d, d, 1.0, &f.ctx, &weight[3 * dd..4 * dd], 0.0, &mut y);
        add_bias(&mut y, &bias[3 * d..4 * d], d);
        from_pos_major(&y, out.data_mut(), n, d, s);
    }
    out
}

/// Attention backward: returns `(grad_input, grad_weight, grad_bias)` with
/// the same packed layouts as the forward arguments.
pub fn attention_backward(
    input: &Tensor,
    weight: &[f32],
    bias: &[f32],
    grad_out: &Tensor,
    heads: usize,
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let sh = input.shape();
    assert_eq!(sh, grad_out.shape());
    let (d, s) = (sh.c, sh.h * sh.w);
    let dd = d * d;
    let hd = d / heads;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut gi = Tensor::zeros(sh);
    let mut dw = vec![0.0f32; 4 * dd];
    let mut db = vec![0.0f32; 4 * d];

    for n in 0..sh.n {
        let xp = to_pos_major(input.data(), n, d, s);
        let f = forward_one(&xp, weight, bias, heads, d, s);
        let g = to_pos_major(grad_out.data(), n, d, s);

        // Output projection.
        sgemm_at(d, d, s, 1.0, &g, &f.ctx, 1.0, &mut dw[3 * dd..4 * dd]);
        for row in g.chunks(d) {
            for (acc, &v) in db[3 * d..4 * d].iter_mut().zip(row) {
                *acc += v;
            }
        }
        let mut dctx = vec![0.0f32; s * d];
        sgemm(s, d, d, 1.0, &g, &weight[3 * dd..4 * dd], 0.0, &mut dctx);

        let mut dq = vec![0.0f32; s * d];
        let mut dk = vec![0.0f32; s * d];
        let mut dv = vec![0.0f32; s * d];
        for h in 0..heads {
            let qh = head(&f.q, h, hd, d, s);
            let kh = head(&f.k, h, hd, d, s);
            let dch = head(&dctx, h, hd, d, s);
            let p = &f.probs[h];
            // dV_h = Pᵀ · dCtx_h; dP = dCtx_h · V_hᵀ.
            let vh = head(&f.v, h, hd, d, s);
            let mut dvh = vec![0.0f32; s * hd];
            sgemm_at(s, hd, s, 1.0, p, &dch, 0.0, &mut dvh);
            let mut dp = vec![0.0f32; s * s];
            sgemm_bt(s, s, hd, 1.0, &dch, &vh, 0.0, &mut dp);
            // Softmax backward, row-wise.
            let mut ds = vec![0.0f32; s * s];
            for r in 0..s {
                let prow = &p[r * s..(r + 1) * s];
                let dprow = &dp[r * s..(r + 1) * s];
                let dot: f32 = prow.iter().zip(dprow).map(|(a, b)| a * b).sum();
                for j in 0..s {
                    ds[r * s + j] = prow[j] * (dprow[j] - dot);
                }
            }
            let mut dqh = vec![0.0f32; s * hd];
            let mut dkh = vec![0.0f32; s * hd];
            sgemm(s, hd, s, scale, &ds, &kh, 0.0, &mut dqh);
            sgemm_at(s, hd, s, scale, &ds, &qh, 0.0, &mut dkh);
            head_add(&mut dq, &dqh, h, hd, d, s);
            head_add(&mut dk, &dkh, h, hd, d, s);
            head_add(&mut dv, &dvh, h, hd, d, s);
        }

        // Projection weight/bias/input gradients.
        for (i, dm) in [&dq, &dk, &dv].into_iter().enumerate() {
            sgemm_at(d, d, s, 1.0, dm, &xp, 1.0, &mut dw[i * dd..(i + 1) * dd]);
            for row in dm.chunks(d) {
                for (acc, &v) in db[i * d..(i + 1) * d].iter_mut().zip(row) {
                    *acc += v;
                }
            }
        }
        let mut dxp = vec![0.0f32; s * d];
        sgemm(s, d, d, 1.0, &dq, &weight[0..dd], 0.0, &mut dxp);
        sgemm(s, d, d, 1.0, &dk, &weight[dd..2 * dd], 1.0, &mut dxp);
        sgemm(s, d, d, 1.0, &dv, &weight[2 * dd..3 * dd], 1.0, &mut dxp);
        from_pos_major(&dxp, gi.data_mut(), n, d, s);
    }
    (gi, dw, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::rand_uniform(Shape4::new(1, 4, 3, 1), 1.0, 41);
        let w: Vec<f32> = (0..4 * 16).map(|i| ((i % 7) as f32 - 3.0) * 0.2).collect();
        let b = vec![0.05f32; 16];
        let y = attention_forward(&x, &w, &b, 2);
        assert_eq!(y.shape(), x.shape());
        assert!(y.max_abs() > 0.0);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let (d, s, heads) = (4usize, 3usize, 2usize);
        let x = Tensor::rand_uniform(Shape4::new(2, d, s, 1), 1.0, 42);
        let w: Vec<f32> = Tensor::rand_uniform(Shape4::flat(4 * d, d), 0.5, 43)
            .data()
            .to_vec();
        let b: Vec<f32> = Tensor::rand_uniform(Shape4::flat(1, 4 * d), 0.2, 44)
            .data()
            .to_vec();
        let dy = Tensor::rand_uniform(x.shape(), 1.0, 45);
        let (dx, dw, db) = attention_backward(&x, &w, &b, &dy, heads);

        let loss = |inp: &Tensor, ww: &[f32], bb: &[f32]| -> f32 {
            attention_forward(inp, ww, bb, heads)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, g)| a * g)
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 7, 13, 20] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 3e-2,
                "dX[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
        // Spot-check one weight per packed matrix and one bias per vector.
        for &i in &[1usize, d * d + 5, 2 * d * d + 9, 3 * d * d + 2] {
            let mut wp = w.clone();
            wp[i] += eps;
            let mut wm = w.clone();
            wm[i] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!((num - dw[i]).abs() < 3e-2, "dW[{i}]: {num} vs {}", dw[i]);
        }
        for &i in &[0usize, d + 1, 2 * d + 2, 3 * d + 3] {
            let mut bp = b.clone();
            bp[i] += eps;
            let mut bm = b.clone();
            bm[i] -= eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!((num - db[i]).abs() < 3e-2, "dB[{i}]: {num} vs {}", db[i]);
        }
    }
}
