//! The 4-D NCHW shape the paper's Fig. 4 describes: batches (N), channels
//! (C), height (H), width (W).

use std::fmt;

/// Element precision of a tensor as it lives in device memory.
///
/// The planner's byte accounting multiplies element counts by
/// [`DType::size_of`]; `F16` and `BF16` differ in numerics, not in the
/// memory model, so both map to 2 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    F32,
    F16,
    BF16,
}

impl DType {
    /// Bytes per element.
    #[inline]
    pub const fn size_of(self) -> u64 {
        match self {
            DType::F32 => 4,
            DType::F16 | DType::BF16 => 2,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::BF16 => "bf16",
        })
    }
}

/// Dense NCHW shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    pub n: usize,
    pub c: usize,
    pub h: usize,
    pub w: usize,
}

impl Shape4 {
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape4 { n, c, h, w }
    }

    /// A flat vector shape (used by FC layers): `N × C × 1 × 1`.
    pub const fn flat(n: usize, c: usize) -> Self {
        Shape4 { n, c, h: 1, w: 1 }
    }

    /// Element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Size in bytes at `f32` precision — shorthand for
    /// `bytes_of(DType::F32)`.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes_of(DType::F32)
    }

    /// Size in bytes at the given element precision.
    #[inline]
    pub fn bytes_of(&self, dtype: DType) -> u64 {
        self.numel() as u64 * dtype.size_of()
    }

    /// Features per batch item.
    #[inline]
    pub fn features(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Flat index of `(n, c, h, w)`.
    #[inline]
    pub fn idx(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Same spatial extents with a different batch size.
    pub fn with_batch(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Output spatial dimension of a conv/pool window:
    /// `(in + 2·pad − kernel)/stride + 1`.
    pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
        assert!(stride > 0, "stride must be positive");
        assert!(
            input + 2 * pad >= kernel,
            "window {kernel} larger than padded input {}",
            input + 2 * pad
        );
        (input + 2 * pad - kernel) / stride + 1
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_bytes() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.numel(), 120);
        assert_eq!(s.bytes(), 480);
        assert_eq!(s.features(), 60);
    }

    #[test]
    fn bytes_of_scales_by_dtype() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.bytes_of(DType::F32), s.bytes());
        assert_eq!(s.bytes_of(DType::F16), 240);
        assert_eq!(s.bytes_of(DType::BF16), 240);
        assert_eq!(DType::F32.size_of(), 4);
        assert_eq!(DType::BF16.size_of(), 2);
        assert_eq!(DType::BF16.to_string(), "bf16");
    }

    #[test]
    fn idx_is_row_major_nchw() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.idx(0, 0, 0, 0), 0);
        assert_eq!(s.idx(0, 0, 0, 1), 1);
        assert_eq!(s.idx(0, 0, 1, 0), 5);
        assert_eq!(s.idx(0, 1, 0, 0), 20);
        assert_eq!(s.idx(1, 0, 0, 0), 60);
        assert_eq!(s.idx(1, 2, 3, 4), 119);
    }

    #[test]
    fn conv_out_dims_match_known_layers() {
        // AlexNet conv1: 227 input, 11 kernel, stride 4, pad 0 -> 55.
        assert_eq!(Shape4::conv_out_dim(227, 11, 4, 0), 55);
        // VGG conv: 224, 3x3, stride 1, pad 1 -> 224.
        assert_eq!(Shape4::conv_out_dim(224, 3, 1, 1), 224);
        // Pool 2x2 stride 2 on 224 -> 112.
        assert_eq!(Shape4::conv_out_dim(224, 2, 2, 0), 112);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn conv_out_dim_rejects_oversized_kernel() {
        Shape4::conv_out_dim(4, 7, 1, 0);
    }

    #[test]
    fn display() {
        assert_eq!(Shape4::new(1, 2, 3, 4).to_string(), "1x2x3x4");
    }
}
