//! Indexed first-fit heap pool over 1 KB blocks (paper §3.2.1), with
//! coalescing.
//!
//! The paper's structure — an address-ordered empty list scanned front to
//! back — makes every allocation O(n) in the number of free fragments. This
//! implementation keeps the **identical first-fit semantics** ("the lowest
//! address among nodes with enough free blocks") but stores the empty runs
//! in a size-adaptive index (`RunIndex`): an address-ordered vector with an
//! incrementally maintained maximum while the free list is short (the
//! steady-state planner regime, where a flat array's constants are
//! unbeatable), migrating into a max-augmented address-ordered treap once
//! fragmentation sets in. In the treap regime every node carries the
//! largest run size in its subtree, so
//!
//! * the lowest-address fitting run is found by one **O(log n)** descent
//!   (go left whenever the left subtree holds a fit, take the current node
//!   otherwise, else go right);
//! * the largest free fragment — the OOM error path's diagnostic and the
//!   dynamic workspace budget — is the root's augmentation, **O(1)** (in
//!   the vector regime it is the incremental maximum, also O(1));
//! * frees coalesce with both neighbours via two O(log n) searches.
//!
//! Grant addresses, sizes, high-water marks and OOM diagnostics are
//! byte-identical to the reference [`crate::LinearPool`] (the pre-index
//! implementation, kept for differential testing) — asserted over random
//! traces by `tests/proptest_differential.rs`, which crosses the
//! vector↔treap migrations. The planner's peaks therefore cannot move:
//! this change buys time, never bytes.

use sn_sim::{AllocError, AllocGrant, AllocId, DeviceAllocator, SimTime};

/// Pool construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Total preallocated bytes (the "big chunk").
    pub capacity_bytes: u64,
    /// Basic storage unit; the paper uses 1 KB.
    pub block_bytes: u64,
    /// Host-side latency of one pool allocation (index descent + node
    /// update). Orders of magnitude below `cudaMalloc` — that gap *is*
    /// Table 2.
    pub alloc_latency: SimTime,
    /// Host-side latency of one pool deallocation.
    pub free_latency: SimTime,
    /// Free-run count above which the empty index spills from its sorted
    /// vector into the treap (see the `RunIndex` docs).
    pub spill_runs: usize,
    /// Free-run count below which the treap collapses back to the vector.
    /// Must be below `spill_runs` (the gap is the anti-thrash hysteresis).
    pub collapse_runs: usize,
}

impl PoolConfig {
    pub fn new(capacity_bytes: u64) -> Self {
        PoolConfig {
            capacity_bytes,
            block_bytes: 1024,
            alloc_latency: SimTime::from_ns(400),
            free_latency: SimTime::from_ns(300),
            spill_runs: DEFAULT_SPILL_RUNS,
            collapse_runs: DEFAULT_COLLAPSE_RUNS,
        }
    }
}

/// An allocated-list node.
#[derive(Debug, Clone, Copy)]
struct AllocNode {
    start: u64,
    blocks: u64,
}

/// The allocated list: a slot slab with the slot index *embedded in the
/// handle* (`id = seq << 32 | slot`), replacing the §3.2.1 "ID-to-node
/// hash-table" with two array reads. Handles stay unique forever — a freed
/// slot's next tenant carries a new sequence number, so a stale or
/// double-freed id misses the stored-id check and is rejected exactly as
/// the hash-table's absent-key lookup rejected it. The slab's footprint is
/// bounded by the *peak concurrent* allocation count, not the total ever
/// allocated.
#[derive(Debug, Clone, Default)]
struct AllocTable {
    slots: Vec<Option<(u64, AllocNode)>>,
    spare: Vec<u32>,
    next_seq: u64,
    live: usize,
}

impl AllocTable {
    #[inline]
    fn insert(&mut self, node: AllocNode) -> u64 {
        let slot = self.spare.pop().unwrap_or_else(|| {
            self.slots.push(None);
            (self.slots.len() - 1) as u32
        });
        let id = (self.next_seq << 32) | slot as u64;
        self.next_seq += 1;
        self.slots[slot as usize] = Some((id, node));
        self.live += 1;
        id
    }

    #[inline]
    fn remove(&mut self, id: u64) -> Option<AllocNode> {
        let slot = (id & u32::MAX as u64) as usize;
        match self.slots.get(slot) {
            Some(Some((stored, node))) if *stored == id => {
                let node = *node;
                self.slots[slot] = None;
                self.spare.push(slot as u32);
                self.live -= 1;
                Some(node)
            }
            _ => None,
        }
    }

    fn iter(&self) -> impl Iterator<Item = &AllocNode> {
        self.slots.iter().flatten().map(|(_, n)| n)
    }
}

/// Aggregate pool statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    pub alloc_calls: u64,
    pub free_calls: u64,
    pub failed_allocs: u64,
    /// Total host-side time spent in the pool.
    pub total_latency: SimTime,
}

const NIL: u32 = u32::MAX;

/// An empty run: `blocks` free blocks starting at block index `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EmptyNode {
    start: u64,
    blocks: u64,
}

/// One empty run in the treap arena.
#[derive(Debug, Clone, Copy)]
struct Run {
    /// First free block of the run (the BST key).
    start: u64,
    /// Length of the run in blocks.
    blocks: u64,
    /// Largest `blocks` value in this node's subtree (the augmentation the
    /// first-fit descent and the O(1) largest-fragment query read).
    max_blocks: u64,
    /// Treap heap priority (deterministic xorshift stream).
    prio: u64,
    left: u32,
    right: u32,
}

/// Address-ordered treap over the empty runs, augmented with per-subtree
/// maximum run length.
#[derive(Debug, Clone, Default)]
struct Treap {
    nodes: Vec<Run>,
    /// Recycled arena slots.
    spare: Vec<u32>,
    root: u32,
    len: usize,
    /// xorshift64 state for priorities (deterministic; structure only —
    /// semantics never depend on it).
    rng: u64,
}

impl Treap {
    fn new() -> Treap {
        Treap {
            nodes: Vec::new(),
            spare: Vec::new(),
            root: NIL,
            len: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_prio(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    #[inline]
    fn node(&self, i: u32) -> &Run {
        &self.nodes[i as usize]
    }

    #[inline]
    fn subtree_max(&self, i: u32) -> u64 {
        if i == NIL {
            0
        } else {
            self.node(i).max_blocks
        }
    }

    /// Recompute `i`'s augmentation from its children.
    #[inline]
    fn fix(&mut self, i: u32) {
        let n = self.node(i);
        let m = n
            .blocks
            .max(self.subtree_max(n.left))
            .max(self.subtree_max(n.right));
        self.nodes[i as usize].max_blocks = m;
    }

    fn alloc_slot(&mut self, start: u64, blocks: u64) -> u32 {
        let prio = self.next_prio();
        let run = Run {
            start,
            blocks,
            max_blocks: blocks,
            prio,
            left: NIL,
            right: NIL,
        };
        match self.spare.pop() {
            Some(i) => {
                self.nodes[i as usize] = run;
                i
            }
            None => {
                self.nodes.push(run);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn rotate_right(&mut self, t: u32) -> u32 {
        let l = self.node(t).left;
        self.nodes[t as usize].left = self.node(l).right;
        self.nodes[l as usize].right = t;
        self.fix(t);
        self.fix(l);
        l
    }

    fn rotate_left(&mut self, t: u32) -> u32 {
        let r = self.node(t).right;
        self.nodes[t as usize].right = self.node(r).left;
        self.nodes[r as usize].left = t;
        self.fix(t);
        self.fix(r);
        r
    }

    fn insert(&mut self, start: u64, blocks: u64) {
        let i = self.alloc_slot(start, blocks);
        self.root = self.insert_at(self.root, i);
        self.len += 1;
    }

    fn insert_at(&mut self, t: u32, i: u32) -> u32 {
        if t == NIL {
            return i;
        }
        let mut t = t;
        if self.node(i).start < self.node(t).start {
            let l = self.insert_at(self.node(t).left, i);
            self.nodes[t as usize].left = l;
            self.fix(t);
            if self.node(l).prio > self.node(t).prio {
                t = self.rotate_right(t);
            }
        } else {
            let r = self.insert_at(self.node(t).right, i);
            self.nodes[t as usize].right = r;
            self.fix(t);
            if self.node(r).prio > self.node(t).prio {
                t = self.rotate_left(t);
            }
        }
        t
    }

    /// Merge two subtrees whose key ranges are disjoint (`a` < `b`).
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.node(a).prio > self.node(b).prio {
            let r = self.merge(self.node(a).right, b);
            self.nodes[a as usize].right = r;
            self.fix(a);
            a
        } else {
            let l = self.merge(a, self.node(b).left);
            self.nodes[b as usize].left = l;
            self.fix(b);
            b
        }
    }

    /// Remove the run keyed `start` (must exist).
    fn remove(&mut self, start: u64) {
        self.root = self.remove_at(self.root, start);
        self.len -= 1;
    }

    fn remove_at(&mut self, t: u32, start: u64) -> u32 {
        debug_assert_ne!(t, NIL, "removing absent run {start}");
        let ts = self.node(t).start;
        if start < ts {
            let l = self.remove_at(self.node(t).left, start);
            self.nodes[t as usize].left = l;
            self.fix(t);
            t
        } else if start > ts {
            let r = self.remove_at(self.node(t).right, start);
            self.nodes[t as usize].right = r;
            self.fix(t);
            t
        } else {
            let merged = self.merge(self.node(t).left, self.node(t).right);
            self.spare.push(t);
            merged
        }
    }

    /// The lowest-address run with at least `need` blocks — first-fit in one
    /// O(log n) descent guided by the subtree maxima.
    fn first_fit(&self, need: u64) -> Option<(u64, u64)> {
        let mut t = self.root;
        if t == NIL || self.node(t).max_blocks < need {
            return None;
        }
        loop {
            let n = self.node(t);
            if n.left != NIL && self.node(n.left).max_blocks >= need {
                t = n.left;
            } else if n.blocks >= need {
                return Some((n.start, n.blocks));
            } else {
                debug_assert!(n.right != NIL && self.node(n.right).max_blocks >= need);
                t = n.right;
            }
        }
    }

    /// Exact lookup: the run starting at `start`, if any.
    fn find(&self, start: u64) -> Option<u64> {
        let mut t = self.root;
        while t != NIL {
            let n = self.node(t);
            if start < n.start {
                t = n.left;
            } else if start > n.start {
                t = n.right;
            } else {
                return Some(n.blocks);
            }
        }
        None
    }

    /// The run with the greatest start strictly below `start`, if any.
    fn pred(&self, start: u64) -> Option<(u64, u64)> {
        let mut t = self.root;
        let mut best = None;
        while t != NIL {
            let n = self.node(t);
            if n.start < start {
                best = Some((n.start, n.blocks));
                t = n.right;
            } else {
                t = n.left;
            }
        }
        best
    }

    /// Take `need` blocks off the front of the run keyed `start` (in place:
    /// the new key still sorts between the same neighbours, so only the
    /// augmentation along the search path needs refreshing).
    fn shrink_front(&mut self, start: u64, need: u64) {
        Self::walk_update(self, start, |n| {
            n.start += need;
            n.blocks -= need;
        });
    }

    /// Extend the run keyed `start` by `delta` blocks (key unchanged).
    fn grow(&mut self, start: u64, delta: u64) {
        Self::walk_update(self, start, |n| {
            n.blocks += delta;
        });
    }

    /// Apply `f` to the run keyed `start`, refreshing augmentations back up
    /// the search path.
    fn walk_update(&mut self, start: u64, f: impl FnOnce(&mut Run)) {
        fn go(ix: &mut Treap, t: u32, start: u64, f: impl FnOnce(&mut Run)) {
            debug_assert_ne!(t, NIL, "updating absent run {start}");
            let ts = ix.node(t).start;
            if start < ts {
                go(ix, ix.node(t).left, start, f);
            } else if start > ts {
                go(ix, ix.node(t).right, start, f);
            } else {
                f(&mut ix.nodes[t as usize]);
            }
            ix.fix(t);
        }
        go(self, self.root, start, f);
    }

    /// In-order (= address-order) visit of every run.
    fn for_each_in_order(&self, mut f: impl FnMut(u64, u64)) {
        let mut stack = Vec::new();
        let mut t = self.root;
        while t != NIL || !stack.is_empty() {
            while t != NIL {
                stack.push(t);
                t = self.node(t).left;
            }
            let i = stack.pop().unwrap();
            let n = self.node(i);
            f(n.start, n.blocks);
            t = n.right;
        }
    }

    /// Verify the augmentation of every node (test support).
    fn check_augmentation(&self, t: u32) -> Result<u64, String> {
        if t == NIL {
            return Ok(0);
        }
        let n = *self.node(t);
        let lm = self.check_augmentation(n.left)?;
        let rm = self.check_augmentation(n.right)?;
        let expect = n.blocks.max(lm).max(rm);
        if n.max_blocks != expect {
            return Err(format!(
                "augmentation stale at run {}: stored {}, actual {}",
                n.start, n.max_blocks, expect
            ));
        }
        Ok(expect)
    }
}

/// Default run counts at which the index migrates between representations
/// (overridable per pool through [`PoolConfig`]; the differential proptests
/// use low thresholds to drive traces across the migrations). The gap is
/// deliberate hysteresis: after collapsing to the vector, at least
/// `spill - collapse` net inserts must happen before the next spill, so an
/// alloc/free pattern oscillating around one bound cannot thrash.
pub const DEFAULT_SPILL_RUNS: usize = 192;
pub const DEFAULT_COLLAPSE_RUNS: usize = 96;

/// The size-adaptive index over the empty runs.
///
/// A steady-state planner compile keeps only a handful of empty runs alive
/// (transients release immediately; liveness frees coalesce), and for a
/// handful of runs a sorted array beats any pointer structure — the whole
/// list is one cache line and "search" is a few compares. Fragmented pools
/// (thousands of runs under heavy eviction churn) are where the linear scan
/// degenerates. So:
///
/// * at ≤ [`SPILL`] runs, the index is an address-ordered vector with an
///   incrementally maintained maximum (O(1) largest-fragment reads; the max
///   is only rescanned when the current maximum run itself is consumed);
/// * past [`SPILL`] runs it migrates into the max-augmented treap, where
///   first-fit, coalescing lookups and updates are O(log n) and the
///   largest fragment is the root's augmentation;
/// * back below [`COLLAPSE`] runs it collapses into the vector again.
///
/// Both representations implement identical "lowest address among fits"
/// semantics; the differential proptests drive traces across both regimes
/// and the migrations between them.
#[derive(Debug, Clone)]
struct RunIndex {
    /// Run count above which the vector spills into the treap.
    spill: usize,
    /// Run count below which the treap collapses back to the vector.
    collapse: usize,
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Small {
        /// Address-ordered runs.
        nodes: Vec<EmptyNode>,
        /// Largest run length; exact at all times.
        max: u64,
    },
    Tree(Treap),
}

impl RunIndex {
    fn new(spill: usize, collapse: usize) -> RunIndex {
        debug_assert!(collapse < spill, "hysteresis gap required");
        RunIndex {
            spill,
            collapse,
            repr: Repr::Small {
                nodes: Vec::new(),
                max: 0,
            },
        }
    }

    fn len(&self) -> usize {
        match &self.repr {
            Repr::Small { nodes, .. } => nodes.len(),
            Repr::Tree(t) => t.len,
        }
    }

    /// Largest run length. O(1) in both representations (incremental max /
    /// root augmentation) — the OOM diagnostic and the per-conv-step
    /// dynamic-workspace budget read this on the hot path.
    fn max_blocks(&self) -> u64 {
        match &self.repr {
            Repr::Small { max, .. } => *max,
            Repr::Tree(t) => t.subtree_max(t.root),
        }
    }

    fn insert(&mut self, start: u64, blocks: u64) {
        let spill = self.spill;
        let needs_spill = match &mut self.repr {
            Repr::Small { nodes, max } => {
                let at = nodes.partition_point(|n| n.start < start);
                nodes.insert(at, EmptyNode { start, blocks });
                *max = (*max).max(blocks);
                nodes.len() > spill
            }
            Repr::Tree(t) => {
                t.insert(start, blocks);
                false
            }
        };
        if needs_spill {
            self.spill();
        }
    }

    /// First-fit **and take**: find the lowest-address run with ≥ `need`
    /// blocks and carve `need` off its front in the same pass (one scan /
    /// descent instead of search-then-update). Returns the granted start
    /// block, or `None` when nothing fits.
    fn first_fit_take(&mut self, need: u64) -> Option<u64> {
        let collapse = self.collapse;
        match &mut self.repr {
            Repr::Small { nodes, max } => {
                if *max < need {
                    return None;
                }
                let at = nodes.iter().position(|n| n.blocks >= need)?;
                let start = nodes[at].start;
                let was = nodes[at].blocks;
                if was == need {
                    nodes.remove(at);
                } else {
                    nodes[at].start += need;
                    nodes[at].blocks -= need;
                }
                if was == *max {
                    *max = nodes.iter().map(|n| n.blocks).max().unwrap_or(0);
                }
                Some(start)
            }
            Repr::Tree(t) => {
                let (start, blocks) = t.first_fit(need)?;
                let needs_collapse = if blocks == need {
                    t.remove(start);
                    t.len < collapse
                } else {
                    t.shrink_front(start, need);
                    false
                };
                if needs_collapse {
                    self.collapse();
                }
                Some(start)
            }
        }
    }

    /// Return run `[start, start + blocks)` to the free set, coalescing
    /// with both neighbours — one search locates predecessor and successor
    /// together.
    fn free_run(&mut self, start: u64, blocks: u64) {
        let (spill, collapse) = (self.spill, self.collapse);
        let needs_spill = match &mut self.repr {
            Repr::Small { nodes, max } => {
                let at = nodes.partition_point(|n| n.start < start);
                let merge_succ = at < nodes.len() && nodes[at].start == start + blocks;
                let merge_pred = at > 0 && nodes[at - 1].start + nodes[at - 1].blocks == start;
                let new_blocks = match (merge_pred, merge_succ) {
                    (true, true) => {
                        let s = nodes.remove(at).blocks;
                        nodes[at - 1].blocks += blocks + s;
                        nodes[at - 1].blocks
                    }
                    (true, false) => {
                        nodes[at - 1].blocks += blocks;
                        nodes[at - 1].blocks
                    }
                    (false, true) => {
                        nodes[at].start = start;
                        nodes[at].blocks += blocks;
                        nodes[at].blocks
                    }
                    (false, false) => {
                        nodes.insert(at, EmptyNode { start, blocks });
                        blocks
                    }
                };
                *max = (*max).max(new_blocks);
                nodes.len() > spill
            }
            Repr::Tree(t) => {
                let mut blocks = blocks;
                if let Some(succ_blocks) = t.find(start + blocks) {
                    t.remove(start + blocks);
                    blocks += succ_blocks;
                }
                match t.pred(start) {
                    Some((p_start, p_blocks)) if p_start + p_blocks == start => {
                        t.grow(p_start, blocks);
                    }
                    _ => t.insert(start, blocks),
                }
                if t.len < collapse {
                    self.collapse();
                }
                return;
            }
        };
        if needs_spill {
            self.spill();
        }
    }

    /// In-order (= address-order) visit of every run.
    fn for_each_in_order(&self, mut f: impl FnMut(u64, u64)) {
        match &self.repr {
            Repr::Small { nodes, .. } => {
                for n in nodes {
                    f(n.start, n.blocks);
                }
            }
            Repr::Tree(t) => t.for_each_in_order(f),
        }
    }

    /// Migrate vector → treap (ascending inserts; treap priorities keep the
    /// expected depth logarithmic regardless of insertion order).
    fn spill(&mut self) {
        let Repr::Small { nodes, .. } = &self.repr else {
            return;
        };
        let mut tree = Treap::new();
        for n in nodes.iter() {
            tree.insert(n.start, n.blocks);
        }
        self.repr = Repr::Tree(tree);
    }

    /// Migrate treap → vector (in-order traversal is already sorted).
    fn collapse(&mut self) {
        let Repr::Tree(t) = &self.repr else { return };
        let mut nodes = Vec::with_capacity(t.len);
        let mut max = 0;
        t.for_each_in_order(|start, blocks| {
            nodes.push(EmptyNode { start, blocks });
            max = max.max(blocks);
        });
        self.repr = Repr::Small { nodes, max };
    }

    /// Structural self-check (test support): ordering plus max/augmentation
    /// consistency in whichever representation is active.
    fn check(&self) -> Result<(), String> {
        match &self.repr {
            Repr::Small { nodes, max } => {
                if !nodes.windows(2).all(|w| w[0].start < w[1].start) {
                    return Err("small index not in address order".into());
                }
                let scan = nodes.iter().map(|n| n.blocks).max().unwrap_or(0);
                if scan != *max {
                    return Err(format!("small index max stale: {max} vs scanned {scan}"));
                }
                Ok(())
            }
            Repr::Tree(t) => t.check_augmentation(t.root).map(|_| ()),
        }
    }
}

/// The heap-based GPU memory pool.
///
/// Addresses handed out are byte offsets into the preallocated chunk. Empty
/// runs live in a size-adaptive index (`RunIndex`: an address-ordered vector for
/// the common few-fragment regime, max-augmented treap once fragmentation
/// sets in), which keeps first-fit ("lowest address among fits" —
/// deterministic) O(log n) worst-case and the largest-fragment query O(1)
/// while beating the flat scan's constants when the free list is short.
#[derive(Debug, Clone)]
pub struct HeapPool {
    cfg: PoolConfig,
    /// `log2(block_bytes)` when the block size is a power of two (the 1 KB
    /// default is): block rounding becomes a shift instead of a division on
    /// the per-allocation path.
    block_shift: Option<u32>,
    total_blocks: u64,
    /// Address-indexed empty runs.
    empty: RunIndex,
    /// Handle-indexed allocated list (see [`AllocTable`]).
    allocated: AllocTable,
    used_blocks: u64,
    high_water_blocks: u64,
    stats: PoolStats,
}

impl HeapPool {
    pub fn new(cfg: PoolConfig) -> Self {
        assert!(cfg.block_bytes > 0, "block size must be positive");
        let total_blocks = cfg.capacity_bytes / cfg.block_bytes;
        assert!(total_blocks > 0, "pool must hold at least one block");
        assert!(
            cfg.collapse_runs < cfg.spill_runs,
            "collapse_runs must stay below spill_runs (hysteresis)"
        );
        let mut empty = RunIndex::new(cfg.spill_runs, cfg.collapse_runs);
        empty.insert(0, total_blocks);
        HeapPool {
            block_shift: cfg
                .block_bytes
                .is_power_of_two()
                .then(|| cfg.block_bytes.trailing_zeros()),
            cfg,
            total_blocks,
            empty,
            allocated: AllocTable::default(),
            used_blocks: 0,
            high_water_blocks: 0,
            stats: PoolStats::default(),
        }
    }

    /// Convenience constructor with the paper's 1 KB blocks.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        Self::new(PoolConfig::new(capacity_bytes))
    }

    #[inline]
    fn blocks_for(&self, bytes: u64) -> u64 {
        let bytes = bytes.max(1);
        match self.block_shift {
            // Exact div_ceil via shift + remainder test: no `+ (block-1)`
            // pre-add, so requests near `u64::MAX` cannot wrap (they must
            // produce the same astronomically-large block count — and the
            // same OOM — as the reference pool's `div_ceil`).
            Some(s) => (bytes >> s) + u64::from(bytes & (self.cfg.block_bytes - 1) != 0),
            None => bytes.div_ceil(self.cfg.block_bytes),
        }
    }

    /// Number of fragments in the empty list (diagnostic).
    pub fn empty_nodes(&self) -> usize {
        self.empty.len()
    }

    /// Number of live allocations.
    pub fn allocated_nodes(&self) -> usize {
        self.allocated.live
    }

    /// Largest free fragment, in bytes. O(1): the maximum is maintained
    /// incrementally by every insert/remove/resize (vector regime) or read
    /// off the root augmentation (treap regime), so the OOM error path and
    /// the per-step dynamic workspace budget never scan.
    pub fn largest_fragment(&self) -> u64 {
        self.empty.max_blocks() * self.cfg.block_bytes
    }

    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    pub fn block_bytes(&self) -> u64 {
        self.cfg.block_bytes
    }

    /// Internal consistency check, used by tests and proptests: blocks are
    /// partitioned between the two lists, nothing overlaps, the empty index
    /// is address-ordered, fully coalesced, and its subtree maxima are
    /// consistent.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut spans: Vec<(u64, u64, bool)> = Vec::new(); // (start, blocks, is_empty)
        let mut prev_start = None;
        let mut order_ok = true;
        self.empty.for_each_in_order(|start, blocks| {
            if let Some(p) = prev_start {
                order_ok &= p < start;
            }
            prev_start = Some(start);
            spans.push((start, blocks, true));
        });
        if !order_ok {
            return Err("empty index not in address order".into());
        }
        if spans.len() != self.empty.len() {
            return Err(format!(
                "empty index len {} != traversal count {}",
                self.empty.len(),
                spans.len()
            ));
        }
        if spans.iter().any(|(_, blocks, _)| *blocks == 0) {
            return Err("zero-size empty node".into());
        }
        self.empty.check()?;
        for n in self.allocated.iter() {
            if n.blocks == 0 {
                return Err("zero-size allocated node".into());
            }
            spans.push((n.start, n.blocks, false));
        }
        spans.sort_by_key(|s| s.0);
        let mut cursor = 0u64;
        let mut prev_empty = false;
        for (start, blocks, is_empty) in &spans {
            if *start != cursor {
                return Err(format!(
                    "gap or overlap at block {cursor}: next span starts at {start}"
                ));
            }
            if *is_empty && prev_empty {
                return Err(format!("uncoalesced adjacent empty nodes at block {start}"));
            }
            prev_empty = *is_empty;
            cursor = start + blocks;
        }
        if cursor != self.total_blocks {
            return Err(format!(
                "spans cover {cursor} blocks, pool has {}",
                self.total_blocks
            ));
        }
        let used: u64 = self.allocated.iter().map(|n| n.blocks).sum();
        if used != self.used_blocks {
            return Err(format!(
                "used_blocks counter {} != sum of allocated nodes {used}",
                self.used_blocks
            ));
        }
        Ok(())
    }
}

impl DeviceAllocator for HeapPool {
    #[inline]
    fn alloc(&mut self, bytes: u64) -> Result<AllocGrant, AllocError> {
        let need = self.blocks_for(bytes);
        self.stats.alloc_calls += 1;
        // First-fit-and-take: the lowest-address run with enough free
        // blocks (paper: "finds the first node with enough free memory from
        // the empty list"), found and carved in one pass.
        let Some(start) = self.empty.first_fit_take(need) else {
            self.stats.failed_allocs += 1;
            // Report the largest fragment alongside total free bytes so a
            // fragmentation failure (largest < requested ≤ free) is
            // distinguishable from true exhaustion (free < requested).
            return Err(AllocError::OutOfMemory {
                requested: bytes,
                free: (self.total_blocks - self.used_blocks) * self.cfg.block_bytes,
                largest: self.largest_fragment(),
            });
        };
        let id = self.allocated.insert(AllocNode {
            start,
            blocks: need,
        });
        self.used_blocks += need;
        self.high_water_blocks = self.high_water_blocks.max(self.used_blocks);
        self.stats.total_latency += self.cfg.alloc_latency;
        Ok(AllocGrant {
            id: AllocId(id),
            addr: start * self.cfg.block_bytes,
            bytes: need * self.cfg.block_bytes,
            cost: self.cfg.alloc_latency,
        })
    }

    #[inline]
    fn free(&mut self, id: AllocId) -> Result<SimTime, AllocError> {
        // Locate via the slot embedded in the handle, then return the run
        // to the empty index; `free_run` finds predecessor and successor in
        // one search and coalesces with both when adjacent.
        let node = self
            .allocated
            .remove(id.0)
            .ok_or(AllocError::UnknownAllocation)?;
        self.used_blocks -= node.blocks;
        self.stats.free_calls += 1;
        self.stats.total_latency += self.cfg.free_latency;
        self.empty.free_run(node.start, node.blocks);
        Ok(self.cfg.free_latency)
    }

    #[inline]
    fn used(&self) -> u64 {
        self.used_blocks * self.cfg.block_bytes
    }

    fn capacity(&self) -> u64 {
        self.total_blocks * self.cfg.block_bytes
    }

    #[inline]
    fn high_water(&self) -> u64 {
        self.high_water_blocks * self.cfg.block_bytes
    }

    #[inline]
    fn largest_free_contiguous(&self) -> u64 {
        self.largest_fragment()
    }

    fn reset_high_water(&mut self) {
        self.high_water_blocks = self.used_blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_kb(kb: u64) -> HeapPool {
        HeapPool::with_capacity(kb * 1024)
    }

    #[test]
    fn rounds_to_block_granularity() {
        let mut p = pool_kb(8);
        let g = p.alloc(1).unwrap();
        assert_eq!(g.bytes, 1024);
        let g2 = p.alloc(1025).unwrap();
        assert_eq!(g2.bytes, 2048);
        p.check_invariants().unwrap();
    }

    #[test]
    fn first_fit_prefers_lowest_address() {
        let mut p = pool_kb(8);
        let a = p.alloc(2048).unwrap(); // blocks 0..2
        let b = p.alloc(2048).unwrap(); // blocks 2..4
        let _c = p.alloc(2048).unwrap(); // blocks 4..6
        p.free(a.id).unwrap();
        p.free(b.id).unwrap(); // coalesced hole 0..4
        let d = p.alloc(1024).unwrap();
        assert_eq!(d.addr, 0, "first-fit must reuse the lowest hole");
        p.check_invariants().unwrap();
    }

    #[test]
    fn first_fit_skips_small_low_holes() {
        // Low hole too small, higher hole fits: the descent must pass the
        // low one and still pick the lowest *fitting* address.
        let mut p = pool_kb(16);
        let a = p.alloc(1024).unwrap(); // 0..1
        let _b = p.alloc(1024).unwrap(); // 1..2
        let c = p.alloc(3072).unwrap(); // 2..5
        let _d = p.alloc(1024).unwrap(); // 5..6
        p.free(a.id).unwrap(); // hole 0..1 (1 block)
        p.free(c.id).unwrap(); // hole 2..5 (3 blocks)
        let g = p.alloc(2048).unwrap();
        assert_eq!(g.addr, 2 * 1024, "must skip the 1-block hole at 0");
        p.check_invariants().unwrap();
    }

    #[test]
    fn exact_fit_removes_empty_node() {
        let mut p = pool_kb(4);
        let g = p.alloc(4 * 1024).unwrap();
        assert_eq!(p.empty_nodes(), 0);
        assert_eq!(p.free_bytes(), 0);
        p.free(g.id).unwrap();
        assert_eq!(p.empty_nodes(), 1);
        p.check_invariants().unwrap();
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut p = pool_kb(4);
        let _g = p.alloc(3 * 1024).unwrap();
        match p.alloc(2 * 1024) {
            Err(AllocError::OutOfMemory {
                requested,
                free,
                largest,
            }) => {
                assert_eq!(requested, 2 * 1024);
                assert_eq!(free, 1024);
                // True exhaustion: free < requested, and one fragment holds
                // all the free bytes.
                assert_eq!(largest, 1024);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        assert_eq!(p.stats().failed_allocs, 1);
    }

    #[test]
    fn fragmentation_can_fail_even_with_enough_total_bytes() {
        let mut p = pool_kb(6);
        let a = p.alloc(2048).unwrap();
        let b = p.alloc(2048).unwrap();
        let c = p.alloc(2048).unwrap();
        p.free(a.id).unwrap();
        p.free(c.id).unwrap();
        // 4 KB free but split 2+2 around b.
        assert_eq!(p.free_bytes(), 4096);
        assert_eq!(p.largest_fragment(), 2048);
        match p.alloc(3 * 1024) {
            Err(AllocError::OutOfMemory {
                requested,
                free,
                largest,
            }) => {
                // Fragmentation, not exhaustion: enough total bytes exist,
                // but no contiguous run fits — and the error says so.
                assert!(free >= requested, "total free covers the request");
                assert!(largest < requested, "no fragment covers the request");
                assert_eq!(largest, 2048);
            }
            other => panic!("expected fragmentation OOM, got {other:?}"),
        }
        p.free(b.id).unwrap();
        // Full coalescing restores one node.
        assert_eq!(p.empty_nodes(), 1);
        assert!(p.alloc(6 * 1024).is_ok());
    }

    #[test]
    fn double_free_is_rejected() {
        let mut p = pool_kb(4);
        let g = p.alloc(1024).unwrap();
        p.free(g.id).unwrap();
        assert_eq!(p.free(g.id).unwrap_err(), AllocError::UnknownAllocation);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut p = pool_kb(8);
        let a = p.alloc(4096).unwrap();
        let b = p.alloc(2048).unwrap();
        p.free(a.id).unwrap();
        let _c = p.alloc(1024).unwrap();
        assert_eq!(p.high_water(), 6144);
        assert_eq!(p.used(), 3072);
        p.free(b.id).unwrap();
        p.reset_high_water();
        assert_eq!(p.high_water(), 1024);
    }

    #[test]
    fn pool_latency_is_far_below_cuda() {
        let spec = sn_sim::DeviceSpec::k40c();
        let mut cuda = sn_sim::CudaAllocator::new(&spec);
        let mut pool = HeapPool::with_capacity(spec.dram_bytes);
        let gp = pool.alloc(64 * 1024 * 1024).unwrap();
        let gc = cuda.alloc(64 * 1024 * 1024).unwrap();
        assert!(gp.cost.as_ns() * 100 < gc.cost.as_ns());
    }

    #[test]
    fn interleaved_pattern_keeps_invariants() {
        let mut p = pool_kb(512);
        let mut live = Vec::new();
        for i in 0..40u64 {
            let g = p.alloc((i % 5 + 1) * 700).unwrap();
            live.push(g.id);
            if i % 3 == 0 {
                let id = live.remove(live.len() / 2);
                p.free(id).unwrap();
            }
            p.check_invariants().unwrap();
        }
        for id in live {
            p.free(id).unwrap();
        }
        p.check_invariants().unwrap();
        assert_eq!(p.used(), 0);
        assert_eq!(p.empty_nodes(), 1);
    }

    #[test]
    fn index_migrates_to_treap_and_back_under_fragmentation() {
        // 512 one-block allocations, then free the even ones: 256 isolated
        // holes — past SPILL, so the index must be in the treap regime and
        // still answer first-fit/largest correctly. Freeing the rest
        // coalesces everything back to one run, collapsing to the vector.
        let mut p = pool_kb(512);
        let grants: Vec<_> = (0..512).map(|_| p.alloc(1024).unwrap()).collect();
        for g in grants.iter().step_by(2) {
            p.free(g.id).unwrap();
        }
        assert_eq!(p.empty_nodes(), 256);
        assert!(matches!(p.empty.repr, Repr::Tree(_)), "must have spilled");
        p.check_invariants().unwrap();
        assert_eq!(p.largest_fragment(), 1024);
        // Every hole is 1 block; a 2-block request must fail with truthful
        // fragmentation diagnostics.
        match p.alloc(2048) {
            Err(AllocError::OutOfMemory { free, largest, .. }) => {
                assert_eq!(free, 256 * 1024);
                assert_eq!(largest, 1024);
            }
            other => panic!("expected fragmentation OOM, got {other:?}"),
        }
        // And a 1-block request reuses the lowest hole.
        assert_eq!(p.alloc(1024).unwrap().addr, 0);
        for g in grants.iter().skip(1).step_by(2) {
            p.free(g.id).unwrap();
        }
        p.check_invariants().unwrap();
        assert!(
            matches!(p.empty.repr, Repr::Small { .. }),
            "must have collapsed"
        );
    }

    #[test]
    fn largest_fragment_is_maintained_incrementally() {
        // Drive the index through shrink/remove/grow/insert transitions and
        // compare the O(1) maximum against a full traversal every time.
        let mut p = pool_kb(64);
        let mut live = Vec::new();
        for i in 0..48u64 {
            if i % 7 < 4 {
                if let Ok(g) = p.alloc((i % 4 + 1) * 1024) {
                    live.push(g.id);
                }
            } else if !live.is_empty() {
                let id = live.remove((i as usize * 5) % live.len());
                p.free(id).unwrap();
            }
            let mut scan_max = 0;
            p.empty.for_each_in_order(|_, b| scan_max = scan_max.max(b));
            assert_eq!(p.largest_fragment(), scan_max * p.block_bytes());
            p.check_invariants().unwrap();
        }
    }
}
