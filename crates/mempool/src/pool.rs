//! First-fit heap pool over 1 KB blocks (paper §3.2.1), with coalescing.

use std::collections::HashMap;

use sn_sim::{AllocError, AllocGrant, AllocId, DeviceAllocator, SimTime};

/// Pool construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Total preallocated bytes (the "big chunk").
    pub capacity_bytes: u64,
    /// Basic storage unit; the paper uses 1 KB.
    pub block_bytes: u64,
    /// Host-side latency of one pool allocation (list walk + node update).
    /// Orders of magnitude below `cudaMalloc` — that gap *is* Table 2.
    pub alloc_latency: SimTime,
    /// Host-side latency of one pool deallocation.
    pub free_latency: SimTime,
}

impl PoolConfig {
    pub fn new(capacity_bytes: u64) -> Self {
        PoolConfig {
            capacity_bytes,
            block_bytes: 1024,
            alloc_latency: SimTime::from_ns(400),
            free_latency: SimTime::from_ns(300),
        }
    }
}

/// An empty-list node: `blocks` free blocks starting at block index `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EmptyNode {
    start: u64,
    blocks: u64,
}

/// An allocated-list node.
#[derive(Debug, Clone, Copy)]
struct AllocNode {
    start: u64,
    blocks: u64,
}

/// Aggregate pool statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    pub alloc_calls: u64,
    pub free_calls: u64,
    pub failed_allocs: u64,
    /// Total host-side time spent in the pool.
    pub total_latency: SimTime,
}

/// The heap-based GPU memory pool.
///
/// Addresses handed out are byte offsets into the preallocated chunk. The
/// empty list is kept sorted by address, which makes first-fit deterministic
/// and coalescing O(log n) per free.
#[derive(Debug, Clone)]
pub struct HeapPool {
    cfg: PoolConfig,
    total_blocks: u64,
    /// Address-ordered empty nodes.
    empty: Vec<EmptyNode>,
    /// ID→node hash table for the allocated list.
    allocated: HashMap<u64, AllocNode>,
    next_id: u64,
    used_blocks: u64,
    high_water_blocks: u64,
    stats: PoolStats,
}

impl HeapPool {
    pub fn new(cfg: PoolConfig) -> Self {
        assert!(cfg.block_bytes > 0, "block size must be positive");
        let total_blocks = cfg.capacity_bytes / cfg.block_bytes;
        assert!(total_blocks > 0, "pool must hold at least one block");
        HeapPool {
            cfg,
            total_blocks,
            empty: vec![EmptyNode {
                start: 0,
                blocks: total_blocks,
            }],
            allocated: HashMap::new(),
            next_id: 0,
            used_blocks: 0,
            high_water_blocks: 0,
            stats: PoolStats::default(),
        }
    }

    /// Convenience constructor with the paper's 1 KB blocks.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        Self::new(PoolConfig::new(capacity_bytes))
    }

    fn blocks_for(&self, bytes: u64) -> u64 {
        bytes.max(1).div_ceil(self.cfg.block_bytes)
    }

    /// Number of fragments in the empty list (diagnostic).
    pub fn empty_nodes(&self) -> usize {
        self.empty.len()
    }

    /// Number of live allocations.
    pub fn allocated_nodes(&self) -> usize {
        self.allocated.len()
    }

    /// Largest free fragment, in bytes.
    pub fn largest_fragment(&self) -> u64 {
        self.empty.iter().map(|n| n.blocks).max().unwrap_or(0) * self.cfg.block_bytes
    }

    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    pub fn block_bytes(&self) -> u64 {
        self.cfg.block_bytes
    }

    /// Internal consistency check, used by tests and proptests: blocks are
    /// partitioned between the two lists, nothing overlaps, the empty list is
    /// sorted and fully coalesced.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut spans: Vec<(u64, u64, bool)> = Vec::new(); // (start, blocks, is_empty)
        for n in &self.empty {
            if n.blocks == 0 {
                return Err("zero-size empty node".into());
            }
            spans.push((n.start, n.blocks, true));
        }
        for n in self.allocated.values() {
            if n.blocks == 0 {
                return Err("zero-size allocated node".into());
            }
            spans.push((n.start, n.blocks, false));
        }
        spans.sort_by_key(|s| s.0);
        let mut cursor = 0u64;
        let mut prev_empty = false;
        for (start, blocks, is_empty) in &spans {
            if *start != cursor {
                return Err(format!(
                    "gap or overlap at block {cursor}: next span starts at {start}"
                ));
            }
            if *is_empty && prev_empty {
                return Err(format!("uncoalesced adjacent empty nodes at block {start}"));
            }
            prev_empty = *is_empty;
            cursor = start + blocks;
        }
        if cursor != self.total_blocks {
            return Err(format!(
                "spans cover {cursor} blocks, pool has {}",
                self.total_blocks
            ));
        }
        let used: u64 = self.allocated.values().map(|n| n.blocks).sum();
        if used != self.used_blocks {
            return Err(format!(
                "used_blocks counter {} != sum of allocated nodes {used}",
                self.used_blocks
            ));
        }
        Ok(())
    }
}

impl DeviceAllocator for HeapPool {
    fn alloc(&mut self, bytes: u64) -> Result<AllocGrant, AllocError> {
        let need = self.blocks_for(bytes);
        self.stats.alloc_calls += 1;
        // First-fit: scan the address-ordered empty list for the first node
        // with enough free blocks (paper: "finds the first node with enough
        // free memory from the empty list").
        let Some(pos) = self.empty.iter().position(|n| n.blocks >= need) else {
            self.stats.failed_allocs += 1;
            // Report the largest fragment alongside total free bytes so a
            // fragmentation failure (largest < requested ≤ free) is
            // distinguishable from true exhaustion (free < requested).
            return Err(AllocError::OutOfMemory {
                requested: bytes,
                free: (self.total_blocks - self.used_blocks) * self.cfg.block_bytes,
                largest: self.largest_fragment(),
            });
        };
        let node = self.empty[pos];
        let start = node.start;
        if node.blocks == need {
            self.empty.remove(pos);
        } else {
            self.empty[pos] = EmptyNode {
                start: node.start + need,
                blocks: node.blocks - need,
            };
        }
        let id = self.next_id;
        self.next_id += 1;
        self.allocated.insert(
            id,
            AllocNode {
                start,
                blocks: need,
            },
        );
        self.used_blocks += need;
        self.high_water_blocks = self.high_water_blocks.max(self.used_blocks);
        self.stats.total_latency += self.cfg.alloc_latency;
        Ok(AllocGrant {
            id: AllocId(id),
            addr: start * self.cfg.block_bytes,
            bytes: need * self.cfg.block_bytes,
            cost: self.cfg.alloc_latency,
        })
    }

    fn free(&mut self, id: AllocId) -> Result<SimTime, AllocError> {
        // Locate via the ID→node hash table, then return to the empty list.
        let node = self
            .allocated
            .remove(&id.0)
            .ok_or(AllocError::UnknownAllocation)?;
        self.used_blocks -= node.blocks;
        self.stats.free_calls += 1;
        self.stats.total_latency += self.cfg.free_latency;

        // Insert into the address-ordered empty list, coalescing with the
        // predecessor/successor when adjacent.
        let idx = self.empty.partition_point(|n| n.start < node.start);
        let mut start = node.start;
        let mut blocks = node.blocks;
        // Merge with successor.
        if idx < self.empty.len() && self.empty[idx].start == start + blocks {
            blocks += self.empty[idx].blocks;
            self.empty.remove(idx);
        }
        // Merge with predecessor.
        if idx > 0 {
            let p = self.empty[idx - 1];
            if p.start + p.blocks == start {
                start = p.start;
                blocks += p.blocks;
                self.empty.remove(idx - 1);
                self.empty.insert(idx - 1, EmptyNode { start, blocks });
                return Ok(self.cfg.free_latency);
            }
        }
        self.empty.insert(idx, EmptyNode { start, blocks });
        Ok(self.cfg.free_latency)
    }

    fn used(&self) -> u64 {
        self.used_blocks * self.cfg.block_bytes
    }

    fn capacity(&self) -> u64 {
        self.total_blocks * self.cfg.block_bytes
    }

    fn high_water(&self) -> u64 {
        self.high_water_blocks * self.cfg.block_bytes
    }

    fn largest_free_contiguous(&self) -> u64 {
        self.largest_fragment()
    }

    fn reset_high_water(&mut self) {
        self.high_water_blocks = self.used_blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_kb(kb: u64) -> HeapPool {
        HeapPool::with_capacity(kb * 1024)
    }

    #[test]
    fn rounds_to_block_granularity() {
        let mut p = pool_kb(8);
        let g = p.alloc(1).unwrap();
        assert_eq!(g.bytes, 1024);
        let g2 = p.alloc(1025).unwrap();
        assert_eq!(g2.bytes, 2048);
        p.check_invariants().unwrap();
    }

    #[test]
    fn first_fit_prefers_lowest_address() {
        let mut p = pool_kb(8);
        let a = p.alloc(2048).unwrap(); // blocks 0..2
        let b = p.alloc(2048).unwrap(); // blocks 2..4
        let _c = p.alloc(2048).unwrap(); // blocks 4..6
        p.free(a.id).unwrap();
        p.free(b.id).unwrap(); // coalesced hole 0..4
        let d = p.alloc(1024).unwrap();
        assert_eq!(d.addr, 0, "first-fit must reuse the lowest hole");
        p.check_invariants().unwrap();
    }

    #[test]
    fn exact_fit_removes_empty_node() {
        let mut p = pool_kb(4);
        let g = p.alloc(4 * 1024).unwrap();
        assert_eq!(p.empty_nodes(), 0);
        assert_eq!(p.free_bytes(), 0);
        p.free(g.id).unwrap();
        assert_eq!(p.empty_nodes(), 1);
        p.check_invariants().unwrap();
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut p = pool_kb(4);
        let _g = p.alloc(3 * 1024).unwrap();
        match p.alloc(2 * 1024) {
            Err(AllocError::OutOfMemory {
                requested,
                free,
                largest,
            }) => {
                assert_eq!(requested, 2 * 1024);
                assert_eq!(free, 1024);
                // True exhaustion: free < requested, and one fragment holds
                // all the free bytes.
                assert_eq!(largest, 1024);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        assert_eq!(p.stats().failed_allocs, 1);
    }

    #[test]
    fn fragmentation_can_fail_even_with_enough_total_bytes() {
        let mut p = pool_kb(6);
        let a = p.alloc(2048).unwrap();
        let b = p.alloc(2048).unwrap();
        let c = p.alloc(2048).unwrap();
        p.free(a.id).unwrap();
        p.free(c.id).unwrap();
        // 4 KB free but split 2+2 around b.
        assert_eq!(p.free_bytes(), 4096);
        assert_eq!(p.largest_fragment(), 2048);
        match p.alloc(3 * 1024) {
            Err(AllocError::OutOfMemory {
                requested,
                free,
                largest,
            }) => {
                // Fragmentation, not exhaustion: enough total bytes exist,
                // but no contiguous run fits — and the error says so.
                assert!(free >= requested, "total free covers the request");
                assert!(largest < requested, "no fragment covers the request");
                assert_eq!(largest, 2048);
            }
            other => panic!("expected fragmentation OOM, got {other:?}"),
        }
        p.free(b.id).unwrap();
        // Full coalescing restores one node.
        assert_eq!(p.empty_nodes(), 1);
        assert!(p.alloc(6 * 1024).is_ok());
    }

    #[test]
    fn double_free_is_rejected() {
        let mut p = pool_kb(4);
        let g = p.alloc(1024).unwrap();
        p.free(g.id).unwrap();
        assert_eq!(p.free(g.id).unwrap_err(), AllocError::UnknownAllocation);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut p = pool_kb(8);
        let a = p.alloc(4096).unwrap();
        let b = p.alloc(2048).unwrap();
        p.free(a.id).unwrap();
        let _c = p.alloc(1024).unwrap();
        assert_eq!(p.high_water(), 6144);
        assert_eq!(p.used(), 3072);
        p.free(b.id).unwrap();
        p.reset_high_water();
        assert_eq!(p.high_water(), 1024);
    }

    #[test]
    fn pool_latency_is_far_below_cuda() {
        let spec = sn_sim::DeviceSpec::k40c();
        let mut cuda = sn_sim::CudaAllocator::new(&spec);
        let mut pool = HeapPool::with_capacity(spec.dram_bytes);
        let gp = pool.alloc(64 * 1024 * 1024).unwrap();
        let gc = cuda.alloc(64 * 1024 * 1024).unwrap();
        assert!(gp.cost.as_ns() * 100 < gc.cost.as_ns());
    }

    #[test]
    fn interleaved_pattern_keeps_invariants() {
        let mut p = pool_kb(512);
        let mut live = Vec::new();
        for i in 0..40u64 {
            let g = p.alloc((i % 5 + 1) * 700).unwrap();
            live.push(g.id);
            if i % 3 == 0 {
                let id = live.remove(live.len() / 2);
                p.free(id).unwrap();
            }
            p.check_invariants().unwrap();
        }
        for id in live {
            p.free(id).unwrap();
        }
        p.check_invariants().unwrap();
        assert_eq!(p.used(), 0);
        assert_eq!(p.empty_nodes(), 1);
    }
}
