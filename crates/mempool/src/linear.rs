//! The reference first-fit pool: a literal transcription of §3.2.1's
//! structure with an address-ordered `Vec` empty list and an O(n) scan per
//! allocation.
//!
//! This was the workspace's production pool before the indexed
//! [`crate::HeapPool`] replaced it on the planner hot path. It is kept —
//! unchanged — for two jobs:
//!
//! * **differential testing**: the indexed pool must return byte-identical
//!   grant addresses, sizes, high-water marks and
//!   [`AllocError::OutOfMemory`] diagnostics over arbitrary alloc/free
//!   traces (see `tests/proptest_differential.rs`);
//! * **baseline benchmarking**: the `compile` bench experiment compiles
//!   plans against this pool to produce its pre-optimization baseline row.
//!
//! Semantics (shared with the indexed pool, bit for bit): 1 KB blocks,
//! first-fit = the **lowest-address** empty node with enough blocks, frees
//! coalesce with both neighbours, IDs are a monotone counter.

use fxhash::FxHashMap;

use sn_sim::{AllocError, AllocGrant, AllocId, DeviceAllocator, SimTime};

use crate::pool::PoolConfig;

/// An empty-list node: `blocks` free blocks starting at block index `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EmptyNode {
    start: u64,
    blocks: u64,
}

/// An allocated-list node.
#[derive(Debug, Clone, Copy)]
struct AllocNode {
    start: u64,
    blocks: u64,
}

/// The linear-scan first-fit pool (reference implementation).
#[derive(Debug, Clone)]
pub struct LinearPool {
    cfg: PoolConfig,
    total_blocks: u64,
    /// Address-ordered empty nodes.
    empty: Vec<EmptyNode>,
    /// ID→node hash table for the allocated list.
    allocated: FxHashMap<u64, AllocNode>,
    next_id: u64,
    used_blocks: u64,
    high_water_blocks: u64,
}

impl LinearPool {
    pub fn new(cfg: PoolConfig) -> Self {
        assert!(cfg.block_bytes > 0, "block size must be positive");
        let total_blocks = cfg.capacity_bytes / cfg.block_bytes;
        assert!(total_blocks > 0, "pool must hold at least one block");
        LinearPool {
            cfg,
            total_blocks,
            empty: vec![EmptyNode {
                start: 0,
                blocks: total_blocks,
            }],
            allocated: FxHashMap::default(),
            next_id: 0,
            used_blocks: 0,
            high_water_blocks: 0,
        }
    }

    /// Convenience constructor with the paper's 1 KB blocks.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        Self::new(PoolConfig::new(capacity_bytes))
    }

    fn blocks_for(&self, bytes: u64) -> u64 {
        bytes.max(1).div_ceil(self.cfg.block_bytes)
    }

    /// Number of fragments in the empty list (diagnostic).
    pub fn empty_nodes(&self) -> usize {
        self.empty.len()
    }

    /// Largest free fragment, in bytes — a full scan, the cost the indexed
    /// pool's incremental maximum removes.
    pub fn largest_fragment(&self) -> u64 {
        self.empty.iter().map(|n| n.blocks).max().unwrap_or(0) * self.cfg.block_bytes
    }

    pub fn block_bytes(&self) -> u64 {
        self.cfg.block_bytes
    }
}

impl DeviceAllocator for LinearPool {
    fn alloc(&mut self, bytes: u64) -> Result<AllocGrant, AllocError> {
        let need = self.blocks_for(bytes);
        // First-fit: scan the address-ordered empty list for the first node
        // with enough free blocks.
        let Some(pos) = self.empty.iter().position(|n| n.blocks >= need) else {
            return Err(AllocError::OutOfMemory {
                requested: bytes,
                free: (self.total_blocks - self.used_blocks) * self.cfg.block_bytes,
                largest: self.largest_fragment(),
            });
        };
        let node = self.empty[pos];
        let start = node.start;
        if node.blocks == need {
            self.empty.remove(pos);
        } else {
            self.empty[pos] = EmptyNode {
                start: node.start + need,
                blocks: node.blocks - need,
            };
        }
        let id = self.next_id;
        self.next_id += 1;
        self.allocated.insert(
            id,
            AllocNode {
                start,
                blocks: need,
            },
        );
        self.used_blocks += need;
        self.high_water_blocks = self.high_water_blocks.max(self.used_blocks);
        Ok(AllocGrant {
            id: AllocId(id),
            addr: start * self.cfg.block_bytes,
            bytes: need * self.cfg.block_bytes,
            cost: self.cfg.alloc_latency,
        })
    }

    fn free(&mut self, id: AllocId) -> Result<SimTime, AllocError> {
        let node = self
            .allocated
            .remove(&id.0)
            .ok_or(AllocError::UnknownAllocation)?;
        self.used_blocks -= node.blocks;

        // Insert into the address-ordered empty list, coalescing with the
        // predecessor/successor when adjacent.
        let idx = self.empty.partition_point(|n| n.start < node.start);
        let mut start = node.start;
        let mut blocks = node.blocks;
        if idx < self.empty.len() && self.empty[idx].start == start + blocks {
            blocks += self.empty[idx].blocks;
            self.empty.remove(idx);
        }
        if idx > 0 {
            let p = self.empty[idx - 1];
            if p.start + p.blocks == start {
                start = p.start;
                blocks += p.blocks;
                self.empty.remove(idx - 1);
                self.empty.insert(idx - 1, EmptyNode { start, blocks });
                return Ok(self.cfg.free_latency);
            }
        }
        self.empty.insert(idx, EmptyNode { start, blocks });
        Ok(self.cfg.free_latency)
    }

    fn used(&self) -> u64 {
        self.used_blocks * self.cfg.block_bytes
    }

    fn capacity(&self) -> u64 {
        self.total_blocks * self.cfg.block_bytes
    }

    fn high_water(&self) -> u64 {
        self.high_water_blocks * self.cfg.block_bytes
    }

    fn largest_free_contiguous(&self) -> u64 {
        self.largest_fragment()
    }

    fn reset_high_water(&mut self) {
        self.high_water_blocks = self.used_blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_prefers_lowest_address() {
        let mut p = LinearPool::with_capacity(8 * 1024);
        let a = p.alloc(2048).unwrap();
        let b = p.alloc(2048).unwrap();
        let _c = p.alloc(2048).unwrap();
        p.free(a.id).unwrap();
        p.free(b.id).unwrap();
        let d = p.alloc(1024).unwrap();
        assert_eq!(d.addr, 0, "first-fit must reuse the lowest hole");
    }

    #[test]
    fn coalesces_back_to_one_node() {
        let mut p = LinearPool::with_capacity(8 * 1024);
        let grants: Vec<_> = (0..4).map(|_| p.alloc(2048).unwrap()).collect();
        for g in grants {
            p.free(g.id).unwrap();
        }
        assert_eq!(p.empty_nodes(), 1);
        assert_eq!(p.used(), 0);
    }
}
