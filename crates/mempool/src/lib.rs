//! # sn-mempool — the SuperNeurons heap-based GPU memory pool
//!
//! §3.2.1 of the paper: liveness analysis stashes and frees tensors at every
//! step of every iteration, and doing that through `cudaMalloc`/`cudaFree`
//! wastes up to 36% of training time (their ResNet-50 measurement). The fix
//! is a pool: *"preallocate a big chunk of GPU memory as a shared memory
//! pool. Then we divide the entire GPU memory pool into 1KB blocks as the
//! basic storage unit. The memory pool contains a list of allocated and empty
//! memory nodes. Each node in the two lists contains memory address, occupied
//! blocks and node ID. For an allocation request, the memory pool finds the
//! first node with enough free memory from the empty list. ... For a
//! deallocation request, the memory pool locates the node in the allocated
//! list with the ID-to-node hash-table, then the pool places the node back to
//! the empty list."*
//!
//! [`HeapPool`] keeps exactly those semantics (lowest-address first-fit,
//! 1 KB blocks, ID→node map) with two additions: adjacent empty nodes are
//! coalesced on free so the pool does not fragment monotonically, and the
//! empty list is stored as a max-augmented address-ordered treap so
//! first-fit, coalescing and the largest-fragment query are O(log n)/O(1)
//! instead of full scans — the planner compiles thousands of plans per
//! second through this pool, so its inner loop matters. The pre-index
//! linear-scan implementation survives as [`LinearPool`] for differential
//! testing and baseline benchmarking; `tests/proptest_differential.rs`
//! asserts the two are byte-identical over random traces.
//! [`PinnedHostPool`] models the preallocated pinned CPU buffer that
//! offloaded tensors land in.

pub mod host;
pub mod linear;
pub mod pool;

pub use host::PinnedHostPool;
pub use linear::LinearPool;
pub use pool::{HeapPool, PoolConfig, PoolStats};
