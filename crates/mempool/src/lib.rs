//! # sn-mempool — the SuperNeurons heap-based GPU memory pool
//!
//! §3.2.1 of the paper: liveness analysis stashes and frees tensors at every
//! step of every iteration, and doing that through `cudaMalloc`/`cudaFree`
//! wastes up to 36% of training time (their ResNet-50 measurement). The fix
//! is a pool: *"preallocate a big chunk of GPU memory as a shared memory
//! pool. Then we divide the entire GPU memory pool into 1KB blocks as the
//! basic storage unit. The memory pool contains a list of allocated and empty
//! memory nodes. Each node in the two lists contains memory address, occupied
//! blocks and node ID. For an allocation request, the memory pool finds the
//! first node with enough free memory from the empty list. ... For a
//! deallocation request, the memory pool locates the node in the allocated
//! list with the ID-to-node hash-table, then the pool places the node back to
//! the empty list."*
//!
//! [`HeapPool`] implements exactly that structure (first-fit over an
//! address-ordered empty list, 1 KB blocks, ID→node map) with the one
//! addition any production pool needs: adjacent empty nodes are coalesced on
//! free, so the pool does not fragment monotonically. [`PinnedHostPool`]
//! models the preallocated pinned CPU buffer that offloaded tensors land in.

pub mod host;
pub mod pool;

pub use host::PinnedHostPool;
pub use pool::{HeapPool, PoolConfig, PoolStats};
