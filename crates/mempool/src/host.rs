//! Pinned host memory pool.
//!
//! Offloaded tensors land in preallocated *pinned* (page-locked) CPU memory:
//! the paper faults TensorFlow for swapping through pageable buffers, which
//! halves PCIe throughput. We model the pinned pool as a byte-accounted
//! region: capacity is finite (pinning beyond physical RAM fails) and every
//! tensor keeps a stable host slot for its lifetime so repeated offloads of
//! the same tensor do not re-register memory.

use std::collections::HashMap;

/// Handle for a host-side slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostSlot(pub u64);

/// Preallocated pinned CPU buffer used as the offload target of the Unified
/// Tensor Pool.
#[derive(Debug, Clone)]
pub struct PinnedHostPool {
    capacity: u64,
    used: u64,
    high_water: u64,
    next: u64,
    slots: HashMap<u64, u64>,
}

impl PinnedHostPool {
    pub fn new(capacity: u64) -> Self {
        PinnedHostPool {
            capacity,
            used: 0,
            high_water: 0,
            next: 0,
            slots: HashMap::new(),
        }
    }

    /// Reserve a pinned slot of `bytes`. Returns `None` when the host pool is
    /// exhausted (the runtime then falls back to failing the training run —
    /// matching a machine that cannot pin more RAM).
    pub fn reserve(&mut self, bytes: u64) -> Option<HostSlot> {
        if self.used + bytes > self.capacity {
            return None;
        }
        let id = self.next;
        self.next += 1;
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        self.slots.insert(id, bytes);
        Some(HostSlot(id))
    }

    /// Release a slot.
    pub fn release(&mut self, slot: HostSlot) {
        if let Some(bytes) = self.slots.remove(&slot.0) {
            self.used -= bytes;
        }
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    pub fn live_slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_roundtrip() {
        let mut h = PinnedHostPool::new(1000);
        let a = h.reserve(400).unwrap();
        let b = h.reserve(600).unwrap();
        assert_eq!(h.used(), 1000);
        assert!(h.reserve(1).is_none());
        h.release(a);
        assert_eq!(h.used(), 600);
        assert_eq!(h.high_water(), 1000);
        h.release(b);
        assert_eq!(h.live_slots(), 0);
    }

    #[test]
    fn double_release_is_harmless() {
        let mut h = PinnedHostPool::new(100);
        let a = h.reserve(50).unwrap();
        h.release(a);
        h.release(a);
        assert_eq!(h.used(), 0);
    }
}
