//! Pinned host memory pool.
//!
//! Offloaded tensors land in preallocated *pinned* (page-locked) CPU memory:
//! the paper faults TensorFlow for swapping through pageable buffers, which
//! halves PCIe throughput. We model the pinned pool as a byte-accounted
//! region: capacity is finite (pinning beyond physical RAM fails) and every
//! tensor keeps a stable host slot for its lifetime so repeated offloads of
//! the same tensor do not re-register memory.

/// Handle for a host-side slot. The low 32 bits carry the slab slot, the
/// high bits a per-reservation sequence number, so stale handles are
/// detectable after the slot is recycled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostSlot(pub u64);

/// Preallocated pinned CPU buffer used as the offload target of the Unified
/// Tensor Pool.
///
/// Reservations live in a slot slab indexed straight from the handle (the
/// planner reserves/releases a slot per offloaded tensor on its hot path —
/// a hashed map here was measurable in compile profiles).
#[derive(Debug, Clone)]
pub struct PinnedHostPool {
    capacity: u64,
    used: u64,
    high_water: u64,
    /// `(handle, bytes)` per occupied slot.
    slots: Vec<Option<(u64, u64)>>,
    spare: Vec<u32>,
    next_seq: u64,
    live: usize,
}

impl PinnedHostPool {
    pub fn new(capacity: u64) -> Self {
        PinnedHostPool {
            capacity,
            used: 0,
            high_water: 0,
            slots: Vec::new(),
            spare: Vec::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Reserve a pinned slot of `bytes`. Returns `None` when the host pool is
    /// exhausted (the runtime then falls back to failing the training run —
    /// matching a machine that cannot pin more RAM).
    #[inline]
    pub fn reserve(&mut self, bytes: u64) -> Option<HostSlot> {
        if self.used + bytes > self.capacity {
            return None;
        }
        let slot = self.spare.pop().unwrap_or_else(|| {
            self.slots.push(None);
            (self.slots.len() - 1) as u32
        });
        let id = (self.next_seq << 32) | slot as u64;
        self.next_seq += 1;
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        self.slots[slot as usize] = Some((id, bytes));
        self.live += 1;
        Some(HostSlot(id))
    }

    /// Release a slot. Stale or double-released handles are ignored (their
    /// slot either holds nothing or a newer reservation's id).
    #[inline]
    pub fn release(&mut self, slot: HostSlot) {
        let idx = (slot.0 & u32::MAX as u64) as usize;
        match self.slots.get(idx) {
            Some(Some((stored, bytes))) if *stored == slot.0 => {
                self.used -= *bytes;
                self.slots[idx] = None;
                self.spare.push(idx as u32);
                self.live -= 1;
            }
            _ => {}
        }
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    pub fn live_slots(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_roundtrip() {
        let mut h = PinnedHostPool::new(1000);
        let a = h.reserve(400).unwrap();
        let b = h.reserve(600).unwrap();
        assert_eq!(h.used(), 1000);
        assert!(h.reserve(1).is_none());
        h.release(a);
        assert_eq!(h.used(), 600);
        assert_eq!(h.high_water(), 1000);
        h.release(b);
        assert_eq!(h.live_slots(), 0);
    }

    #[test]
    fn double_release_is_harmless() {
        let mut h = PinnedHostPool::new(100);
        let a = h.reserve(50).unwrap();
        h.release(a);
        h.release(a);
        assert_eq!(h.used(), 0);
    }
}
