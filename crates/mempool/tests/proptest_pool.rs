//! Property-based tests for the heap pool: under arbitrary alloc/free
//! interleavings the pool must never hand out overlapping memory, never leak
//! blocks, always coalesce adjacent holes, and return to a single empty node
//! once everything is freed.

use proptest::prelude::*;
use sn_mempool::HeapPool;
use sn_sim::{AllocError, DeviceAllocator};

#[derive(Debug, Clone)]
enum Op {
    /// Allocate this many bytes.
    Alloc(u64),
    /// Free the live allocation at this (wrapped) index.
    Free(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u64..50_000).prop_map(Op::Alloc),
        2 => (0usize..64).prop_map(Op::Free),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pool_invariants_hold_under_arbitrary_interleavings(
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        let capacity = 256 * 1024; // 256 KB => 256 blocks
        let mut pool = HeapPool::with_capacity(capacity);
        let mut live: Vec<(sn_sim::AllocId, u64, u64)> = Vec::new(); // (id, addr, bytes)

        for op in ops {
            match op {
                Op::Alloc(bytes) => {
                    match pool.alloc(bytes) {
                        Ok(g) => {
                            // Granted region must lie within the pool.
                            prop_assert!(g.addr + g.bytes <= capacity);
                            // Granted region must not overlap any live one.
                            for (_, a, b) in &live {
                                let disjoint = g.addr + g.bytes <= *a || a + b <= g.addr;
                                prop_assert!(disjoint,
                                    "overlap: new [{}, {}) vs live [{}, {})",
                                    g.addr, g.addr + g.bytes, a, a + b);
                            }
                            live.push((g.id, g.addr, g.bytes));
                        }
                        Err(AllocError::OutOfMemory { requested, free, largest }) => {
                            // OOM is acceptable; its diagnostics must be
                            // truthful so fragmentation failures are
                            // distinguishable from true exhaustion.
                            prop_assert_eq!(requested, bytes);
                            prop_assert_eq!(free, pool.capacity() - pool.used());
                            prop_assert_eq!(largest, pool.largest_fragment());
                            prop_assert!(largest <= free);
                            // The pool only fails when no fragment fits.
                            prop_assert!(largest < bytes,
                                "refused {} bytes though a {} byte fragment exists",
                                bytes, largest);
                        }
                        Err(e) => {
                            return Err(TestCaseError::fail(format!(
                                "unexpected alloc error: {e}"
                            )));
                        }
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (id, _, _) = live.remove(i % live.len());
                        pool.free(id).unwrap();
                    }
                }
            }
            pool.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("invariant violated: {e}"))
            })?;
            // used() must equal the sum of live grants.
            let live_bytes: u64 = live.iter().map(|(_, _, b)| *b).sum();
            prop_assert_eq!(pool.used(), live_bytes);
        }

        // Drain everything: the pool must coalesce back to one empty node.
        for (id, _, _) in live.drain(..) {
            pool.free(id).unwrap();
        }
        prop_assert_eq!(pool.used(), 0);
        prop_assert_eq!(pool.empty_nodes(), 1);
        pool.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("final invariant violated: {e}"))
        })?;
    }

    #[test]
    fn grants_are_block_aligned_and_sufficient(bytes in 1u64..100_000) {
        let mut pool = HeapPool::with_capacity(1024 * 1024);
        let g = pool.alloc(bytes).unwrap();
        prop_assert!(g.bytes >= bytes);
        prop_assert_eq!(g.addr % pool.block_bytes(), 0);
        prop_assert_eq!(g.bytes % pool.block_bytes(), 0);
        prop_assert!(g.bytes - bytes < pool.block_bytes());
    }

    #[test]
    fn freed_memory_is_reusable(sizes in proptest::collection::vec(1u64..8_000, 1..40)) {
        // Allocate everything, free everything, allocate again: the second
        // round must succeed identically (no leaked blocks).
        let mut pool = HeapPool::with_capacity(512 * 1024);
        let mut round1 = Vec::new();
        for s in &sizes {
            round1.push(pool.alloc(*s).unwrap());
        }
        let addrs1: Vec<u64> = round1.iter().map(|g| g.addr).collect();
        for g in round1 {
            pool.free(g.id).unwrap();
        }
        let mut round2 = Vec::new();
        for s in &sizes {
            round2.push(pool.alloc(*s).unwrap());
        }
        let addrs2: Vec<u64> = round2.iter().map(|g| g.addr).collect();
        // First-fit from a fully coalesced pool is deterministic: identical
        // request sequences produce identical placements.
        prop_assert_eq!(addrs1, addrs2);
    }
}
