//! Differential property test: the indexed [`HeapPool`] and the reference
//! linear-scan [`LinearPool`] must be observably identical.
//!
//! The indexed pool exists to make plan compilation fast; it must never
//! change a single planned byte. Over arbitrary alloc/free interleavings the
//! two implementations are driven in lockstep and compared on everything a
//! caller can observe: grant IDs, addresses, rounded sizes, `used`,
//! `high_water`, `largest_free_contiguous`, fragment counts, and the full
//! `OutOfMemory { requested, free, largest }` diagnostic on the failure
//! path.

use proptest::prelude::*;
use sn_mempool::{HeapPool, LinearPool, PoolConfig};
use sn_sim::{AllocError, DeviceAllocator};

// Handles are compared only for *behaviour* (freeing the same logical
// allocation in both pools), not for value: the indexed pool encodes its
// slab slot in the id, the linear pool numbers monotonically. Everything a
// caller can observe about *memory* must match bit for bit.

#[derive(Debug, Clone)]
enum Op {
    /// Allocate this many bytes.
    Alloc(u64),
    /// Free the live allocation at this (wrapped) index.
    Free(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u64..50_000).prop_map(Op::Alloc),
        2 => (0usize..64).prop_map(Op::Free),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn indexed_pool_is_byte_identical_to_linear_first_fit(
        ops in proptest::collection::vec(op_strategy(), 1..300)
    ) {
        let capacity = 192 * 1024; // small enough that OOM paths are hit
        let mut fast = HeapPool::with_capacity(capacity);
        let mut slow = LinearPool::with_capacity(capacity);
        let mut live: Vec<(sn_sim::AllocId, sn_sim::AllocId)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(bytes) => {
                    match (fast.alloc(bytes), slow.alloc(bytes)) {
                        (Ok(f), Ok(s)) => {
                            prop_assert_eq!(f.addr, s.addr,
                                "first-fit addresses diverged for {} bytes", bytes);
                            prop_assert_eq!(f.bytes, s.bytes);
                            live.push((f.id, s.id));
                        }
                        (
                            Err(AllocError::OutOfMemory { requested: rf, free: ff, largest: lf }),
                            Err(AllocError::OutOfMemory { requested: rs, free: fs, largest: ls }),
                        ) => {
                            prop_assert_eq!(rf, rs);
                            prop_assert_eq!(ff, fs, "OOM free-bytes diverged");
                            prop_assert_eq!(lf, ls, "OOM largest-fragment diverged");
                        }
                        (f, s) => {
                            return Err(TestCaseError::fail(format!(
                                "outcome diverged: indexed {f:?} vs linear {s:?}"
                            )));
                        }
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (fid, sid) = live.remove(i % live.len());
                        fast.free(fid).unwrap();
                        slow.free(sid).unwrap();
                    }
                }
            }
            // Aggregate observables agree after every operation.
            prop_assert_eq!(fast.used(), slow.used());
            prop_assert_eq!(fast.high_water(), slow.high_water());
            prop_assert_eq!(fast.largest_free_contiguous(), slow.largest_free_contiguous());
            prop_assert_eq!(fast.empty_nodes(), slow.empty_nodes(),
                "fragment structure diverged");
            fast.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("indexed pool invariant violated: {e}"))
            })?;
        }

        // Drain both: identical terminal state.
        for (fid, sid) in live.drain(..) {
            fast.free(fid).unwrap();
            slow.free(sid).unwrap();
        }
        prop_assert_eq!(fast.used(), 0);
        prop_assert_eq!(fast.empty_nodes(), 1);
        prop_assert_eq!(slow.empty_nodes(), 1);
        prop_assert_eq!(fast.high_water(), slow.high_water());
    }

    #[test]
    fn treap_regime_is_byte_identical_too(
        ops in proptest::collection::vec(op_strategy(), 1..300)
    ) {
        // Same differential, but with the migration thresholds dropped to
        // 12/6 runs so realistic traces spill into the treap, exercise its
        // first-fit descent, shrink/grow updates and coalescing searches,
        // and collapse back — repeatedly. (At the default thresholds these
        // trace sizes rarely fragment far enough to leave the vector.)
        let mut cfg = PoolConfig::new(192 * 1024);
        cfg.spill_runs = 12;
        cfg.collapse_runs = 6;
        let mut fast = HeapPool::new(cfg);
        let mut slow = LinearPool::new(cfg);
        let mut live: Vec<(sn_sim::AllocId, sn_sim::AllocId)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(bytes) => match (fast.alloc(bytes), slow.alloc(bytes)) {
                    (Ok(f), Ok(s)) => {
                        prop_assert_eq!(f.addr, s.addr);
                        prop_assert_eq!(f.bytes, s.bytes);
                        live.push((f.id, s.id));
                    }
                    (Err(f), Err(s)) => prop_assert_eq!(f, s),
                    (f, s) => {
                        return Err(TestCaseError::fail(format!(
                            "outcome diverged: indexed {f:?} vs linear {s:?}"
                        )));
                    }
                },
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (fid, sid) = live.remove(i % live.len());
                        fast.free(fid).unwrap();
                        slow.free(sid).unwrap();
                    }
                }
            }
            prop_assert_eq!(fast.used(), slow.used());
            prop_assert_eq!(fast.largest_free_contiguous(), slow.largest_free_contiguous());
            prop_assert_eq!(fast.empty_nodes(), slow.empty_nodes());
            fast.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("indexed pool invariant violated: {e}"))
            })?;
        }
    }

    #[test]
    fn double_frees_rejected_identically(bytes in 1u64..10_000) {
        let mut fast = HeapPool::with_capacity(64 * 1024);
        let mut slow = LinearPool::with_capacity(64 * 1024);
        let gf = fast.alloc(bytes).unwrap();
        let gs = slow.alloc(bytes).unwrap();
        prop_assert_eq!(gf.addr, gs.addr);
        fast.free(gf.id).unwrap();
        slow.free(gs.id).unwrap();
        prop_assert_eq!(
            fast.free(gf.id).unwrap_err(),
            slow.free(gs.id).unwrap_err()
        );
    }
}
