//! # sn-models — the network zoo of the paper's evaluation
//!
//! Builders over `sn-graph` for every architecture §4 measures:
//!
//! * [`alexnet`] — the exact 23-layer chain of the paper's footnote 3;
//! * [`vgg16`] / [`vgg19`];
//! * [`resnet`] — bottleneck ResNet with the Table 4 depth formula
//!   `depth = 3·(n1+n2+n3+n4) + 2` (`resnet50`/`101`/`152` presets, plus
//!   [`resnet_depth`] which varies `n3` exactly as the paper does);
//! * [`inception_v4`] — stem + Inception-A/B/C with reduction blocks
//!   (fan/join structure);
//! * [`densenet`] — dense blocks with full concat joins;
//! * [`lenet`] — a small net for numeric-mode training tests and examples.
//!
//! ImageNet-scale inputs are 3×224×224 (AlexNet 3×227×227), 1000 classes.

use sn_graph::{LayerId, Net, Shape4};

/// ImageNet class count.
pub const CLASSES: usize = 1000;

/// AlexNet at `batch`, with the paper's layer order: CONV1→RELU1→LRN1→POOL1
/// →CONV2→RELU2→LRN2→POOL2→CONV3→RELU3→CONV4→RELU4→CONV5→RELU5→POOL5→FC1
/// →RELU6→DROPOUT1→FC2→RELU7→DROPOUT2→FC3→SOFTMAX (23 layers + DATA).
pub fn alexnet(batch: usize) -> Net {
    let mut net = Net::new("AlexNet", Shape4::new(batch, 3, 227, 227));
    let d = net.data();
    let c1 = net.conv(d, 96, 11, 4, 0); // 55x55
    let r1 = net.relu(c1);
    let n1 = net.lrn(r1);
    let p1 = net.max_pool(n1, 3, 2, 0); // 27x27
    let c2 = net.conv(p1, 256, 5, 1, 2);
    let r2 = net.relu(c2);
    let n2 = net.lrn(r2);
    let p2 = net.max_pool(n2, 3, 2, 0); // 13x13
    let c3 = net.conv(p2, 384, 3, 1, 1);
    let r3 = net.relu(c3);
    let c4 = net.conv(r3, 384, 3, 1, 1);
    let r4 = net.relu(c4);
    let c5 = net.conv(r4, 256, 3, 1, 1);
    let r5 = net.relu(c5);
    let p5 = net.max_pool(r5, 3, 2, 0); // 6x6
    let f1 = net.fc(p5, 4096);
    let r6 = net.relu(f1);
    let d1 = net.dropout(r6, 0.5);
    let f2 = net.fc(d1, 4096);
    let r7 = net.relu(f2);
    let d2 = net.dropout(r7, 0.5);
    let f3 = net.fc(d2, CLASSES);
    net.softmax(f3);
    net
}

fn vgg_block(net: &mut Net, mut prev: LayerId, convs: usize, channels: usize) -> LayerId {
    for _ in 0..convs {
        let c = net.conv(prev, channels, 3, 1, 1);
        prev = net.relu(c);
    }
    net.max_pool(prev, 2, 2, 0)
}

fn vgg(batch: usize, name: &str, blocks: &[(usize, usize)]) -> Net {
    let mut net = Net::new(name, Shape4::new(batch, 3, 224, 224));
    let mut prev = net.data();
    for (convs, channels) in blocks {
        prev = vgg_block(&mut net, prev, *convs, *channels);
    }
    let f1 = net.fc(prev, 4096);
    let r1 = net.relu(f1);
    let d1 = net.dropout(r1, 0.5);
    let f2 = net.fc(d1, 4096);
    let r2 = net.relu(f2);
    let d2 = net.dropout(r2, 0.5);
    let f3 = net.fc(d2, CLASSES);
    net.softmax(f3);
    net
}

/// VGG-16 (configuration D).
pub fn vgg16(batch: usize) -> Net {
    vgg(
        batch,
        "VGG16",
        &[(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)],
    )
}

/// VGG-19 (configuration E).
pub fn vgg19(batch: usize) -> Net {
    vgg(
        batch,
        "VGG19",
        &[(2, 64), (2, 128), (4, 256), (4, 512), (4, 512)],
    )
}

/// One bottleneck residual unit: 1×1 reduce → 3×3 → 1×1 expand, with BN+ReLU
/// after each conv and an elementwise join with the (possibly projected)
/// shortcut.
fn bottleneck(
    net: &mut Net,
    input: LayerId,
    mid: usize,
    out: usize,
    stride: usize,
    project: bool,
) -> LayerId {
    let c1 = net.conv(input, mid, 1, stride, 0);
    let b1 = net.bn(c1);
    let r1 = net.relu(b1);
    let c2 = net.conv(r1, mid, 3, 1, 1);
    let b2 = net.bn(c2);
    let r2 = net.relu(b2);
    let c3 = net.conv(r2, out, 1, 1, 0);
    let b3 = net.bn(c3);
    let shortcut = if project {
        let sc = net.conv(input, out, 1, stride, 0);
        net.bn(sc)
    } else {
        input
    };
    let e = net.eltwise(&[b3, shortcut]);
    net.relu(e)
}

/// Bottleneck ResNet with stage unit counts `(n1, n2, n3, n4)` —
/// `depth = 3·(n1+n2+n3+n4) + 2` per Table 4's accounting.
pub fn resnet(batch: usize, n: (usize, usize, usize, usize)) -> Net {
    let depth = 3 * (n.0 + n.1 + n.2 + n.3) + 2;
    let mut net = Net::new(format!("ResNet{depth}"), Shape4::new(batch, 3, 224, 224));
    let d = net.data();
    let c = net.conv(d, 64, 7, 2, 3); // 112x112
    let b = net.bn(c);
    let r = net.relu(b);
    let mut prev = net.max_pool(r, 3, 2, 1); // 56x56

    let stages = [
        (n.0, 64usize, 256usize, 1usize),
        (n.1, 128, 512, 2),
        (n.2, 256, 1024, 2),
        (n.3, 512, 2048, 2),
    ];
    for (units, mid, out, first_stride) in stages {
        for u in 0..units {
            let (stride, project) = if u == 0 {
                (first_stride, true)
            } else {
                (1, false)
            };
            prev = bottleneck(&mut net, prev, mid, out, stride, project);
        }
    }
    let p = net.avg_pool(prev, 7, 7, 0);
    let f = net.fc(p, CLASSES);
    net.softmax(f);
    net
}

/// ResNet-50: (3, 4, 6, 3).
pub fn resnet50(batch: usize) -> Net {
    resnet(batch, (3, 4, 6, 3))
}

/// ResNet-101: (3, 4, 23, 3).
pub fn resnet101(batch: usize) -> Net {
    resnet(batch, (3, 4, 23, 3))
}

/// ResNet-152: (3, 8, 36, 3).
pub fn resnet152(batch: usize) -> Net {
    resnet(batch, (3, 8, 36, 3))
}

/// The Table 4 depth knob: `n1 = 6, n2 = 32, n4 = 6` fixed, `n3` varied, so
/// `depth = 3·(44 + n3) + 2`. Returns the net for a requested `depth`
/// (rounded down to a representable one).
pub fn resnet_depth(batch: usize, depth: usize) -> Net {
    let total_units = depth.saturating_sub(2) / 3;
    let n3 = total_units.saturating_sub(6 + 32 + 6).max(1);
    resnet(batch, (6, 32, n3, 6))
}

// ---------------------------------------------------------------------
// Inception v4 (simplified but faithful fan/join structure)
// ---------------------------------------------------------------------

fn conv_bn_relu(
    net: &mut Net,
    prev: LayerId,
    ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> LayerId {
    let c = net.conv(prev, ch, k, stride, pad);
    let b = net.bn(c);
    net.relu(b)
}

/// Inception-A block: four parallel branches concatenated.
fn inception_a(net: &mut Net, prev: LayerId) -> LayerId {
    let b1 = conv_bn_relu(net, prev, 96, 1, 1, 0);
    let b2a = conv_bn_relu(net, prev, 64, 1, 1, 0);
    let b2 = conv_bn_relu(net, b2a, 96, 3, 1, 1);
    let b3a = conv_bn_relu(net, prev, 64, 1, 1, 0);
    let b3b = conv_bn_relu(net, b3a, 96, 3, 1, 1);
    let b3 = conv_bn_relu(net, b3b, 96, 3, 1, 1);
    let b4a = net.avg_pool(prev, 3, 1, 1);
    let b4 = conv_bn_relu(net, b4a, 96, 1, 1, 0);
    net.concat(&[b1, b2, b3, b4])
}

fn reduction_a(net: &mut Net, prev: LayerId) -> LayerId {
    let b1 = conv_bn_relu(net, prev, 384, 3, 2, 0);
    let b2a = conv_bn_relu(net, prev, 192, 1, 1, 0);
    let b2b = conv_bn_relu(net, b2a, 224, 3, 1, 1);
    let b2 = conv_bn_relu(net, b2b, 256, 3, 2, 0);
    let b3 = net.max_pool(prev, 3, 2, 0);
    net.concat(&[b1, b2, b3])
}

fn inception_b(net: &mut Net, prev: LayerId) -> LayerId {
    let b1 = conv_bn_relu(net, prev, 384, 1, 1, 0);
    // The 1x7 -> 7x1 pair, modelled as two square 3x3 convs of the same
    // channel progression.
    let b2a = conv_bn_relu(net, prev, 192, 1, 1, 0);
    let b2b = conv_bn_relu(net, b2a, 224, 3, 1, 1);
    let b2 = conv_bn_relu(net, b2b, 256, 3, 1, 1);
    // The 7x1 -> 1x7 -> 7x1 -> 1x7 chain (five convs in the original).
    let b3a = conv_bn_relu(net, prev, 192, 1, 1, 0);
    let b3b = conv_bn_relu(net, b3a, 192, 3, 1, 1);
    let b3c = conv_bn_relu(net, b3b, 224, 3, 1, 1);
    let b3d = conv_bn_relu(net, b3c, 224, 3, 1, 1);
    let b3 = conv_bn_relu(net, b3d, 256, 3, 1, 1);
    let b4a = net.avg_pool(prev, 3, 1, 1);
    let b4 = conv_bn_relu(net, b4a, 128, 1, 1, 0);
    net.concat(&[b1, b2, b3, b4])
}

fn reduction_b(net: &mut Net, prev: LayerId) -> LayerId {
    let b1a = conv_bn_relu(net, prev, 192, 1, 1, 0);
    let b1 = conv_bn_relu(net, b1a, 192, 3, 2, 0);
    let b2a = conv_bn_relu(net, prev, 256, 1, 1, 0);
    let b2b = conv_bn_relu(net, b2a, 320, 3, 1, 1);
    let b2 = conv_bn_relu(net, b2b, 320, 3, 2, 0);
    let b3 = net.max_pool(prev, 3, 2, 0);
    net.concat(&[b1, b2, b3])
}

fn inception_c(net: &mut Net, prev: LayerId) -> LayerId {
    let b1 = conv_bn_relu(net, prev, 256, 1, 1, 0);
    // Branch 2 fans into parallel 1x3/3x1 heads (256 each).
    let b2a = conv_bn_relu(net, prev, 384, 1, 1, 0);
    let b2l = conv_bn_relu(net, b2a, 256, 3, 1, 1);
    let b2r = conv_bn_relu(net, b2a, 256, 3, 1, 1);
    // Branch 3: 384 -> 448 -> 512, then parallel 256/256 heads.
    let b3a = conv_bn_relu(net, prev, 384, 1, 1, 0);
    let b3b = conv_bn_relu(net, b3a, 448, 3, 1, 1);
    let b3c = conv_bn_relu(net, b3b, 512, 3, 1, 1);
    let b3l = conv_bn_relu(net, b3c, 256, 3, 1, 1);
    let b3r = conv_bn_relu(net, b3c, 256, 3, 1, 1);
    let b4a = net.avg_pool(prev, 3, 1, 1);
    let b4 = conv_bn_relu(net, b4a, 256, 1, 1, 0);
    net.concat(&[b1, b2l, b2r, b3l, b3r, b4])
}

/// Inception v4: stem, 4×A, reduction-A, 7×B, reduction-B, 3×C.
pub fn inception_v4(batch: usize) -> Net {
    let mut net = Net::new("InceptionV4", Shape4::new(batch, 3, 299, 299));
    let d = net.data();
    // Stem (simplified: three convs + pool fan).
    let s1 = conv_bn_relu(&mut net, d, 32, 3, 2, 0); // 149
    let s2 = conv_bn_relu(&mut net, s1, 32, 3, 1, 0); // 147
    let s3 = conv_bn_relu(&mut net, s2, 64, 3, 1, 1); // 147
    let sp = net.max_pool(s3, 3, 2, 0); // 73
    let sc = conv_bn_relu(&mut net, s3, 96, 3, 2, 0); // 73
    let stem1 = net.concat(&[sp, sc]); // 160ch
    let t1 = conv_bn_relu(&mut net, stem1, 192, 3, 2, 0); // 36
    let t2 = net.max_pool(stem1, 3, 2, 0); // 36
    let mut prev = net.concat(&[t1, t2]); // 352ch @ 36 (vs paper 384 @ 35)

    for _ in 0..4 {
        prev = inception_a(&mut net, prev);
    }
    prev = reduction_a(&mut net, prev);
    for _ in 0..7 {
        prev = inception_b(&mut net, prev);
    }
    prev = reduction_b(&mut net, prev);
    for _ in 0..3 {
        prev = inception_c(&mut net, prev);
    }
    let p = net.avg_pool(prev, 8, 8, 0);
    let dr = net.dropout(p, 0.2);
    let f = net.fc(dr, CLASSES);
    net.softmax(f);
    net
}

// ---------------------------------------------------------------------
// DenseNet
// ---------------------------------------------------------------------

/// DenseNet-BC style network with growth rate `k` and `layers_per_block`
/// layers in each of 4 dense blocks. Every layer's input is the concat of
/// all previous outputs in the block — the "full-join" of Fig. 1b.
pub fn densenet(batch: usize, k: usize, layers_per_block: usize) -> Net {
    let mut net = Net::new(
        format!("DenseNet-k{k}-L{layers_per_block}"),
        Shape4::new(batch, 3, 224, 224),
    );
    let d = net.data();
    let c = net.conv(d, 2 * k, 7, 2, 3);
    let b = net.bn(c);
    let r = net.relu(b);
    let mut prev = net.max_pool(r, 3, 2, 1); // 56x56

    for block in 0..4 {
        let mut feats: Vec<LayerId> = vec![prev];
        for _ in 0..layers_per_block {
            let input = if feats.len() == 1 {
                feats[0]
            } else {
                net.concat(&feats)
            };
            // BN-ReLU-Conv(1x1, 4k) then BN-ReLU-Conv(3x3, k).
            let b1 = net.bn(input);
            let r1 = net.relu(b1);
            let c1 = net.conv(r1, 4 * k, 1, 1, 0);
            let b2 = net.bn(c1);
            let r2 = net.relu(b2);
            let c2 = net.conv(r2, k, 3, 1, 1);
            feats.push(c2);
        }
        let block_out = net.concat(&feats);
        if block < 3 {
            // Transition: 1x1 halving channels + 2x2 avg pool.
            let ch = net.layer(block_out).out_shape.c / 2;
            let t = net.conv(block_out, ch, 1, 1, 0);
            let tb = net.bn(t);
            prev = net.avg_pool(tb, 2, 2, 0);
        } else {
            prev = block_out;
        }
    }
    let p = net.avg_pool(prev, 7, 7, 0);
    let f = net.fc(p, CLASSES);
    net.softmax(f);
    net
}

// ---------------------------------------------------------------------
// GPT-style transformers
// ---------------------------------------------------------------------

/// GPT-2's BPE vocabulary size, shared by both GPT presets.
pub const GPT_VOCAB: usize = 50_257;

/// One pre-norm transformer block: `x + Attn(LN(x))` then `r + MLP(LN(r))`,
/// with dropout on each sublayer output before the residual join.
fn transformer_block(net: &mut Net, x: LayerId, heads: usize, hidden: usize) -> LayerId {
    let ln1 = net.layernorm(x);
    let attn = net.attention(ln1, heads);
    let d1 = net.dropout(attn, 0.1);
    let r1 = net.eltwise(&[x, d1]);
    let ln2 = net.layernorm(r1);
    let mlp = net.mlp(ln2, hidden);
    let d2 = net.dropout(mlp, 0.1);
    net.eltwise(&[r1, d2])
}

/// A GPT-style decoder stack: token embedding, `layers` pre-norm blocks, a
/// final LayerNorm and a softmax over the model dimension. Tokens ride the
/// spatial axis (`H = seq`, `W = 1`); the embedding lifts them to `C = dim`.
fn gpt(
    name: &str,
    batch: usize,
    seq: usize,
    dim: usize,
    heads: usize,
    hidden: usize,
    layers: usize,
) -> Net {
    let mut net = Net::new(name, Shape4::new(batch, 1, seq, 1));
    let d = net.data();
    let e = net.embedding(d, GPT_VOCAB, dim);
    let mut prev = net.dropout(e, 0.1);
    for _ in 0..layers {
        prev = transformer_block(&mut net, prev, heads, hidden);
    }
    let ln = net.layernorm(prev);
    net.softmax(ln);
    net
}

/// GPT-Small (GPT-2 124M-class): 12 blocks, `d = 768`, 12 heads,
/// 4·d MLP hidden width, at the given batch and sequence length.
pub fn gpt_small(batch: usize, seq: usize) -> Net {
    gpt("GPT-Small", batch, seq, 768, 12, 3072, 12)
}

/// GPT-Medium (GPT-2 350M-class): 24 blocks, `d = 1024`, 16 heads.
pub fn gpt_medium(batch: usize, seq: usize) -> Net {
    gpt("GPT-Medium", batch, seq, 1024, 16, 4096, 24)
}

/// GPT-Small at sequence length 256 — the transformer row of the
/// batch-parameterized experiment sweeps.
pub fn gpt_small_seq256(batch: usize) -> Net {
    gpt_small(batch, 256)
}

/// A LeNet-style small network for numeric-mode training (input `1×28×28`,
/// `classes` outputs).
pub fn lenet(batch: usize, classes: usize) -> Net {
    let mut net = Net::new("LeNet", Shape4::new(batch, 1, 28, 28));
    let d = net.data();
    let c1 = net.conv(d, 8, 5, 1, 2);
    let r1 = net.relu(c1);
    let p1 = net.max_pool(r1, 2, 2, 0);
    let c2 = net.conv(p1, 16, 5, 1, 2);
    let r2 = net.relu(c2);
    let p2 = net.max_pool(r2, 2, 2, 0);
    let f1 = net.fc(p2, 64);
    let r3 = net.relu(f1);
    let f2 = net.fc(r3, classes);
    net.softmax(f2);
    net
}

/// A batch-parameterized network constructor.
pub type NetBuilder = fn(usize) -> Net;

/// All (name, builder) pairs used by the end-to-end experiments.
pub fn evaluation_networks() -> Vec<(&'static str, NetBuilder)> {
    vec![
        ("AlexNet", alexnet as NetBuilder),
        ("VGG16", vgg16),
        ("InceptionV4", inception_v4),
        ("ResNet50", resnet50),
        ("ResNet101", resnet101),
        ("ResNet152", resnet152),
        ("GPT-Small", gpt_small_seq256),
    ]
}

/// The serving-scenario builders: the networks a fleet typically hosts as
/// forward-only inference services alongside training tenants, with the
/// per-request batch each is usually served at. The same builders feed
/// training routes; inference sessions compile them through
/// `Route::construct_inference` — graphs carry no training/serving split,
/// the *plan* does.
pub fn serving_networks() -> Vec<(&'static str, NetBuilder, usize)> {
    vec![
        ("AlexNet", alexnet as NetBuilder, 64),
        ("VGG16", vgg16, 16),
        ("ResNet50", resnet50, 16),
        ("InceptionV4", inception_v4, 8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_graph::{LayerKind, NetCost, Route};

    #[test]
    fn alexnet_has_the_paper_structure() {
        let net = alexnet(200);
        net.validate().unwrap();
        // DATA + 23 layers.
        assert_eq!(net.len(), 24);
        let kinds: Vec<&str> = net.layers().iter().map(|l| l.kind.type_name()).collect();
        assert_eq!(
            kinds,
            vec![
                "DATA", "CONV", "ACT", "LRN", "POOL", "CONV", "ACT", "LRN", "POOL", "CONV", "ACT",
                "CONV", "ACT", "CONV", "ACT", "POOL", "FC", "ACT", "DROPOUT", "FC", "ACT",
                "DROPOUT", "FC", "SOFTMAX"
            ]
        );
        // conv1 output is 55x55x96 as in the original.
        assert_eq!(net.layers()[1].out_shape, Shape4::new(200, 96, 55, 55));
    }

    #[test]
    fn vgg_depths() {
        let v16 = vgg16(32);
        v16.validate().unwrap();
        let convs = |n: &Net| {
            n.layers()
                .iter()
                .filter(|l| matches!(l.kind, LayerKind::Conv { .. }))
                .count()
        };
        assert_eq!(convs(&v16), 13);
        let v19 = vgg19(32);
        assert_eq!(convs(&v19), 16);
        assert_eq!(v16.layers().last().unwrap().out_shape.features(), CLASSES);
    }

    #[test]
    fn resnet50_shape_and_depth() {
        let net = resnet50(16);
        net.validate().unwrap();
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv { .. }))
            .count();
        // 1 stem + 3*(3+4+6+3)=48 block convs + 4 projections = 53.
        assert_eq!(convs, 53);
        // Final stage output: 2048 channels pooled to 1x1.
        let p = net
            .layers()
            .iter()
            .rfind(|l| matches!(l.kind, LayerKind::Pool { .. }))
            .unwrap();
        assert_eq!(p.out_shape, Shape4::new(16, 2048, 1, 1));
    }

    #[test]
    fn resnet_routes_and_costs_scale() {
        let shallow = resnet(1, (2, 2, 2, 2));
        let deep = resnet(1, (2, 2, 8, 2));
        assert!(deep.len() > shallow.len());
        let r = Route::construct(&deep);
        r.validate(&deep).unwrap();
        let cost_s = NetCost::of(&shallow);
        let cost_d = NetCost::of(&deep);
        assert!(cost_d.sum_l_f() > cost_s.sum_l_f());
        // l_peak is depth-independent (it's a per-layer max).
        assert_eq!(cost_s.l_peak(), cost_d.l_peak());
    }

    #[test]
    fn resnet_depth_formula_matches_table4() {
        // depth = 3*(6+32+n3+6)+2; for n3 = 1 -> 137.
        let net = resnet_depth(16, 137);
        net.validate().unwrap();
        // For depth 480 (MXNet's Table 4 entry): n3 = 159 - 44 = 115.
        let net = resnet_depth(1, 480);
        net.validate().unwrap();
        assert!(net.len() > 1000, "480-deep resnet has >1000 graph nodes");
    }

    #[test]
    fn inception_v4_is_nonlinear_and_valid() {
        let net = inception_v4(8);
        net.validate().unwrap();
        let joins = net.layers().iter().filter(|l| l.is_join()).count();
        assert!(joins >= 16, "inception must have many concats: {joins}");
        let r = Route::construct(&net);
        r.validate(&net).unwrap();
    }

    #[test]
    fn densenet_full_join_grows_channels() {
        let net = densenet(4, 12, 6);
        net.validate().unwrap();
        let r = Route::construct(&net);
        r.validate(&net).unwrap();
        // Inside a block, concat widths grow by k per layer.
        let concats: Vec<usize> = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Concat))
            .map(|l| l.out_shape.c)
            .collect();
        assert!(concats.windows(2).take(4).all(|w| w[1] > w[0]));
    }

    #[test]
    fn gpt_blocks_have_the_pre_norm_structure() {
        let net = gpt_small(2, 64);
        net.validate().unwrap();
        let route = Route::construct(&net);
        route.validate(&net).unwrap();
        // DATA + EMBED + DROPOUT + 12 × 8-layer block + LNORM + SOFTMAX.
        assert_eq!(net.len(), 3 + 12 * 8 + 2);
        let count = |pat: &str| {
            net.layers()
                .iter()
                .filter(|l| l.kind.type_name() == pat)
                .count()
        };
        assert_eq!(count("ATTN"), 12);
        assert_eq!(count("MLP"), 12);
        assert_eq!(count("LNORM"), 2 * 12 + 1);
        assert_eq!(count("ELTWISE"), 2 * 12);
        // The embedding lifts tokens to the model dimension; every block
        // preserves the (batch, d, seq, 1) shape (the terminal softmax
        // flattens it like every other head).
        let e = &net.layers()[1];
        assert_eq!(e.kind.type_name(), "EMBED");
        assert_eq!(e.out_shape, Shape4::new(2, 768, 64, 1));
        let body = &net.layers()[2..net.len() - 1];
        assert!(body.iter().all(|l| l.out_shape == e.out_shape));
    }

    #[test]
    fn gpt_presets_scale_like_their_parameter_counts() {
        // GPT-Medium has ~2.8× GPT-Small's parameters; the weight bytes (and
        // forward cost) must order the same way at equal batch/seq.
        let small = NetCost::of(&gpt_small(2, 64));
        let medium = NetCost::of(&gpt_medium(2, 64));
        assert!(medium.total_weight_bytes() > 2 * small.total_weight_bytes());
        assert!(medium.sum_l_f() > small.sum_l_f());
        // Attention/MLP layers are the GEMM checkpoints of the §3 policy:
        // every ATTN/MLP layer is a checkpoint, LNORM is not.
        let net = gpt_small(2, 64);
        for l in net.layers() {
            match l.kind.type_name() {
                "ATTN" | "MLP" | "EMBED" => assert!(l.kind.is_checkpoint()),
                "LNORM" => assert!(!l.kind.is_checkpoint()),
                _ => {}
            }
        }
    }

    #[test]
    fn lenet_is_small() {
        let net = lenet(16, 10);
        net.validate().unwrap();
        assert!(NetCost::of(&net).sum_l_f() < 10 << 20);
    }

    #[test]
    fn evaluation_networks_all_build() {
        for (name, b) in evaluation_networks() {
            let net = b(2);
            net.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let route = Route::construct(&net);
            route.validate(&net).unwrap();
        }
    }

    #[test]
    fn memory_footprints_are_ordered_like_fig2() {
        // At batch 32: AlexNet < ResNet50 < ResNet101 < ResNet152 and
        // Inception v4 the largest (44.3 GB in the paper).
        let total = |net: &Net| {
            let c = NetCost::of(net);
            c.sum_l_f() + c.sum_l_b()
        };
        let alex = total(&alexnet(32));
        let r50 = total(&resnet50(32));
        let r101 = total(&resnet101(32));
        let r152 = total(&resnet152(32));
        let inc = total(&inception_v4(32));
        assert!(alex < r50, "{alex} {r50}");
        assert!(r50 < r101 && r101 < r152, "{r50} {r101} {r152}");
        // Our Inception v4 flattens the 1x7/7x1 chains into square 3x3
        // convs, so it lands near ResNet101 rather than above ResNet152
        // (the paper's 44.3 GB includes cuDNN's measured conv buffers) —
        // documented in EXPERIMENTS.md.
        assert!(inc > r50, "{inc} {r50}");
        // Still tens of GB at batch 32.
        assert!(inc > 10u64 << 30, "inception v4 = {} GB", inc >> 30);
    }
}
