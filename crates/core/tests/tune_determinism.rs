//! Seeded-determinism contract of the policy autotuner: the same seed
//! produces bit-identical search traces and chosen policies regardless of
//! the `par_map` worker count the feasibility batches fan out over. This is
//! what makes a [`sn_runtime::TunedPolicy`] a *name* (reproducible from its
//! key) rather than a measurement artifact.

use proptest::prelude::*;
use sn_graph::{Net, Shape4};
use sn_runtime::tune::{search, TuneConfig};
use sn_runtime::Interconnect;
use sn_sim::DeviceSpec;

fn tower(width: usize, depth: usize, batch: usize) -> Net {
    let mut net = Net::new("tower", Shape4::new(batch, 3, 32, 32));
    let mut prev = net.data();
    for _ in 0..depth {
        let c = net.conv(prev, width, 3, 1, 1);
        prev = net.relu(c);
    }
    let p = net.max_pool(prev, 2, 2, 0);
    let f = net.fc(p, 10);
    net.softmax(f);
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Same seed ⇒ identical `TunedPolicy` (every field, including the
    // trace digest) and identical rendered trace, across worker counts —
    // including counts far above this machine's hardware parallelism.
    #[test]
    fn same_seed_is_bit_identical_across_worker_counts(
        seed in 0u64..1_000_000,
        width in 8usize..24,
        depth in 2usize..5,
        replicas in 1usize..3,
    ) {
        let net = tower(width, depth, 8);
        let spec = DeviceSpec::k40c();
        let cfg = TuneConfig::new(replicas, Interconnect::pcie())
            .with_seed(seed)
            .with_samples(8);
        let reference = search(&net, &spec, &cfg.with_workers(1)).unwrap();
        for workers in [2, 7, 64] {
            let o = search(&net, &spec, &cfg.with_workers(workers)).unwrap();
            prop_assert_eq!(&o.tuned, &reference.tuned, "workers={}", workers);
            prop_assert_eq!(&o.trace, &reference.trace, "workers={}", workers);
        }
        // The winner honours the gates the bench enforces fleet-wide.
        prop_assert!(reference.tuned.step_time <= reference.tuned.hand_step_time);
        prop_assert_eq!(
            reference.tuned.plan_peak_bytes,
            reference.tuned.executed_peak_bytes
        );
        prop_assert!(reference.tuned.policy.validate().is_ok());
    }
}
