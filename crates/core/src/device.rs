//! The simulated device bundle: spec + timeline + allocator + pinned host
//! pool, with allocation latencies charged to the virtual clock.

use sn_mempool::{HeapPool, LinearPool, PoolConfig};
use sn_sim::{
    AllocError, AllocGrant, AllocId, CudaAllocator, DeviceAllocator, DeviceSpec, SimTime, Timeline,
};

use crate::policy::AllocatorKind;
use crate::tiers::{TierConfig, TieredPool};

/// Any of the allocators behind one enum (avoids `dyn` in the hot path).
#[derive(Debug, Clone)]
pub enum AllocatorImpl {
    Pool(HeapPool),
    /// Reference linear-scan pool (differential tests, bench baselines).
    Linear(LinearPool),
    Cuda(CudaAllocator),
}

impl DeviceAllocator for AllocatorImpl {
    fn alloc(&mut self, bytes: u64) -> Result<AllocGrant, AllocError> {
        match self {
            AllocatorImpl::Pool(p) => p.alloc(bytes),
            AllocatorImpl::Linear(p) => p.alloc(bytes),
            AllocatorImpl::Cuda(c) => c.alloc(bytes),
        }
    }

    fn free(&mut self, id: AllocId) -> Result<SimTime, AllocError> {
        match self {
            AllocatorImpl::Pool(p) => p.free(id),
            AllocatorImpl::Linear(p) => p.free(id),
            AllocatorImpl::Cuda(c) => c.free(id),
        }
    }

    fn used(&self) -> u64 {
        match self {
            AllocatorImpl::Pool(p) => p.used(),
            AllocatorImpl::Linear(p) => p.used(),
            AllocatorImpl::Cuda(c) => c.used(),
        }
    }

    fn capacity(&self) -> u64 {
        match self {
            AllocatorImpl::Pool(p) => p.capacity(),
            AllocatorImpl::Linear(p) => p.capacity(),
            AllocatorImpl::Cuda(c) => c.capacity(),
        }
    }

    fn high_water(&self) -> u64 {
        match self {
            AllocatorImpl::Pool(p) => p.high_water(),
            AllocatorImpl::Linear(p) => p.high_water(),
            AllocatorImpl::Cuda(c) => c.high_water(),
        }
    }

    fn largest_free_contiguous(&self) -> u64 {
        match self {
            AllocatorImpl::Pool(p) => p.largest_free_contiguous(),
            AllocatorImpl::Linear(p) => p.largest_free_contiguous(),
            AllocatorImpl::Cuda(c) => c.largest_free_contiguous(),
        }
    }

    fn reset_high_water(&mut self) {
        match self {
            AllocatorImpl::Pool(p) => p.reset_high_water(),
            AllocatorImpl::Linear(p) => p.reset_high_water(),
            AllocatorImpl::Cuda(c) => c.reset_high_water(),
        }
    }
}

/// The simulated GPU as the executor sees it.
#[derive(Debug, Clone)]
pub struct Device {
    pub spec: DeviceSpec,
    pub tl: Timeline,
    pub alloc: AllocatorImpl,
    /// The Unified Tensor Pool's external tiers (Fig. 7).
    pub host: TieredPool,
    /// Accumulated host-side allocator latency (Table 2's overhead).
    pub alloc_time: SimTime,
    pub alloc_calls: u64,
    pub free_calls: u64,
}

impl Device {
    pub fn new(spec: DeviceSpec, allocator: AllocatorKind, tiers: TierConfig) -> Device {
        let alloc = match allocator {
            AllocatorKind::HeapPool => {
                AllocatorImpl::Pool(HeapPool::new(PoolConfig::new(spec.dram_bytes)))
            }
            AllocatorKind::LinearPool => {
                AllocatorImpl::Linear(LinearPool::new(PoolConfig::new(spec.dram_bytes)))
            }
            AllocatorKind::Cuda => AllocatorImpl::Cuda(CudaAllocator::new(&spec)),
        };
        Device {
            spec,
            tl: Timeline::new(),
            host: TieredPool::new(tiers),
            alloc,
            alloc_time: SimTime::ZERO,
            alloc_calls: 0,
            free_calls: 0,
        }
    }

    /// Allocate, charging the call's latency to the host clock.
    pub fn alloc_charged(&mut self, bytes: u64) -> Result<AllocGrant, AllocError> {
        let g = self.alloc.alloc(bytes)?;
        self.tl.advance(g.cost);
        self.alloc_time += g.cost;
        self.alloc_calls += 1;
        Ok(g)
    }

    /// Free, charging the call's latency.
    pub fn free_charged(&mut self, id: AllocId) {
        match self.alloc.free(id) {
            Ok(cost) => {
                self.tl.advance(cost);
                self.alloc_time += cost;
                self.free_calls += 1;
            }
            Err(e) => panic!("device free failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_device_charges_small_latency() {
        let mut d = Device::new(
            DeviceSpec::k40c(),
            AllocatorKind::HeapPool,
            TierConfig::default(),
        );
        let t0 = d.tl.now();
        let g = d.alloc_charged(1 << 20).unwrap();
        assert!(d.tl.now() > t0);
        assert!(
            (d.tl.now() - t0).as_ns() < 10_000,
            "pool alloc must be sub-10us"
        );
        d.free_charged(g.id);
        assert_eq!(d.alloc.used(), 0);
    }

    #[test]
    fn cuda_device_charges_large_latency() {
        let mut d = Device::new(
            DeviceSpec::k40c(),
            AllocatorKind::Cuda,
            TierConfig::default(),
        );
        let t0 = d.tl.now();
        let _g = d.alloc_charged(64 << 20).unwrap();
        assert!(
            (d.tl.now() - t0).as_ns() > 50_000,
            "cudaMalloc must cost >50us"
        );
    }

    #[test]
    fn capacity_respected_by_both() {
        for kind in [AllocatorKind::HeapPool, AllocatorKind::Cuda] {
            let spec = DeviceSpec::k40c().with_dram(1 << 20);
            let mut d = Device::new(spec, kind, TierConfig::default());
            assert!(d.alloc_charged(2 << 20).is_err());
        }
    }
}
