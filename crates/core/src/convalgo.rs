//! Convolution algorithm catalogue and the dynamic workspace selector
//! (§3.5).
//!
//! cuDNN exposes several convolution algorithms whose speed/workspace
//! trade-offs differ: implicit GEMM needs no scratch memory but is slowest;
//! explicit GEMM materializes the im2col matrix; Winograd and FFT transform
//! into a domain where the convolution is cheap but the transformed operands
//! need large buffers. We model the catalogue with analytic workspace sizes
//! and speed factors relative to implicit GEMM (shapes taken from the cuDNN
//! paper and vendor benchmarking folklore; workspaces scale with the batch,
//! as cuDNN's do). The *ordering* — more workspace ⇒ more speed, FFT
//! favouring big kernels, Winograd favouring 3×3/s1 — is what Fig. 2 and
//! Fig. 12 depend on, not the absolute factors.
//!
//! The runtime's selector implements the paper's dynamic strategy: at each
//! step, profile the free bytes the three memory techniques left over and
//! pick the fastest algorithm whose workspace fits ("the runtime skips
//! convolution algorithms that require more memory than it can provide").

use sn_graph::{LayerKind, Net};
use sn_tensor::Shape4;

/// Modelled convolution algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvAlgo {
    /// No workspace, baseline speed (factor 1.0).
    ImplicitGemm,
    /// Explicit im2col + GEMM: workspace = the column matrix for a chunk of
    /// images.
    Gemm,
    /// Winograd F(2×2, 3×3): 3×3 stride-1 only; transformed tiles.
    Winograd,
    /// Tiled FFT: stride-1 only; spectra for a tile chunk.
    FftTiling,
    /// Full FFT: stride-1 only; full padded spectra — the hungriest and,
    /// for large kernels, the fastest.
    Fft,
}

impl ConvAlgo {
    /// All algorithms, slowest→fastest workspace appetite.
    pub const ALL: [ConvAlgo; 5] = [
        ConvAlgo::ImplicitGemm,
        ConvAlgo::Gemm,
        ConvAlgo::Winograd,
        ConvAlgo::FftTiling,
        ConvAlgo::Fft,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            ConvAlgo::ImplicitGemm => "IMPLICIT_GEMM",
            ConvAlgo::Gemm => "GEMM",
            ConvAlgo::Winograd => "WINOGRAD",
            ConvAlgo::FftTiling => "FFT_TILING",
            ConvAlgo::Fft => "FFT",
        }
    }

    /// Is the algorithm applicable to this layer's geometry?
    pub fn applicable(&self, kernel: usize, stride: usize) -> bool {
        match self {
            ConvAlgo::ImplicitGemm | ConvAlgo::Gemm => true,
            ConvAlgo::Winograd => kernel == 3 && stride == 1,
            ConvAlgo::FftTiling | ConvAlgo::Fft => stride == 1 && kernel >= 3,
        }
    }

    /// Workspace bytes required for an input of `in_shape` producing
    /// `out_shape` with `k_out` output channels and a `kernel²` filter.
    pub fn workspace_bytes(&self, in_shape: Shape4, out_shape: Shape4, kernel: usize) -> u64 {
        let c = in_shape.c as u64;
        let k = out_shape.c as u64;
        let n = in_shape.n as u64;
        let r = kernel as u64;
        let ohw = (out_shape.h * out_shape.w) as u64;
        match self {
            ConvAlgo::ImplicitGemm => 0,
            // Column matrix C·R·S × OH·OW for a chunk of images.
            ConvAlgo::Gemm => c * r * r * ohw * 4 * n,
            // 4×4 input tiles + 4×4 filter transforms for all channels.
            ConvAlgo::Winograd => {
                let tiles = (out_shape.h as u64).div_ceil(2) * (out_shape.w as u64).div_ceil(2);
                (c + k) * tiles * 16 * 4 * n + c * k * 16 * 4
            }
            // Spectra of tiled input/filter/output (complex f32 = 8 bytes).
            ConvAlgo::FftTiling => {
                let tile = 32u64 * 32;
                let tiles =
                    ((out_shape.h as u64).div_ceil(24)) * ((out_shape.w as u64).div_ceil(24));
                (c + k) * tiles * tile * 8 * n + c * k * tile * 8 / 4
            }
            // Full padded spectra of input, output and filters.
            ConvAlgo::Fft => {
                let hp = (in_shape.h as u64 + r).next_power_of_two();
                let wp = (in_shape.w as u64 + r).next_power_of_two();
                (c + 2 * k) * hp * wp * 8 * n + c * k * hp * wp * 8
            }
        }
    }

    /// Speed factor relative to implicit GEMM (higher = faster).
    pub fn speed_factor(&self, kernel: usize) -> f64 {
        match self {
            ConvAlgo::ImplicitGemm => 1.0,
            ConvAlgo::Gemm => 1.3,
            ConvAlgo::Winograd => 2.25,
            ConvAlgo::FftTiling => {
                if kernel >= 5 {
                    2.4
                } else {
                    1.7
                }
            }
            ConvAlgo::Fft => {
                if kernel >= 5 {
                    3.0
                } else {
                    1.8
                }
            }
        }
    }
}

/// A selector decision for one convolution step.
#[derive(Debug, Clone, Copy)]
pub struct AlgoChoice {
    pub algo: ConvAlgo,
    pub workspace: u64,
    pub speedup: f64,
}

impl AlgoChoice {
    /// The zero-workspace fallback.
    pub fn fallback() -> AlgoChoice {
        AlgoChoice {
            algo: ConvAlgo::ImplicitGemm,
            workspace: 0,
            speedup: 1.0,
        }
    }
}

/// Pick the fastest memory-feasible algorithm for `layer` given
/// `free_bytes` of available workspace memory.
pub fn select_algo(net: &Net, layer: sn_graph::LayerId, free_bytes: u64) -> AlgoChoice {
    let l = net.layer(layer);
    let LayerKind::Conv { kernel, stride, .. } = l.kind else {
        return AlgoChoice::fallback();
    };
    let in_shape = net.in_shape(layer);
    let out_shape = l.out_shape;

    let mut best = AlgoChoice::fallback();
    for algo in ConvAlgo::ALL {
        if !algo.applicable(kernel, stride) {
            continue;
        }
        let ws = algo.workspace_bytes(in_shape, out_shape, kernel);
        if ws > free_bytes {
            continue; // skip algorithms that need more memory than available
        }
        let s = algo.speed_factor(kernel);
        if s > best.speedup {
            best = AlgoChoice {
                algo,
                workspace: ws,
                speedup: s,
            };
        }
    }
    best
}

/// The choice made with unlimited memory — the "MAX Speed WS" series of
/// Fig. 12.
pub fn max_speed_algo(net: &Net, layer: sn_graph::LayerId) -> AlgoChoice {
    select_algo(net, layer, u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_net(kernel: usize, stride: usize) -> (Net, sn_graph::LayerId) {
        let mut net = Net::new("t", Shape4::new(32, 64, 56, 56));
        let d = net.data();
        let c = net.conv(d, 128, kernel, stride, kernel / 2);
        let f = net.fc(c, 10);
        net.softmax(f);
        (net, c)
    }

    #[test]
    fn zero_free_bytes_forces_implicit_gemm() {
        let (net, c) = conv_net(3, 1);
        let choice = select_algo(&net, c, 0);
        assert_eq!(choice.algo, ConvAlgo::ImplicitGemm);
        assert_eq!(choice.workspace, 0);
        assert_eq!(choice.speedup, 1.0);
    }

    #[test]
    fn unlimited_memory_picks_fastest_applicable() {
        let (net, c) = conv_net(5, 1);
        let choice = max_speed_algo(&net, c);
        assert_eq!(choice.algo, ConvAlgo::Fft, "5x5 stride 1 favours FFT");
        assert_eq!(choice.speedup, 3.0);

        let (net3, c3) = conv_net(3, 1);
        let choice3 = max_speed_algo(&net3, c3);
        assert_eq!(
            choice3.algo,
            ConvAlgo::Winograd,
            "3x3 stride 1 favours Winograd"
        );
    }

    #[test]
    fn strided_convs_cannot_use_transform_algorithms() {
        let (net, c) = conv_net(5, 2);
        let choice = max_speed_algo(&net, c);
        assert_eq!(choice.algo, ConvAlgo::Gemm);
    }

    #[test]
    fn more_memory_never_yields_a_slower_choice() {
        let (net, c) = conv_net(5, 1);
        let mut prev = 0.0;
        for free in [0u64, 1 << 20, 1 << 24, 1 << 28, 1 << 34] {
            let ch = select_algo(&net, c, free);
            assert!(ch.speedup >= prev, "speedup regressed at free={free}");
            assert!(ch.workspace <= free || ch.workspace == 0);
            prev = ch.speedup;
        }
    }

    #[test]
    fn workspace_sizes_scale_with_batch_and_fft_is_hungry() {
        let (net, c) = conv_net(5, 1);
        let in_s = net.in_shape(c);
        let out_s = net.layer(c).out_shape;
        let gemm = ConvAlgo::Gemm.workspace_bytes(in_s, out_s, 5);
        let fft = ConvAlgo::Fft.workspace_bytes(in_s, out_s, 5);
        assert!(gemm > 0 && fft > 0);
        // Both are hundreds of MB at this geometry; im2col GEMM's 25x
        // inflation for 5x5 kernels legitimately rivals the FFT spectra.
        assert!(
            fft > gemm / 2,
            "FFT must be the same order: {fft} vs {gemm}"
        );
        // Batch-proportional, as cuDNN workspaces are.
        let half = in_s.with_batch(in_s.n / 2);
        let gemm_half = ConvAlgo::Gemm.workspace_bytes(half, out_s.with_batch(out_s.n / 2), 5);
        assert!(gemm_half < gemm);
    }

    #[test]
    fn non_conv_layers_get_the_fallback() {
        let (net, _) = conv_net(3, 1);
        let fc = sn_graph::LayerId(2);
        let choice = select_algo(&net, fc, u64::MAX);
        assert_eq!(choice.algo, ConvAlgo::ImplicitGemm);
    }
}
