//! High-level session APIs: build a network, pick a device and a policy,
//! measure — [`Session`] for training iterations, [`InferenceSession`] for
//! forward-only serving. Used by the examples and the experiment harness.
//!
//! Also home of the admission predictors: [`predict_run`] measures a full
//! simulated iteration (the legacy, validation-grade path), while
//! [`plan_prediction`] only *compiles* a [`crate::MemoryPlan`] — no timeline,
//! no DMA events, no trace — and reads the exact peak off the plan. The two
//! agree on `peak_bytes` by construction; the cluster scheduler uses the
//! compile-only path on its admission hot path.

use sn_graph::Net;
use sn_sim::{DeviceSpec, SimTime};

use crate::executor::{finite_rate, ExecError, Executor, IterationReport};
use crate::plan;
use crate::policy::Policy;

/// A measured training session.
pub struct Session {
    pub net: Net,
    pub spec: DeviceSpec,
    pub policy: Policy,
    /// Warm-up iterations before measurement (allocator/cache warm state).
    pub warmup: usize,
    /// Measured iterations (averaged).
    pub iters: usize,
}

/// Aggregated results of a session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    pub net_name: String,
    pub batch: usize,
    pub iter_time: SimTime,
    pub imgs_per_sec: f64,
    pub peak_bytes: u64,
    pub h2d_bytes_per_iter: u64,
    pub d2h_bytes_per_iter: u64,
    pub recompute_forwards: u64,
    pub alloc_time: SimTime,
    pub alloc_calls: u64,
    pub stall: SimTime,
    /// Per-iteration compute-stream busy time (averaged).
    pub compute_busy: SimTime,
    /// Per-iteration DMA busy time (averaged).
    pub transfer_busy: SimTime,
    /// Per-iteration DMA time hidden under kernels (averaged).
    pub overlapped: SimTime,
    pub last: IterationReport,
}

impl SessionReport {
    /// Total PCIe traffic per iteration (Table 3's quantity).
    pub fn traffic_per_iter(&self) -> u64 {
        self.h2d_bytes_per_iter + self.d2h_bytes_per_iter
    }

    /// Fraction of transfer time hidden under compute across the measured
    /// iterations, in `[0, 1]` (zero when nothing moved).
    pub fn overlap_fraction(&self) -> f64 {
        sn_sim::OverlapStats {
            compute_busy: self.compute_busy,
            transfer_busy: self.transfer_busy,
            overlapped: self.overlapped,
        }
        .fraction()
    }
}

/// What a policy is predicted to cost on a device: the admission-control
/// quantities a cluster scheduler needs *before* committing device memory to
/// a job (peak bytes to reserve, steady-state iteration time, and the
/// gradient bytes a data-parallel gang exchanges per step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeakPrediction {
    /// High-water device bytes over a cold + a warm iteration — the number a
    /// reservation must cover so the job never exceeds its grant.
    pub peak_bytes: u64,
    /// Warm (steady-state) iteration time.
    pub iter_time: SimTime,
    /// Total weight-gradient bytes (the per-iteration all-reduce payload).
    pub weight_bytes: u64,
}

/// Predict what training `net` under `policy` costs on `spec` by *running*
/// the interpreter: one cold and one warm virtual iteration (no numeric
/// compute). The validation-grade path — [`plan_prediction`] returns the
/// same `peak_bytes` from a compile alone and is what admission control
/// should call. Errors mean the job cannot run within `spec.dram_bytes` at
/// all — the admission-control "reject" signal.
pub fn predict_run(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
) -> Result<PeakPrediction, ExecError> {
    let mut ex = Executor::new(net, spec.clone(), policy)?;
    let cold = ex.run_iteration()?;
    let warm = ex.run_iteration()?;
    Ok(PeakPrediction {
        peak_bytes: cold.peak_bytes.max(warm.peak_bytes),
        iter_time: warm.iter_time,
        weight_bytes: ex.cost.total_weight_bytes(),
    })
}

/// Just the predicted peak bytes — see [`predict_run`].
pub fn predict_peak_bytes(net: &Net, spec: &DeviceSpec, policy: Policy) -> Result<u64, ExecError> {
    predict_run(net, spec, policy).map(|p| p.peak_bytes)
}

/// The admission-control hot path: compile a training [`crate::MemoryPlan`]
/// and read the quantities off it — no simulated iteration, no timeline.
/// `peak_bytes` is **exact** (the interpreter replays the plan's alloc/free
/// sequence, so the executed high-water equals it to the byte); `iter_time`
/// is the plan's analytic busiest-engine estimate, a pacing hint rather
/// than a measurement.
///
/// Goes through the plan memo ([`plan::compile_memo`]): a repeated
/// prediction for the same `(net, policy, device)` triple is a hash lookup,
/// not a compile.
pub fn plan_prediction(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
) -> Result<PeakPrediction, ExecError> {
    let c = plan::compile_memo(net, spec, policy)?;
    Ok(PeakPrediction {
        peak_bytes: c.plan.peak_bytes,
        iter_time: c.plan.iter_time_estimate(),
        weight_bytes: c.plan.weight_bytes,
    })
}

/// [`plan_prediction`] for a forward-only inference plan: the peak a serving
/// replica reserves and the per-batch latency estimate. `weight_bytes` is
/// still the resident parameter footprint — inference exchanges no
/// gradients, so schedulers must not budget an all-reduce from it.
pub fn plan_prediction_inference(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
) -> Result<PeakPrediction, ExecError> {
    let c = plan::compile_inference_memo(net, spec, policy)?;
    Ok(PeakPrediction {
        peak_bytes: c.plan.peak_bytes,
        iter_time: c.plan.iter_time_estimate(),
        weight_bytes: c.plan.weight_bytes,
    })
}

impl Session {
    pub fn new(net: Net, spec: DeviceSpec, policy: Policy) -> Session {
        Session {
            net,
            spec,
            policy,
            warmup: 1,
            iters: 3,
        }
    }

    /// Predicted peak device bytes for this session's configuration — the
    /// reservation a multi-tenant scheduler must hold. See [`predict_run`].
    pub fn predicted_peak_bytes(&self) -> Result<u64, ExecError> {
        predict_peak_bytes(&self.net, &self.spec, self.policy)
    }

    /// Run the session and aggregate.
    pub fn run(&self) -> Result<SessionReport, ExecError> {
        let mut ex = Executor::new(&self.net, self.spec.clone(), self.policy)?;
        for _ in 0..self.warmup {
            ex.run_iteration()?;
        }
        let mut total_time = SimTime::ZERO;
        let mut peak = 0u64;
        let mut h2d = 0u64;
        let mut d2h = 0u64;
        let mut recomputes = 0u64;
        let mut alloc_time = SimTime::ZERO;
        let mut alloc_calls = 0u64;
        let mut stall = SimTime::ZERO;
        let mut compute_busy = SimTime::ZERO;
        let mut transfer_busy = SimTime::ZERO;
        let mut overlapped = SimTime::ZERO;
        let mut last = None;
        let iters = self.iters.max(1);
        for _ in 0..iters {
            let r = ex.run_iteration()?;
            total_time += r.iter_time;
            peak = peak.max(r.peak_bytes);
            h2d += r.h2d_bytes;
            d2h += r.d2h_bytes;
            recomputes += r.counters.recompute_forwards;
            alloc_time += r.alloc_time;
            alloc_calls += r.alloc_calls;
            stall += r.stall;
            compute_busy += r.compute_busy;
            transfer_busy += r.transfer_busy;
            overlapped += r.overlapped;
            last = Some(r);
        }
        let iter_time = SimTime::from_ns(total_time.as_ns() / iters as u64);
        let batch = self.net.batch();
        Ok(SessionReport {
            net_name: self.net.name.clone(),
            batch,
            iter_time,
            imgs_per_sec: finite_rate(batch, iter_time),
            peak_bytes: peak,
            h2d_bytes_per_iter: h2d / iters as u64,
            d2h_bytes_per_iter: d2h / iters as u64,
            recompute_forwards: recomputes / iters as u64,
            alloc_time: SimTime::from_ns(alloc_time.as_ns() / iters as u64),
            alloc_calls: alloc_calls / iters as u64,
            stall: SimTime::from_ns(stall.as_ns() / iters as u64),
            compute_busy: SimTime::from_ns(compute_busy.as_ns() / iters as u64),
            transfer_busy: SimTime::from_ns(transfer_busy.as_ns() / iters as u64),
            overlapped: SimTime::from_ns(overlapped.as_ns() / iters as u64),
            last: last.expect("iters >= 1"),
        })
    }
}

/// Does `net` train successfully on `spec` under `policy`? Answered by
/// *compiling* the memory plan alone: the planner performs every allocation
/// the iteration would, so compile success is execution success — and the
/// feasibility searches behind Tables 4/5 never touch a timeline. Memoized
/// ([`plan::compile_memo`]): re-asking about a triple is a hash lookup.
pub fn feasible(net: &Net, spec: &DeviceSpec, policy: Policy) -> bool {
    plan::compile_memo(net, spec, policy).is_ok()
}

/// Largest `x` in `[lo, hi]` such that `build(x)` trains on `spec` under
/// `policy`, by exponential probing + a parallel multi-section search.
/// Returns 0 when even `lo` fails.
///
/// With `k` worker threads each search round compiles `k` interior probe
/// points concurrently over the rayon shim and narrows the bracket to the
/// feasible/infeasible boundary they straddle; with one thread it is the
/// classic bisection. For the monotone feasibility curves these searches
/// walk (bigger batch ⇒ more memory) every variant converges to the same
/// knee — the parallelism buys wall-clock, not different answers.
pub fn max_feasible_param(
    build: &(dyn Fn(usize) -> Net + Sync),
    spec: &DeviceSpec,
    policy: Policy,
    lo: usize,
    hi: usize,
) -> usize {
    if !feasible(&build(lo), spec, policy) {
        return 0;
    }
    // Exponential growth from lo until failure or hi.
    let mut good = lo;
    let mut bad = None;
    let mut probe = (lo * 2).max(lo + 1);
    while probe <= hi {
        if feasible(&build(probe), spec, policy) {
            good = probe;
            probe *= 2;
        } else {
            bad = Some(probe);
            break;
        }
    }
    let mut high = match bad {
        Some(b) => b,
        None => {
            return good.min(hi).max(if feasible(&build(hi), spec, policy) {
                hi
            } else {
                good
            })
        }
    };
    // Multi-section search in (good, high): k evenly spaced interior cuts
    // per round, compiled concurrently. Every cut either raises `good` or
    // lowers `high`, so each round strictly narrows the bracket.
    let k = rayon::current_num_threads().clamp(1, 8);
    while high - good > 1 {
        let span = high - good;
        if k == 1 || span <= 2 {
            let mid = good + span / 2;
            if feasible(&build(mid), spec, policy) {
                good = mid;
            } else {
                high = mid;
            }
            continue;
        }
        let mut cuts: Vec<usize> = (1..=k)
            .map(|i| good + span * i / (k + 1))
            .filter(|&x| x > good && x < high)
            .collect();
        cuts.dedup();
        if cuts.is_empty() {
            cuts.push(good + span / 2);
        }
        let oks = rayon::par_map(&cuts, |x| feasible(&build(*x), spec, policy));
        for (x, ok) in cuts.iter().zip(oks) {
            if ok {
                good = good.max(*x);
            } else {
                high = high.min(*x);
            }
        }
        if high <= good {
            // Only reachable if feasibility is non-monotone inside the
            // bracket; `good` is a verified-feasible point, return it.
            break;
        }
    }
    good
}

/// A forward-only serving session: the same network, device, and policy
/// vocabulary as [`Session`], executed over an inference [`crate::MemoryPlan`]
/// — no backward half, no gradients, every activation freed at its last
/// forward reader. One "iteration" serves one batch.
pub struct InferenceSession {
    pub net: Net,
    pub spec: DeviceSpec,
    pub policy: Policy,
    /// Warm-up batches before measurement.
    pub warmup: usize,
    /// Measured batches (averaged).
    pub batches: usize,
}

/// Aggregated results of an inference session.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    pub net_name: String,
    pub batch: usize,
    /// Per-batch forward latency.
    pub batch_time: SimTime,
    pub imgs_per_sec: f64,
    pub peak_bytes: u64,
    pub last: IterationReport,
}

impl InferenceSession {
    pub fn new(net: Net, spec: DeviceSpec, policy: Policy) -> InferenceSession {
        InferenceSession {
            net,
            spec,
            policy,
            warmup: 1,
            batches: 3,
        }
    }

    /// The exact peak a serving replica of this session reserves —
    /// compile-only, see [`plan_prediction_inference`].
    pub fn predicted_peak_bytes(&self) -> Result<u64, ExecError> {
        plan_prediction_inference(&self.net, &self.spec, self.policy).map(|p| p.peak_bytes)
    }

    /// Serve `warmup + batches` batches and aggregate.
    pub fn run(&self) -> Result<InferenceReport, ExecError> {
        let mut ex = Executor::new_inference(&self.net, self.spec.clone(), self.policy)?;
        for _ in 0..self.warmup {
            ex.run_iteration()?;
        }
        let mut total = SimTime::ZERO;
        let mut peak = 0u64;
        let mut last = None;
        let batches = self.batches.max(1);
        for _ in 0..batches {
            let r = ex.run_iteration()?;
            total += r.iter_time;
            peak = peak.max(r.peak_bytes);
            last = Some(r);
        }
        let batch_time = SimTime::from_ns(total.as_ns() / batches as u64);
        let batch = self.net.batch();
        Ok(InferenceReport {
            net_name: self.net.name.clone(),
            batch,
            batch_time,
            imgs_per_sec: finite_rate(batch, batch_time),
            peak_bytes: peak,
            last: last.expect("batches >= 1"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_graph::Shape4;

    fn netb(batch: usize) -> Net {
        let mut net = Net::new("n", Shape4::new(batch, 3, 16, 16));
        let d = net.data();
        let c = net.conv(d, 8, 3, 1, 1);
        let a = net.relu(c);
        let f = net.fc(a, 10);
        net.softmax(f);
        net
    }

    #[test]
    fn session_reports_throughput() {
        let s = Session::new(netb(32), DeviceSpec::k40c(), Policy::superneurons());
        let r = s.run().unwrap();
        assert!(r.imgs_per_sec > 0.0);
        assert_eq!(r.batch, 32);
        assert!(r.peak_bytes > 0);
    }

    #[test]
    fn max_feasible_param_finds_the_knee() {
        // Tiny DRAM: find the max batch; then check batch+1 fails.
        let spec = DeviceSpec::k40c().with_dram(24 << 20);
        let best = max_feasible_param(&netb, &spec, Policy::liveness_only(), 1, 4096);
        assert!(best >= 1);
        assert!(feasible(&netb(best), &spec, Policy::liveness_only()));
        assert!(!feasible(&netb(best + 1), &spec, Policy::liveness_only()));
    }

    #[test]
    fn superneurons_beats_baseline_on_max_batch() {
        let spec = DeviceSpec::k40c().with_dram(24 << 20);
        let base = max_feasible_param(&netb, &spec, Policy::baseline(), 1, 4096);
        let sn = max_feasible_param(&netb, &spec, Policy::superneurons(), 1, 4096);
        assert!(sn > base, "superneurons {sn} must beat baseline {base}");
    }

    #[test]
    fn infeasible_lo_returns_zero() {
        let spec = DeviceSpec::k40c().with_dram(64 << 10);
        assert_eq!(
            max_feasible_param(&netb, &spec, Policy::baseline(), 1, 64),
            0
        );
    }

    #[test]
    fn predict_run_reports_the_admission_quantities() {
        let net = netb(32);
        let spec = DeviceSpec::k40c();
        let p = predict_run(&net, &spec, Policy::superneurons()).unwrap();
        assert!(p.peak_bytes > 0 && p.peak_bytes <= spec.dram_bytes);
        assert!(p.iter_time > SimTime::ZERO);
        assert!(p.weight_bytes > 0);
        // The convenience wrappers agree with the full prediction.
        assert_eq!(
            predict_peak_bytes(&net, &spec, Policy::superneurons()).unwrap(),
            p.peak_bytes
        );
        let s = Session::new(netb(32), spec, Policy::superneurons());
        assert_eq!(s.predicted_peak_bytes().unwrap(), p.peak_bytes);
    }

    #[test]
    fn predicted_peak_shrinks_with_policy_strength_under_pressure() {
        // Under a tight budget the adaptive stack must predict a smaller
        // peak than the keep-everything baseline does uncapped. Needs a deep
        // chain: offload/recompute can only trim what spans many layers.
        let deep = |batch: usize| {
            let mut net = Net::new("deep", sn_graph::Shape4::new(batch, 3, 32, 32));
            let mut prev = net.data();
            for _ in 0..8 {
                let c = net.conv(prev, 32, 3, 1, 1);
                prev = net.relu(c);
            }
            let f = net.fc(prev, 10);
            net.softmax(f);
            net
        };
        let spec = DeviceSpec::k40c();
        let base = predict_peak_bytes(&deep(32), &spec, Policy::baseline()).unwrap();
        let tight = spec.with_dram(base / 2);
        let sn = predict_peak_bytes(&deep(32), &tight, Policy::superneurons()).unwrap();
        assert!(sn < base, "superneurons {sn} must undercut baseline {base}");
        assert!(sn <= tight.dram_bytes, "prediction must respect the budget");
    }

    #[test]
    fn prediction_errors_signal_rejection() {
        let spec = DeviceSpec::k40c().with_dram(64 << 10);
        assert!(predict_peak_bytes(&netb(32), &spec, Policy::baseline()).is_err());
        assert!(plan_prediction(&netb(32), &spec, Policy::baseline()).is_err());
    }

    #[test]
    fn plan_prediction_peak_matches_the_simulated_one_exactly() {
        // The tentpole contract at the session level: the compile-only
        // predictor and the full simulated iteration agree on peak bytes,
        // byte for byte, across the preset ladder.
        let net = netb(32);
        let spec = DeviceSpec::k40c();
        for policy in [
            Policy::baseline(),
            Policy::liveness_only(),
            Policy::liveness_offload(),
            Policy::full_memory(),
            Policy::superneurons(),
        ] {
            let simulated = predict_run(&net, &spec, policy).unwrap();
            let planned = plan_prediction(&net, &spec, policy).unwrap();
            assert_eq!(planned.peak_bytes, simulated.peak_bytes);
            assert_eq!(planned.weight_bytes, simulated.weight_bytes);
            assert!(planned.iter_time > SimTime::ZERO);
        }
    }

    #[test]
    fn inference_session_serves_under_the_training_peak() {
        let net = netb(32);
        let spec = DeviceSpec::k40c();
        let train = Session::new(netb(32), spec.clone(), Policy::superneurons())
            .run()
            .unwrap();
        let inf = InferenceSession::new(net.clone(), spec.clone(), Policy::superneurons())
            .run()
            .unwrap();
        assert!(
            inf.imgs_per_sec > train.imgs_per_sec,
            "forward-only is faster"
        );
        assert!(inf.peak_bytes < train.peak_bytes, "forward-only is smaller");
        assert!(inf.imgs_per_sec.is_finite());
        // The session's predicted peak is the measured one, exactly.
        let s = InferenceSession::new(net, spec, Policy::superneurons());
        assert_eq!(s.predicted_peak_bytes().unwrap(), inf.peak_bytes);
    }
}
