//! The **reference planner**: the pre-optimization compiler walk, kept
//! verbatim.
//!
//! This is the planner exactly as it shipped before the indexed-allocator /
//! O(1)-cache / flat-op-stream work: per-step `Vec` clones of the liveness
//! lists, a layer-name `String` clone per ladder allocation, a fresh `Vec`
//! from every `reapable` drain, a `HashMap`-keyed recompute-free schedule —
//! driving the linear-scan [`sn_mempool::LinearPool`] and the `Vec`-backed
//! Tensor Cache list ([`crate::utp::reference::VecCache`]). Nothing is
//! cached or shared; every compile pays the full graph analyses.
//!
//! Two jobs:
//!
//! * the `reference_compile_is_byte_identical` test and the `compile` bench
//!   assert the optimized planner produces **byte-identical plans** (same
//!   peaks, same op stream, same counters) — the perf pass may change time,
//!   never bytes;
//! * the `compile` bench experiment's baseline row times this path, so
//!   `BENCH_compile.json`'s speedup compares against the real pre-change
//!   cost on the same hardware, not a remembered number.
//!
//! Deliberately not exported from the crate root; reach it through
//! [`crate::plan::compile_reference`].

use std::collections::HashMap;

use sn_graph::liveness::{LivenessPlan, TensorId, TensorRole};
use sn_graph::{LayerId, Net, NetCost, Route, StepPhase};
use sn_sim::{AllocGrant, DeviceAllocator, DeviceSpec, SimTime};

use crate::convalgo::{self, AlgoChoice};
use crate::device::Device;
use crate::executor::{Counters, ExecError};
use crate::plan::{MemoryPlan, OpRange, PlanOp, StepPlan, TensorLifetime, WorkspacePlan};
use crate::policy::{Policy, WorkspacePolicy};
use crate::recompute::{RecomputePlan, SegmentStrategy};
use crate::tiers::Tier;
use crate::utp::{Residence, Utp};

/// A step as the old planner built it: per-step op vectors.
struct RefStep {
    layer: LayerId,
    phase: StepPhase,
    duration: SimTime,
    pre: Vec<PlanOp>,
    post: Vec<PlanOp>,
    workspace: Option<WorkspacePlan>,
}

/// Run the reference walk and return the plan in the current (flat-stream)
/// representation. The flattening happens once at the end and is counted in
/// the baseline's time — it is negligible against the walk itself.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_reference(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
    route: &Route,
    cost: &NetCost,
    liveness: &LivenessPlan,
    rplan: &RecomputePlan,
) -> Result<MemoryPlan, ExecError> {
    let inference = !route.has_backward();
    let planner = Planner {
        net,
        spec,
        route,
        cost,
        liveness,
        rplan,
        policy,
        inference,
        dev: Device::new(
            spec.clone(),
            crate::policy::AllocatorKind::LinearPool,
            policy.tiers,
        ),
        utp: Utp::new_reference(liveness.tensors.len()),
        counters: Counters::default(),
        recomputed_free_at: HashMap::new(),
        ops: Vec::new(),
        peak_step: 0,
        peak_seen: 0,
        cur_step: 0,
        compute_ns: 0,
        h2d_ns: 0,
        d2h_ns: 0,
        offloaded: vec![false; liveness.tensors.len()],
        recomputes: vec![0; net.len()],
    };
    planner.run()
}

/// The pre-optimization compiler (see module docs; do not "fix" its
/// inefficiencies — being slow the old way is its purpose).
struct Planner<'a> {
    net: &'a Net,
    spec: &'a DeviceSpec,
    route: &'a Route,
    cost: &'a NetCost,
    liveness: &'a LivenessPlan,
    rplan: &'a RecomputePlan,
    policy: Policy,
    inference: bool,
    dev: Device,
    utp: Utp,
    counters: Counters,
    /// Recomputed tensors to drop at the end of a given step.
    recomputed_free_at: HashMap<usize, Vec<TensorId>>,
    /// Op accumulator for the current pre/post section.
    ops: Vec<PlanOp>,
    peak_step: usize,
    peak_seen: u64,
    cur_step: usize,
    compute_ns: u64,
    h2d_ns: u64,
    d2h_ns: u64,
    offloaded: Vec<bool>,
    recomputes: Vec<u32>,
}

impl<'a> Planner<'a> {
    fn meta(&self, t: TensorId) -> &sn_graph::TensorMeta {
        &self.liveness.tensors[t.0]
    }

    fn tier_gbps(&self, t: TensorId) -> f64 {
        let tier = self.utp.tier_of(t);
        match tier {
            Tier::LocalHost if !self.policy.pinned_host => tier.gbps() * self.spec.unpinned_factor,
            _ => tier.gbps(),
        }
    }

    fn transfer_ns(&self, t: TensorId) -> u64 {
        sn_sim::time::transfer_time(self.meta(t).bytes, self.tier_gbps(t)).as_ns()
    }

    fn charged_alloc(&mut self, bytes: u64) -> Result<AllocGrant, sn_sim::AllocError> {
        let g = self.dev.alloc_charged(bytes)?;
        let used = self.dev.alloc.used();
        if used > self.peak_seen {
            self.peak_seen = used;
            self.peak_step = self.cur_step;
        }
        Ok(g)
    }

    fn release_device(&mut self, t: TensorId) {
        self.ops.push(PlanOp::ReleaseDevice(t));
        self.utp.release_device(t, &mut self.dev);
    }

    fn drop_device_copy(&mut self, t: TensorId) {
        let st = self.utp.state(t);
        if st.lock > 0 || st.offloading || st.residence != Residence::Device {
            return;
        }
        self.release_device(t);
    }

    fn drain_reapable(&mut self, step: usize) {
        // The old per-call `Vec` allocation, preserved.
        for t in self.utp.reapable(self.liveness, step) {
            self.counters.reaps += 1;
            self.release_device(t);
        }
    }

    fn reclaim_some(&mut self, step: usize) -> Result<bool, ExecError> {
        if let Some(t) = self.utp.first_reapable(self.liveness, step) {
            self.counters.reaps += 1;
            self.release_device(t);
            return Ok(true);
        }
        if self.policy.tensor_cache {
            return self.evict_one(step);
        }
        Ok(false)
    }

    fn evict_one(&mut self, step: usize) -> Result<bool, ExecError> {
        let Some(victim) = self.utp.pick_victim(self.policy.cache_policy) else {
            return Ok(false);
        };
        let meta = self.meta(victim);
        let needed_later =
            meta.last_use_step >= step || meta.bwd_last_use.is_some_and(|b| b >= step);
        let bytes = meta.bytes;
        let st = self.utp.state(victim);
        debug_assert_eq!(st.residence, Residence::Device);
        if needed_later && !st.host_valid {
            if !self.utp.ensure_host_slot(victim, bytes, &mut self.dev) {
                return Err(ExecError::HostExhausted { requested: bytes });
            }
            self.d2h_ns += self.transfer_ns(victim);
            self.utp.mark_offloading(victim, true, None);
            self.utp.lru_remove(victim);
            self.ops.push(PlanOp::Offload {
                t: victim,
                evict: true,
            });
            self.offloaded[victim.0] = true;
            self.counters.offloads += 1;
        } else {
            self.release_device(victim);
        }
        self.counters.evictions += 1;
        Ok(true)
    }

    fn ladder_alloc(
        &mut self,
        bytes: u64,
        step: usize,
        what: &str,
    ) -> Result<AllocGrant, ExecError> {
        loop {
            match self.charged_alloc(bytes) {
                Ok(g) => {
                    self.counters.alloc_grants += 1;
                    return Ok(g);
                }
                Err(_) => {
                    self.counters.ladder_rungs += 1;
                    if self.reclaim_some(step)? {
                        continue;
                    }
                    return Err(ExecError::Oom {
                        step,
                        layer: what.into(),
                        requested: bytes,
                        capacity: self.dev.alloc.capacity(),
                    });
                }
            }
        }
    }

    fn ensure_present(&mut self, t: TensorId, step: usize) -> Result<(), ExecError> {
        match self.utp.state(t).residence {
            Residence::Device => {
                self.counters.cache_hits += 1;
                self.utp.lru_touch(t);
                Ok(())
            }
            Residence::Host => {
                self.counters.cache_misses += 1;
                let bytes = self.meta(t).bytes;
                // The old per-allocation layer-name String clone, preserved.
                let name = self.net.layer(self.meta(t).layer).name.clone();
                let g = self.ladder_alloc(bytes, step, &name)?;
                self.utp.mark_device(t, g.id, self.policy.tensor_cache);
                self.h2d_ns += self.transfer_ns(t);
                self.ops.push(PlanOp::Fetch(t));
                self.counters.prefetches += 1;
                Ok(())
            }
            Residence::None => {
                let meta = self.meta(t);
                assert_eq!(
                    meta.role,
                    TensorRole::FwdOut,
                    "tensor {:?} of {} absent at step {step}",
                    meta.role,
                    self.net.layer(meta.layer).name
                );
                let layer = meta.layer;
                self.recompute_for(layer, step)?;
                debug_assert_eq!(self.utp.state(t).residence, Residence::Device);
                Ok(())
            }
        }
    }

    fn recompute_for(&mut self, layer: LayerId, step: usize) -> Result<(), ExecError> {
        let si = self.rplan.segment_of[layer.0]
            .unwrap_or_else(|| panic!("{} is not recomputable", self.net.layer(layer).name));
        let (strategy, anchor) = {
            let seg = &self.rplan.segments[si];
            (seg.strategy, seg.anchor)
        };

        let anchor_t = self.liveness.fwd_out[anchor.0];
        self.ensure_present(anchor_t, step)?;
        self.utp.states[anchor_t.0].lock += 1;

        // The old per-replay member-list clone, preserved.
        let members: Vec<LayerId> = match strategy {
            SegmentStrategy::SpeedCentric => self.rplan.segments[si].members.clone(),
            SegmentStrategy::MemoryCentric => self.rplan.chain_to(self.net, layer),
        };
        let target = *members.last().unwrap_or(&layer);
        let mut prev_link: Option<TensorId> = None;

        for m in members {
            let mt = self.liveness.fwd_out[m.0];
            match self.utp.state(mt).residence {
                Residence::Device => continue,
                Residence::Host => {
                    self.ensure_present(mt, step)?;
                    continue;
                }
                Residence::None => {}
            }
            let bytes = self.meta(mt).bytes;
            let name = self.net.layer(m).name.clone();
            let g = self.ladder_alloc(bytes, step, &name)?;
            self.utp.mark_device(mt, g.id, self.policy.tensor_cache);
            self.ops.push(PlanOp::Alloc(mt));
            self.ops.push(PlanOp::Recompute(m));
            let lk = &self.net.layer(m).kind;
            self.compute_ns += self.cost.layer(m).fwd_time(lk, self.spec, 1.0).as_ns();
            self.counters.recompute_forwards += 1;
            self.recomputes[m.0] += 1;

            match strategy {
                SegmentStrategy::SpeedCentric => {
                    let free_at = self.meta(mt).bwd_last_use.unwrap_or(step).max(step);
                    self.recomputed_free_at.entry(free_at).or_default().push(mt);
                }
                SegmentStrategy::MemoryCentric => {
                    if let Some(prev) = prev_link.take() {
                        self.drop_device_copy(prev);
                    }
                    if m == target {
                        self.recomputed_free_at.entry(step).or_default().push(mt);
                    } else {
                        prev_link = Some(mt);
                    }
                }
            }
        }

        self.utp.states[anchor_t.0].lock -= 1;
        Ok(())
    }

    fn prefetch_ahead(&mut self, step: usize) {
        let total = self.route.total_steps();
        let depth = self.policy.prefetch_depth as usize;
        let mut seen_ckpt = false;
        for s in (step + 1)..total.min(step + 1 + depth) {
            // The old per-step input-list clone, preserved.
            let inputs: Vec<TensorId> = self.liveness.step_inputs[s].to_vec();
            for t in inputs {
                if self.utp.state(t).residence != Residence::Host {
                    continue;
                }
                let bytes = self.meta(t).bytes;
                let Ok(g) = self.charged_alloc(bytes) else {
                    return;
                };
                self.utp.mark_device(t, g.id, self.policy.tensor_cache);
                self.h2d_ns += self.transfer_ns(t);
                self.ops.push(PlanOp::Fetch(t));
                self.counters.prefetches += 1;
            }
            let l = self.route.step(s).layer;
            if self.route.step(s).phase == StepPhase::Backward
                && self.net.layer(l).kind.is_offload_candidate()
            {
                if seen_ckpt {
                    break;
                }
                seen_ckpt = true;
            }
        }
    }

    fn plan_step(&mut self, s: usize) -> Result<RefStep, ExecError> {
        self.cur_step = s;
        let step = self.route.step(s);
        let layer_id = step.layer;
        let kind = self.net.layer(layer_id).kind.clone();
        let lcost = *self.cost.layer(layer_id);

        debug_assert!(self.ops.is_empty());

        self.drain_reapable(s);

        // 1. Stage inputs (may fetch, may plan a recomputation replay).
        let inputs: Vec<TensorId> = self.liveness.step_inputs[s].to_vec();
        for t in &inputs {
            self.ensure_present(*t, s)?;
            self.utp.states[t.0].lock += 1;
        }

        // 2. Materialize this step's outputs.
        let created: Vec<TensorId> = self.liveness.created_at[s].to_vec();
        for t in &created {
            if self.utp.state(*t).residence == Residence::None {
                let bytes = self.meta(*t).bytes;
                let name = self.net.layer(self.meta(*t).layer).name.clone();
                let g = self.ladder_alloc(bytes, s, &name)?;
                self.utp.mark_device(*t, g.id, self.policy.tensor_cache);
                self.ops.push(PlanOp::Alloc(*t));
            }
            self.utp.states[t.0].lock += 1;
        }

        // 3. Transients: conv workspace + weight-gradient/mask buffer.
        let mut choice = AlgoChoice::fallback();
        let mut workspace = None;
        let mut ws_grant = None;
        if matches!(kind, sn_graph::LayerKind::Conv { .. }) {
            let budget = match self.policy.workspace {
                WorkspacePolicy::None => None,
                WorkspacePolicy::Dynamic => Some(
                    self.dev
                        .alloc
                        .free_bytes()
                        .min(self.dev.alloc.largest_free_contiguous()),
                ),
                WorkspacePolicy::Capped(cap) => Some(
                    self.dev
                        .alloc
                        .free_bytes()
                        .min(self.dev.alloc.largest_free_contiguous())
                        .min(cap),
                ),
            };
            if let Some(free) = budget {
                choice = convalgo::select_algo(self.net, layer_id, free);
            }
            if choice.workspace > 0 {
                ws_grant = Some(self.ladder_alloc(choice.workspace, s, "conv workspace")?);
                self.ops.push(PlanOp::AllocWorkspace(choice.workspace));
            }
            let max_choice = convalgo::max_speed_algo(self.net, layer_id);
            workspace = Some(WorkspacePlan {
                bytes: choice.workspace,
                max_speed_bytes: max_choice.workspace,
                algo: choice.algo.name(),
                speedup: choice.speedup,
            });
        }
        let transient_bytes = if step.phase == StepPhase::Backward {
            lcost.wgrad_bytes
        } else {
            lcost.fwd_workspace
        };
        let tr_grant = if transient_bytes > 0 {
            let g = self.ladder_alloc(transient_bytes, s, "transient buffer")?;
            self.ops.push(PlanOp::AllocTransient(transient_bytes));
            Some(g)
        } else {
            None
        };

        // 4. The kernel itself.
        let duration = match step.phase {
            StepPhase::Forward => lcost.fwd_time(&kind, self.spec, choice.speedup),
            StepPhase::Backward => lcost.bwd_time(&kind, self.spec, choice.speedup),
        };
        self.compute_ns += duration.as_ns();
        let pre = std::mem::take(&mut self.ops);

        // 5. Release transients.
        if ws_grant.is_some() || tr_grant.is_some() {
            self.ops.push(PlanOp::FreeTransients);
            if let Some(g) = ws_grant {
                self.dev.free_charged(g.id);
            }
            if let Some(g) = tr_grant {
                self.dev.free_charged(g.id);
            }
        }

        // 6. Unlock.
        for t in inputs.iter().chain(created.iter()) {
            let st = &mut self.utp.states[t.0];
            st.lock = st.lock.saturating_sub(1);
        }

        // 7. Eager offload of checkpoint outputs (Fig. 10b policy).
        if !self.inference
            && step.phase == StepPhase::Forward
            && self.policy.offload
            && self.policy.eager_offload
        {
            let t = self.liveness.fwd_out[layer_id.0];
            let meta = self.meta(t);
            let (offloadable, bytes) = (meta.offloadable, meta.bytes);
            let st = self.utp.state(t);
            if offloadable && bytes > 0 && !st.host_valid && !st.offloading {
                if !self.utp.ensure_host_slot(t, bytes, &mut self.dev) {
                    return Err(ExecError::HostExhausted { requested: bytes });
                }
                self.d2h_ns += self.transfer_ns(t);
                self.utp.mark_offloading(t, false, None);
                self.ops.push(PlanOp::Offload { t, evict: false });
                self.offloaded[t.0] = true;
                self.counters.offloads += 1;
            }
        }

        // 8. Overlapped prefetch for upcoming backward consumers.
        if step.phase == StepPhase::Backward && self.policy.offload && self.policy.prefetch {
            self.prefetch_ahead(s);
        }

        // 9. Liveness frees.
        let freed: Vec<TensorId> = self.liveness.freed_after[s].to_vec();
        for t in freed {
            let st = self.utp.state(t);
            if st.residence != Residence::None || st.host_slot.is_some() {
                self.ops.push(PlanOp::Free(t));
                self.utp.free_tensor(t, &mut self.dev);
            }
        }
        if let Some(list) = self.recomputed_free_at.remove(&s) {
            for t in list {
                self.drop_device_copy(t);
            }
        }
        let post = std::mem::take(&mut self.ops);

        Ok(RefStep {
            layer: layer_id,
            phase: step.phase,
            duration,
            pre,
            post,
            workspace,
        })
    }

    fn run(mut self) -> Result<MemoryPlan, ExecError> {
        let weight_bytes = self.cost.total_weight_bytes();
        if weight_bytes > 0 && self.charged_alloc(weight_bytes).is_err() {
            return Err(ExecError::Oom {
                step: 0,
                layer: "WEIGHTS".into(),
                requested: weight_bytes,
                capacity: self.dev.alloc.capacity(),
            });
        }

        let total = self.route.total_steps();
        let mut ref_steps = Vec::with_capacity(total);
        for s in 0..total {
            ref_steps.push(self.plan_step(s)?);
        }
        self.cur_step = total;
        self.drain_reapable(total);
        let final_ops = std::mem::take(&mut self.ops);

        let lifetimes: Vec<TensorLifetime> = self
            .liveness
            .tensors
            .iter()
            .map(|m| TensorLifetime {
                tensor: m.id,
                layer: m.layer,
                role: m.role,
                bytes: m.bytes,
                created_step: m.created_step,
                freed_after: m.last_use_step,
                offloaded: self.offloaded[m.id.0],
                recomputes: match m.role {
                    TensorRole::FwdOut => self.recomputes[m.layer.0],
                    TensorRole::Grad => 0,
                },
            })
            .collect();

        // Flatten the per-step op vectors into the current representation.
        let mut ops = Vec::new();
        let append = |ops: &mut Vec<PlanOp>, section: Vec<PlanOp>| {
            let start = ops.len() as u32;
            ops.extend(section);
            OpRange {
                start,
                end: ops.len() as u32,
            }
        };
        let steps: Vec<StepPlan> = ref_steps
            .into_iter()
            .map(|rs| {
                let pre = append(&mut ops, rs.pre);
                let post = append(&mut ops, rs.post);
                StepPlan {
                    layer: rs.layer,
                    phase: rs.phase,
                    duration: rs.duration,
                    pre,
                    post,
                    workspace: rs.workspace,
                }
            })
            .collect();
        let final_range = append(&mut ops, final_ops);

        let peak_bytes = self.dev.alloc.high_water();
        debug_assert_eq!(peak_bytes, self.peak_seen);
        Ok(MemoryPlan {
            steps,
            ops,
            final_range,
            peak_bytes,
            peak_step: self.peak_step,
            weight_bytes,
            predicted: self.counters,
            lifetimes,
            inference: self.inference,
            compute_ns: self.compute_ns,
            alloc_ns: self.dev.alloc_time.as_ns(),
            h2d_ns: self.h2d_ns,
            d2h_ns: self.d2h_ns,
            serialized: self.policy.sync_transfers,
        })
    }
}
