//! The executor: an *interpreter* over a compiled [`MemoryPlan`].
//!
//! All scheduling decisions — liveness frees, Unified Tensor Pool
//! offload/prefetch points, Alg. 2 cache evictions, §3.4 recomputation
//! replays, §3.5 workspace choices — are made ahead of time by the planner
//! ([`crate::plan`]) and recorded as an explicit per-step op stream. This
//! module replays that stream over the [`Utp`] residency manager and the
//! multi-stream sim engine: it performs the planned allocations and frees in
//! exactly the planned order (waiting out an in-flight copy-out before
//! reusing its bytes), submits kernels gated on every input's in-flight
//! prefetch, and drives the optional numeric backend.
//!
//! Because the interpreter performs the identical alloc/free sequence
//! through an identical allocator, the measured peak equals
//! [`MemoryPlan::peak_bytes`] **exactly** — the invariant cluster admission
//! relies on, asserted per-iteration in debug builds and across the whole
//! preset × model matrix by the `plan` bench experiment. Overlap changes
//! *when* transfers run, never what is resident.
//!
//! The same interpreter drives both execution modes: *virtual* (durations
//! from the cost model; used by every paper-scale experiment) and *numeric*
//! (an attached [`ComputeBackend`] really computes tensors; used to validate
//! that planned schedules — including recomputation — preserve exact
//! training semantics).

use std::sync::Arc;

use sn_graph::liveness::{LivenessPlan, TensorId, TensorRole};
use sn_graph::{LayerId, Net, NetCost, Route, StepPhase};
use sn_sim::trace::Phase;
use sn_sim::{
    DeviceAllocator, DeviceSpec, Dma, Event, OverlapStats, SimTime, SpanLabel, StepRecord,
    StepTrace, StreamId, TraceSink,
};
use sn_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::device::Device;
use crate::plan::{self, CompiledPlan, MemoryPlan, PlanOp};
use crate::policy::Policy;
use crate::recompute::RecomputePlan;
use crate::tiers::Tier;
use crate::utp::Utp;

/// Hook for numeric execution: the executor tells the backend *when* to
/// compute and *which* values ceased to exist; the backend owns the values.
pub trait ComputeBackend {
    fn begin_iteration(&mut self, iter: u64);
    /// Execute (or re-execute, during recomputation) a layer's forward.
    fn forward(&mut self, layer: LayerId);
    /// Execute a layer's backward (accumulate input grads, update weights).
    fn backward(&mut self, layer: LayerId);
    /// The layer's forward output is gone from device *and* host.
    fn drop_output(&mut self, layer: LayerId);
    /// The gradient of the layer's output is gone.
    fn drop_grad(&mut self, layer: LayerId);
    /// Loss of the last executed iteration, if the network has a loss layer.
    fn loss(&self) -> Option<f32> {
        None
    }
}

/// Execution failure.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// Device memory exhausted (after all reclamation the policy allows).
    Oom {
        step: usize,
        layer: String,
        requested: u64,
        capacity: u64,
    },
    /// Pinned host pool exhausted.
    HostExhausted { requested: u64 },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Oom {
                step,
                layer,
                requested,
                capacity,
            } => write!(
                f,
                "device OOM at step {step} ({layer}): need {requested} of {capacity} bytes"
            ),
            ExecError::HostExhausted { requested } => {
                write!(f, "pinned host pool exhausted ({requested} bytes)")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Per-iteration accounting.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct Counters {
    /// Extra layer-forward executions performed by recomputation (Table 1).
    pub recompute_forwards: u64,
    pub offloads: u64,
    pub prefetches: u64,
    pub evictions: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Device allocations granted through the reclamation ladder.
    pub alloc_grants: u64,
    /// Ladder rungs climbed: reclamation attempts (reap or evict) made
    /// because an allocation did not fit on the first try — the "ladder
    /// depth" of the run.
    pub ladder_rungs: u64,
    /// Completed offloads whose device bytes were released because every
    /// consumer had run (step-boundary drains plus in-ladder reaps).
    pub reaps: u64,
}

impl Counters {
    /// Stable JSON object for bench artifacts (the workspace's serde shim
    /// derives are inert, so serialization is hand-rolled).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"recompute_forwards\":{},\"offloads\":{},\"prefetches\":{},\
             \"evictions\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"alloc_grants\":{},\"ladder_rungs\":{},\"reaps\":{}}}",
            self.recompute_forwards,
            self.offloads,
            self.prefetches,
            self.evictions,
            self.cache_hits,
            self.cache_misses,
            self.alloc_grants,
            self.ladder_rungs,
            self.reaps
        )
    }
}

/// Result of one measured iteration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct IterationReport {
    pub iter_time: SimTime,
    /// Peak device bytes (allocator high-water) during the iteration.
    pub peak_bytes: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    /// Bytes this replica moved over its inter-GPU link (collective wire
    /// traffic); zero for single-device runs, accounted separately from
    /// PCIe so Table 3 numbers are unperturbed.
    pub link_bytes: u64,
    /// Busy time of the link stream(s) during the iteration.
    pub link_busy: SimTime,
    pub counters: Counters,
    /// Host-side allocator latency accumulated during the iteration.
    pub alloc_time: SimTime,
    pub alloc_calls: u64,
    /// Host stall time waiting on events.
    pub stall: SimTime,
    /// Busy time of the compute stream(s) during the iteration.
    pub compute_busy: SimTime,
    /// Busy time of the DMA streams (H2D + D2H) during the iteration.
    pub transfer_busy: SimTime,
    /// DMA time hidden under kernels, from the per-stream busy timelines.
    pub overlapped: SimTime,
    pub loss: Option<f32>,
}

/// `batch / seconds`, guarded so zero-duration measurements report zero
/// throughput instead of `inf`/NaN — zero-cost stub layers can produce such
/// iterations, and bench JSON must stay finite. The single implementation of
/// that invariant for every report type.
pub(crate) fn finite_rate(batch: usize, time: SimTime) -> f64 {
    if time == SimTime::ZERO {
        return 0.0;
    }
    batch as f64 / time.as_secs_f64()
}

impl IterationReport {
    /// Throughput in images per second for a given batch size. Zero (not
    /// `inf`/NaN) when the iteration took no virtual time — see
    /// `finite_rate`.
    pub fn imgs_per_sec(&self, batch: usize) -> f64 {
        finite_rate(batch, self.iter_time)
    }

    /// Fraction of transfer time hidden under compute, in `[0, 1]` (zero
    /// when the iteration moved no bytes).
    pub fn overlap_fraction(&self) -> f64 {
        OverlapStats {
            compute_busy: self.compute_busy,
            transfer_busy: self.transfer_busy,
            overlapped: self.overlapped,
        }
        .fraction()
    }

    /// Stable JSON object for bench artifacts (times in integer ns).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"iter_time_ns\":{},\"peak_bytes\":{},\"h2d_bytes\":{},\
             \"d2h_bytes\":{},\"link_bytes\":{},\"link_busy_ns\":{},\
             \"alloc_time_ns\":{},\"alloc_calls\":{},\"stall_ns\":{},\
             \"compute_busy_ns\":{},\"transfer_busy_ns\":{},\"overlapped_ns\":{},\
             \"counters\":{}}}",
            self.iter_time.as_ns(),
            self.peak_bytes,
            self.h2d_bytes,
            self.d2h_bytes,
            self.link_bytes,
            self.link_busy.as_ns(),
            self.alloc_time.as_ns(),
            self.alloc_calls,
            self.stall.as_ns(),
            self.compute_busy.as_ns(),
            self.transfer_busy.as_ns(),
            self.overlapped.as_ns(),
            self.counters.to_json()
        )
    }
}

/// Pre-resolved handles into a [`MetricsRegistry`] (see
/// [`Executor::enable_metrics`]): per-iteration flushing is a handful of
/// relaxed atomic adds, with name lookups paid once.
struct ExecMetrics {
    iterations: Counter,
    recompute_forwards: Counter,
    offloads: Counter,
    prefetches: Counter,
    evictions: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    alloc_grants: Counter,
    ladder_rungs: Counter,
    reaps: Counter,
    h2d_bytes: Counter,
    d2h_bytes: Counter,
    link_bytes: Counter,
    stall_ns: Counter,
    prefetch_stall_ns: Counter,
    iter_time_ns: Histogram,
    peak_bytes: Gauge,
    cache_resident: Gauge,
}

impl ExecMetrics {
    fn new(reg: &MetricsRegistry) -> ExecMetrics {
        ExecMetrics {
            iterations: reg.counter("exec.iterations"),
            recompute_forwards: reg.counter("exec.recompute_forwards"),
            offloads: reg.counter("exec.offloads"),
            prefetches: reg.counter("exec.prefetches"),
            evictions: reg.counter("exec.evictions"),
            cache_hits: reg.counter("exec.cache.hits"),
            cache_misses: reg.counter("exec.cache.misses"),
            alloc_grants: reg.counter("exec.alloc.grants"),
            ladder_rungs: reg.counter("exec.alloc.ladder_rungs"),
            reaps: reg.counter("exec.alloc.reaps"),
            h2d_bytes: reg.counter("exec.h2d_bytes"),
            d2h_bytes: reg.counter("exec.d2h_bytes"),
            link_bytes: reg.counter("exec.link_bytes"),
            stall_ns: reg.counter("exec.stall_ns"),
            prefetch_stall_ns: reg.counter("exec.prefetch_stall_ns"),
            iter_time_ns: reg.histogram("exec.iter_time_ns"),
            peak_bytes: reg.gauge("exec.peak_bytes"),
            cache_resident: reg.gauge("exec.cache.resident"),
        }
    }

    fn flush(&self, report: &IterationReport, prefetch_stall: SimTime) {
        self.iterations.inc();
        let c = &report.counters;
        self.recompute_forwards.add(c.recompute_forwards);
        self.offloads.add(c.offloads);
        self.prefetches.add(c.prefetches);
        self.evictions.add(c.evictions);
        self.cache_hits.add(c.cache_hits);
        self.cache_misses.add(c.cache_misses);
        self.alloc_grants.add(c.alloc_grants);
        self.ladder_rungs.add(c.ladder_rungs);
        self.reaps.add(c.reaps);
        self.h2d_bytes.add(report.h2d_bytes);
        self.d2h_bytes.add(report.d2h_bytes);
        self.link_bytes.add(report.link_bytes);
        self.stall_ns.add(report.stall.as_ns());
        self.prefetch_stall_ns.add(prefetch_stall.as_ns());
        self.iter_time_ns.record(report.iter_time.as_ns());
        self.peak_bytes.set(report.peak_bytes as i64);
    }
}

/// A Fig. 12 record: workspace assigned vs. the max-speed want, per CONV
/// step.
#[derive(Debug, Clone)]
pub struct WorkspaceRecord {
    pub layer: LayerId,
    pub name: String,
    pub phase: Phase,
    pub assigned_bytes: u64,
    pub max_speed_bytes: u64,
    pub algo: &'static str,
    pub speedup: f64,
}

/// The executor. Owns the device and the compiled plan; borrows the network.
/// The graph analyses are `Arc`-shared with the planner's caches — they are
/// read-only here.
pub struct Executor<'n> {
    pub net: &'n Net,
    pub route: std::sync::Arc<Route>,
    pub cost: std::sync::Arc<NetCost>,
    pub plan: std::sync::Arc<LivenessPlan>,
    pub rplan: std::sync::Arc<RecomputePlan>,
    /// The compiled schedule this executor interprets — `Arc`-shared with
    /// the plan memo and with the sibling replicas of a device group.
    pub mplan: std::sync::Arc<MemoryPlan>,
    pub policy: Policy,
    pub dev: Device,
    utp: Utp,
    /// Held for the executor's lifetime: the permanently resident weights.
    _weights_grant: Option<sn_sim::AllocId>,
    /// The current step's transient grants (workspace, weight gradient).
    ws_grant: Option<sn_sim::AllocId>,
    tr_grant: Option<sn_sim::AllocId>,
    pub trace: StepTrace,
    pub ws_records: Vec<WorkspaceRecord>,
    pub counters: Counters,
    backend: Option<Box<dyn ComputeBackend>>,
    iter: u64,
    /// Virtual time / allocator counters at [`Executor::begin_iteration`],
    /// differenced by [`Executor::finish_iteration`].
    iter_t_start: SimTime,
    iter_alloc_time0: SimTime,
    iter_alloc_calls0: u64,
    /// Interned layer names, indexed by `LayerId` — step records and span
    /// labels share these instead of cloning a `String` per step.
    names: Vec<Arc<str>>,
    /// Metric handles, present only after [`Executor::enable_metrics`].
    metrics: Option<ExecMetrics>,
    /// Time kernels spent waiting on in-flight prefetches this iteration
    /// (accumulated only while metrics are enabled).
    prefetch_stall: SimTime,
}

impl<'n> Executor<'n> {
    /// Compile a training plan and build its interpreter; allocates the
    /// (permanently resident) weights.
    pub fn new(net: &'n Net, spec: DeviceSpec, policy: Policy) -> Result<Executor<'n>, ExecError> {
        let compiled = plan::compile(net, &spec, policy)?;
        Executor::from_compiled(net, spec, policy, compiled)
    }

    /// Compile a forward-only inference plan and build its interpreter.
    pub fn new_inference(
        net: &'n Net,
        spec: DeviceSpec,
        policy: Policy,
    ) -> Result<Executor<'n>, ExecError> {
        let compiled = plan::compile_inference(net, &spec, policy)?;
        Executor::from_compiled(net, spec, policy, compiled)
    }

    pub(crate) fn from_compiled(
        net: &'n Net,
        spec: DeviceSpec,
        policy: Policy,
        compiled: CompiledPlan,
    ) -> Result<Executor<'n>, ExecError> {
        let CompiledPlan {
            route,
            cost,
            liveness,
            rplan,
            plan: mplan,
        } = compiled;
        let mut dev = Device::new(spec, policy.allocator, policy.tiers);

        let wbytes = cost.total_weight_bytes();
        let weights_grant = if wbytes > 0 {
            match dev.alloc_charged(wbytes) {
                Ok(g) => Some(g.id),
                Err(_) => {
                    return Err(ExecError::Oom {
                        step: 0,
                        layer: "WEIGHTS".into(),
                        requested: wbytes,
                        capacity: dev.alloc.capacity(),
                    })
                }
            }
        } else {
            None
        };

        let n_tensors = liveness.tensors.len();
        let names: Vec<Arc<str>> = net
            .layers()
            .iter()
            .map(|l| Arc::from(l.name.as_str()))
            .collect();
        Ok(Executor {
            net,
            route,
            cost,
            plan: liveness,
            rplan,
            mplan,
            policy,
            dev,
            utp: Utp::new(n_tensors),
            _weights_grant: weights_grant,
            ws_grant: None,
            tr_grant: None,
            trace: StepTrace::new(),
            ws_records: Vec::new(),
            counters: Counters::default(),
            backend: None,
            iter: 0,
            iter_t_start: SimTime::ZERO,
            iter_alloc_time0: SimTime::ZERO,
            iter_alloc_calls0: 0,
            names,
            metrics: None,
            prefetch_stall: SimTime::ZERO,
        })
    }

    /// Attach a numeric backend (values really computed).
    pub fn with_backend(mut self, backend: Box<dyn ComputeBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Record this executor's timeline into `sink` under process `device`
    /// (e.g. `"device 0"`): kernels, DMAs and recompute replays become
    /// labelled spans, prefetch→kernel gates become flow arrows. Attaching
    /// a disabled sink turns tracing off.
    pub fn enable_tracing(&mut self, sink: &TraceSink, device: &str) {
        self.dev.tl.attach_tracer(sink, device);
    }

    /// Report per-iteration counters, latency histograms and peak gauges
    /// into `registry` (names under `exec.`), flushed once at the end of
    /// every iteration.
    pub fn enable_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(ExecMetrics::new(registry));
    }

    /// The interned name of a layer (shared allocation, no clone).
    #[inline]
    pub fn layer_name(&self, l: LayerId) -> Arc<str> {
        self.names[l.0].clone()
    }

    pub fn backend(&self) -> Option<&dyn ComputeBackend> {
        self.backend.as_deref()
    }

    fn meta(&self, t: TensorId) -> &sn_graph::TensorMeta {
        &self.plan.tensors[t.0]
    }

    /// Effective transfer bandwidth for tensor `t`'s external tier. The
    /// pageable (unpinned) penalty applies to the local-host tier only.
    fn tier_gbps(&self, t: TensorId) -> f64 {
        let tier = self.utp.tier_of(t);
        match tier {
            Tier::LocalHost if !self.policy.pinned_host => {
                tier.gbps() * self.dev.spec.unpinned_factor
            }
            _ => tier.gbps(),
        }
    }

    /// Span label for a tensor DMA: `"<verb> <layer>.<role>"` with the
    /// payload size, e.g. `"prefetch CONV2.out"`. Callers guard behind
    /// [`Timeline::tracing`] so the disabled path never formats.
    ///
    /// [`Timeline::tracing`]: sn_sim::Timeline::tracing
    fn dma_label(&self, verb: &str, t: TensorId) -> SpanLabel {
        let meta = self.meta(t);
        let role = match meta.role {
            TensorRole::FwdOut => "out",
            TensorRole::Grad => "grad",
        };
        SpanLabel::new(format!("{verb} {}.{role}", self.names[meta.layer.0]), "dma")
            .arg("bytes", meta.bytes)
    }

    /// Submit a DMA for tensor `t` on `stream`, honouring the policy's
    /// synchronous-transfer flag (under it the host blocks until the copy
    /// completes — the `cudaMemcpy`-on-the-null-stream baseline, which makes
    /// compute/transfer overlap zero by construction).
    fn submit_dma(&mut self, stream: StreamId, t: TensorId, gates: &[Event]) -> Dma {
        let bytes = self.meta(t).bytes;
        let gbps = self.tier_gbps(t);
        let dma = self.dev.tl.transfer_on(stream, bytes, gbps, gates);
        if self.policy.sync_transfers {
            self.dev.tl.wait(dma.event);
        }
        dma
    }

    /// Allocate device memory the plan promised would fit. A failure here
    /// is a plan/replay divergence, which the deterministic allocator rules
    /// out — kept as a hard error rather than a panic for belt-and-braces.
    fn planned_alloc(&mut self, bytes: u64, step: usize) -> Result<sn_sim::AllocId, ExecError> {
        match self.dev.alloc_charged(bytes) {
            Ok(g) => Ok(g.id),
            Err(_) => Err(ExecError::Oom {
                step,
                layer: "plan replay".into(),
                requested: bytes,
                capacity: self.dev.alloc.capacity(),
            }),
        }
    }

    fn notify_drop(&mut self, t: TensorId) {
        if let Some(b) = self.backend.as_mut() {
            let meta = &self.plan.tensors[t.0];
            match meta.role {
                TensorRole::FwdOut => b.drop_output(meta.layer),
                TensorRole::Grad => b.drop_grad(meta.layer),
            }
        }
    }

    /// Execute one residency op. `compute_done` is the step's kernel event
    /// (the gate for eager offloads), present only for post-kernel ops.
    fn apply(
        &mut self,
        op: PlanOp,
        step: usize,
        compute_done: Option<Event>,
    ) -> Result<(), ExecError> {
        match op {
            PlanOp::Alloc(t) => {
                let g = self.planned_alloc(self.meta(t).bytes, step)?;
                self.utp.mark_device(t, g, false);
            }
            PlanOp::Fetch(t) => {
                let g = self.planned_alloc(self.meta(t).bytes, step)?;
                self.utp.mark_device(t, g, false);
                if self.dev.tl.tracing() {
                    self.dev.tl.trace_label(self.dma_label("prefetch", t));
                }
                let dma = self.submit_dma(StreamId::H2D, t, &[]);
                self.utp.states[t.0].prefetch = Some(dma);
            }
            PlanOp::Offload { t, evict } => {
                let bytes = self.meta(t).bytes;
                if !self.utp.ensure_host_slot(t, bytes, &mut self.dev) {
                    return Err(ExecError::HostExhausted { requested: bytes });
                }
                // An eviction's copy-out must run behind every kernel already
                // queued (which may still read the victim); an eager offload
                // only behind the kernel that produced the tensor.
                let gate = match (evict, compute_done) {
                    (false, Some(e)) => e,
                    _ => self.dev.tl.frontier_event(StreamId::COMPUTE),
                };
                if self.dev.tl.tracing() {
                    let verb = if evict { "evict" } else { "offload" };
                    self.dev.tl.trace_label(self.dma_label(verb, t));
                }
                let dma = self.submit_dma(StreamId::D2H, t, &[gate]);
                self.utp.mark_offloading(t, evict, Some(dma));
            }
            PlanOp::ReleaseDevice(t) => {
                // The device bytes may only be reused once the copy-out has
                // landed — the "allocations never overtake releases" wait
                // that pins the trajectory to the plan's.
                if let Some(dma) = self.utp.states[t.0].offload {
                    self.dev.tl.wait(dma.event);
                }
                if self.utp.release_device(t, &mut self.dev) {
                    self.notify_drop(t);
                }
            }
            PlanOp::Free(t) => {
                self.utp.free_tensor(t, &mut self.dev);
                self.notify_drop(t);
            }
            PlanOp::Recompute(l) => {
                // The replay reads its producer synchronously: wait out any
                // in-flight prefetch of the producer's output first.
                let p = self.net.layer(l).prevs[0];
                let pt = self.plan.fwd_out[p.0];
                if let Some(dma) = self.utp.states[pt.0].prefetch.take() {
                    self.dev.tl.wait(dma.event);
                }
                let lk = &self.net.layer(l).kind;
                let d = self.cost.layer(l).fwd_time(lk, &self.dev.spec, 1.0);
                if self.dev.tl.tracing() {
                    self.dev.tl.trace_label(
                        SpanLabel::new(format!("recompute {}", self.names[l.0]), "recompute")
                            .arg("step", step),
                    );
                }
                self.dev.tl.submit(sn_sim::EngineKind::Compute, d);
                self.dev.tl.join_compute();
                if let Some(b) = self.backend.as_mut() {
                    b.forward(l);
                }
            }
            PlanOp::AllocWorkspace(bytes) => {
                debug_assert!(self.ws_grant.is_none());
                self.ws_grant = Some(self.planned_alloc(bytes, step)?);
            }
            PlanOp::AllocTransient(bytes) => {
                debug_assert!(self.tr_grant.is_none());
                self.tr_grant = Some(self.planned_alloc(bytes, step)?);
            }
            PlanOp::FreeTransients => {
                if let Some(g) = self.ws_grant.take() {
                    self.dev.free_charged(g);
                }
                if let Some(g) = self.tr_grant.take() {
                    self.dev.free_charged(g);
                }
            }
            PlanOp::Collective { .. } => {
                // Single-device plans never contain collectives; the group
                // interpreter schedules them around the replica stream.
                unreachable!("collective op in a single-device plan")
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The iteration loop
    // ------------------------------------------------------------------

    /// Replay the plan for one iteration; returns the measured report.
    pub fn run_iteration(&mut self) -> Result<IterationReport, ExecError> {
        self.begin_iteration();
        let total = self.route.total_steps();
        for s in 0..total {
            self.run_step(s)?;
        }
        self.finish_iteration()
    }

    /// Open a new iteration: reset residency and statistics, snapshot the
    /// counters [`Executor::finish_iteration`] will difference. The group
    /// interpreter uses this begin/step/finish decomposition to interleave
    /// replicas at step granularity; [`Executor::run_iteration`] is the
    /// single-device composition of the three.
    pub(crate) fn begin_iteration(&mut self) {
        self.iter += 1;
        self.reset_iteration_state();
        self.iter_t_start = self.dev.tl.now();
        self.iter_alloc_time0 = self.dev.alloc_time;
        self.iter_alloc_calls0 = self.dev.alloc_calls;
        self.dev.tl.reset_stats();
        self.dev.alloc.reset_high_water();
        self.counters = self.mplan.predicted;
        self.prefetch_stall = SimTime::ZERO;
        self.trace.clear();
        self.ws_records.clear();
        if let Some(b) = self.backend.as_mut() {
            b.begin_iteration(self.iter);
        }
    }

    /// Close the iteration opened by [`Executor::begin_iteration`]: drain
    /// every stream, apply the end-of-iteration ops, and cut the report.
    pub(crate) fn finish_iteration(&mut self) -> Result<IterationReport, ExecError> {
        let total = self.route.total_steps();
        // Drain DMA engines so trailing offloads are charged to this
        // iteration, then release anything whose consumers have all run.
        self.dev.tl.sync_all();
        let fr = self.mplan.final_range;
        for i in fr.start as usize..fr.end as usize {
            let op = self.mplan.ops[i];
            self.apply(op, total, None)?;
        }

        let stats = self.dev.tl.stats();
        let overlap = self.dev.tl.overlap();
        let report = IterationReport {
            iter_time: self.dev.tl.now() - self.iter_t_start,
            peak_bytes: self.dev.alloc.high_water(),
            h2d_bytes: stats.h2d_bytes,
            d2h_bytes: stats.d2h_bytes,
            link_bytes: stats.link_bytes,
            link_busy: stats.link_busy,
            counters: self.counters,
            alloc_time: self.dev.alloc_time - self.iter_alloc_time0,
            alloc_calls: self.dev.alloc_calls - self.iter_alloc_calls0,
            stall: stats.stall,
            compute_busy: overlap.compute_busy,
            transfer_busy: overlap.transfer_busy,
            overlapped: overlap.overlapped,
            loss: self.backend.as_ref().and_then(|b| b.loss()),
        };
        // The contract the whole stack rests on: replaying the plan's
        // alloc/free sequence reproduces its peak to the byte.
        debug_assert_eq!(
            report.peak_bytes, self.mplan.peak_bytes,
            "executed peak diverged from the plan"
        );
        if let Some(m) = &self.metrics {
            m.flush(&report, self.prefetch_stall);
            m.cache_resident.set(self.utp.cache_len() as i64);
        }
        Ok(report)
    }

    fn reset_iteration_state(&mut self) {
        self.utp.reset(&mut self.dev);
        if let Some(g) = self.ws_grant.take() {
            self.dev.free_charged(g);
        }
        if let Some(g) = self.tr_grant.take() {
            self.dev.free_charged(g);
        }
    }

    pub(crate) fn run_step(&mut self, s: usize) -> Result<(), ExecError> {
        let layer_id = self.mplan.steps[s].layer;
        let phase = self.mplan.steps[s].phase;
        let duration = self.mplan.steps[s].duration;

        // 1. Residency ops ahead of the kernel (staging, evictions,
        //    recompute replays, workspace/transient allocation). Indexed
        //    iteration: `PlanOp` is `Copy`, so the interpreter's hottest
        //    loop never clones the plan's op vectors.
        let pre = self.mplan.steps[s].pre;
        for i in pre.start as usize..pre.end as usize {
            let op = self.mplan.ops[i];
            self.apply(op, s, None)?;
        }

        // 2. The kernel, gated on *every* input's in-flight prefetch: a
        //    tensor is never read while its H2D copy is still on the wire.
        let gates: Vec<Event> = self.plan.step_inputs[s]
            .iter()
            .filter_map(|t| self.utp.states[t.0].prefetch.map(|d| d.event))
            .collect();
        if self.metrics.is_some() {
            // Prefetch-stall: how far the gates push the kernel past where
            // the compute stream could otherwise have started it.
            let frontier = self
                .dev
                .tl
                .stream_frontier(StreamId::COMPUTE)
                .max(self.dev.tl.now());
            let gate = gates
                .iter()
                .map(|e| e.done_at)
                .fold(SimTime::ZERO, SimTime::max);
            if gate > frontier {
                self.prefetch_stall += gate - frontier;
            }
        }
        if self.dev.tl.tracing() {
            self.dev.tl.trace_label(
                SpanLabel::new(self.names[layer_id.0].to_string(), "kernel")
                    .arg("step", s)
                    .arg(
                        "phase",
                        match phase {
                            StepPhase::Forward => "forward",
                            StepPhase::Backward => "backward",
                        },
                    ),
            );
        }
        let compute_done = self.dev.tl.submit_on(StreamId::COMPUTE, duration, &gates);

        if let Some(ws) = self.mplan.steps[s].workspace {
            self.ws_records.push(WorkspaceRecord {
                layer: layer_id,
                name: self.net.layer(layer_id).name.clone(),
                phase: match phase {
                    StepPhase::Forward => Phase::Forward,
                    StepPhase::Backward => Phase::Backward,
                },
                assigned_bytes: ws.bytes,
                max_speed_bytes: ws.max_speed_bytes,
                algo: ws.algo,
                speedup: ws.speedup,
            });
        }
        // Record the trace at the step's high-water moment.
        self.trace.push(StepRecord {
            step: s + 1,
            layer: self.names[layer_id.0].clone(),
            phase: match phase {
                StepPhase::Forward => Phase::Forward,
                StepPhase::Backward => Phase::Backward,
            },
            resident_bytes: self.dev.alloc.used(),
            live_tensors: self.utp.device_resident(),
            free_bytes: self.dev.alloc.free_bytes(),
            completed_at: compute_done.done_at,
        });
        // The training loop is host-synchronous with compute at layer
        // granularity; DMA engines keep draining in the background.
        self.dev.tl.join_compute();
        if let Some(b) = self.backend.as_mut() {
            match phase {
                StepPhase::Forward => b.forward(layer_id),
                StepPhase::Backward => b.backward(layer_id),
            }
        }

        // 3. Post-kernel ops (transient release, eager offload gated on the
        //    kernel, prefetch-ahead, liveness frees, recompute cleanup).
        let post = self.mplan.steps[s].post;
        for i in post.start as usize..post.end as usize {
            let op = self.mplan.ops[i];
            self.apply(op, s, Some(compute_done))?;
        }
        Ok(())
    }

    /// Convenience: run `n` iterations, returning the last report.
    pub fn run_iterations(&mut self, n: usize) -> Result<IterationReport, ExecError> {
        let mut last = None;
        for _ in 0..n {
            last = Some(self.run_iteration()?);
        }
        Ok(last.expect("n > 0"))
    }

    /// The step trace of the most recent iteration.
    pub fn last_trace(&self) -> &StepTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RecomputeMode;
    use crate::policy::{CachePolicy, WorkspacePolicy};
    use sn_graph::Shape4;
    use sn_sim::spec::MB;

    fn alex_stub(batch: usize) -> Net {
        // CONV-ACT-LRN-POOL ×2, CONV-ACT, FC-ACT-DROPOUT, FC, SOFTMAX —
        // a compressed AlexNet with the same segment structure.
        let mut net = Net::new("alex-stub", Shape4::new(batch, 3, 64, 64));
        let d = net.data();
        let c1 = net.conv(d, 32, 5, 1, 2);
        let a1 = net.relu(c1);
        let l1 = net.lrn(a1);
        let p1 = net.max_pool(l1, 2, 2, 0);
        let c2 = net.conv(p1, 64, 5, 1, 2);
        let a2 = net.relu(c2);
        let l2 = net.lrn(a2);
        let p2 = net.max_pool(l2, 2, 2, 0);
        let c3 = net.conv(p2, 64, 3, 1, 1);
        let a3 = net.relu(c3);
        let f1 = net.fc(a3, 256);
        let a4 = net.relu(f1);
        let dr = net.dropout(a4, 0.5);
        let f2 = net.fc(dr, 10);
        net.softmax(f2);
        net.validate().unwrap();
        net
    }

    fn spec() -> DeviceSpec {
        DeviceSpec::k40c()
    }

    /// A compressed VGG: conv-conv-pool blocks with growing channel counts —
    /// the large early activations that make offloading worthwhile.
    fn vgg_stub(batch: usize) -> Net {
        let mut net = Net::new("vgg-stub", Shape4::new(batch, 3, 64, 64));
        let mut prev = net.data();
        for (blocks, ch) in [(2usize, 32), (2, 64), (3, 128)] {
            for _ in 0..blocks {
                let c = net.conv(prev, ch, 3, 1, 1);
                prev = net.relu(c);
            }
            prev = net.max_pool(prev, 2, 2, 0);
        }
        let f1 = net.fc(prev, 256);
        let a = net.relu(f1);
        let f2 = net.fc(a, 10);
        net.softmax(f2);
        net.validate().unwrap();
        net
    }

    #[test]
    fn baseline_iteration_completes_and_peaks_at_sum() {
        let net = alex_stub(16);
        let mut ex = Executor::new(&net, spec(), Policy::baseline()).unwrap();
        let r = ex.run_iteration().unwrap();
        // Baseline peak = weights + Σ all tensors (block-rounded ≥ exact).
        let expect: u64 = ex.plan.tensors.iter().map(|t| t.bytes).sum();
        assert!(r.peak_bytes >= expect + ex.cost.total_weight_bytes());
        assert_eq!(r.counters.recompute_forwards, 0);
        assert_eq!(r.d2h_bytes, 0);
        assert!(r.iter_time > SimTime::ZERO);
    }

    #[test]
    fn executed_peak_equals_plan_peak_for_every_preset() {
        // The tentpole contract: the interpreter's measured high-water is
        // byte-identical to the plan's predicted peak, per preset.
        let net = alex_stub(16);
        for policy in [
            Policy::baseline(),
            Policy::liveness_only(),
            Policy::liveness_offload(),
            Policy::full_memory(),
            Policy::superneurons(),
            Policy::superneurons_no_cache(),
            Policy::superneurons_cuda_alloc(),
        ] {
            let mut ex = Executor::new(&net, spec(), policy).unwrap();
            for _ in 0..3 {
                let r = ex.run_iteration().unwrap();
                assert_eq!(
                    r.peak_bytes, ex.mplan.peak_bytes,
                    "executed peak must equal the planned peak"
                );
            }
        }
    }

    #[test]
    fn liveness_reduces_peak_vs_baseline() {
        let net = alex_stub(16);
        let rb = Executor::new(&net, spec(), Policy::baseline())
            .unwrap()
            .run_iteration()
            .unwrap();
        let rl = Executor::new(&net, spec(), Policy::liveness_only())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(
            rl.peak_bytes < rb.peak_bytes,
            "liveness {} vs baseline {}",
            rl.peak_bytes,
            rb.peak_bytes
        );
    }

    #[test]
    fn offload_reduces_peak_vs_liveness_alone() {
        let net = alex_stub(16);
        let rl = Executor::new(&net, spec(), Policy::liveness_only())
            .unwrap()
            .run_iteration()
            .unwrap();
        let ro = Executor::new(&net, spec(), Policy::liveness_offload())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(
            ro.peak_bytes < rl.peak_bytes,
            "offload {} vs liveness {}",
            ro.peak_bytes,
            rl.peak_bytes
        );
        assert!(ro.d2h_bytes > 0, "offload must move bytes to the host");
        assert!(ro.h2d_bytes > 0, "prefetch must bring them back");
    }

    #[test]
    fn recompute_reaches_near_l_peak() {
        let net = alex_stub(16);
        let rf = Executor::new(&net, spec(), Policy::full_memory())
            .unwrap()
            .run_iteration()
            .unwrap();
        let ro = Executor::new(&net, spec(), Policy::liveness_offload())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(rf.peak_bytes < ro.peak_bytes);
        assert!(rf.counters.recompute_forwards > 0);
    }

    #[test]
    fn monotone_peak_ordering_across_the_paper_stack() {
        let net = alex_stub(8);
        let peaks: Vec<u64> = [
            Policy::baseline(),
            Policy::liveness_only(),
            Policy::liveness_offload(),
            Policy::full_memory(),
        ]
        .iter()
        .map(|p| {
            Executor::new(&net, spec(), *p)
                .unwrap()
                .run_iteration()
                .unwrap()
                .peak_bytes
        })
        .collect();
        assert!(
            peaks.windows(2).all(|w| w[1] <= w[0]),
            "peaks must be non-increasing: {peaks:?}"
        );
        // The >50% claim concerns scheduled tensors; weights are a constant
        // offset both configurations carry.
        let w = Executor::new(&net, spec(), Policy::baseline())
            .unwrap()
            .cost
            .total_weight_bytes();
        assert!(
            peaks[3] - w < (peaks[0] - w) / 2,
            "full stack should save >50% of tensor memory: {peaks:?} (weights {w})"
        );
    }

    #[test]
    fn speed_centric_recomputes_each_segment_once() {
        let net = alex_stub(8);
        let pol = Policy {
            recompute: RecomputeMode::SpeedCentric,
            ..Policy::full_memory()
        };
        let mut ex = Executor::new(&net, spec(), pol).unwrap();
        let r = ex.run_iteration().unwrap();
        // Segments: [ACT,LRN,POOL], [ACT,LRN,POOL], [ACT], [ACT,DROPOUT]
        // → 3+3+1+2 = 9 extra forwards.
        assert_eq!(r.counters.recompute_forwards, 9);
        assert_eq!(ex.rplan.predicted_speed_centric_extra(), 9);
    }

    #[test]
    fn memory_centric_recomputes_more_but_never_raises_peak() {
        let net = alex_stub(8);
        let mk = |mode| Policy {
            recompute: mode,
            ..Policy::full_memory()
        };
        let rs = Executor::new(&net, spec(), mk(RecomputeMode::SpeedCentric))
            .unwrap()
            .run_iteration()
            .unwrap();
        let rm = Executor::new(&net, spec(), mk(RecomputeMode::MemoryCentric))
            .unwrap()
            .run_iteration()
            .unwrap();
        let rc = Executor::new(&net, spec(), mk(RecomputeMode::CostAware))
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(rm.counters.recompute_forwards > rs.counters.recompute_forwards);
        assert!(rm.peak_bytes <= rs.peak_bytes);
        // Cost-aware: compute near speed-centric, memory at the floor.
        assert!(rc.counters.recompute_forwards >= rs.counters.recompute_forwards);
        assert!(rc.counters.recompute_forwards <= rm.counters.recompute_forwards);
        assert!(rc.peak_bytes <= rs.peak_bytes);
    }

    #[test]
    fn tensor_cache_eliminates_traffic_when_dram_sufficient() {
        let net = alex_stub(16);
        let r = Executor::new(&net, spec(), Policy::superneurons())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert_eq!(
            r.d2h_bytes + r.h2d_bytes,
            0,
            "no transfers should occur when everything fits"
        );
        let r2 = Executor::new(&net, spec(), Policy::superneurons_no_cache())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(
            r2.d2h_bytes > 0,
            "without the cache, eager offload moves bytes"
        );
    }

    #[test]
    fn cache_evicts_under_pressure_instead_of_oom() {
        let net = alex_stub(16);
        // Find a capacity that fails without the cache but works with it.
        let full = Executor::new(&net, spec(), Policy::full_memory())
            .unwrap()
            .run_iteration()
            .unwrap();
        let tight = spec().with_dram(full.peak_bytes + 4 * MB);
        let r = Executor::new(&net, tight.clone(), Policy::superneurons())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(r.peak_bytes <= tight.dram_bytes);
        // Liveness-only cannot fit in the same budget.
        // An Err from Executor::new (even the weights didn't fit, or the
        // plan itself cannot be compiled within the budget) is acceptable.
        if let Ok(mut ex) = Executor::new(&net, tight, Policy::liveness_only()) {
            assert!(ex.run_iteration().is_err());
        }
    }

    #[test]
    fn oom_when_truly_too_small() {
        let net = alex_stub(32);
        let tiny = spec().with_dram(8 * MB);
        match Executor::new(&net, tiny, Policy::superneurons()) {
            Err(_) => {}
            Ok(mut ex) => {
                let e = ex.run_iteration().unwrap_err();
                assert!(matches!(e, ExecError::Oom { .. }), "{e}");
            }
        }
    }

    #[test]
    fn dynamic_workspace_speeds_up_iterations() {
        let net = alex_stub(16);
        let slow = Policy {
            workspace: WorkspacePolicy::None,
            ..Policy::superneurons()
        };
        let rs = Executor::new(&net, spec(), slow)
            .unwrap()
            .run_iteration()
            .unwrap();
        let rf = Executor::new(&net, spec(), Policy::superneurons())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(
            rf.iter_time < rs.iter_time,
            "dynamic workspaces must be faster: {} vs {}",
            rf.iter_time,
            rs.iter_time
        );
    }

    #[test]
    fn pool_allocator_is_faster_than_cuda() {
        let net = alex_stub(16);
        let rp = Executor::new(&net, spec(), Policy::superneurons())
            .unwrap()
            .run_iteration()
            .unwrap();
        let rc = Executor::new(&net, spec(), Policy::superneurons_cuda_alloc())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(rc.alloc_time.as_ns() > rp.alloc_time.as_ns() * 10);
        assert!(rc.iter_time > rp.iter_time);
    }

    #[test]
    fn trace_covers_every_step() {
        let net = alex_stub(8);
        let mut ex = Executor::new(&net, spec(), Policy::liveness_only()).unwrap();
        ex.run_iteration().unwrap();
        assert_eq!(ex.trace.records.len(), ex.route.total_steps());
        assert!(ex.trace.peak_bytes() > 0);
        // Workspace records exist for conv steps (fwd + bwd each).
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, sn_graph::LayerKind::Conv { .. }))
            .count();
        // WorkspacePolicy::None still records fallback rows for conv layers.
        assert_eq!(ex.ws_records.len(), 2 * convs);
    }

    #[test]
    fn async_engine_overlaps_and_beats_synchronous_baseline() {
        // Offloading on a memory-constrained VGG-style net: the async
        // multi-stream engine must be strictly faster than the synchronous-
        // transfer baseline, with a positive overlap fraction, at an
        // unchanged peak.
        let net = vgg_stub(16);
        let peak = Executor::new(&net, spec(), Policy::liveness_offload())
            .unwrap()
            .run_iteration()
            .unwrap()
            .peak_bytes;
        let tight = spec().with_dram(peak + 8 * MB);

        let run = |policy: Policy| {
            let mut ex = Executor::new(&net, tight.clone(), policy).unwrap();
            ex.run_iteration().unwrap();
            ex.run_iteration().unwrap() // warm iteration
        };
        let async_r = run(Policy::liveness_offload());
        let sync_r = run(Policy::liveness_offload().synchronous());

        assert!(async_r.d2h_bytes > 0 && async_r.h2d_bytes > 0);
        assert!(
            async_r.iter_time < sync_r.iter_time,
            "async {} must beat sync {}",
            async_r.iter_time,
            sync_r.iter_time
        );
        assert!(
            async_r.overlap_fraction() > 0.0,
            "transfers must hide under compute"
        );
        assert_eq!(
            sync_r.overlap_fraction(),
            0.0,
            "serialized transfers cannot overlap compute"
        );
        assert_eq!(
            async_r.peak_bytes, sync_r.peak_bytes,
            "overlap must not change peak device memory"
        );
        // Same bytes moved either way — overlap changes *when*, not *what*.
        assert_eq!(async_r.d2h_bytes, sync_r.d2h_bytes);
        assert_eq!(async_r.h2d_bytes, sync_r.h2d_bytes);
    }

    #[test]
    fn eviction_offloads_are_asynchronous_under_the_cache() {
        // Tensor-cache evictions enqueue their copy-out on the D2H stream;
        // the run stays within DRAM and is never slower than the serialized
        // baseline.
        let net = vgg_stub(16);
        let full = Executor::new(&net, spec(), Policy::full_memory())
            .unwrap()
            .run_iteration()
            .unwrap();
        let tight = spec().with_dram(full.peak_bytes + 4 * MB);
        let run = |policy: Policy| {
            let mut ex = Executor::new(&net, tight.clone(), policy).unwrap();
            ex.run_iteration().unwrap();
            ex.run_iteration().unwrap()
        };
        let async_r = run(Policy::superneurons());
        let sync_r = run(Policy::superneurons().synchronous());
        assert!(async_r.counters.evictions > 0, "pressure must evict");
        assert!(async_r.peak_bytes <= tight.dram_bytes);
        assert_eq!(async_r.peak_bytes, sync_r.peak_bytes);
        assert!(async_r.iter_time <= sync_r.iter_time);
        // Identical scheduling decisions either way — it is the same plan.
        assert_eq!(async_r.counters.evictions, sync_r.counters.evictions);
        assert_eq!(async_r.d2h_bytes, sync_r.d2h_bytes);
    }

    #[test]
    fn eager_offload_with_cache_reclaims_under_pressure() {
        // Regression: a completed-but-unreapable eager offload (its forward
        // consumers still pending) must not shadow an eviction's in-flight
        // copy-out as the reclamation ladder's earliest wait — that
        // combination used to burn every victim without freeing a byte and
        // report a spurious OOM.
        let net = vgg_stub(16);
        let full = Executor::new(&net, spec(), Policy::full_memory())
            .unwrap()
            .run_iteration()
            .unwrap();
        let tight = spec().with_dram(full.peak_bytes + 4 * MB);
        let pol = Policy {
            eager_offload: true,
            ..Policy::superneurons()
        };
        let mut ex = Executor::new(&net, tight.clone(), pol).unwrap();
        let r = ex.run_iteration().unwrap();
        assert!(r.peak_bytes <= tight.dram_bytes);
        assert!(r.d2h_bytes > 0);
    }

    #[test]
    fn stream_busy_times_bounded_by_iteration_makespan() {
        let net = vgg_stub(16);
        let peak = Executor::new(&net, spec(), Policy::liveness_offload())
            .unwrap()
            .run_iteration()
            .unwrap()
            .peak_bytes;
        let tight = spec().with_dram(peak + 8 * MB);
        let mut ex = Executor::new(&net, tight, Policy::liveness_offload()).unwrap();
        let r = ex.run_iteration().unwrap();
        assert!(r.compute_busy <= r.iter_time);
        assert!(r.transfer_busy > SimTime::ZERO);
        // The union of DMA busy spans fits in the iteration too (transfers
        // are drained before the report is cut).
        assert!(r.transfer_busy <= r.iter_time);
        assert!(r.overlapped <= r.compute_busy.min(r.transfer_busy));
        assert!(r.overlap_fraction() >= 0.0 && r.overlap_fraction() <= 1.0);
    }

    #[test]
    fn repeated_iterations_are_stable() {
        let net = alex_stub(8);
        let mut ex = Executor::new(&net, spec(), Policy::superneurons()).unwrap();
        let r1 = ex.run_iteration().unwrap();
        let r2 = ex.run_iteration().unwrap();
        let r3 = ex.run_iteration().unwrap();
        assert_eq!(r2.peak_bytes, r3.peak_bytes);
        assert_eq!(r2.iter_time, r3.iter_time);
        assert_eq!(
            r1.counters.recompute_forwards,
            r3.counters.recompute_forwards
        );
        // No leaks: after reset, only the weights remain.
        ex.reset_iteration_state();
        assert_eq!(
            ex.dev.alloc.used(),
            ex.cost.total_weight_bytes().div_ceil(1024) * 1024
        );
    }

    #[test]
    fn inference_runs_forward_only_at_the_plan_peak() {
        let net = alex_stub(16);
        let mut ex = Executor::new_inference(&net, spec(), Policy::superneurons()).unwrap();
        let r = ex.run_iteration().unwrap();
        assert_eq!(r.peak_bytes, ex.mplan.peak_bytes);
        assert_eq!(r.counters.recompute_forwards, 0);
        assert_eq!(r.d2h_bytes + r.h2d_bytes, 0);
        assert_eq!(ex.trace.records.len(), net.len());
        // Forward-only peak undercuts the training peak.
        let train = Executor::new(&net, spec(), Policy::superneurons())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(
            r.peak_bytes < train.peak_bytes,
            "inference {} vs training {}",
            r.peak_bytes,
            train.peak_bytes
        );
        assert!(r.iter_time < train.iter_time);
    }

    #[test]
    fn nonlinear_routes_recompute_through_fanout_segments() {
        // Satellite coverage: until this PR the executor's recompute tests
        // only exercised linear AlexNet/VGG stubs. A residual block plus an
        // inception-style fan-out must replay exactly the predicted number
        // of segment members, at the plan's peak, under every strategy.
        let mut net = Net::new("nonlin", Shape4::new(8, 4, 16, 16));
        let d = net.data();
        let c1 = net.conv(d, 8, 3, 1, 1);
        let b1 = net.bn(c1);
        let r1 = net.relu(b1);
        let c2 = net.conv(r1, 8, 3, 1, 1);
        let e = net.eltwise(&[c2, c1]); // residual join (checkpoint)
        let r2 = net.relu(e);
        let p1 = net.max_pool(r2, 2, 2, 0); // fan-out below the join:
        let p2 = net.avg_pool(r2, 2, 2, 0); // two branches, one tree segment
        let j = net.concat(&[p1, p2]);
        let f = net.fc(j, 10);
        net.softmax(f);
        net.validate().unwrap();

        for mode in [
            RecomputeMode::SpeedCentric,
            RecomputeMode::MemoryCentric,
            RecomputeMode::CostAware,
        ] {
            let pol = Policy {
                recompute: mode,
                ..Policy::full_memory()
            };
            let mut ex = Executor::new(&net, spec(), pol).unwrap();
            let r = ex.run_iteration().unwrap();
            assert!(r.counters.recompute_forwards > 0, "{mode:?}");
            assert_eq!(r.peak_bytes, ex.mplan.peak_bytes, "{mode:?}");
            if mode == RecomputeMode::SpeedCentric {
                // Each segment replays exactly once: [BN,ACT] @c1 and
                // [ACT,POOL,POOL] @eltwise → the predicted member count.
                assert_eq!(
                    r.counters.recompute_forwards as usize,
                    ex.rplan.predicted_speed_centric_extra()
                );
            }
        }
    }

    #[test]
    fn zero_time_iteration_reports_zero_not_nan_throughput() {
        // Satellite regression: `imgs_per_sec` must never emit non-finite
        // numbers into bench JSON, even for zero-duration iterations.
        let r = IterationReport {
            iter_time: SimTime::ZERO,
            peak_bytes: 0,
            h2d_bytes: 0,
            d2h_bytes: 0,
            link_bytes: 0,
            link_busy: SimTime::ZERO,
            counters: Counters::default(),
            alloc_time: SimTime::ZERO,
            alloc_calls: 0,
            stall: SimTime::ZERO,
            compute_busy: SimTime::ZERO,
            transfer_busy: SimTime::ZERO,
            overlapped: SimTime::ZERO,
            loss: None,
        };
        assert_eq!(r.imgs_per_sec(128), 0.0);
        assert!(r.imgs_per_sec(128).is_finite());
        assert_eq!(r.overlap_fraction(), 0.0);
    }

    #[test]
    fn cache_policies_all_replay_their_plans() {
        let net = vgg_stub(8);
        let full = Executor::new(&net, spec(), Policy::full_memory())
            .unwrap()
            .run_iteration()
            .unwrap();
        let tight = spec().with_dram(full.peak_bytes + 4 * MB);
        for cp in [CachePolicy::Lru, CachePolicy::Fifo, CachePolicy::Mru] {
            let pol = Policy {
                cache_policy: cp,
                ..Policy::superneurons()
            };
            let mut ex = Executor::new(&net, tight.clone(), pol).unwrap();
            let r = ex.run_iteration().unwrap();
            assert!(r.peak_bytes <= tight.dram_bytes, "{cp:?}");
            assert_eq!(r.peak_bytes, ex.mplan.peak_bytes, "{cp:?}");
        }
    }
}
