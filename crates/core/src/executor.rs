//! The SuperNeurons executor: runs training iterations over the simulated
//! device, orchestrating tensor placement, movement, allocation and
//! deallocation per the active [`Policy`] — liveness frees, Unified Tensor
//! Pool offload/prefetch over the DMA engines, the Alg. 2 LRU Tensor Cache,
//! segment recomputation, and dynamic convolution workspace selection.
//!
//! The same scheduler drives both execution modes: *virtual* (durations from
//! the cost model; used by every paper-scale experiment) and *numeric* (an
//! attached [`ComputeBackend`] really computes tensors; used to validate
//! that scheduling decisions — including recomputation — preserve exact
//! training semantics).

use sn_graph::liveness::{LivenessPlan, TensorId, TensorRole};
use sn_graph::{LayerId, Net, NetCost, Route, StepPhase};
use sn_sim::trace::Phase;
use sn_sim::{
    DeviceAllocator, DeviceSpec, Dma, Event, OverlapStats, SimTime, StepRecord, StepTrace, StreamId,
};

use crate::convalgo::{self, AlgoChoice};
use crate::device::Device;
use crate::policy::CachePolicy;
use crate::policy::{Policy, WorkspacePolicy};
use crate::recompute::{RecomputePlan, SegmentStrategy};
use crate::tiers::{Tier, TierSlot};

/// Hook for numeric execution: the executor tells the backend *when* to
/// compute and *which* values ceased to exist; the backend owns the values.
pub trait ComputeBackend {
    fn begin_iteration(&mut self, iter: u64);
    /// Execute (or re-execute, during recomputation) a layer's forward.
    fn forward(&mut self, layer: LayerId);
    /// Execute a layer's backward (accumulate input grads, update weights).
    fn backward(&mut self, layer: LayerId);
    /// The layer's forward output is gone from device *and* host.
    fn drop_output(&mut self, layer: LayerId);
    /// The gradient of the layer's output is gone.
    fn drop_grad(&mut self, layer: LayerId);
    /// Loss of the last executed iteration, if the network has a loss layer.
    fn loss(&self) -> Option<f32> {
        None
    }
}

/// Where a tensor currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residence {
    /// Not materialized anywhere (never produced, or dropped for recompute).
    None,
    /// On device DRAM (possibly with a transfer in flight).
    Device,
    /// Host copy only.
    Host,
}

#[derive(Debug, Clone, Copy)]
struct TensorState {
    residence: Residence,
    grant: Option<sn_sim::AllocId>,
    host_slot: Option<TierSlot>,
    /// Host copy is a valid replica of the tensor's contents.
    host_valid: bool,
    lock: u32,
    /// Monotone insertion stamp for the FIFO cache policy.
    inserted_at: u64,
    /// In-flight device→host copy on the D2H stream (device memory freed
    /// once it completes and its consumers allow).
    offload: Option<Dma>,
    /// The pending offload is an eviction: release the device copy as soon
    /// as the copy-out completes, rather than waiting for forward consumers.
    evicting: bool,
    /// In-flight host→device copy on the H2D stream (consumers must gate
    /// their kernels on it).
    prefetch: Option<Dma>,
}

impl TensorState {
    const EMPTY: TensorState = TensorState {
        residence: Residence::None,
        grant: None,
        host_slot: None,
        host_valid: false,
        lock: 0,
        inserted_at: 0,
        offload: None,
        evicting: false,
        prefetch: None,
    };
}

/// Execution failure.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// Device memory exhausted (after all reclamation the policy allows).
    Oom {
        step: usize,
        layer: String,
        requested: u64,
        capacity: u64,
    },
    /// Pinned host pool exhausted.
    HostExhausted { requested: u64 },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Oom {
                step,
                layer,
                requested,
                capacity,
            } => write!(
                f,
                "device OOM at step {step} ({layer}): need {requested} of {capacity} bytes"
            ),
            ExecError::HostExhausted { requested } => {
                write!(f, "pinned host pool exhausted ({requested} bytes)")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Per-iteration accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Extra layer-forward executions performed by recomputation (Table 1).
    pub recompute_forwards: u64,
    pub offloads: u64,
    pub prefetches: u64,
    pub evictions: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

/// Result of one measured iteration.
#[derive(Debug, Clone)]
pub struct IterationReport {
    pub iter_time: SimTime,
    /// Peak device bytes (allocator high-water) during the iteration.
    pub peak_bytes: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub counters: Counters,
    /// Host-side allocator latency accumulated during the iteration.
    pub alloc_time: SimTime,
    pub alloc_calls: u64,
    /// Host stall time waiting on events.
    pub stall: SimTime,
    /// Busy time of the compute stream(s) during the iteration.
    pub compute_busy: SimTime,
    /// Busy time of the DMA streams (H2D + D2H) during the iteration.
    pub transfer_busy: SimTime,
    /// DMA time hidden under kernels, from the per-stream busy timelines.
    pub overlapped: SimTime,
    pub loss: Option<f32>,
}

impl IterationReport {
    /// Throughput in images per second for a given batch size.
    pub fn imgs_per_sec(&self, batch: usize) -> f64 {
        batch as f64 / self.iter_time.as_secs_f64()
    }

    /// Fraction of transfer time hidden under compute, in `[0, 1]` (zero
    /// when the iteration moved no bytes).
    pub fn overlap_fraction(&self) -> f64 {
        OverlapStats {
            compute_busy: self.compute_busy,
            transfer_busy: self.transfer_busy,
            overlapped: self.overlapped,
        }
        .fraction()
    }
}

/// A Fig. 12 record: workspace assigned vs. the max-speed want, per CONV
/// step.
#[derive(Debug, Clone)]
pub struct WorkspaceRecord {
    pub layer: LayerId,
    pub name: String,
    pub phase: Phase,
    pub assigned_bytes: u64,
    pub max_speed_bytes: u64,
    pub algo: &'static str,
    pub speedup: f64,
}

/// The executor. Owns the device; borrows the network.
pub struct Executor<'n> {
    pub net: &'n Net,
    pub route: Route,
    pub cost: NetCost,
    pub plan: LivenessPlan,
    pub rplan: RecomputePlan,
    pub policy: Policy,
    pub dev: Device,
    states: Vec<TensorState>,
    /// LRU list of device-resident, cache-managed tensors (front = MRU).
    lru: Vec<TensorId>,
    /// Held for the executor's lifetime: the permanently resident weights.
    _weights_grant: Option<sn_sim::AllocId>,
    /// Recomputed tensors to free at the end of a given step.
    recomputed_free_at: std::collections::HashMap<usize, Vec<TensorId>>,
    /// Tensors with an in-flight device→host copy (kept small; avoids
    /// scanning every tensor state at every step).
    pending_offloads: Vec<TensorId>,
    insertion_clock: u64,
    pub trace: StepTrace,
    pub ws_records: Vec<WorkspaceRecord>,
    pub counters: Counters,
    backend: Option<Box<dyn ComputeBackend>>,
    iter: u64,
}

impl<'n> Executor<'n> {
    /// Build an executor; allocates the (permanently resident) weights.
    pub fn new(net: &'n Net, spec: DeviceSpec, policy: Policy) -> Result<Executor<'n>, ExecError> {
        let route = Route::construct(net);
        let cost = NetCost::of(net);
        let plan = LivenessPlan::analyze(net, &route, policy.liveness_options());
        let rplan = RecomputePlan::build(net, &route, &cost, policy.recompute);
        let mut dev = Device::new(spec, policy.allocator, policy.tiers);

        let wbytes = cost.total_weight_bytes();
        let weights_grant = if wbytes > 0 {
            match dev.alloc_charged(wbytes) {
                Ok(g) => Some(g.id),
                Err(_) => {
                    return Err(ExecError::Oom {
                        step: 0,
                        layer: "WEIGHTS".into(),
                        requested: wbytes,
                        capacity: dev.alloc.capacity(),
                    })
                }
            }
        } else {
            None
        };

        let n_tensors = plan.tensors.len();
        Ok(Executor {
            net,
            route,
            cost,
            plan,
            rplan,
            policy,
            dev,
            states: vec![TensorState::EMPTY; n_tensors],
            lru: Vec::new(),
            _weights_grant: weights_grant,
            recomputed_free_at: std::collections::HashMap::new(),
            pending_offloads: Vec::new(),
            insertion_clock: 0,
            trace: StepTrace::new(),
            ws_records: Vec::new(),
            counters: Counters::default(),
            backend: None,
            iter: 0,
        })
    }

    /// Attach a numeric backend (values really computed).
    pub fn with_backend(mut self, backend: Box<dyn ComputeBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    pub fn backend(&self) -> Option<&dyn ComputeBackend> {
        self.backend.as_deref()
    }

    fn meta(&self, t: TensorId) -> &sn_graph::TensorMeta {
        &self.plan.tensors[t.0]
    }

    /// Effective transfer bandwidth for tensor `t`'s external tier. The
    /// pageable (unpinned) penalty applies to the local-host tier only.
    fn tier_gbps(&self, t: TensorId) -> f64 {
        let tier = self.states[t.0]
            .host_slot
            .map(|s| s.tier)
            .unwrap_or(Tier::LocalHost);
        match tier {
            Tier::LocalHost if !self.policy.pinned_host => {
                tier.gbps() * self.dev.spec.unpinned_factor
            }
            _ => tier.gbps(),
        }
    }

    /// Submit a DMA for tensor `t` on `stream`, honouring the policy's
    /// synchronous-transfer flag (under it the host blocks until the copy
    /// completes — the `cudaMemcpy`-on-the-null-stream baseline, which makes
    /// compute/transfer overlap zero by construction).
    fn submit_dma(&mut self, stream: StreamId, t: TensorId, gates: &[Event]) -> Dma {
        let bytes = self.meta(t).bytes;
        let gbps = self.tier_gbps(t);
        let dma = self.dev.tl.transfer_on(stream, bytes, gbps, gates);
        if self.policy.sync_transfers {
            self.dev.tl.wait(dma.event);
        }
        dma
    }

    // ------------------------------------------------------------------
    // LRU Tensor Cache (Alg. 2)
    // ------------------------------------------------------------------

    fn lru_touch(&mut self, t: TensorId) {
        if let Some(pos) = self.lru.iter().position(|x| *x == t) {
            let id = self.lru.remove(pos);
            self.lru.insert(0, id); // MFU position: the list front
        }
    }

    fn lru_insert(&mut self, t: TensorId) {
        debug_assert!(!self.lru.contains(&t));
        self.insertion_clock += 1;
        self.states[t.0].inserted_at = self.insertion_clock;
        self.lru.insert(0, t);
    }

    fn lru_remove(&mut self, t: TensorId) {
        if let Some(pos) = self.lru.iter().position(|x| *x == t) {
            self.lru.remove(pos);
        }
    }

    /// `LRU.out`: evict the least-recently-used unlocked tensor, offloading
    /// it to the host if its contents are still needed. Returns false when
    /// nothing is evictable.
    ///
    /// The offload is *asynchronous*: it is enqueued on the D2H stream
    /// (gated behind every kernel already queued, which may still read the
    /// victim) and the victim's device memory is released by
    /// [`Executor::poll_offloads`] once the copy-out completes. Compute only
    /// blocks when the allocation ladder actually needs the freed bytes.
    fn evict_one(&mut self, step: usize) -> Result<bool, ExecError> {
        let evictable = |st: &TensorState| st.lock == 0 && st.offload.is_none();
        let victim = match self.policy.cache_policy {
            // Front of the list is MFU (Alg. 2), so LRU victims come from
            // the back and MRU victims from the front.
            CachePolicy::Lru => self
                .lru
                .iter()
                .rev()
                .find(|t| evictable(&self.states[t.0]))
                .copied(),
            CachePolicy::Mru => self
                .lru
                .iter()
                .find(|t| evictable(&self.states[t.0]))
                .copied(),
            CachePolicy::Fifo => self
                .lru
                .iter()
                .filter(|t| evictable(&self.states[t.0]))
                .min_by_key(|t| self.states[t.0].inserted_at)
                .copied(),
        };
        let Some(victim) = victim else {
            return Ok(false);
        };
        // Inclusive: a tensor whose last use is the *current* step is still
        // needed by it (eviction can run while the step assembles inputs).
        let needed_later = self.meta(victim).last_use_step >= step
            || self.meta(victim).bwd_last_use.is_some_and(|b| b >= step);
        let st = &self.states[victim.0];
        debug_assert_eq!(st.residence, Residence::Device);

        if needed_later && !st.host_valid {
            // Asynchronous offload: enqueue the copy-out behind every kernel
            // already queued (which may still read the victim) and let
            // poll_offloads release the device copy on completion. The
            // allocation ladder waits on the event only when it actually
            // needs the bytes.
            self.ensure_host_slot(victim)?;
            let gate = self.dev.tl.frontier_event(StreamId::COMPUTE);
            let dma = self.submit_dma(StreamId::D2H, victim, &[gate]);
            let st = &mut self.states[victim.0];
            st.offload = Some(dma);
            st.evicting = true;
            st.prefetch = None;
            self.pending_offloads.push(victim);
            self.counters.offloads += 1;
        } else {
            // Host copy already valid (or contents dead): drop the device
            // copy immediately, no transfer needed.
            let st = &mut self.states[victim.0];
            if let Some(g) = st.grant.take() {
                st.residence = if st.host_valid {
                    Residence::Host
                } else {
                    Residence::None
                };
                st.prefetch = None;
                self.dev.free_charged(g);
            }
        }
        self.lru_remove(victim);
        self.counters.evictions += 1;
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Allocation with reclamation
    // ------------------------------------------------------------------

    fn ensure_host_slot(&mut self, t: TensorId) -> Result<(), ExecError> {
        if self.states[t.0].host_slot.is_none() {
            let bytes = self.meta(t).bytes;
            let slot = self
                .dev
                .host
                .reserve(bytes)
                .ok_or(ExecError::HostExhausted { requested: bytes })?;
            self.states[t.0].host_slot = Some(slot);
        }
        Ok(())
    }

    /// May tensor `t`'s pending offload release the device copy at `step`
    /// (once its DMA lands)? True for evictions (the bytes are what the
    /// eviction was for) and for eager checkpoint offloads whose forward
    /// consumers have all run — never while the tensor is locked. The single
    /// source of truth for poll/drain/reclaim, which must agree.
    fn offload_reapable(&self, t: TensorId, step: usize) -> bool {
        let st = &self.states[t.0];
        st.lock == 0 && (st.evicting || step > self.plan.tensors[t.0].fwd_last_use)
    }

    /// Poll DMA completion: offloads whose event finished release their
    /// device copy — the paper frees a tensor's GPU memory "once the event
    /// is completed". Eager checkpoint offloads additionally wait for all
    /// forward consumers to run; eviction offloads release as soon as the
    /// copy-out is done (the bytes are what the eviction was for).
    fn poll_offloads(&mut self, step: usize) {
        let now = self.dev.tl.now();
        let mut j = 0;
        while j < self.pending_offloads.len() {
            let t = self.pending_offloads[j];
            let i = t.0;
            let retain = match self.states[i].offload {
                None => false, // cancelled (freed in the meantime)
                Some(dma) => {
                    if !dma.event.is_done(now) || !self.offload_reapable(t, step) {
                        true // not yet reapable
                    } else {
                        self.states[i].offload = None;
                        self.states[i].evicting = false;
                        self.states[i].host_valid = true;
                        if let Some(g) = self.states[i].grant.take() {
                            self.dev.free_charged(g);
                        }
                        self.states[i].residence = Residence::Host;
                        self.lru_remove(t);
                        false
                    }
                }
            };
            if retain {
                j += 1;
            } else {
                self.pending_offloads.swap_remove(j);
            }
        }
    }

    /// Allocations never overtake releases: wait out any in-flight offload
    /// whose device copy is *only* waiting on its DMA to land (every consumer
    /// already ran, or it is an eviction), then reap. Called at each step
    /// boundary, this pins the memory trajectory at every allocation point to
    /// the synchronous engine's — overlap changes *when* transfers run, never
    /// the peak — which keeps executed peaks exactly equal to the peaks
    /// `predict_run` promised the cluster's admission control, independent of
    /// DMA timing. The cost is bounded: only the un-overlapped remainder of a
    /// transfer (past the consumer layers' compute) can stall the host.
    fn drain_reapable_offloads(&mut self, step: usize) {
        let mut latest: Option<Event> = None;
        for &t in &self.pending_offloads {
            if !self.offload_reapable(t, step) {
                continue; // device copy still serves forward consumers
            }
            let Some(dma) = self.states[t.0].offload else {
                continue;
            };
            latest = Some(match latest {
                Some(e) if e.done_at >= dma.event.done_at => e,
                _ => dma.event,
            });
        }
        if let Some(e) = latest {
            self.dev.tl.wait(e);
        }
        self.poll_offloads(step);
    }

    /// One rung of the reclamation ladder shared by tensor and transient
    /// allocations: reap completed offloads; else wait out the earliest
    /// *reapable* in-flight offload; else evict (which enqueues an async
    /// copy-out for the next rung to wait on). `Ok(true)` means memory may
    /// have been freed (or an eviction is now in flight) and the allocation
    /// is worth retrying; `Ok(false)` means nothing further can be reclaimed.
    fn reclaim_some(&mut self, step: usize) -> Result<bool, ExecError> {
        // 1) Reap offloads that completed by now.
        let before = self.dev.alloc.used();
        self.poll_offloads(step);
        if self.dev.alloc.used() < before {
            return Ok(true);
        }
        // 2) Wait out the earliest in-flight offload that is actually
        //    reapable. An eager offload whose forward consumers are still
        //    outstanding cannot release memory however long we wait, and its
        //    (possibly already-completed) event must not shadow a later
        //    eviction copy-out as the minimum.
        if let Some(e) = self
            .pending_offloads
            .iter()
            .filter(|t| self.offload_reapable(**t, step))
            .filter_map(|t| self.states[t.0].offload.map(|d| d.event))
            .min_by_key(|e| e.done_at)
        {
            self.dev.tl.wait(e);
            self.poll_offloads(step);
            if self.dev.alloc.used() < before {
                return Ok(true);
            }
        }
        // 3) LRU eviction (Tensor Cache).
        if self.policy.tensor_cache {
            return self.evict_one(step);
        }
        Ok(false)
    }

    /// Allocate device memory for tensor `t`, reclaiming via completed
    /// offloads, reapable-offload waits, then LRU eviction (cache policy).
    fn alloc_device(&mut self, t: TensorId, step: usize) -> Result<(), ExecError> {
        let bytes = self.meta(t).bytes;
        loop {
            match self.dev.alloc_charged(bytes) {
                Ok(g) => {
                    let st = &mut self.states[t.0];
                    st.grant = Some(g.id);
                    st.residence = Residence::Device;
                    if self.policy.tensor_cache {
                        self.lru_insert(t);
                    }
                    return Ok(());
                }
                Err(_) => {
                    if self.reclaim_some(step)? {
                        continue;
                    }
                    return Err(ExecError::Oom {
                        step,
                        layer: self.net.layer(self.meta(t).layer).name.clone(),
                        requested: bytes,
                        capacity: self.dev.alloc.capacity(),
                    });
                }
            }
        }
    }

    /// Allocate a transient buffer (workspace / weight gradient), with the
    /// same reclamation ladder. Returns `None` for zero bytes.
    fn alloc_transient(
        &mut self,
        bytes: u64,
        step: usize,
        what: &str,
    ) -> Result<Option<sn_sim::AllocId>, ExecError> {
        if bytes == 0 {
            return Ok(None);
        }
        loop {
            match self.dev.alloc_charged(bytes) {
                Ok(g) => return Ok(Some(g.id)),
                Err(_) => {
                    if self.reclaim_some(step)? {
                        continue;
                    }
                    return Err(ExecError::Oom {
                        step,
                        layer: what.into(),
                        requested: bytes,
                        capacity: self.dev.alloc.capacity(),
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Presence management (the Check() of Alg. 2)
    // ------------------------------------------------------------------

    /// Make tensor `t` device-resident; returns the event consumers must
    /// gate on (a pending prefetch), if any.
    fn ensure_present(&mut self, t: TensorId, step: usize) -> Result<Option<Event>, ExecError> {
        match self.states[t.0].residence {
            Residence::Device => {
                self.counters.cache_hits += 1;
                self.lru_touch(t);
                Ok(self.states[t.0].prefetch.map(|d| d.event))
            }
            Residence::Host => {
                self.counters.cache_misses += 1;
                self.alloc_device(t, step)?;
                let dma = self.submit_dma(StreamId::H2D, t, &[]);
                self.counters.prefetches += 1;
                self.states[t.0].prefetch = Some(dma);
                Ok(Some(dma.event))
            }
            Residence::None => {
                // Only recomputable forward outputs may be legitimately
                // absent; anything else is a scheduling bug.
                let meta = self.meta(t);
                assert_eq!(
                    meta.role,
                    TensorRole::FwdOut,
                    "tensor {:?} of {} absent at step {step}",
                    meta.role,
                    self.net.layer(meta.layer).name
                );
                let layer = meta.layer;
                self.recompute_for(layer, step)?;
                debug_assert_eq!(self.states[t.0].residence, Residence::Device);
                Ok(self.states[t.0].prefetch.map(|d| d.event))
            }
        }
    }

    // ------------------------------------------------------------------
    // Recomputation (§3.4)
    // ------------------------------------------------------------------

    /// Reconstruct the forward output of non-checkpoint `layer` for use at
    /// backward `step`, following the segment's chosen strategy.
    fn recompute_for(&mut self, layer: LayerId, step: usize) -> Result<(), ExecError> {
        let si = self.rplan.segment_of[layer.0]
            .unwrap_or_else(|| panic!("{} is not recomputable", self.net.layer(layer).name));
        let (strategy, anchor) = {
            let seg = &self.rplan.segments[si];
            (seg.strategy, seg.anchor)
        };

        // The anchor checkpoint seeds the replay: bring it back first.
        let anchor_t = self.plan.fwd_out[anchor.0];
        let gate = self.ensure_present(anchor_t, step)?;
        if let Some(e) = gate {
            self.dev.tl.wait(e);
            self.states[anchor_t.0].prefetch = None;
        }
        self.states[anchor_t.0].lock += 1;

        let members: Vec<LayerId> = match strategy {
            SegmentStrategy::SpeedCentric => self.rplan.segments[si].members.clone(),
            SegmentStrategy::MemoryCentric => self.rplan.chain_to(self.net, layer),
        };
        // Memory-centric replay frees each chain intermediate as soon as the
        // next link has consumed it, keeping the replay working set at two
        // tensors (Fig. 9b's "memcost stays at l_b").
        let target = *members.last().unwrap_or(&layer);
        let mut prev_link: Option<TensorId> = None;

        for m in members {
            let mt = self.plan.fwd_out[m.0];
            match self.states[mt.0].residence {
                Residence::Device => continue, // materialized by an earlier replay
                Residence::Host => {
                    // A previously recomputed copy was evicted to the host;
                    // fetching it back is cheaper than recomputing the chain.
                    if let Some(e) = self.ensure_present(mt, step)? {
                        self.dev.tl.wait(e);
                        self.states[mt.0].prefetch = None;
                    }
                    continue;
                }
                Residence::None => {}
            }
            // Inputs of a segment member are its (single) producer's output,
            // which is either the anchor or an earlier member — resident.
            self.alloc_device(mt, step)?;
            let lk = &self.net.layer(m).kind;
            let d = self.cost.layer(m).fwd_time(lk, &self.dev.spec, 1.0);
            self.dev.tl.submit(sn_sim::EngineKind::Compute, d);
            self.dev.tl.join_compute();
            if let Some(b) = self.backend.as_mut() {
                b.forward(m);
            }
            self.counters.recompute_forwards += 1;

            // Free point: speed-centric keeps the tensor for the rest of the
            // segment's backward; memory-centric drops intermediates as soon
            // as the next chain link has consumed them, and the target after
            // this step.
            match strategy {
                SegmentStrategy::SpeedCentric => {
                    let free_at = self.plan.tensors[mt.0]
                        .bwd_last_use
                        .unwrap_or(step)
                        .max(step);
                    self.recomputed_free_at.entry(free_at).or_default().push(mt);
                }
                SegmentStrategy::MemoryCentric => {
                    if let Some(prev) = prev_link.take() {
                        self.drop_device_copy(prev);
                    }
                    if m == target {
                        self.recomputed_free_at.entry(step).or_default().push(mt);
                    } else {
                        prev_link = Some(mt);
                    }
                }
            }
        }

        self.states[anchor_t.0].lock -= 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Offload / prefetch (§3.3.1)
    // ------------------------------------------------------------------

    /// Eagerly offload a checkpoint output after its forward computation.
    fn schedule_offload(&mut self, t: TensorId, compute_done: Event) -> Result<(), ExecError> {
        if self.states[t.0].host_valid || self.states[t.0].offload.is_some() {
            return Ok(());
        }
        self.ensure_host_slot(t)?;
        let dma = self.submit_dma(StreamId::D2H, t, &[compute_done]);
        self.states[t.0].offload = Some(dma);
        self.states[t.0].evicting = false;
        self.pending_offloads.push(t);
        self.counters.offloads += 1;
        Ok(())
    }

    /// Asynchronously prefetch host-resident tensors needed by upcoming
    /// backward steps, up to and including the next offloadable checkpoint's
    /// backward (the paper: "at any CONV layers in the backward, the runtime
    /// asynchronously fetches the required tensors for the previous CONV
    /// layer").
    fn prefetch_ahead(&mut self, step: usize) {
        let total = self.route.total_steps();
        let mut seen_ckpt = false;
        for s in (step + 1)..total.min(step + 9) {
            let inputs: Vec<TensorId> = self.plan.step_inputs[s].clone();
            for t in inputs {
                if self.states[t.0].residence != Residence::Host {
                    continue;
                }
                let bytes = self.meta(t).bytes;
                // Opportunistic: never evict on behalf of a prefetch.
                let Ok(g) = self.dev.alloc_charged(bytes) else {
                    return;
                };
                let dma = self.submit_dma(StreamId::H2D, t, &[]);
                let st = &mut self.states[t.0];
                st.grant = Some(g.id);
                st.residence = Residence::Device;
                st.prefetch = Some(dma);
                self.counters.prefetches += 1;
                if self.policy.tensor_cache {
                    self.lru_insert(t);
                }
            }
            let l = self.route.step(s).layer;
            if self.route.step(s).phase == StepPhase::Backward
                && self.net.layer(l).kind.is_offload_candidate()
            {
                if seen_ckpt {
                    break;
                }
                seen_ckpt = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Tensor release
    // ------------------------------------------------------------------

    /// Fully release a tensor: device grant, host slot, pending transfers.
    fn free_tensor(&mut self, t: TensorId) {
        let st = &mut self.states[t.0];
        debug_assert_eq!(st.lock, 0, "freeing a locked tensor");
        st.offload = None; // cancels any in-flight copy-out
        st.evicting = false;
        st.prefetch = None;
        if let Some(g) = st.grant.take() {
            self.dev.free_charged(g);
        }
        if let Some(slot) = self.states[t.0].host_slot.take() {
            self.dev.host.release(slot);
        }
        self.states[t.0].host_valid = false;
        self.states[t.0].residence = Residence::None;
        self.lru_remove(t);
        if let Some(b) = self.backend.as_mut() {
            let meta = &self.plan.tensors[t.0];
            match meta.role {
                TensorRole::FwdOut => b.drop_output(meta.layer),
                TensorRole::Grad => b.drop_grad(meta.layer),
            }
        }
    }

    /// Drop only the device copy of a recomputed tensor (memory-centric
    /// cleanup); re-requests will recompute again.
    fn drop_device_copy(&mut self, t: TensorId) {
        let st = &mut self.states[t.0];
        if st.lock > 0 {
            return;
        }
        if st.offload.is_some() {
            // An eviction's copy-out is still reading the device bytes;
            // poll_offloads will release the grant when it completes.
            return;
        }
        if let Some(g) = st.grant.take() {
            self.dev.free_charged(g);
        }
        st.prefetch = None;
        st.residence = if st.host_valid {
            Residence::Host
        } else {
            Residence::None
        };
        self.lru_remove(t);
        if self.states[t.0].residence == Residence::None {
            if let Some(b) = self.backend.as_mut() {
                let meta = &self.plan.tensors[t.0];
                if meta.role == TensorRole::FwdOut {
                    b.drop_output(meta.layer);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // The iteration loop
    // ------------------------------------------------------------------

    /// Run one training iteration; returns the measured report.
    pub fn run_iteration(&mut self) -> Result<IterationReport, ExecError> {
        self.iter += 1;
        self.reset_iteration_state();
        let t_start = self.dev.tl.now();
        let alloc_time0 = self.dev.alloc_time;
        let alloc_calls0 = self.dev.alloc_calls;
        self.dev.tl.reset_stats();
        self.dev.alloc.reset_high_water();
        self.counters = Counters::default();
        self.trace.clear();
        self.ws_records.clear();
        if let Some(b) = self.backend.as_mut() {
            b.begin_iteration(self.iter);
        }

        let total = self.route.total_steps();
        for s in 0..total {
            self.run_step(s)?;
        }

        // Drain DMA engines so trailing offloads are charged to this
        // iteration, then release anything still held (e.g. offloaded
        // tensors whose host copies we no longer need across iterations).
        self.dev.tl.sync_all();
        self.poll_offloads(total);

        let stats = self.dev.tl.stats();
        let overlap = self.dev.tl.overlap();
        Ok(IterationReport {
            iter_time: self.dev.tl.now() - t_start,
            peak_bytes: self.dev.alloc.high_water(),
            h2d_bytes: stats.h2d_bytes,
            d2h_bytes: stats.d2h_bytes,
            counters: self.counters,
            alloc_time: self.dev.alloc_time - alloc_time0,
            alloc_calls: self.dev.alloc_calls - alloc_calls0,
            stall: stats.stall,
            compute_busy: overlap.compute_busy,
            transfer_busy: overlap.transfer_busy,
            overlapped: overlap.overlapped,
            loss: self.backend.as_ref().and_then(|b| b.loss()),
        })
    }

    fn reset_iteration_state(&mut self) {
        for i in 0..self.states.len() {
            self.states[i].lock = 0;
            self.states[i].offload = None;
            self.states[i].evicting = false;
            self.states[i].prefetch = None;
            if let Some(g) = self.states[i].grant.take() {
                self.dev.free_charged(g);
            }
            if let Some(slot) = self.states[i].host_slot.take() {
                self.dev.host.release(slot);
            }
            self.states[i].host_valid = false;
            self.states[i].residence = Residence::None;
        }
        self.lru.clear();
        self.recomputed_free_at.clear();
        self.pending_offloads.clear();
    }

    fn run_step(&mut self, s: usize) -> Result<(), ExecError> {
        let step = self.route.step(s);
        let layer_id = step.layer;
        let kind = self.net.layer(layer_id).kind.clone();
        let lcost = *self.cost.layer(layer_id);

        // Reap offloads whose consumers have all run (waiting out any DMA
        // remainder) so this step's allocations see the same free memory a
        // synchronous engine would — see drain_reapable_offloads.
        self.drain_reapable_offloads(s);

        // 1. Bring inputs on-device (Check() of Alg. 2; may recompute). The
        //    step's kernels gate on *every* input's in-flight prefetch: a
        //    tensor is never read while its H2D copy is still on the wire.
        let inputs: Vec<TensorId> = self.plan.step_inputs[s].clone();
        let mut gates: Vec<Event> = Vec::new();
        for t in &inputs {
            if let Some(e) = self.ensure_present(*t, s)? {
                gates.push(e);
            }
            // Lock immediately: ensuring a later input may trigger eviction
            // and must not victimize an input we already staged.
            self.states[t.0].lock += 1;
        }

        // 2. Materialize this step's outputs.
        let created: Vec<TensorId> = self.plan.created_at[s].clone();
        for t in &created {
            if self.states[t.0].residence == Residence::None {
                self.alloc_device(*t, s)?;
            }
            self.states[t.0].lock += 1;
        }

        // 3. Transients: convolution workspace (dynamic selection, §3.5)
        //    and the backward weight-gradient buffer.
        let mut choice = AlgoChoice::fallback();
        let mut ws_grant = None;
        if matches!(kind, sn_graph::LayerKind::Conv { .. }) {
            let budget = match self.policy.workspace {
                WorkspacePolicy::None => None,
                WorkspacePolicy::Dynamic => Some(
                    self.dev
                        .alloc
                        .free_bytes()
                        .min(self.dev.alloc.largest_free_contiguous()),
                ),
                WorkspacePolicy::Capped(cap) => Some(
                    self.dev
                        .alloc
                        .free_bytes()
                        .min(self.dev.alloc.largest_free_contiguous())
                        .min(cap),
                ),
            };
            if let Some(free) = budget {
                choice = convalgo::select_algo(self.net, layer_id, free);
            }
            ws_grant = self.alloc_transient(choice.workspace, s, "conv workspace")?;
            let max_choice = convalgo::max_speed_algo(self.net, layer_id);
            self.ws_records.push(WorkspaceRecord {
                layer: layer_id,
                name: self.net.layer(layer_id).name.clone(),
                phase: match step.phase {
                    StepPhase::Forward => Phase::Forward,
                    StepPhase::Backward => Phase::Backward,
                },
                assigned_bytes: choice.workspace,
                max_speed_bytes: max_choice.workspace,
                algo: choice.algo.name(),
                speedup: choice.speedup,
            });
        }
        let wgrad_grant = if step.phase == StepPhase::Backward {
            self.alloc_transient(lcost.wgrad_bytes, s, "weight gradient")?
        } else {
            self.alloc_transient(lcost.fwd_workspace, s, "fwd workspace")?
        };

        // 4. Compute.
        let duration = match step.phase {
            StepPhase::Forward => lcost.fwd_time(&kind, &self.dev.spec, choice.speedup),
            StepPhase::Backward => lcost.bwd_time(&kind, &self.dev.spec, choice.speedup),
        };
        let compute_done = self.dev.tl.submit_on(StreamId::COMPUTE, duration, &gates);
        // Invariant (Alg. 2): no input may be read before its prefetch has
        // landed — the kernel's start must cover every in-flight H2D copy.
        debug_assert!(inputs.iter().all(|t| {
            self.states[t.0]
                .prefetch
                .is_none_or(|d| d.event.done_at + duration <= compute_done.done_at)
        }));
        // Record the trace at the step's high-water moment.
        self.trace.push(StepRecord {
            step: s + 1,
            layer: self.net.layer(layer_id).name.clone(),
            phase: match step.phase {
                StepPhase::Forward => Phase::Forward,
                StepPhase::Backward => Phase::Backward,
            },
            resident_bytes: self.dev.alloc.used(),
            live_tensors: self
                .states
                .iter()
                .filter(|st| st.residence == Residence::Device)
                .count(),
            free_bytes: self.dev.alloc.free_bytes(),
            completed_at: compute_done.done_at,
        });
        // The training loop is host-synchronous with compute at layer
        // granularity; DMA engines keep draining in the background.
        self.dev.tl.join_compute();
        if let Some(b) = self.backend.as_mut() {
            match step.phase {
                StepPhase::Forward => b.forward(layer_id),
                StepPhase::Backward => b.backward(layer_id),
            }
        }

        // 5. Release transients.
        if let Some(g) = ws_grant {
            self.dev.free_charged(g);
        }
        if let Some(g) = wgrad_grant {
            self.dev.free_charged(g);
        }

        // 6. Unlock.
        for t in inputs.iter().chain(created.iter()) {
            self.states[t.0].lock = self.states[t.0].lock.saturating_sub(1);
        }

        // 7. Eager offload of checkpoint outputs (Fig. 10b policy — with
        //    the Tensor Cache on, transfers instead happen lazily via
        //    LRU eviction only under actual memory pressure).
        if step.phase == StepPhase::Forward && self.policy.offload && self.policy.eager_offload {
            let t = self.plan.fwd_out[layer_id.0];
            if self.meta(t).offloadable && self.meta(t).bytes > 0 {
                self.schedule_offload(t, compute_done)?;
            }
        }

        // 8. Overlapped prefetch for upcoming backward consumers.
        if step.phase == StepPhase::Backward && self.policy.offload && self.policy.prefetch {
            self.prefetch_ahead(s);
        }

        // 9. Liveness frees.
        let freed: Vec<TensorId> = self.plan.freed_after[s].clone();
        for t in freed {
            if self.states[t.0].residence != Residence::None || self.states[t.0].host_slot.is_some()
            {
                self.free_tensor(t);
            }
        }
        // Recomputed-tensor frees scheduled for this step.
        if let Some(list) = self.recomputed_free_at.remove(&s) {
            for t in list {
                self.drop_device_copy(t);
            }
        }
        Ok(())
    }

    /// Convenience: run `n` iterations, returning the last report.
    pub fn run_iterations(&mut self, n: usize) -> Result<IterationReport, ExecError> {
        let mut last = None;
        for _ in 0..n {
            last = Some(self.run_iteration()?);
        }
        Ok(last.expect("n > 0"))
    }

    /// The step trace of the most recent iteration.
    pub fn last_trace(&self) -> &StepTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RecomputeMode;
    use sn_graph::Shape4;
    use sn_sim::spec::MB;

    fn alex_stub(batch: usize) -> Net {
        // CONV-ACT-LRN-POOL ×2, CONV-ACT, FC-ACT-DROPOUT, FC, SOFTMAX —
        // a compressed AlexNet with the same segment structure.
        let mut net = Net::new("alex-stub", Shape4::new(batch, 3, 64, 64));
        let d = net.data();
        let c1 = net.conv(d, 32, 5, 1, 2);
        let a1 = net.relu(c1);
        let l1 = net.lrn(a1);
        let p1 = net.max_pool(l1, 2, 2, 0);
        let c2 = net.conv(p1, 64, 5, 1, 2);
        let a2 = net.relu(c2);
        let l2 = net.lrn(a2);
        let p2 = net.max_pool(l2, 2, 2, 0);
        let c3 = net.conv(p2, 64, 3, 1, 1);
        let a3 = net.relu(c3);
        let f1 = net.fc(a3, 256);
        let a4 = net.relu(f1);
        let dr = net.dropout(a4, 0.5);
        let f2 = net.fc(dr, 10);
        net.softmax(f2);
        net.validate().unwrap();
        net
    }

    fn spec() -> DeviceSpec {
        DeviceSpec::k40c()
    }

    /// A compressed VGG: conv-conv-pool blocks with growing channel counts —
    /// the large early activations that make offloading worthwhile.
    fn vgg_stub(batch: usize) -> Net {
        let mut net = Net::new("vgg-stub", Shape4::new(batch, 3, 64, 64));
        let mut prev = net.data();
        for (blocks, ch) in [(2usize, 32), (2, 64), (3, 128)] {
            for _ in 0..blocks {
                let c = net.conv(prev, ch, 3, 1, 1);
                prev = net.relu(c);
            }
            prev = net.max_pool(prev, 2, 2, 0);
        }
        let f1 = net.fc(prev, 256);
        let a = net.relu(f1);
        let f2 = net.fc(a, 10);
        net.softmax(f2);
        net.validate().unwrap();
        net
    }

    #[test]
    fn baseline_iteration_completes_and_peaks_at_sum() {
        let net = alex_stub(16);
        let mut ex = Executor::new(&net, spec(), Policy::baseline()).unwrap();
        let r = ex.run_iteration().unwrap();
        // Baseline peak = weights + Σ all tensors (block-rounded ≥ exact).
        let expect: u64 = ex.plan.tensors.iter().map(|t| t.bytes).sum();
        assert!(r.peak_bytes >= expect + ex.cost.total_weight_bytes());
        assert_eq!(r.counters.recompute_forwards, 0);
        assert_eq!(r.d2h_bytes, 0);
        assert!(r.iter_time > SimTime::ZERO);
    }

    #[test]
    fn liveness_reduces_peak_vs_baseline() {
        let net = alex_stub(16);
        let rb = Executor::new(&net, spec(), Policy::baseline())
            .unwrap()
            .run_iteration()
            .unwrap();
        let rl = Executor::new(&net, spec(), Policy::liveness_only())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(
            rl.peak_bytes < rb.peak_bytes,
            "liveness {} vs baseline {}",
            rl.peak_bytes,
            rb.peak_bytes
        );
    }

    #[test]
    fn offload_reduces_peak_vs_liveness_alone() {
        let net = alex_stub(16);
        let rl = Executor::new(&net, spec(), Policy::liveness_only())
            .unwrap()
            .run_iteration()
            .unwrap();
        let ro = Executor::new(&net, spec(), Policy::liveness_offload())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(
            ro.peak_bytes < rl.peak_bytes,
            "offload {} vs liveness {}",
            ro.peak_bytes,
            rl.peak_bytes
        );
        assert!(ro.d2h_bytes > 0, "offload must move bytes to the host");
        assert!(ro.h2d_bytes > 0, "prefetch must bring them back");
    }

    #[test]
    fn recompute_reaches_near_l_peak() {
        let net = alex_stub(16);
        let rf = Executor::new(&net, spec(), Policy::full_memory())
            .unwrap()
            .run_iteration()
            .unwrap();
        let ro = Executor::new(&net, spec(), Policy::liveness_offload())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(rf.peak_bytes < ro.peak_bytes);
        assert!(rf.counters.recompute_forwards > 0);
    }

    #[test]
    fn monotone_peak_ordering_across_the_paper_stack() {
        let net = alex_stub(8);
        let peaks: Vec<u64> = [
            Policy::baseline(),
            Policy::liveness_only(),
            Policy::liveness_offload(),
            Policy::full_memory(),
        ]
        .iter()
        .map(|p| {
            Executor::new(&net, spec(), *p)
                .unwrap()
                .run_iteration()
                .unwrap()
                .peak_bytes
        })
        .collect();
        assert!(
            peaks.windows(2).all(|w| w[1] <= w[0]),
            "peaks must be non-increasing: {peaks:?}"
        );
        // The >50% claim concerns scheduled tensors; weights are a constant
        // offset both configurations carry.
        let w = Executor::new(&net, spec(), Policy::baseline())
            .unwrap()
            .cost
            .total_weight_bytes();
        assert!(
            peaks[3] - w < (peaks[0] - w) / 2,
            "full stack should save >50% of tensor memory: {peaks:?} (weights {w})"
        );
    }

    #[test]
    fn speed_centric_recomputes_each_segment_once() {
        let net = alex_stub(8);
        let pol = Policy {
            recompute: RecomputeMode::SpeedCentric,
            ..Policy::full_memory()
        };
        let mut ex = Executor::new(&net, spec(), pol).unwrap();
        let r = ex.run_iteration().unwrap();
        // Segments: [ACT,LRN,POOL], [ACT,LRN,POOL], [ACT], [ACT,DROPOUT]
        // → 3+3+1+2 = 9 extra forwards.
        assert_eq!(r.counters.recompute_forwards, 9);
        assert_eq!(ex.rplan.predicted_speed_centric_extra(), 9);
    }

    #[test]
    fn memory_centric_recomputes_more_but_never_raises_peak() {
        let net = alex_stub(8);
        let mk = |mode| Policy {
            recompute: mode,
            ..Policy::full_memory()
        };
        let rs = Executor::new(&net, spec(), mk(RecomputeMode::SpeedCentric))
            .unwrap()
            .run_iteration()
            .unwrap();
        let rm = Executor::new(&net, spec(), mk(RecomputeMode::MemoryCentric))
            .unwrap()
            .run_iteration()
            .unwrap();
        let rc = Executor::new(&net, spec(), mk(RecomputeMode::CostAware))
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(rm.counters.recompute_forwards > rs.counters.recompute_forwards);
        assert!(rm.peak_bytes <= rs.peak_bytes);
        // Cost-aware: compute near speed-centric, memory at the floor.
        assert!(rc.counters.recompute_forwards >= rs.counters.recompute_forwards);
        assert!(rc.counters.recompute_forwards <= rm.counters.recompute_forwards);
        assert!(rc.peak_bytes <= rs.peak_bytes);
    }

    #[test]
    fn tensor_cache_eliminates_traffic_when_dram_sufficient() {
        let net = alex_stub(16);
        let r = Executor::new(&net, spec(), Policy::superneurons())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert_eq!(
            r.d2h_bytes + r.h2d_bytes,
            0,
            "no transfers should occur when everything fits"
        );
        let r2 = Executor::new(&net, spec(), Policy::superneurons_no_cache())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(
            r2.d2h_bytes > 0,
            "without the cache, eager offload moves bytes"
        );
    }

    #[test]
    fn cache_evicts_under_pressure_instead_of_oom() {
        let net = alex_stub(16);
        // Find a capacity that fails without the cache but works with it.
        let full = Executor::new(&net, spec(), Policy::full_memory())
            .unwrap()
            .run_iteration()
            .unwrap();
        let tight = spec().with_dram(full.peak_bytes + 4 * MB);
        let r = Executor::new(&net, tight.clone(), Policy::superneurons())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(r.peak_bytes <= tight.dram_bytes);
        // Liveness-only cannot fit in the same budget.
        // An Err from Executor::new (even the weights didn't fit) is also
        // acceptable.
        if let Ok(mut ex) = Executor::new(&net, tight, Policy::liveness_only()) {
            assert!(ex.run_iteration().is_err());
        }
    }

    #[test]
    fn oom_when_truly_too_small() {
        let net = alex_stub(32);
        let tiny = spec().with_dram(8 * MB);
        match Executor::new(&net, tiny, Policy::superneurons()) {
            Err(_) => {}
            Ok(mut ex) => {
                let e = ex.run_iteration().unwrap_err();
                assert!(matches!(e, ExecError::Oom { .. }), "{e}");
            }
        }
    }

    #[test]
    fn dynamic_workspace_speeds_up_iterations() {
        let net = alex_stub(16);
        let slow = Policy {
            workspace: WorkspacePolicy::None,
            ..Policy::superneurons()
        };
        let rs = Executor::new(&net, spec(), slow)
            .unwrap()
            .run_iteration()
            .unwrap();
        let rf = Executor::new(&net, spec(), Policy::superneurons())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(
            rf.iter_time < rs.iter_time,
            "dynamic workspaces must be faster: {} vs {}",
            rf.iter_time,
            rs.iter_time
        );
    }

    #[test]
    fn pool_allocator_is_faster_than_cuda() {
        let net = alex_stub(16);
        let rp = Executor::new(&net, spec(), Policy::superneurons())
            .unwrap()
            .run_iteration()
            .unwrap();
        let rc = Executor::new(&net, spec(), Policy::superneurons_cuda_alloc())
            .unwrap()
            .run_iteration()
            .unwrap();
        assert!(rc.alloc_time.as_ns() > rp.alloc_time.as_ns() * 10);
        assert!(rc.iter_time > rp.iter_time);
    }

    #[test]
    fn trace_covers_every_step() {
        let net = alex_stub(8);
        let mut ex = Executor::new(&net, spec(), Policy::liveness_only()).unwrap();
        ex.run_iteration().unwrap();
        assert_eq!(ex.trace.records.len(), ex.route.total_steps());
        assert!(ex.trace.peak_bytes() > 0);
        // Workspace records exist for conv steps (fwd + bwd each).
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, sn_graph::LayerKind::Conv { .. }))
            .count();
        // WorkspacePolicy::None still records fallback rows for conv layers.
        assert_eq!(ex.ws_records.len(), 2 * convs);
    }

    #[test]
    fn async_engine_overlaps_and_beats_synchronous_baseline() {
        // The ISSUE-2 acceptance scenario: offloading on a memory-constrained
        // VGG-style net. The async multi-stream engine must be strictly
        // faster than the synchronous-transfer baseline, with a positive
        // overlap fraction, at an unchanged peak.
        let net = vgg_stub(16);
        let peak = Executor::new(&net, spec(), Policy::liveness_offload())
            .unwrap()
            .run_iteration()
            .unwrap()
            .peak_bytes;
        let tight = spec().with_dram(peak + 8 * MB);

        let run = |policy: Policy| {
            let mut ex = Executor::new(&net, tight.clone(), policy).unwrap();
            ex.run_iteration().unwrap();
            ex.run_iteration().unwrap() // warm iteration
        };
        let async_r = run(Policy::liveness_offload());
        let sync_r = run(Policy::liveness_offload().synchronous());

        assert!(async_r.d2h_bytes > 0 && async_r.h2d_bytes > 0);
        assert!(
            async_r.iter_time < sync_r.iter_time,
            "async {} must beat sync {}",
            async_r.iter_time,
            sync_r.iter_time
        );
        assert!(
            async_r.overlap_fraction() > 0.0,
            "transfers must hide under compute"
        );
        assert_eq!(
            sync_r.overlap_fraction(),
            0.0,
            "serialized transfers cannot overlap compute"
        );
        assert_eq!(
            async_r.peak_bytes, sync_r.peak_bytes,
            "overlap must not change peak device memory"
        );
        // Same bytes moved either way — overlap changes *when*, not *what*.
        assert_eq!(async_r.d2h_bytes, sync_r.d2h_bytes);
        assert_eq!(async_r.h2d_bytes, sync_r.h2d_bytes);
    }

    #[test]
    fn eviction_offloads_are_asynchronous_under_the_cache() {
        // Tensor-cache evictions enqueue their copy-out on the D2H stream;
        // the run stays within DRAM and is never slower than the serialized
        // baseline.
        let net = vgg_stub(16);
        let full = Executor::new(&net, spec(), Policy::full_memory())
            .unwrap()
            .run_iteration()
            .unwrap();
        let tight = spec().with_dram(full.peak_bytes + 4 * MB);
        let run = |policy: Policy| {
            let mut ex = Executor::new(&net, tight.clone(), policy).unwrap();
            ex.run_iteration().unwrap();
            ex.run_iteration().unwrap()
        };
        let async_r = run(Policy::superneurons());
        let sync_r = run(Policy::superneurons().synchronous());
        assert!(async_r.counters.evictions > 0, "pressure must evict");
        assert!(async_r.peak_bytes <= tight.dram_bytes);
        assert_eq!(async_r.peak_bytes, sync_r.peak_bytes);
        assert!(async_r.iter_time <= sync_r.iter_time);
        // Identical scheduling decisions either way.
        assert_eq!(async_r.counters.evictions, sync_r.counters.evictions);
        assert_eq!(async_r.d2h_bytes, sync_r.d2h_bytes);
    }

    #[test]
    fn eager_offload_with_cache_reclaims_under_pressure() {
        // Regression: a completed-but-unreapable eager offload (its forward
        // consumers still pending) must not shadow an eviction's in-flight
        // copy-out as the reclamation ladder's earliest wait — that
        // combination used to burn every victim without freeing a byte and
        // report a spurious OOM.
        let net = vgg_stub(16);
        let full = Executor::new(&net, spec(), Policy::full_memory())
            .unwrap()
            .run_iteration()
            .unwrap();
        let tight = spec().with_dram(full.peak_bytes + 4 * MB);
        let pol = Policy {
            eager_offload: true,
            ..Policy::superneurons()
        };
        let mut ex = Executor::new(&net, tight.clone(), pol).unwrap();
        let r = ex.run_iteration().unwrap();
        assert!(r.peak_bytes <= tight.dram_bytes);
        assert!(r.d2h_bytes > 0);
    }

    #[test]
    fn stream_busy_times_bounded_by_iteration_makespan() {
        let net = vgg_stub(16);
        let peak = Executor::new(&net, spec(), Policy::liveness_offload())
            .unwrap()
            .run_iteration()
            .unwrap()
            .peak_bytes;
        let tight = spec().with_dram(peak + 8 * MB);
        let mut ex = Executor::new(&net, tight, Policy::liveness_offload()).unwrap();
        let r = ex.run_iteration().unwrap();
        assert!(r.compute_busy <= r.iter_time);
        assert!(r.transfer_busy > SimTime::ZERO);
        // The union of DMA busy spans fits in the iteration too (transfers
        // are drained before the report is cut).
        assert!(r.transfer_busy <= r.iter_time);
        assert!(r.overlapped <= r.compute_busy.min(r.transfer_busy));
        assert!(r.overlap_fraction() >= 0.0 && r.overlap_fraction() <= 1.0);
    }

    #[test]
    fn repeated_iterations_are_stable() {
        let net = alex_stub(8);
        let mut ex = Executor::new(&net, spec(), Policy::superneurons()).unwrap();
        let r1 = ex.run_iteration().unwrap();
        let r2 = ex.run_iteration().unwrap();
        let r3 = ex.run_iteration().unwrap();
        assert_eq!(r2.peak_bytes, r3.peak_bytes);
        assert_eq!(r2.iter_time, r3.iter_time);
        assert_eq!(
            r1.counters.recompute_forwards,
            r3.counters.recompute_forwards
        );
        // No leaks: after reset, only the weights remain.
        ex.reset_iteration_state();
        assert_eq!(
            ex.dev.alloc.used(),
            ex.cost.total_weight_bytes().div_ceil(1024) * 1024
        );
    }
}
