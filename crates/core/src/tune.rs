//! Seeded, deterministic policy autotuning over the memoized compiler.
//!
//! The paper's memory-scheduling decisions — prefetch window, eager offload,
//! recompute segmentation, cache replacement, workspace budgeting — are hand
//! heuristics bundled into the [`Policy`] presets. This module closes the
//! planner loop: because whole-plan compilation is memoized (tens of
//! thousands of plans per second warm) and a simulated iteration is cheap
//! and exact, the presets can be *searched* instead of hand-picked.
//!
//! ## Search
//!
//! Per `(Net::fingerprint, DeviceSpec, replicas, precision, seed)` the tuner
//! explores the policy lattice — [`Policy::prefetch_depth`], eager offload,
//! [`RecomputeMode`],
//! [`CachePolicy`],
//! [`WorkspacePolicy`], all-reduce bucket bytes, and
//! the UTP tier table — in three stages:
//!
//! 1. **Seeds**: the five hand presets are evaluated and the best measured
//!    one becomes the incumbent, so the tuned result is never worse than the
//!    best hand preset *by construction*.
//! 2. **Successive halving** over a seeded random sample of the lattice:
//!    every candidate is feasibility-checked and scored by the compiled
//!    plan's analytic time estimate (one memoized compile each — the cheap
//!    fidelity rung); only the top few survivors graduate to a measured
//!    cold + warm [`GroupExecutor`] iteration (the expensive rung).
//! 3. **Coordinate descent** from the incumbent: each knob axis is swept
//!    while the others are held fixed, repeating until a full pass finds no
//!    strictly better neighbour.
//!
//! Candidate batches fan out over the rayon-shim worker pool
//! ([`rayon::par_map_workers`]); results come back in input order and every
//! selection tie breaks on input index, so **the same seed produces the
//! same [`TunedPolicy`] and the same search trace for any worker count**.
//! [`Policy::validate`] prunes contradictory knob cells before they reach
//! the compiler.
//!
//! ## Output
//!
//! [`search`] returns the winning policy plus its full trace; [`tune_memo`]
//! memoizes outcomes per [`TuneKey`] (Arc-shared, like the planner's graph
//! analyses) and registers each distinct winner in a process-wide registry
//! under a [`TunedId`], which is how `sn-cluster`'s `PolicyPreset::Tuned`
//! rung names a tuned bundle without the cluster crate ever holding a
//! `Policy` by value.

use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use fxhash::{FxHashMap, FxHashSet, FxHasher};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sn_graph::Net;
use sn_sim::{DeviceSpec, SimTime};

use crate::executor::ExecError;
use crate::group::{GroupConfig, GroupExecutor, DEFAULT_BUCKET_BYTES};
use crate::parallel::Interconnect;
use crate::plan;
use crate::policy::{AllocatorKind, CachePolicy, Policy, RecomputeMode, WorkspacePolicy};
use crate::session::plan_prediction;
use crate::tiers::TierConfig;

/// Prefetch-ahead windows the sampler draws from (the hand presets all sit
/// at 8; deeper windows can hide more transfer on fast fabrics, shallower
/// ones waste less residency on slow ones).
const DEPTHS: [u32; 6] = [1, 2, 4, 8, 16, 32];
/// All-reduce bucket targets (only searched for multi-replica gangs).
const BUCKETS: [u64; 5] = [2 << 20, 4 << 20, 8 << 20, 16 << 20, 64 << 20];
const RECOMPUTES: [RecomputeMode; 4] = [
    RecomputeMode::None,
    RecomputeMode::SpeedCentric,
    RecomputeMode::MemoryCentric,
    RecomputeMode::CostAware,
];
const CACHES: [CachePolicy; 3] = [CachePolicy::Lru, CachePolicy::Fifo, CachePolicy::Mru];
const WORKSPACES: [WorkspacePolicy; 3] = [
    WorkspacePolicy::None,
    WorkspacePolicy::Dynamic,
    WorkspacePolicy::Capped(64 << 20),
];

/// The UTP tier tables the sampler considers: host-only (the default every
/// preset ships) and a tiered pool with a peer-GPU tier, whose higher
/// bandwidth (`Tier::gbps`) genuinely shortens offload/prefetch transfers.
fn tier_choices() -> [TierConfig; 2] {
    [
        TierConfig::default(),
        TierConfig::full(8 << 30, 256 << 30, 256 << 30),
    ]
}

/// One point of the search lattice: a full policy bundle plus the group
/// all-reduce bucket target (a gang knob that lives outside [`Policy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    pub policy: Policy,
    pub bucket_bytes: u64,
}

/// Tuning request parameters. `workers` is deliberately **not** part of the
/// memo key: the determinism contract is that it never changes the result.
#[derive(Debug, Clone, Copy)]
pub struct TuneConfig {
    /// Gang size the objective is measured at (1 = single device).
    pub replicas: usize,
    /// Fabric for multi-replica objectives.
    pub interconnect: Interconnect,
    /// Element precision every candidate carries.
    pub precision: sn_graph::Precision,
    /// RNG seed for the sampling stage.
    pub seed: u64,
    /// Random lattice samples for the halving stage.
    pub samples: usize,
    /// Measured survivors of the halving stage.
    pub survivors: usize,
    /// Maximum coordinate-descent passes.
    pub passes: usize,
    /// `par_map` worker count; 0 = the machine's hardware parallelism.
    pub workers: usize,
}

impl TuneConfig {
    pub fn new(replicas: usize, interconnect: Interconnect) -> TuneConfig {
        TuneConfig {
            replicas,
            interconnect,
            precision: sn_graph::Precision::fp32(),
            seed: 0x5eed_0001,
            samples: 32,
            survivors: 6,
            passes: 2,
            workers: 0,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_precision(mut self, precision: sn_graph::Precision) -> Self {
        self.precision = precision;
        self
    }

    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

/// A tuned policy bundle: the winning lattice point plus the measurements
/// that justified it. Every field is a deterministic function of
/// `(net, device, TuneConfig minus workers)` — the seeded-determinism tests
/// compare whole values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TunedPolicy {
    pub policy: Policy,
    pub bucket_bytes: u64,
    /// Measured warm step time of the winner (gang step for replicas > 1).
    pub step_time: SimTime,
    /// The winner's compiled plan peak.
    pub plan_peak_bytes: u64,
    /// The winner's executed peak over a cold + warm iteration — equals
    /// `plan_peak_bytes` byte-exactly (the interpreter replays the plan).
    pub executed_peak_bytes: u64,
    /// Best hand preset's measured warm step time (the incumbent the search
    /// started from — `step_time <= hand_step_time` by construction).
    pub hand_step_time: SimTime,
    /// Name of that best hand preset.
    pub hand_name: &'static str,
    pub seed: u64,
    /// Feasibility evaluations spent (each is exactly one memoized-compile
    /// lookup via [`plan_prediction`]).
    pub evals: u64,
    /// Lattice cells skipped: invalid knob combos, duplicates, infeasible
    /// points, and halving-stage drops.
    pub pruned: u64,
    /// FxHash digest of the rendered search trace; identical seeds produce
    /// identical digests for any worker count.
    pub trace_digest: u64,
}

/// A full search result: the tuned bundle plus the rendered trace and the
/// process-state-dependent statistics that must stay *out* of
/// [`TunedPolicy`] (memo hit counts depend on what ran earlier).
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    pub tuned: TunedPolicy,
    /// One line per search event, in deterministic order.
    pub trace: Vec<String>,
    /// Plan-memo hits observed inside the search's feasibility batches.
    pub memo_hits: u64,
    /// Plan-memo lookups (hits + misses) those batches performed — equals
    /// `tuned.evals` (the `metrics_consistent` bench gate).
    pub memo_lookups: u64,
    /// Real wall-clock time of the search.
    pub wall: std::time::Duration,
}

struct TuneMetrics {
    evals: sn_telemetry::Counter,
    pruned: sn_telemetry::Counter,
    memo_hits: sn_telemetry::Counter,
    memo_lookups: sn_telemetry::Counter,
    wall_ns: sn_telemetry::Histogram,
}

/// `tune.*` handles on the process-wide registry, resolved once.
fn tune_metrics() -> &'static TuneMetrics {
    static HANDLES: OnceLock<TuneMetrics> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let reg = sn_telemetry::global();
        TuneMetrics {
            evals: reg.counter("tune.evals"),
            pruned: reg.counter("tune.pruned"),
            memo_hits: reg.counter("tune.memo_hits"),
            memo_lookups: reg.counter("tune.memo_lookups"),
            wall_ns: reg.histogram("tune.search_wall_ns"),
        }
    })
}

/// Compact deterministic signature of a candidate for trace lines.
fn sig(c: &Candidate) -> String {
    let p = &c.policy;
    let rc = match p.recompute {
        RecomputeMode::None => "none",
        RecomputeMode::SpeedCentric => "speed",
        RecomputeMode::MemoryCentric => "mem",
        RecomputeMode::CostAware => "cost",
    };
    let ws = match p.workspace {
        WorkspacePolicy::None => "none".into(),
        WorkspacePolicy::Dynamic => "dyn".into(),
        WorkspacePolicy::Capped(b) => format!("cap{}", b >> 20),
    };
    let cp = match p.cache_policy {
        CachePolicy::Lru => "lru",
        CachePolicy::Fifo => "fifo",
        CachePolicy::Mru => "mru",
    };
    let tiers = if p.tiers == TierConfig::default() {
        "local"
    } else {
        "full"
    };
    format!(
        "lv{}of{}eo{}tc{}pf{}d{} rc={rc} ws={ws} cp={cp} t={tiers} bkt={}M",
        p.liveness as u8,
        p.offload as u8,
        p.eager_offload as u8,
        p.tensor_cache as u8,
        p.prefetch as u8,
        p.prefetch_depth,
        c.bucket_bytes >> 20,
    )
}

/// What a measured candidate costs.
#[derive(Debug, Clone, Copy)]
struct Measured {
    step_time: SimTime,
    plan_peak: u64,
    executed_peak: u64,
}

/// Objective: a cold + warm iteration through the group interpreter (one
/// replica degenerates to a plain executor walk with no collectives). The
/// warm step is the score; both iterations' peaks feed the byte-exactness
/// contract.
fn measure(
    net: &Net,
    spec: &DeviceSpec,
    cand: &Candidate,
    cfg: &TuneConfig,
) -> Result<Measured, ExecError> {
    let gcfg = GroupConfig::new(cfg.replicas.max(1), cfg.interconnect)
        .with_bucket_bytes(cand.bucket_bytes);
    let mut gx = GroupExecutor::new(net, spec.clone(), cand.policy, gcfg)?;
    let plan_peak = gx.gplan.replica.plan.peak_bytes;
    let cold = gx.run_iteration()?;
    let warm = gx.run_iteration()?;
    debug_assert!(warm.peaks_match, "tuned gang replica diverged from plan");
    Ok(Measured {
        step_time: warm.step_time,
        plan_peak,
        executed_peak: cold.replica.peak_bytes.max(warm.replica.peak_bytes),
    })
}

/// Draw one lattice point. The knobs are sampled independently (including
/// combinations [`Policy::validate`] will reject — the caller counts those
/// as pruned cells, which is the point of the satellite).
fn random_candidate(rng: &mut SmallRng, cfg: &TuneConfig) -> Candidate {
    let tiers = tier_choices();
    let policy = Policy {
        liveness: rng.gen_bool(0.85),
        keep_all_forward: false,
        inplace_act: false,
        offload: rng.gen_bool(0.75),
        eager_offload: rng.gen_bool(0.4),
        tensor_cache: rng.gen_bool(0.6),
        prefetch: rng.gen_bool(0.8),
        prefetch_depth: DEPTHS[rng.gen_range(0..DEPTHS.len())],
        pinned_host: true,
        sync_transfers: false,
        recompute: RECOMPUTES[rng.gen_range(0..RECOMPUTES.len())],
        allocator: AllocatorKind::HeapPool,
        workspace: WORKSPACES[rng.gen_range(0..WORKSPACES.len())],
        cache_policy: CACHES[rng.gen_range(0..CACHES.len())],
        tiers: tiers[rng.gen_range(0..tiers.len())],
        precision: cfg.precision,
    };
    let bucket_bytes = if cfg.replicas > 1 {
        BUCKETS[rng.gen_range(0..BUCKETS.len())]
    } else {
        DEFAULT_BUCKET_BYTES
    };
    Candidate {
        policy,
        bucket_bytes,
    }
}

/// The hand presets, at the request's precision — the search's stage-0
/// seeds and its floor.
fn hand_presets(cfg: &TuneConfig) -> Vec<(&'static str, Candidate)> {
    [
        ("baseline", Policy::baseline()),
        ("liveness_only", Policy::liveness_only()),
        ("liveness_offload", Policy::liveness_offload()),
        ("full_memory", Policy::full_memory()),
        ("superneurons", Policy::superneurons()),
    ]
    .into_iter()
    .map(|(n, p)| {
        (
            n,
            Candidate {
                policy: p.with_precision(cfg.precision),
                bucket_bytes: DEFAULT_BUCKET_BYTES,
            },
        )
    })
    .collect()
}

/// Search state threaded through the stages.
struct Search<'a> {
    net: &'a Net,
    spec: &'a DeviceSpec,
    cfg: &'a TuneConfig,
    workers: usize,
    trace: Vec<String>,
    evals: u64,
    pruned: u64,
    memo_hits: u64,
    memo_lookups: u64,
    /// Feasibility verdict per policy: plan peak + analytic estimate, or
    /// `None` for does-not-fit. Candidates differing only in bucket bytes
    /// share a verdict (buckets never touch the heap pool).
    feas: FxHashMap<Policy, Option<(u64, SimTime)>>,
    /// Measured candidates (the expensive rung), cached across stages.
    measured: FxHashMap<Candidate, Option<Measured>>,
}

impl Search<'_> {
    /// Feasibility-check `policies` in one `par_map` batch over the plan
    /// memo. Exactly one memoized-compile lookup per *uncached* policy; the
    /// memo-stat delta around the batch is the attribution the
    /// `metrics_consistent` gate checks.
    fn feasibility_batch(&mut self, stage: &str, policies: &[Policy]) {
        let fresh: Vec<Policy> = {
            let mut seen = FxHashSet::default();
            policies
                .iter()
                .filter(|p| !self.feas.contains_key(*p) && seen.insert(**p))
                .copied()
                .collect()
        };
        if fresh.is_empty() {
            return;
        }
        let before = plan::plan_memo_stats();
        let net = self.net;
        let spec = self.spec;
        let verdicts = rayon::par_map_workers(&fresh, self.workers, |p| {
            plan_prediction(net, spec, *p)
                .ok()
                .map(|pred| (pred.peak_bytes, pred.iter_time))
        });
        let after = plan::plan_memo_stats();
        self.evals += fresh.len() as u64;
        self.memo_hits += after.hits.saturating_sub(before.hits);
        self.memo_lookups +=
            (after.hits + after.misses).saturating_sub(before.hits + before.misses);
        for (p, v) in fresh.into_iter().zip(verdicts) {
            if v.is_none() {
                self.pruned += 1;
            }
            self.trace.push(match v {
                Some((peak, est)) => format!(
                    "{stage} feas {} peak={peak} est={}ns",
                    sig(&Candidate {
                        policy: p,
                        bucket_bytes: DEFAULT_BUCKET_BYTES
                    }),
                    est.as_ns()
                ),
                None => format!(
                    "{stage} infeasible {}",
                    sig(&Candidate {
                        policy: p,
                        bucket_bytes: DEFAULT_BUCKET_BYTES
                    })
                ),
            });
            self.feas.insert(p, v);
        }
    }

    /// The expensive rung: measure a candidate (memoized), tracing the
    /// result. Returns `None` for infeasible/failed candidates.
    fn measure_cached(&mut self, stage: &str, cand: &Candidate) -> Option<Measured> {
        if let Some(hit) = self.measured.get(cand) {
            return *hit;
        }
        let m = measure(self.net, self.spec, cand, self.cfg).ok();
        match &m {
            Some(m) => self.trace.push(format!(
                "{stage} measured {} step={}ns peak={}",
                sig(cand),
                m.step_time.as_ns(),
                m.executed_peak
            )),
            None => self
                .trace
                .push(format!("{stage} measure-failed {}", sig(cand))),
        }
        self.measured.insert(*cand, m);
        m
    }
}

/// Run the full search. Pure modulo global memo warmth: the returned
/// [`TunedPolicy`] and trace are bit-identical for the same
/// `(net, spec, cfg)` regardless of worker count or cache state.
pub fn search(net: &Net, spec: &DeviceSpec, cfg: &TuneConfig) -> Result<SearchOutcome, ExecError> {
    let t0 = Instant::now();
    let workers = if cfg.workers == 0 {
        rayon::current_num_threads()
    } else {
        cfg.workers
    };
    let mut s = Search {
        net,
        spec,
        cfg,
        workers,
        trace: Vec::new(),
        evals: 0,
        pruned: 0,
        memo_hits: 0,
        memo_lookups: 0,
        feas: FxHashMap::default(),
        measured: FxHashMap::default(),
    };

    // Stage 0 — the hand presets seed the incumbent.
    let hands = hand_presets(cfg);
    let hand_policies: Vec<Policy> = hands.iter().map(|(_, c)| c.policy).collect();
    s.feasibility_batch("seed", &hand_policies);
    let mut incumbent: Option<(Candidate, Measured, &'static str)> = None;
    for (name, cand) in &hands {
        if s.feas.get(&cand.policy).copied().flatten().is_none() {
            continue;
        }
        if let Some(m) = s.measure_cached("seed", cand) {
            let better = match &incumbent {
                None => true,
                Some((_, best, _)) => m.step_time < best.step_time,
            };
            if better {
                incumbent = Some((*cand, m, *name));
            }
        }
    }
    let Some((hand_cand, hand_m, hand_name)) = incumbent else {
        // Nothing fits — surface the strongest preset's compile error.
        let strongest = hands.last().expect("presets are non-empty").1.policy;
        return Err(plan::compile_memo(net, spec, strongest)
            .err()
            .unwrap_or(ExecError::HostExhausted { requested: 0 }));
    };
    s.trace.push(format!(
        "seed incumbent={hand_name} step={}ns",
        hand_m.step_time.as_ns()
    ));
    let (mut best_cand, mut best_m) = (hand_cand, hand_m);

    // Stage 1 — seeded sampling + successive halving. The cheap rung is the
    // compiled plan's analytic estimate; only `survivors` graduate to a
    // measured iteration.
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut seen: FxHashSet<Candidate> = hands.iter().map(|(_, c)| *c).collect();
    let mut sampled: Vec<Candidate> = Vec::new();
    for _ in 0..cfg.samples {
        let c = random_candidate(&mut rng, cfg);
        if let Err(why) = c.policy.validate() {
            s.pruned += 1;
            s.trace.push(format!("sample invalid ({why}) {}", sig(&c)));
            continue;
        }
        if !seen.insert(c) {
            s.pruned += 1;
            s.trace.push(format!("sample duplicate {}", sig(&c)));
            continue;
        }
        sampled.push(c);
    }
    let sample_policies: Vec<Policy> = sampled.iter().map(|c| c.policy).collect();
    s.feasibility_batch("sample", &sample_policies);
    let mut ranked: Vec<(usize, Candidate, SimTime)> = sampled
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            s.feas
                .get(&c.policy)
                .copied()
                .flatten()
                .map(|(_, est)| (i, *c, est))
        })
        .collect();
    ranked.sort_by_key(|(i, _, est)| (*est, *i));
    let survivors = cfg.survivors.min(ranked.len());
    s.pruned += (ranked.len() - survivors) as u64;
    s.trace.push(format!(
        "halving kept={survivors} dropped={}",
        ranked.len() - survivors
    ));
    for (_, cand, _) in ranked.into_iter().take(survivors) {
        if let Some(m) = s.measure_cached("halving", &cand) {
            if m.step_time < best_m.step_time {
                s.trace.push(format!(
                    "halving new-best {} step={}ns",
                    sig(&cand),
                    m.step_time.as_ns()
                ));
                best_cand = cand;
                best_m = m;
            }
        }
    }

    // Stage 2 — coordinate descent from the incumbent: one axis at a time,
    // until a full pass finds no strictly better neighbour.
    let n_axes = neighbour_axes(&best_cand, cfg).len();
    for pass in 0..cfg.passes {
        let mut improved = false;
        for axis_idx in 0..n_axes {
            // Recompute from the *current* incumbent: an adoption on one
            // axis immediately reshapes the neighbourhood of the next.
            let (axis_name, neighbours) = neighbour_axes(&best_cand, cfg)
                .into_iter()
                .nth(axis_idx)
                .expect("axis count is stable");
            let mut fresh: Vec<Candidate> = Vec::new();
            for c in neighbours {
                if c == best_cand {
                    continue;
                }
                if let Err(why) = c.policy.validate() {
                    s.pruned += 1;
                    s.trace.push(format!("descent invalid ({why}) {}", sig(&c)));
                    continue;
                }
                fresh.push(c);
            }
            let policies: Vec<Policy> = fresh.iter().map(|c| c.policy).collect();
            s.feasibility_batch("descent", &policies);
            for cand in fresh {
                if s.feas.get(&cand.policy).copied().flatten().is_none() {
                    continue;
                }
                if let Some(m) = s.measure_cached("descent", &cand) {
                    if m.step_time < best_m.step_time {
                        s.trace.push(format!(
                            "descent[{pass}:{axis_name}] new-best {} step={}ns",
                            sig(&cand),
                            m.step_time.as_ns()
                        ));
                        best_cand = cand;
                        best_m = m;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            s.trace.push(format!("descent converged pass={pass}"));
            break;
        }
    }

    s.trace.push(format!(
        "winner {} step={}ns hand={hand_name} hand_step={}ns evals={} pruned={}",
        sig(&best_cand),
        best_m.step_time.as_ns(),
        hand_m.step_time.as_ns(),
        s.evals,
        s.pruned
    ));

    let mut hasher = FxHasher::default();
    for line in &s.trace {
        line.hash(&mut hasher);
    }
    let trace_digest = hasher.finish();

    let wall = t0.elapsed();
    let metrics = tune_metrics();
    metrics.evals.add(s.evals);
    metrics.pruned.add(s.pruned);
    metrics.memo_hits.add(s.memo_hits);
    metrics.memo_lookups.add(s.memo_lookups);
    metrics.wall_ns.record(wall.as_nanos() as u64);

    Ok(SearchOutcome {
        tuned: TunedPolicy {
            policy: best_cand.policy,
            bucket_bytes: best_cand.bucket_bytes,
            step_time: best_m.step_time,
            plan_peak_bytes: best_m.plan_peak,
            executed_peak_bytes: best_m.executed_peak,
            hand_step_time: hand_m.step_time,
            hand_name,
            seed: cfg.seed,
            evals: s.evals,
            pruned: s.pruned,
            trace_digest,
        },
        trace: s.trace,
        memo_hits: s.memo_hits,
        memo_lookups: s.memo_lookups,
        wall,
    })
}

/// The coordinate-descent axes around `base`: every value of each knob with
/// the others held fixed.
fn neighbour_axes(base: &Candidate, cfg: &TuneConfig) -> Vec<(&'static str, Vec<Candidate>)> {
    let p = base.policy;
    let mut axes: Vec<(&'static str, Vec<Candidate>)> = Vec::new();
    let with_policy = |np: Policy| Candidate {
        policy: np,
        bucket_bytes: base.bucket_bytes,
    };
    axes.push((
        "prefetch_depth",
        DEPTHS
            .iter()
            .map(|&d| with_policy(p.with_prefetch_depth(d)))
            .collect(),
    ));
    axes.push((
        "eager_offload",
        [false, true]
            .iter()
            .map(|&e| {
                with_policy(Policy {
                    eager_offload: e,
                    // Eager offload and the cache's pressure-driven policy
                    // are mutually exclusive; flipping one flips the other.
                    tensor_cache: if e { false } else { p.tensor_cache },
                    ..p
                })
            })
            .collect(),
    ));
    axes.push((
        "recompute",
        RECOMPUTES
            .iter()
            .map(|&r| with_policy(Policy { recompute: r, ..p }))
            .collect(),
    ));
    axes.push((
        "cache_policy",
        CACHES
            .iter()
            .map(|&cp| {
                with_policy(Policy {
                    cache_policy: cp,
                    ..p
                })
            })
            .collect(),
    ));
    axes.push((
        "workspace",
        WORKSPACES
            .iter()
            .map(|&w| with_policy(Policy { workspace: w, ..p }))
            .collect(),
    ));
    axes.push((
        "tiers",
        tier_choices()
            .iter()
            .map(|&t| with_policy(Policy { tiers: t, ..p }))
            .collect(),
    ));
    if cfg.replicas > 1 {
        axes.push((
            "bucket_bytes",
            BUCKETS
                .iter()
                .map(|&b| Candidate {
                    policy: p,
                    bucket_bytes: b,
                })
                .collect(),
        ));
    }
    axes
}

// ---------------------------------------------------------------------
// The tuned-policy registry and the tune memo.
// ---------------------------------------------------------------------

/// Process-wide handle to a registered [`TunedPolicy`]. `Copy + Ord + Hash`
/// so `sn-cluster`'s `PolicyPreset::Tuned(TunedId)` stays a plain value in
/// admission memo keys and elastic ladders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TunedId(pub u32);

static REGISTRY: OnceLock<Mutex<Vec<Arc<TunedPolicy>>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<Arc<TunedPolicy>>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a tuned bundle, returning its process-wide id. Ids are never
/// recycled; registration is append-only so a `TunedId` held by a running
/// cluster simulation can never dangle.
pub fn register(t: TunedPolicy) -> TunedId {
    let mut reg = registry().lock().unwrap();
    let id = TunedId(u32::try_from(reg.len()).expect("tuned registry overflow"));
    reg.push(Arc::new(t));
    id
}

/// Look up a registered bundle (Arc-shared).
pub fn get(id: TunedId) -> Option<Arc<TunedPolicy>> {
    registry().lock().unwrap().get(id.0 as usize).cloned()
}

/// The [`Policy`] a registered id names. Panics on an unregistered id —
/// that is a cross-process or stale-handle bug, never a runtime condition.
pub fn policy_for(id: TunedId) -> Policy {
    get(id)
        .map(|t| t.policy)
        .unwrap_or_else(|| panic!("TunedId({}) is not registered in this process", id.0))
}

/// The all-reduce bucket target a registered id names (the group-config
/// knob admission must apply when measuring a tuned gang).
pub fn bucket_bytes_for(id: TunedId) -> u64 {
    get(id)
        .map(|t| t.bucket_bytes)
        .unwrap_or(DEFAULT_BUCKET_BYTES)
}

/// Number of bundles registered so far.
pub fn registered_count() -> usize {
    registry().lock().unwrap().len()
}

/// Everything a tuning outcome depends on, folded bit-exactly — the same
/// discipline as the plan memo's `PlanKey`. `workers` is excluded on
/// purpose: worker count must never change the answer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TuneKey {
    fp: (u64, u64),
    dev_name: String,
    dram: u64,
    gflops_bits: u64,
    mem_bw_bits: u64,
    h2d_bits: u64,
    d2h_bits: u64,
    replicas: usize,
    ic_gbps_bits: u64,
    ic_latency_ns: u64,
    precision: sn_graph::Precision,
    seed: u64,
    samples: usize,
    survivors: usize,
    passes: usize,
}

impl TuneKey {
    fn new(net: &Net, spec: &DeviceSpec, cfg: &TuneConfig) -> TuneKey {
        TuneKey {
            fp: net.fingerprint(),
            dev_name: spec.name.clone(),
            dram: spec.dram_bytes,
            gflops_bits: spec.peak_gflops.to_bits(),
            mem_bw_bits: spec.mem_bw_gbps.to_bits(),
            h2d_bits: spec.pcie_h2d_gbps.to_bits(),
            d2h_bits: spec.pcie_d2h_gbps.to_bits(),
            replicas: cfg.replicas,
            ic_gbps_bits: cfg.interconnect.gbps.to_bits(),
            ic_latency_ns: cfg.interconnect.latency.0,
            precision: cfg.precision,
            seed: cfg.seed,
            samples: cfg.samples,
            survivors: cfg.survivors,
            passes: cfg.passes,
        }
    }
}

type TuneMemo = FxHashMap<TuneKey, Result<TunedId, ExecError>>;

static TUNE_MEMO: OnceLock<Mutex<TuneMemo>> = OnceLock::new();

/// [`search`] through the tune memo: a repeated request for the same
/// `(net, device, replicas, precision, seed, budgets)` tuple returns the
/// already-registered [`TunedId`] without searching again. Failures (nothing
/// fits the device) are memoized like the plan memo's OOM outcomes.
pub fn tune_memo(
    net: &Net,
    spec: &DeviceSpec,
    cfg: &TuneConfig,
) -> Result<(TunedId, Arc<TunedPolicy>), ExecError> {
    let key = TuneKey::new(net, spec, cfg);
    let memo = TUNE_MEMO.get_or_init(|| Mutex::new(FxHashMap::default()));
    if let Some(hit) = memo.lock().unwrap().get(&key) {
        return hit
            .clone()
            .map(|id| (id, get(id).expect("registered id outlives the memo")));
    }
    let result = search(net, spec, cfg).map(|o| register(o.tuned));
    memo.lock().unwrap().insert(key, result.clone());
    result.map(|id| (id, get(id).expect("freshly registered")))
}

/// Drop every memoized tuning outcome (the registry is append-only and
/// survives — outstanding [`TunedId`]s stay valid). Bench support.
pub fn clear_tune_memo() {
    if let Some(m) = TUNE_MEMO.get() {
        m.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_graph::Shape4;

    fn tower(width: usize, depth: usize, batch: usize) -> Net {
        let mut net = Net::new("tower", Shape4::new(batch, 3, 32, 32));
        let mut prev = net.data();
        for _ in 0..depth {
            let c = net.conv(prev, width, 3, 1, 1);
            prev = net.relu(c);
        }
        let p = net.max_pool(prev, 2, 2, 0);
        let f = net.fc(p, 10);
        net.softmax(f);
        net
    }

    fn quick_cfg() -> TuneConfig {
        TuneConfig::new(1, Interconnect::pcie())
            .with_seed(7)
            .with_samples(12)
    }

    #[test]
    fn tuned_is_never_worse_than_the_best_hand_preset() {
        let net = tower(16, 4, 8);
        let spec = DeviceSpec::k40c();
        let o = search(&net, &spec, &quick_cfg()).unwrap();
        assert!(o.tuned.step_time <= o.tuned.hand_step_time);
        assert_eq!(o.tuned.plan_peak_bytes, o.tuned.executed_peak_bytes);
        assert!(o.tuned.evals > 0);
        assert_eq!(o.memo_lookups, o.tuned.evals);
    }

    #[test]
    fn same_seed_same_outcome_any_worker_count() {
        let net = tower(16, 3, 8);
        let spec = DeviceSpec::k40c();
        let base = search(&net, &spec, &quick_cfg().with_workers(1)).unwrap();
        for workers in [2, 3, 8] {
            let o = search(&net, &spec, &quick_cfg().with_workers(workers)).unwrap();
            assert_eq!(o.tuned, base.tuned, "workers={workers}");
            assert_eq!(o.trace, base.trace, "workers={workers}");
        }
    }

    #[test]
    fn different_seeds_may_differ_but_stay_gated() {
        let net = tower(16, 3, 8);
        let spec = DeviceSpec::k40c();
        for seed in [1, 2, 3] {
            let o = search(&net, &spec, &quick_cfg().with_seed(seed)).unwrap();
            assert!(o.tuned.step_time <= o.tuned.hand_step_time, "seed={seed}");
            assert_eq!(o.tuned.seed, seed);
        }
    }

    #[test]
    fn memo_returns_the_same_registered_id() {
        let net = tower(8, 3, 8);
        let spec = DeviceSpec::k40c();
        let cfg = quick_cfg().with_seed(42);
        let (id1, t1) = tune_memo(&net, &spec, &cfg).unwrap();
        let (id2, t2) = tune_memo(&net, &spec, &cfg).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(t1, t2);
        assert_eq!(policy_for(id1), t1.policy);
        assert_eq!(bucket_bytes_for(id1), t1.bucket_bytes);
        // A different seed is a different key (it may or may not register a
        // new bundle, but must not alias the memo entry).
        let (id3, _) = tune_memo(&net, &spec, &cfg.with_seed(43)).unwrap();
        assert!(get(id3).is_some());
    }

    #[test]
    fn infeasible_devices_report_the_compile_error() {
        let net = tower(64, 8, 64);
        let spec = DeviceSpec::k40c().with_dram(64 << 10);
        assert!(search(&net, &spec, &quick_cfg()).is_err());
    }

    #[test]
    fn multi_replica_search_tunes_bucket_bytes() {
        let net = tower(16, 3, 8);
        let spec = DeviceSpec::k40c();
        let cfg = TuneConfig::new(2, Interconnect::pcie())
            .with_seed(5)
            .with_samples(8);
        let o = search(&net, &spec, &cfg).unwrap();
        assert!(o.tuned.step_time <= o.tuned.hand_step_time);
        assert!(BUCKETS.contains(&o.tuned.bucket_bytes));
        assert_eq!(o.tuned.plan_peak_bytes, o.tuned.executed_peak_bytes);
    }
}
