//! Device-group (data-parallel) compilation and execution.
//!
//! The paper scopes SuperNeurons to the data-parallelism model (§2.1): every
//! GPU trains a full network replica on a sub-batch and the gang aggregates
//! weight gradients each iteration. This module lifts the single-device
//! plan/interpret stack to a device group without touching what made the
//! single-device stack trustworthy:
//!
//! * **[`GroupPlan`]** wraps the *unchanged* single-device
//!   [`CompiledPlan`] (the same `Arc` the plan memo hands to single-device
//!   callers) and adds the collective schedule: weight gradients are
//!   gathered into [`GradBucket`]s in backward-step order and each bucket's
//!   ring all-reduce is gated on the backward step that produces its last
//!   gradient. Per-replica residency is therefore **byte-identical** to the
//!   single-device plan — collectives stage through a fixed, separately
//!   accounted comm workspace ([`GroupPlan::comm_workspace_bytes`]), never
//!   the heap pool, so the exact-peak admission invariant survives the lift
//!   verbatim.
//! * **[`GroupExecutor`]** replays one plan per replica (interleaved at
//!   step granularity, so the group stays in lockstep) and schedules bucket
//!   all-reduces on per-device link streams via the sim fabric
//!   ([`sn_sim::group_collective`]): a collective starts when the *last*
//!   replica's gradient is ready and every link port is free, completes
//!   simultaneously everywhere, and overlaps the remaining backward
//!   compute. The ablation mode ([`GroupConfig::serialized`]) launches the
//!   same buckets back-to-back at iteration end — the classic no-overlap
//!   baseline every data-parallel paper compares against.
//! * **[`compile_group_memo`]** memoizes group compilations under the plan
//!   memo's key extended with `(replicas, bucket size, interconnect)` —
//!   replica counts can never alias because the count is part of the key.
//!
//! Bucket wire volume is pinned to the closed form: the per-bucket charges
//! come from [`crate::parallel::bucket_wire_bytes`], whose telescoping sum
//! equals [`crate::parallel::ring_allreduce_wire_bytes`] of the total
//! gradient payload exactly, for every bucket split and replica count.

use std::sync::{Arc, Mutex, OnceLock};

use fxhash::FxHashMap;
use sn_graph::{LayerId, Net, StepPhase};
use sn_sim::{
    DeviceGroup, DeviceSpec, EngineKind, Event, SimTime, SpanLabel, StreamId, Timeline, TraceSink,
};
use sn_telemetry::MetricsRegistry;

use crate::executor::{finite_rate, ExecError, Executor, IterationReport};
use crate::parallel::{bucket_wire_bytes, ring_wire_time, Interconnect};
use crate::plan::{self, CompiledPlan, MemoryPlan, PlanKey, PlanOp};
use crate::policy::Policy;

/// Default gradient bucket target: large enough to amortize ring latencies,
/// small enough that several buckets exist to pipeline against backward
/// compute (the DDP-style sweet spot for the modeled interconnects).
pub const DEFAULT_BUCKET_BYTES: u64 = 16 << 20;

/// A data-parallel execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct GroupConfig {
    /// Gang size: one replica per device.
    pub replicas: usize,
    /// The inter-GPU fabric replicas exchange gradients over.
    pub interconnect: Interconnect,
    /// Target bucket size for gradient aggregation (a bucket closes once it
    /// reaches this many payload bytes).
    pub bucket_bytes: u64,
    /// Overlap bucket all-reduces with the remaining backward compute;
    /// `false` serializes every collective at iteration end (the classic
    /// no-overlap ablation baseline).
    pub overlap: bool,
}

impl GroupConfig {
    pub fn new(replicas: usize, interconnect: Interconnect) -> GroupConfig {
        GroupConfig {
            replicas,
            interconnect,
            bucket_bytes: DEFAULT_BUCKET_BYTES,
            overlap: true,
        }
    }

    pub fn with_bucket_bytes(mut self, bytes: u64) -> Self {
        self.bucket_bytes = bytes.max(1);
        self
    }

    /// The no-overlap ablation: identical buckets, launched back-to-back
    /// after the backward pass completes.
    pub fn serialized(mut self) -> Self {
        self.overlap = false;
        self
    }
}

/// One gradient bucket of the collective schedule.
#[derive(Debug, Clone)]
pub struct GradBucket {
    pub id: u32,
    /// Weight-gradient payload bytes (Σ member layers' weight bytes).
    pub bytes: u64,
    /// Per-participant on-the-wire bytes, prefix-pinned so the schedule's
    /// total equals the closed-form ring volume exactly.
    pub wire_bytes: u64,
    /// Member layers, in backward-step order.
    pub layers: Vec<LayerId>,
    /// The backward step whose kernel produces the bucket's last gradient —
    /// the event the collective gates on.
    pub ready_step: usize,
}

/// A compiled device-group plan: the unchanged per-replica memory plan plus
/// the bucketed collective schedule.
#[derive(Debug, Clone)]
pub struct GroupPlan {
    /// The single-device compilation every replica replays — the same
    /// shared `Arc` the plan memo serves to single-device callers, so
    /// per-replica bytes are identical *by construction*, not by test.
    pub replica: Arc<CompiledPlan>,
    pub replicas: usize,
    pub interconnect: Interconnect,
    pub buckets: Vec<GradBucket>,
    /// `(gating step, bucket id)` in launch order (ascending step).
    pub schedule: Vec<(usize, u32)>,
    /// Fixed comm staging (ring send + receive buffers sized to the largest
    /// bucket). Separately accounted: collectives never allocate from the
    /// heap pool, so [`MemoryPlan::peak_bytes`] — and every admission
    /// reservation derived from it — is untouched by the group lift.
    pub comm_workspace_bytes: u64,
}

impl GroupPlan {
    /// Total per-replica gradient payload (equals the plan's weight bytes
    /// for gangs, zero for a single replica).
    pub fn grad_bytes(&self) -> u64 {
        self.buckets.iter().map(|b| b.bytes).sum()
    }

    /// Total per-participant wire bytes across the schedule.
    pub fn wire_bytes(&self) -> u64 {
        self.buckets.iter().map(|b| b.wire_bytes).sum()
    }

    /// Wire time of one bucket's ring all-reduce.
    pub fn bucket_time(&self, b: &GradBucket) -> SimTime {
        ring_wire_time(b.wire_bytes, self.replicas, self.interconnect)
    }

    /// The group debug format: a header, then the replica plan's rendering
    /// with one `coll` line interleaved after each gating step — bucket id,
    /// payload bytes (in the stable [`PlanOp::Collective`] op vocabulary),
    /// wire bytes, and the backward step the launch gates on. Round-trip
    /// stable like [`MemoryPlan::render`]; tests diff it across PRs.
    pub fn render(&self, net: &Net) -> String {
        let mut out = format!(
            "GroupPlan k={} buckets={} grad {} wire {} comm-ws {} over {:.0} GB/s\n",
            self.replicas,
            self.buckets.len(),
            self.grad_bytes(),
            self.wire_bytes(),
            self.comm_workspace_bytes,
            self.interconnect.gbps,
        );
        let inner = self.replica.plan.render(net);
        let mut lines = inner.lines();
        // Header line of the replica plan.
        if let Some(h) = lines.next() {
            out.push_str(h);
            out.push('\n');
        }
        let mut cursor = 0usize; // schedule index
        for (s, line) in lines.enumerate() {
            out.push_str(line);
            out.push('\n');
            while cursor < self.schedule.len() && self.schedule[cursor].0 == s {
                let b = &self.buckets[self.schedule[cursor].1 as usize];
                out.push_str(&format!(
                    "  coll  {} wire {} gate=step {}\n",
                    MemoryPlan::op_str(&PlanOp::Collective {
                        bucket: b.id,
                        bytes: b.bytes,
                    }),
                    b.wire_bytes,
                    b.ready_step,
                ));
                cursor += 1;
            }
        }
        out
    }
}

/// Compile a device-group plan: the replica plan through the plan memo, the
/// collective schedule from the shared route/cost analyses.
pub fn compile_group(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
    cfg: &GroupConfig,
) -> Result<GroupPlan, ExecError> {
    assert!(cfg.replicas >= 1, "a group needs at least one replica");
    let replica = plan::compile_memo(net, spec, policy)?;
    Ok(build_group_plan(replica, cfg))
}

fn build_group_plan(replica: Arc<CompiledPlan>, cfg: &GroupConfig) -> GroupPlan {
    let mut buckets: Vec<GradBucket> = Vec::new();
    if cfg.replicas > 1 {
        let route = &replica.route;
        let cost = &replica.cost;
        let mut layers: Vec<LayerId> = Vec::new();
        let mut bytes = 0u64;
        let mut ready_step = 0usize;
        let mut close = |layers: &mut Vec<LayerId>, bytes: &mut u64, ready_step: usize| {
            if *bytes == 0 {
                return;
            }
            buckets.push(GradBucket {
                id: buckets.len() as u32,
                bytes: *bytes,
                wire_bytes: 0, // pinned below, once all buckets exist
                layers: std::mem::take(layers),
                ready_step,
            });
            *bytes = 0;
        };
        for s in 0..route.total_steps() {
            let step = route.step(s);
            if step.phase != StepPhase::Backward {
                continue;
            }
            // Bucket the on-the-wire gradient payload, not the fp32 master
            // weights: under a mixed preset the ring exchanges 2-byte
            // gradients (== weight_bytes at fp32).
            let wb = cost.layer(step.layer).allreduce_bytes;
            if wb == 0 {
                continue;
            }
            layers.push(step.layer);
            bytes += wb;
            ready_step = s;
            if bytes >= cfg.bucket_bytes {
                close(&mut layers, &mut bytes, ready_step);
            }
        }
        close(&mut layers, &mut bytes, ready_step);
        // Pin the wire volume to the closed form across the whole schedule.
        let sizes: Vec<u64> = buckets.iter().map(|b| b.bytes).collect();
        for (b, w) in buckets
            .iter_mut()
            .zip(bucket_wire_bytes(&sizes, cfg.replicas))
        {
            b.wire_bytes = w;
        }
    }
    let schedule: Vec<(usize, u32)> = buckets.iter().map(|b| (b.ready_step, b.id)).collect();
    debug_assert!(schedule.windows(2).all(|w| w[0].0 <= w[1].0));
    let comm_workspace_bytes = buckets.iter().map(|b| b.bytes).max().unwrap_or(0) * 2;
    GroupPlan {
        replica,
        replicas: cfg.replicas,
        interconnect: cfg.interconnect,
        buckets,
        schedule,
        comm_workspace_bytes,
    }
}

// ---------------------------------------------------------------------
// Group memo: plan key × (replicas, bucket size, interconnect).
// ---------------------------------------------------------------------

/// Everything a group compilation depends on. `replicas` is part of the key,
/// so distinct gang sizes can never alias (asserted by tests); the overlap
/// flag is deliberately *not* — it is an execution mode, the plan is shared
/// by both modes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey {
    plan: PlanKey,
    replicas: usize,
    bucket_bytes: u64,
    ic_gbps_bits: u64,
    ic_latency_ns: u64,
}

type GroupMemoMap = FxHashMap<GroupKey, Result<Arc<GroupPlan>, ExecError>>;

static GROUP_MEMO: OnceLock<Mutex<GroupMemoMap>> = OnceLock::new();

/// Same overflow policy as the plan memo: group plans are recomputable, so
/// a runaway sweep just resets the map.
const GROUP_MEMO_CAP: usize = 1024;

/// [`compile_group`] through the group memo; repeated gang admissions for
/// the same `(net, policy, device, replicas, fabric)` tuple are a hash
/// lookup. OOM outcomes are memoized like the plan memo's.
pub fn compile_group_memo(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
    cfg: &GroupConfig,
) -> Result<Arc<GroupPlan>, ExecError> {
    assert!(cfg.replicas >= 1, "a group needs at least one replica");
    let key = GroupKey {
        plan: PlanKey::new(net, spec, policy, false),
        replicas: cfg.replicas,
        bucket_bytes: cfg.bucket_bytes,
        ic_gbps_bits: cfg.interconnect.gbps.to_bits(),
        ic_latency_ns: cfg.interconnect.latency.0,
    };
    let memo = GROUP_MEMO.get_or_init(|| Mutex::new(FxHashMap::default()));
    if let Some(hit) = memo.lock().unwrap().get(&key) {
        group_memo_metrics().0.inc();
        return hit.clone();
    }
    group_memo_metrics().1.inc();
    let result = compile_group(net, spec, policy, cfg).map(Arc::new);
    let mut map = memo.lock().unwrap();
    if map.len() >= GROUP_MEMO_CAP {
        map.clear();
    }
    map.insert(key, result.clone());
    result
}

/// `group.memo.{hit,miss}` counters on the process-wide registry —
/// monotone like the memo itself, mirroring `plan.memo.{hit,miss}`.
fn group_memo_metrics() -> &'static (sn_telemetry::Counter, sn_telemetry::Counter) {
    static HANDLES: OnceLock<(sn_telemetry::Counter, sn_telemetry::Counter)> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let reg = sn_telemetry::global();
        (
            reg.counter("group.memo.hit"),
            reg.counter("group.memo.miss"),
        )
    })
}

// ---------------------------------------------------------------------
// The group interpreter.
// ---------------------------------------------------------------------

/// Result of one measured group iteration.
#[derive(Debug, Clone)]
pub struct GroupIterationReport {
    pub replicas: usize,
    /// Replica 0's single-device report (replicas are identical, so one
    /// report represents all — asserted via `peaks_match`).
    pub replica: IterationReport,
    /// Gang step time: the slowest replica's iteration, *including* the
    /// drain of every launched collective (the optimizer consumes reduced
    /// gradients before the next iteration starts).
    pub step_time: SimTime,
    /// Per-replica gradient payload aggregated this step.
    pub grad_bytes: u64,
    /// Per-replica bytes moved over the inter-GPU link.
    pub wire_bytes: u64,
    /// Union of collective busy spans on a replica's link port.
    pub allreduce_busy: SimTime,
    /// Collective time hidden under that replica's kernels.
    pub allreduce_hidden: SimTime,
    /// Every replica's executed peak equals the plan's `peak_bytes`
    /// (byte-identity across the gang; also debug-asserted).
    pub peaks_match: bool,
}

impl GroupIterationReport {
    /// Fraction of collective time hidden under compute, in `[0, 1]`;
    /// zero — never NaN/inf — when no collective ran (single replica,
    /// zero-weight nets, zero-duration iterations).
    pub fn allreduce_overlap_fraction(&self) -> f64 {
        if self.allreduce_busy == SimTime::ZERO {
            0.0
        } else {
            self.allreduce_hidden.as_ns() as f64 / self.allreduce_busy.as_ns() as f64
        }
    }

    /// Collective time the overlap machinery failed to hide.
    pub fn exposed_comm(&self) -> SimTime {
        self.allreduce_busy - self.allreduce_hidden
    }

    /// Aggregate throughput of the gang for a given *per-replica* batch.
    /// Zero (never NaN/inf) for zero-duration iterations.
    pub fn imgs_per_sec(&self, per_replica_batch: usize) -> f64 {
        finite_rate(per_replica_batch * self.replicas, self.step_time)
    }
}

/// The device-group interpreter: one [`Executor`] per replica, stepped in
/// lockstep, with bucket all-reduces scheduled on per-device link streams
/// through the sim fabric.
pub struct GroupExecutor<'n> {
    pub net: &'n Net,
    pub gplan: Arc<GroupPlan>,
    /// Overlap collectives with backward compute (`false` = the serialized
    /// iteration-end ablation).
    pub overlap: bool,
    replicas: Vec<Executor<'n>>,
    links: Vec<StreamId>,
}

impl DeviceGroup for GroupExecutor<'_> {
    fn group_len(&self) -> usize {
        self.replicas.len()
    }

    fn timeline(&self, i: usize) -> &Timeline {
        &self.replicas[i].dev.tl
    }

    fn timeline_mut(&mut self, i: usize) -> &mut Timeline {
        &mut self.replicas[i].dev.tl
    }

    fn link_stream(&self, i: usize) -> StreamId {
        self.links[i]
    }
}

impl<'n> GroupExecutor<'n> {
    /// Compile (through the group memo) and build the gang's interpreters;
    /// allocates every replica's weights.
    pub fn new(
        net: &'n Net,
        spec: DeviceSpec,
        policy: Policy,
        cfg: GroupConfig,
    ) -> Result<GroupExecutor<'n>, ExecError> {
        let gplan = compile_group_memo(net, &spec, policy, &cfg)?;
        GroupExecutor::from_plan(net, spec, policy, gplan, cfg.overlap)
    }

    /// Build the gang over an already-compiled group plan.
    pub fn from_plan(
        net: &'n Net,
        spec: DeviceSpec,
        policy: Policy,
        gplan: Arc<GroupPlan>,
        overlap: bool,
    ) -> Result<GroupExecutor<'n>, ExecError> {
        let mut replicas = Vec::with_capacity(gplan.replicas);
        let mut links = Vec::with_capacity(gplan.replicas);
        for _ in 0..gplan.replicas {
            let mut ex =
                Executor::from_compiled(net, spec.clone(), policy, (*gplan.replica).clone())?;
            links.push(ex.dev.tl.add_stream(EngineKind::Link));
            replicas.push(ex);
        }
        Ok(GroupExecutor {
            net,
            gplan,
            overlap,
            replicas,
            links,
        })
    }

    /// Gang size.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Replica `i`'s interpreter (read-only; stepping goes through the
    /// group loop so replicas stay in lockstep).
    pub fn replica(&self, i: usize) -> &Executor<'n> {
        &self.replicas[i]
    }

    /// Attach `sink` to every replica's timeline. Each replica traces into
    /// its own process ("device 0", "device 1", …) of the shared sink, so
    /// one exported timeline shows the whole gang — kernels, DMAs, and the
    /// lockstep collectives on each device's link track.
    pub fn enable_tracing(&mut self, sink: &TraceSink) {
        for (i, r) in self.replicas.iter_mut().enumerate() {
            r.enable_tracing(sink, &format!("device {i}"));
        }
    }

    /// Route every replica's executor metrics into `registry`. Replicas
    /// share the handles, so `exec.*` series aggregate across the gang
    /// (`exec.iterations` counts replica-iterations, not gang steps).
    pub fn enable_metrics(&mut self, registry: &MetricsRegistry) {
        for r in &mut self.replicas {
            r.enable_metrics(registry);
        }
    }

    /// Launch one bucket's ring all-reduce: gated on every replica's
    /// compute frontier (the kernel that produced the bucket's last
    /// gradient has been submitted by now) and each device's link port.
    fn launch(&mut self, bucket: u32) {
        let gplan = self.gplan.clone();
        let b = &gplan.buckets[bucket as usize];
        let duration = gplan.bucket_time(b);
        let ready: Vec<Event> = (0..self.replicas.len())
            .map(|i| self.replicas[i].dev.tl.frontier_event(StreamId::COMPUTE))
            .collect();
        for r in &mut self.replicas {
            if r.dev.tl.tracing() {
                r.dev.tl.trace_label(
                    SpanLabel::new(format!("allreduce b{}", b.id), "collective")
                        .arg("bucket", b.id)
                        .arg("bytes", b.bytes)
                        .arg("wire_bytes", b.wire_bytes)
                        .arg("gate_step", b.ready_step),
                );
            }
        }
        sn_sim::group_collective(self, duration, b.wire_bytes, &ready);
        // The fabric gates the lockstep start with a synthesized same-stream
        // event, so the backward-kernel → collective dependency each replica
        // actually waited on is drawn explicitly here.
        if duration > SimTime::ZERO {
            for (i, gate) in ready.iter().enumerate() {
                let link = self.links[i];
                let tl = &mut self.replicas[i].dev.tl;
                if tl.tracing() {
                    let from = tl.trace_span_ending(*gate);
                    let to = tl.trace_last_span(link);
                    tl.trace_flow(from, to);
                }
            }
        }
    }

    /// Run one synchronous data-parallel iteration: every replica replays
    /// the shared plan step-for-step; gradient buckets all-reduce as they
    /// become ready (or all at the end, under the serialized ablation); the
    /// step ends when the slowest replica has drained compute, DMA *and*
    /// link streams.
    pub fn run_iteration(&mut self) -> Result<GroupIterationReport, ExecError> {
        for r in &mut self.replicas {
            r.begin_iteration();
        }
        let gplan = self.gplan.clone();
        let total = gplan.replica.route.total_steps();
        let mut cursor = 0usize;
        for s in 0..total {
            for i in 0..self.replicas.len() {
                self.replicas[i].run_step(s)?;
            }
            if self.overlap {
                while cursor < gplan.schedule.len() && gplan.schedule[cursor].0 == s {
                    self.launch(gplan.schedule[cursor].1);
                    cursor += 1;
                }
            }
        }
        if !self.overlap {
            // Ablation: identical buckets, in the identical order, launched
            // only once the whole backward pass has been submitted.
            for &(_, b) in &gplan.schedule[cursor..] {
                self.launch(b);
            }
        }

        // Cut per-replica reports; `finish_iteration`'s sync_all drains the
        // link stream too, so the collective tail is charged to this step.
        let mut reports = Vec::with_capacity(self.replicas.len());
        for r in &mut self.replicas {
            reports.push(r.finish_iteration()?);
        }
        let link_ol = self.replicas[0].dev.tl.link_overlap();

        let plan_peak = gplan.replica.plan.peak_bytes;
        let peaks_match = reports.iter().all(|r| r.peak_bytes == plan_peak);
        debug_assert!(
            peaks_match,
            "a replica's executed peak diverged from the shared plan"
        );
        let step_time = reports
            .iter()
            .map(|r| r.iter_time)
            .max()
            .unwrap_or(SimTime::ZERO);
        let wire_bytes = self.replicas[0].dev.tl.stats().link_bytes;
        Ok(GroupIterationReport {
            replicas: self.replicas.len(),
            replica: reports.swap_remove(0),
            step_time,
            grad_bytes: gplan.grad_bytes(),
            wire_bytes,
            allreduce_busy: link_ol.transfer_busy,
            allreduce_hidden: link_ol.overlapped,
            peaks_match,
        })
    }

    /// Convenience: run `n` iterations, returning the last report.
    pub fn run_iterations(&mut self, n: usize) -> Result<GroupIterationReport, ExecError> {
        let mut last = None;
        for _ in 0..n {
            last = Some(self.run_iteration()?);
        }
        Ok(last.expect("n > 0"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_graph::Shape4;

    fn stub(batch: usize) -> Net {
        let mut net = Net::new("group-test", Shape4::new(batch, 3, 32, 32));
        let mut prev = net.data();
        for ch in [16usize, 32, 32] {
            let c = net.conv(prev, ch, 3, 1, 1);
            prev = net.relu(c);
        }
        let p = net.max_pool(prev, 2, 2, 0);
        let f = net.fc(p, 64);
        let a = net.relu(f);
        let f2 = net.fc(a, 10);
        net.softmax(f2);
        net
    }

    fn cfg(k: usize) -> GroupConfig {
        // Small buckets so even the stub net produces a multi-bucket
        // schedule with something to pipeline.
        GroupConfig::new(k, Interconnect::pcie()).with_bucket_bytes(64 << 10)
    }

    #[test]
    fn group_plan_buckets_cover_the_gradients_exactly() {
        let net = stub(8);
        let spec = DeviceSpec::k40c();
        for k in [2usize, 4, 8] {
            let g = compile_group(&net, &spec, Policy::superneurons(), &cfg(k)).unwrap();
            assert!(g.buckets.len() >= 2, "small buckets must split the payload");
            assert_eq!(g.grad_bytes(), g.replica.plan.weight_bytes);
            // The schedule's wire volume is pinned to the closed form.
            assert_eq!(
                g.wire_bytes(),
                crate::parallel::ring_allreduce_wire_bytes(g.grad_bytes(), k)
            );
            // Gating steps are backward steps, in launch order.
            let n = net.len();
            for b in &g.buckets {
                assert!(b.ready_step >= n, "buckets gate on backward steps");
                assert!(!b.layers.is_empty());
            }
            assert!(g.schedule.windows(2).all(|w| w[0].0 <= w[1].0));
            assert_eq!(g.comm_workspace_bytes % 2, 0);
            assert!(g.comm_workspace_bytes >= 2 * g.buckets.iter().map(|b| b.bytes).max().unwrap());
        }
    }

    #[test]
    fn mixed_precision_groups_bucket_half_the_bytes() {
        // Under bf16 gradients the collective schedule carries half the fp32
        // payload — the buckets hold 2-byte gradient bytes while the master
        // weights (and the fp32 group above) stay at 4 bytes per element.
        let net = stub(8);
        let spec = DeviceSpec::k40c();
        let fp32 = compile_group(&net, &spec, Policy::superneurons(), &cfg(4)).unwrap();
        let mixed = Policy::superneurons().with_precision(sn_graph::Precision::bf16_mixed());
        let bf16 = compile_group(&net, &spec, mixed, &cfg(4)).unwrap();
        assert_eq!(fp32.grad_bytes(), fp32.replica.plan.weight_bytes);
        assert_eq!(bf16.grad_bytes(), fp32.grad_bytes() / 2);
        assert_eq!(
            bf16.wire_bytes(),
            crate::parallel::ring_allreduce_wire_bytes(bf16.grad_bytes(), 4)
        );
        assert!(bf16.wire_bytes() < fp32.wire_bytes());
    }

    #[test]
    fn single_replica_groups_schedule_no_collectives() {
        let net = stub(8);
        let spec = DeviceSpec::k40c();
        let g = compile_group(&net, &spec, Policy::superneurons(), &cfg(1)).unwrap();
        assert!(g.buckets.is_empty() && g.schedule.is_empty());
        assert_eq!(g.comm_workspace_bytes, 0);
        assert_eq!(g.wire_bytes(), 0);
    }

    #[test]
    fn group_render_interleaves_collectives_at_their_gating_steps() {
        let net = stub(8);
        let spec = DeviceSpec::k40c();
        let g = compile_group(&net, &spec, Policy::superneurons(), &cfg(4)).unwrap();
        let text = g.render(&net);
        // Header carries the gang shape; every bucket appears with id,
        // payload bytes (stable op vocabulary) and gating step.
        assert!(text.starts_with("GroupPlan k=4"));
        for b in &g.buckets {
            let needle = format!(
                "allreduce b{}:{} wire {} gate=step {}",
                b.id, b.bytes, b.wire_bytes, b.ready_step
            );
            assert!(text.contains(&needle), "missing `{needle}` in:\n{text}");
        }
        // The replica plan's rendering is embedded verbatim (line-for-line
        // minus the interleaved coll lines) — the format is round-trip
        // stable against the single-device render.
        let solo = g.replica.plan.render(&net);
        for line in solo.lines() {
            assert!(text.contains(line));
        }
        // And rendering is deterministic.
        assert_eq!(text, g.render(&net));
    }

    #[test]
    fn replica_peaks_are_byte_identical_to_the_single_device_plan() {
        let net = stub(8);
        let spec = DeviceSpec::k40c();
        for policy in [
            Policy::liveness_only(),
            Policy::liveness_offload(),
            Policy::superneurons(),
        ] {
            let solo_peak = crate::session::plan_prediction(&net, &spec, policy)
                .unwrap()
                .peak_bytes;
            for overlap in [true, false] {
                let mut gx = GroupExecutor::new(
                    &net,
                    spec.clone(),
                    policy,
                    if overlap { cfg(4) } else { cfg(4).serialized() },
                )
                .unwrap();
                let r = gx.run_iterations(2).unwrap();
                assert!(r.peaks_match);
                assert_eq!(r.replica.peak_bytes, solo_peak, "overlap={overlap}");
            }
        }
    }

    #[test]
    fn overlap_beats_the_serialized_ablation() {
        let net = stub(8);
        let spec = DeviceSpec::k40c();
        for k in [2usize, 4] {
            let run = |c: GroupConfig| {
                let mut gx =
                    GroupExecutor::new(&net, spec.clone(), Policy::superneurons(), c).unwrap();
                gx.run_iteration().unwrap();
                gx.run_iteration().unwrap()
            };
            let olap = run(cfg(k));
            let serial = run(cfg(k).serialized());
            assert!(
                olap.step_time < serial.step_time,
                "k={k}: overlapped {} must beat serialized {}",
                olap.step_time,
                serial.step_time
            );
            assert!(olap.allreduce_overlap_fraction() > 0.0);
            assert_eq!(
                serial.allreduce_hidden,
                SimTime::ZERO,
                "iteration-end collectives cannot hide under compute"
            );
            // Same bytes on the wire either way — overlap changes *when*.
            assert_eq!(olap.wire_bytes, serial.wire_bytes);
            assert!(olap.wire_bytes > 0);
            // And the residency trajectory is untouched by either mode.
            assert_eq!(olap.replica.peak_bytes, serial.replica.peak_bytes);
        }
    }

    #[test]
    fn single_replica_group_degenerates_to_the_solo_executor() {
        let net = stub(8);
        let spec = DeviceSpec::k40c();
        let mut gx =
            GroupExecutor::new(&net, spec.clone(), Policy::superneurons(), cfg(1)).unwrap();
        let g = gx.run_iterations(2).unwrap();
        let mut solo = Executor::new(&net, spec, Policy::superneurons()).unwrap();
        solo.run_iteration().unwrap();
        let s = solo.run_iteration().unwrap();
        assert_eq!(g.step_time, s.iter_time);
        assert_eq!(g.replica.peak_bytes, s.peak_bytes);
        assert_eq!(g.wire_bytes, 0);
        assert_eq!(g.allreduce_overlap_fraction(), 0.0);
    }

    #[test]
    fn group_memo_never_aliases_replica_counts() {
        let net = stub(10);
        let spec = DeviceSpec::k40c();
        let pol = Policy::superneurons();
        let g2 = compile_group_memo(&net, &spec, pol, &cfg(2)).unwrap();
        let g4 = compile_group_memo(&net, &spec, pol, &cfg(4)).unwrap();
        assert!(
            !Arc::ptr_eq(&g2, &g4),
            "k=2 and k=4 must not share an entry"
        );
        assert_ne!(g2.wire_bytes(), g4.wire_bytes());
        // Re-asking is a hash lookup onto the same Arc.
        let g2b = compile_group_memo(&net, &spec, pol, &cfg(2)).unwrap();
        assert!(Arc::ptr_eq(&g2, &g2b));
        // Both gangs share the *replica* compilation (same plan-memo Arc).
        assert!(Arc::ptr_eq(&g2.replica, &g4.replica));
        // The overlap flag is an execution mode, not a plan property.
        let g2s = compile_group_memo(&net, &spec, pol, &cfg(2).serialized()).unwrap();
        assert!(Arc::ptr_eq(&g2, &g2s));
    }

    #[test]
    fn zero_duration_group_reports_are_finite() {
        // Satellite guard: ratios in group reports return 0.0 — never
        // NaN/inf — for zero-duration iterations and empty schedules.
        let r = GroupIterationReport {
            replicas: 4,
            replica: IterationReport {
                iter_time: SimTime::ZERO,
                peak_bytes: 0,
                h2d_bytes: 0,
                d2h_bytes: 0,
                link_bytes: 0,
                link_busy: SimTime::ZERO,
                counters: Default::default(),
                alloc_time: SimTime::ZERO,
                alloc_calls: 0,
                stall: SimTime::ZERO,
                compute_busy: SimTime::ZERO,
                transfer_busy: SimTime::ZERO,
                overlapped: SimTime::ZERO,
                loss: None,
            },
            step_time: SimTime::ZERO,
            grad_bytes: 0,
            wire_bytes: 0,
            allreduce_busy: SimTime::ZERO,
            allreduce_hidden: SimTime::ZERO,
            peaks_match: true,
        };
        assert_eq!(r.imgs_per_sec(128), 0.0);
        assert!(r.imgs_per_sec(128).is_finite());
        assert_eq!(r.allreduce_overlap_fraction(), 0.0);
        assert!(r.allreduce_overlap_fraction().is_finite());
        assert_eq!(r.exposed_comm(), SimTime::ZERO);
    }
}
