//! Data-parallel multi-GPU training on top of the single-device runtime.
//!
//! The paper scopes itself to "addressing the GPU memory shortage issue for
//! training deep neural networks under \[the\] data parallelism model"
//! (§2.1):
//! each GPU holds a network replica, computes a sub-gradient on a sub-batch,
//! and all sub-gradients are aggregated into one global gradient. This
//! module composes that outer loop over the simulated devices:
//!
//! * every replica runs the full SuperNeurons runtime on its own device;
//! * gradient aggregation is a ring all-reduce over the interconnect
//!   (`2·(k−1)/k · bytes` on the wire per GPU);
//! * optionally, communication of layer `i`'s weight gradients overlaps the
//!   backward computation of layers `< i` (the standard bucketed-overlap
//!   optimization the paper cites as \[25\]).
//!
//! Replicas are deterministic and identical, so one executor is simulated
//! and the aggregate behaviour derived — exactly how the data-parallel
//! timing model in the literature composes.

use sn_graph::{Net, NetCost};
use sn_sim::{DeviceSpec, SimTime};

use crate::executor::{ExecError, Executor};
use crate::policy::Policy;

/// Interconnect between replicas.
#[derive(Debug, Clone, Copy)]
pub struct Interconnect {
    /// Per-link bandwidth in GB/s (PCIe switch ≈ 10, NVLink-class ≈ 50).
    pub gbps: f64,
    /// Per-message latency.
    pub latency: SimTime,
}

impl Interconnect {
    /// PCIe-switch peer traffic (the paper's 10 GB/s practical speed).
    pub fn pcie() -> Interconnect {
        Interconnect {
            gbps: 10.0,
            latency: SimTime::from_us(20),
        }
    }

    /// An NVLink-class fabric for comparison runs.
    pub fn nvlink() -> Interconnect {
        Interconnect {
            gbps: 50.0,
            latency: SimTime::from_us(10),
        }
    }
}

/// Bytes each ring all-reduce participant moves on the wire: `2·(k−1)/k` of
/// the gradient bytes, rounded to the nearest byte (truncation would
/// undercharge every non-divisible gradient size). Zero for a single replica.
pub fn ring_allreduce_wire_bytes(grad_bytes: u64, gpus: usize) -> u64 {
    if gpus <= 1 {
        return 0;
    }
    // Integer rounding of 2·(k−1)·bytes / k — exact, no f64 detour.
    let k = gpus as u128;
    let numer = 2 * (k - 1) * grad_bytes as u128;
    ((numer + k / 2) / k) as u64
}

/// Wire time for a synchronous ring all-reduce of `grad_bytes` over `gpus`
/// replicas: each participant moves `2·(k−1)/k` of the gradient bytes and
/// pays `2·(k−1)` message latencies. Zero for a single replica.
pub fn ring_allreduce_time(grad_bytes: u64, gpus: usize, interconnect: Interconnect) -> SimTime {
    if gpus <= 1 {
        return SimTime::ZERO;
    }
    let wire_bytes = ring_allreduce_wire_bytes(grad_bytes, gpus);
    ring_wire_time(wire_bytes, gpus, interconnect)
}

/// Wire time for `wire_bytes` already expressed in on-the-wire terms (e.g. a
/// [`bucket_wire_bytes`] entry): bandwidth term plus the ring's `2·(k−1)`
/// message latencies. Zero for a single replica.
pub fn ring_wire_time(wire_bytes: u64, gpus: usize, interconnect: Interconnect) -> SimTime {
    if gpus <= 1 {
        return SimTime::ZERO;
    }
    sn_sim::time::transfer_time(wire_bytes, interconnect.gbps)
        + SimTime(interconnect.latency.0 * 2 * (gpus as u64 - 1))
}

/// Per-bucket wire bytes for a bucketed ring all-reduce, pinned to the
/// closed form: bucket `i` is charged
/// `W(b_0+…+b_i) − W(b_0+…+b_{i−1})` where `W` is
/// [`ring_allreduce_wire_bytes`]. The telescoping sum makes
/// `Σ bucket wire bytes == W(Σ bucket bytes)` **exactly**, for every `k` and
/// every bucket split — rounding each bucket independently would drift by up
/// to half a byte per bucket (the same truncation class PR 2 fixed in `W`
/// itself). Each entry still differs from its own closed form by at most
/// one byte.
pub fn bucket_wire_bytes(bucket_bytes: &[u64], gpus: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(bucket_bytes.len());
    let mut prefix = 0u64;
    let mut prev_wire = 0u64;
    for &b in bucket_bytes {
        prefix += b;
        let wire = ring_allreduce_wire_bytes(prefix, gpus);
        out.push(wire - prev_wire);
        prev_wire = wire;
    }
    out
}

/// A data-parallel training configuration.
pub struct DataParallel {
    pub net_builder: Box<dyn Fn(usize) -> Net>,
    /// Per-GPU sub-batch.
    pub per_gpu_batch: usize,
    pub gpus: usize,
    pub spec: DeviceSpec,
    pub policy: Policy,
    pub interconnect: Interconnect,
    /// Overlap gradient exchange with the remaining backward computation.
    pub overlap: bool,
}

/// Aggregate report for a data-parallel step.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    pub gpus: usize,
    pub global_batch: usize,
    /// Per-replica compute time (one training iteration on one device).
    pub replica_time: SimTime,
    /// All-reduce wire time for the full gradient set.
    pub allreduce_time: SimTime,
    /// End-to-end step time after (possible) overlap.
    pub step_time: SimTime,
    /// Aggregate throughput across all replicas.
    pub imgs_per_sec: f64,
    /// Scaling efficiency vs. a perfect k× of the single-GPU rate.
    pub efficiency: f64,
    /// Per-replica peak device memory.
    pub peak_bytes: u64,
}

impl DataParallel {
    /// Predicted per-replica peak device bytes — what each GPU in the gang
    /// must reserve. Replicas are identical, so one prediction covers all.
    pub fn predicted_peak_bytes(&self) -> Result<u64, ExecError> {
        let net = (self.net_builder)(self.per_gpu_batch);
        crate::session::predict_peak_bytes(&net, &self.spec, self.policy)
    }

    /// Simulate one synchronous data-parallel step.
    pub fn run(&self) -> Result<ParallelReport, ExecError> {
        assert!(self.gpus >= 1);
        let net = (self.net_builder)(self.per_gpu_batch);
        // Wire volume scales with the gradient element size: under a mixed
        // preset the ring exchanges 2-byte gradients of the fp32 master
        // weights, i.e. half the fp32 bytes. At fp32 this is exactly
        // `total_weight_bytes()`.
        let cost = NetCost::with_precision(&net, self.policy.precision);
        let grad_bytes = cost.total_allreduce_bytes();

        // One replica's iteration (all replicas are identical).
        let mut ex = Executor::new(&net, self.spec.clone(), self.policy)?;
        ex.run_iteration()?; // warm-up
        let r = ex.run_iteration()?;

        // Ring all-reduce: each GPU sends/receives 2(k-1)/k of the gradient
        // bytes; k=1 needs no exchange.
        let allreduce_time = ring_allreduce_time(grad_bytes, self.gpus, self.interconnect);

        // Overlap: gradients of layer i are ready when its backward step
        // completes; the exchange can hide under the remaining backward
        // half. A (conservative) half-iteration of compute is available
        // to hide communication under.
        let step_time = if self.overlap && self.gpus > 1 {
            let hideable = SimTime(r.iter_time.0 / 2);
            r.iter_time + allreduce_time.saturating_sub(hideable)
        } else {
            r.iter_time + allreduce_time
        };

        let global_batch = self.per_gpu_batch * self.gpus;
        let imgs = global_batch as f64 / step_time.as_secs_f64();
        let single = self.per_gpu_batch as f64 / r.iter_time.as_secs_f64();
        Ok(ParallelReport {
            gpus: self.gpus,
            global_batch,
            replica_time: r.iter_time,
            allreduce_time,
            step_time,
            imgs_per_sec: imgs,
            efficiency: imgs / (single * self.gpus as f64),
            peak_bytes: r.peak_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_graph::Shape4;

    fn build(batch: usize) -> Net {
        let mut net = Net::new("dp", Shape4::new(batch, 3, 32, 32));
        let d = net.data();
        let c1 = net.conv(d, 32, 3, 1, 1);
        let a1 = net.relu(c1);
        let p1 = net.max_pool(a1, 2, 2, 0);
        let c2 = net.conv(p1, 64, 3, 1, 1);
        let a2 = net.relu(c2);
        let f = net.fc(a2, 10);
        net.softmax(f);
        net
    }

    fn dp(gpus: usize, overlap: bool, ic: Interconnect) -> DataParallel {
        DataParallel {
            net_builder: Box::new(build),
            per_gpu_batch: 64,
            gpus,
            spec: DeviceSpec::titan_xp(),
            policy: Policy::superneurons(),
            interconnect: ic,
            overlap,
        }
    }

    #[test]
    fn single_gpu_has_no_communication() {
        let r = dp(1, true, Interconnect::pcie()).run().unwrap();
        assert_eq!(r.allreduce_time, SimTime::ZERO);
        assert_eq!(r.step_time, r.replica_time);
        assert!((r.efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_efficiency_is_sub_linear_but_positive() {
        let r1 = dp(1, false, Interconnect::pcie()).run().unwrap();
        let r4 = dp(4, false, Interconnect::pcie()).run().unwrap();
        let r8 = dp(8, false, Interconnect::pcie()).run().unwrap();
        assert!(
            r4.imgs_per_sec > r1.imgs_per_sec,
            "more GPUs, more throughput"
        );
        assert!(r8.imgs_per_sec > r4.imgs_per_sec);
        assert!(r4.efficiency < 1.0 && r4.efficiency > 0.3);
        assert!(
            r8.efficiency <= r4.efficiency,
            "efficiency decays with scale"
        );
    }

    #[test]
    fn overlap_hides_communication() {
        let plain = dp(8, false, Interconnect::pcie()).run().unwrap();
        let olap = dp(8, true, Interconnect::pcie()).run().unwrap();
        assert!(olap.step_time <= plain.step_time);
        assert!(olap.imgs_per_sec >= plain.imgs_per_sec);
    }

    #[test]
    fn faster_interconnect_scales_better() {
        let pcie = dp(8, false, Interconnect::pcie()).run().unwrap();
        let nv = dp(8, false, Interconnect::nvlink()).run().unwrap();
        assert!(nv.allreduce_time < pcie.allreduce_time);
        assert!(nv.efficiency > pcie.efficiency);
    }

    #[test]
    fn global_batch_is_product() {
        let r = dp(4, true, Interconnect::pcie()).run().unwrap();
        assert_eq!(r.global_batch, 256);
        assert_eq!(r.gpus, 4);
    }

    #[test]
    fn predicted_peak_covers_the_measured_replica() {
        // The prediction is the high-water mark over a cold + a warm
        // iteration, so it must cover what a measured warm step reports.
        let config = dp(4, true, Interconnect::pcie());
        let predicted = config.predicted_peak_bytes().unwrap();
        let measured = config.run().unwrap().peak_bytes;
        assert!(predicted > 0);
        assert!(
            predicted >= measured,
            "prediction {predicted} must cover measured {measured}"
        );
    }

    #[test]
    fn allreduce_wire_bytes_pin_small_k() {
        // Pin the 2(k−1)/k volume for small k, at sizes where the old
        // truncating `as u64` cast was off by one.
        assert_eq!(ring_allreduce_wire_bytes(1_000, 1), 0);
        assert_eq!(ring_allreduce_wire_bytes(1_000, 2), 1_000); // 2·1/2
        assert_eq!(ring_allreduce_wire_bytes(1_000, 4), 1_500); // 2·3/4
                                                                // 2·2/3·1001 = 1334.67: round to 1335 (truncation said 1334).
        assert_eq!(ring_allreduce_wire_bytes(1_001, 3), 1_335);
        // 2·4/5·1 = 1.6: round to 2 (truncation said 1).
        assert_eq!(ring_allreduce_wire_bytes(1, 5), 2);
        // The asymptote: 2(k−1)/k → 2, never exceeded after rounding by
        // more than half a byte's worth.
        for k in 2..=16usize {
            let w = ring_allreduce_wire_bytes(1 << 20, k);
            assert!(w < 2 * (1 << 20));
            assert!(w >= (1 << 20), "k={k} moved only {w} bytes");
        }
    }

    #[test]
    fn bucket_wire_bytes_sum_to_the_closed_form() {
        // The bucketed schedule must charge exactly the closed-form volume,
        // for every replica count the dataparallel bench sweeps and then
        // some — including splits that would drift under independent
        // per-bucket rounding.
        let splits: [&[u64]; 5] = [
            &[1_000],
            &[1_000, 1_000],
            &[1_001, 999, 7],
            &[1, 1, 1, 1, 1],
            &[12_345, 678, 90_123, 4],
        ];
        for k in 2..=8usize {
            for split in splits {
                let buckets = bucket_wire_bytes(split, k);
                assert_eq!(buckets.len(), split.len());
                let total: u64 = split.iter().sum();
                assert_eq!(
                    buckets.iter().sum::<u64>(),
                    ring_allreduce_wire_bytes(total, k),
                    "k={k} split={split:?}"
                );
                // Each bucket stays within one byte of its own closed form.
                for (b, w) in split.iter().zip(&buckets) {
                    let exact = ring_allreduce_wire_bytes(*b, k);
                    assert!(
                        w.abs_diff(exact) <= 1,
                        "k={k} bucket {b}: charged {w} vs exact {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_wire_bytes_pin_the_small_k_rounding_cases() {
        // The PR 2 rounding pins, rechecked through the bucketed path: a
        // single bucket is charged exactly the rounded closed form.
        assert_eq!(bucket_wire_bytes(&[1_000], 2), vec![1_000]);
        assert_eq!(bucket_wire_bytes(&[1_000], 4), vec![1_500]);
        assert_eq!(bucket_wire_bytes(&[1_001], 3), vec![1_335]); // not 1334
        assert_eq!(bucket_wire_bytes(&[1], 5), vec![2]); // not 1
                                                         // Split the 1001-byte case: the telescoping charge keeps the total
                                                         // pinned even though neither half rounds to its own closed form sum.
        let halves = bucket_wire_bytes(&[500, 501], 3);
        assert_eq!(halves.iter().sum::<u64>(), 1_335);
        // A single replica moves nothing, bucketed or not.
        assert_eq!(bucket_wire_bytes(&[1_000, 2_000], 1), vec![0, 0]);
    }

    #[test]
    fn mixed_precision_halves_the_wire_bytes() {
        // Under a 2-byte gradient dtype the ring moves half the fp32 bytes:
        // the net's allreduce payload is weight_bytes/2, and the 2(k−1)/k
        // wire volume shrinks with it.
        use sn_graph::Precision;
        let net = build(8);
        let fp32 = NetCost::with_precision(&net, Precision::fp32());
        let bf16 = NetCost::with_precision(&net, Precision::bf16_mixed());
        assert_eq!(fp32.total_allreduce_bytes(), fp32.total_weight_bytes());
        assert_eq!(
            bf16.total_allreduce_bytes(),
            fp32.total_weight_bytes() / 2,
            "bf16 gradients are half the fp32 master-weight bytes"
        );
        for k in 2..=8usize {
            let w32 = ring_allreduce_wire_bytes(fp32.total_allreduce_bytes(), k);
            let w16 = ring_allreduce_wire_bytes(bf16.total_allreduce_bytes(), k);
            // Exact halving up to the closed form's half-byte rounding.
            assert!(
                w16.abs_diff(w32 / 2) <= 1,
                "k={k}: {w16} is not half of {w32}"
            );
        }
    }

    #[test]
    fn two_byte_elements_keep_bucket_and_closed_form_consistent() {
        // The PR 2 rounding pins re-verified at 2-byte elements: gradient
        // sizes that are element counts × 2 bytes, swept over k∈{2..8}.
        // The telescoping bucket charge must still sum to the closed form,
        // and the pinned small-k cases must still hold when the payload is
        // the 2-byte version of the original fp32 sizes.
        assert_eq!(ring_allreduce_wire_bytes(500, 2), 500); // 1000/2 fp32 → bf16
        assert_eq!(ring_allreduce_wire_bytes(500, 4), 750);
        // 1001 fp32 bytes has no whole 2-byte counterpart; the neighbouring
        // even sizes bracket the fp32 pin 1335 when doubled back.
        assert_eq!(ring_allreduce_wire_bytes(500, 3), 667); // 2·2/3·500 = 666.67
        assert_eq!(ring_allreduce_wire_bytes(2, 5), 3); // 2·4/5·2 = 3.2
        for k in 2..=8usize {
            // Element-count splits at 2 bytes each, including odd counts.
            let splits: [&[u64]; 4] = [
                &[2 * 1_000],
                &[2 * 501, 2 * 499],
                &[14, 2, 2 * 9_973],
                &[2, 2, 2, 2, 2],
            ];
            for split in splits {
                let total: u64 = split.iter().sum();
                let buckets = bucket_wire_bytes(split, k);
                assert_eq!(
                    buckets.iter().sum::<u64>(),
                    ring_allreduce_wire_bytes(total, k),
                    "k={k} split={split:?}"
                );
            }
        }
    }

    #[test]
    fn ring_wire_time_agrees_with_the_closed_form_total() {
        let ic = Interconnect::pcie();
        for k in 2..=8usize {
            let total = ring_allreduce_time(1 << 20, k, ic);
            let wire = ring_allreduce_wire_bytes(1 << 20, k);
            assert_eq!(ring_wire_time(wire, k, ic), total);
        }
        assert_eq!(ring_wire_time(1 << 20, 1, ic), SimTime::ZERO);
    }

    #[test]
    fn allreduce_time_model_scales_as_documented() {
        let ic = Interconnect::pcie();
        assert_eq!(ring_allreduce_time(1 << 20, 1, ic), SimTime::ZERO);
        let two = ring_allreduce_time(1 << 20, 2, ic);
        let eight = ring_allreduce_time(1 << 20, 8, ic);
        assert!(two > SimTime::ZERO);
        assert!(eight > two, "more replicas, more wire time + latency");
    }
}
