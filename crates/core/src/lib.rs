//! # sn-runtime — the SuperNeurons dynamic GPU memory scheduling runtime
//!
//! This crate is the paper's primary contribution, rebuilt in Rust on top of
//! the simulated device substrate and split into three explicit layers:
//!
//! 1. **Plan** — [`plan`] compiles `(Net, DeviceSpec, Policy)` into a
//!    static, inspectable [`MemoryPlan`]: per-step residency actions
//!    (alloc/free/offload/prefetch/recompute/workspace), the **exact**
//!    predicted peak, and per-tensor lifetimes. Training plans cover one
//!    `2N`-step iteration; forward-only *inference* plans open a serving
//!    path the training-only executor could not express.
//! 2. **UTP** — [`utp`] is the Unified Tensor Pool residency manager: the
//!    tensor-state map, the Alg. 2 LRU Tensor Cache, the reclamation
//!    ladder's pending-offload reservoir, host-slot management over the
//!    Fig. 7 tiers, and in-flight DMA handles, behind a narrow API shared
//!    by the planner and the executor.
//! 3. **Interpret** — [`executor`] walks the plan over the UTP and the
//!    multi-stream sim engine. Because it replays the identical alloc/free
//!    sequence through an identical allocator, the executed peak equals
//!    [`MemoryPlan::peak_bytes`] to the byte — which is why cluster
//!    admission ([`sn-cluster`](../sn_cluster/index.html)) reserves plan
//!    peaks without simulating an iteration.
//!
//! Around the three layers:
//!
//! * [`policy`] — every technique as an independent switch, with presets for
//!   the paper's component studies (`baseline`, `liveness_only`,
//!   `liveness_offload`, `full_memory`, `superneurons`);
//! * [`device`] — the device bundle (timeline + allocator + pinned host);
//! * [`convalgo`] — the cuDNN-style convolution algorithm catalogue and the
//!   dynamic workspace selector (§3.5);
//! * [`recompute`] — Cost-Aware Recomputation segment planning (§3.4);
//! * [`numeric`] — a real compute backend proving the plans preserve exact
//!   training semantics;
//! * [`session`] — high-level [`Session`] (training) and
//!   [`InferenceSession`] (forward-only serving) APIs, plus the
//!   plan-compile-only [`plan_prediction`] admission predictor.
//!
//! `peak_m` progression implemented (and asserted by tests):
//! baseline `Σ l_f + Σ l_b` → liveness `Σ l_f + l_b_N` → +offload
//! `Σ (l_f ∉ ckpt) + l_b_N` → +cost-aware recompute `max_i(l_i)`.

pub mod convalgo;
pub mod device;
pub mod executor;
pub mod group;
pub mod numeric;
pub mod parallel;
pub mod plan;
mod plan_reference;
pub mod policy;
pub mod recompute;
pub mod session;
pub mod tiers;
pub mod tune;
pub mod utp;

pub use convalgo::{select_algo, AlgoChoice, ConvAlgo};
pub use device::{AllocatorImpl, Device};
pub use executor::{ComputeBackend, Counters, ExecError, Executor, IterationReport};
pub use group::{
    compile_group, compile_group_memo, GradBucket, GroupConfig, GroupExecutor,
    GroupIterationReport, GroupPlan,
};
pub use parallel::{
    bucket_wire_bytes, ring_allreduce_time, ring_allreduce_wire_bytes, ring_wire_time,
    DataParallel, Interconnect, ParallelReport,
};
pub use plan::{CompiledPlan, MemoryPlan, PlanOp, StepPlan, TensorLifetime, WorkspacePlan};
pub use policy::{AllocatorKind, CachePolicy, Policy, RecomputeMode, WorkspacePolicy};
pub use recompute::{RecomputePlan, Segment, SegmentStrategy};
pub use session::{
    plan_prediction, plan_prediction_inference, predict_peak_bytes, predict_run, InferenceReport,
    InferenceSession, PeakPrediction, Session, SessionReport,
};
pub use tiers::{Tier, TierConfig, TieredPool};
pub use tune::{SearchOutcome, TuneConfig, TunedId, TunedPolicy};
pub use utp::{Residence, TensorState, Utp};
