//! # sn-runtime — the SuperNeurons dynamic GPU memory scheduling runtime
//!
//! This crate is the paper's primary contribution, rebuilt in Rust on top of
//! the simulated device substrate:
//!
//! * [`policy`] — every technique as an independent switch, with presets for
//!   the paper's component studies (`baseline`, `liveness_only`,
//!   `liveness_offload`, `full_memory`, `superneurons`);
//! * [`device`] — the device bundle (timeline + allocator + pinned host);
//! * [`convalgo`] — the cuDNN-style convolution algorithm catalogue and the
//!   dynamic workspace selector (§3.5);
//! * [`recompute`] — Cost-Aware Recomputation planning (§3.4);
//! * [`executor`] — the scheduler: liveness frees, UTP offload/prefetch over
//!   independent DMA engines, the Alg. 2 LRU Tensor Cache, recomputation
//!   replay, workspace provisioning, per-step tracing;
//! * [`numeric`] — a real compute backend proving the schedule preserves
//!   exact training semantics;
//! * [`session`] — a high-level training-session API used by examples and
//!   the experiment harness.
//!
//! `peak_m` progression implemented (and asserted by tests):
//! baseline `Σ l_f + Σ l_b` → liveness `Σ l_f + l_b_N` → +offload
//! `Σ (l_f ∉ ckpt) + l_b_N` → +cost-aware recompute `max_i(l_i)`.

pub mod convalgo;
pub mod device;
pub mod executor;
pub mod numeric;
pub mod parallel;
pub mod policy;
pub mod recompute;
pub mod session;
pub mod tiers;

pub use convalgo::{select_algo, AlgoChoice, ConvAlgo};
pub use device::{AllocatorImpl, Device};
pub use executor::{ComputeBackend, Counters, ExecError, Executor, IterationReport};
pub use parallel::{
    ring_allreduce_time, ring_allreduce_wire_bytes, DataParallel, Interconnect, ParallelReport,
};
pub use policy::{AllocatorKind, CachePolicy, Policy, RecomputeMode, WorkspacePolicy};
pub use recompute::{RecomputePlan, Segment, SegmentStrategy};
pub use session::{predict_peak_bytes, predict_run, PeakPrediction, Session, SessionReport};
pub use tiers::{Tier, TierConfig, TieredPool};
