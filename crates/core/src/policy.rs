//! Runtime policy knobs.
//!
//! Every memory/performance technique of the paper is an independent switch,
//! so the component evaluations (§4.1) are literal policy diffs, and the
//! framework emulations of `sn-frameworks` are just preset bundles.

/// Which device allocator backs tensor memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocatorKind {
    /// The SuperNeurons heap pool (§3.2.1), with the indexed free structure.
    HeapPool,
    /// The pre-index linear-scan heap pool — byte-identical placement,
    /// O(n) per call. Differential-testing / baseline-benchmarking only.
    LinearPool,
    /// Raw `cudaMalloc`/`cudaFree` with modelled latencies (Table 2 baseline).
    Cuda,
}

/// Recomputation strategy (§3.4, Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecomputeMode {
    /// Keep everything needed by backward (no recomputation).
    None,
    /// Recompute each segment once, keep results for the whole segment
    /// backward (MXNet-style; O(N) extra compute, memcost Σ l_f + l_b).
    SpeedCentric,
    /// Recompute dependencies afresh for every backward layer, freeing
    /// intermediates immediately (O(N²) extra compute, memcost l_b).
    MemoryCentric,
    /// The paper's contribution: per segment, speed-centric when its
    /// memcost stays ≤ l_peak, memory-centric otherwise.
    CostAware,
}

/// Tensor Cache replacement policy. The paper uses LRU (§3.3.2) and notes
/// other policies "might better fit the scenario" — FIFO and MRU are
/// provided for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CachePolicy {
    /// Least-recently-used (the paper's choice — backward's head-to-tail
    /// pattern reuses the most recent tensors earliest).
    Lru,
    /// First-in-first-out: evict the oldest insertion.
    Fifo,
    /// Most-recently-used: the adversarial ordering for this access pattern.
    Mru,
}

/// Convolution-workspace policy (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkspacePolicy {
    /// Always the zero-workspace algorithm (implicit GEMM).
    None,
    /// At every step, profile free bytes and pick the fastest feasible
    /// algorithm (the paper's dynamic strategy).
    Dynamic,
    /// The naive strategy of the emulated frameworks (§2.2): a fixed
    /// per-conv workspace limit (cuDNN-era defaults were tens of MB),
    /// regardless of how much memory is actually free.
    Capped(u64),
}

/// Full policy bundle.
///
/// `Eq + Hash` (every field is a switch, an integer cap, or a tier-size
/// table) so a policy can key the planner's memo table directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Policy {
    /// Liveness analysis (off = the naive baseline allocator).
    pub liveness: bool,
    /// Keep all forward outputs resident (Caffe/Torch-style).
    pub keep_all_forward: bool,
    /// In-place ReLU/Dropout.
    pub inplace_act: bool,
    /// UTP offloading of checkpoint (CONV/DATA) outputs to host.
    pub offload: bool,
    /// Offload eagerly after every checkpoint forward (true), or only under
    /// memory pressure via the Tensor Cache's LRU eviction (false).
    pub eager_offload: bool,
    /// LRU Tensor Cache (Alg. 2): reuse resident tensors, evict on demand.
    pub tensor_cache: bool,
    /// Overlapped prefetch of the next checkpoint's tensors during backward.
    pub prefetch: bool,
    /// Prefetch-ahead window: how many upcoming steps the backward-phase
    /// prefetcher scans for host-resident inputs (it still stops one step
    /// past the next offloadable checkpoint's backward, whichever comes
    /// first). Was a hard-coded `8` inside the planner walk; promoted to a
    /// policy knob so the autotuner can search it. The default reproduces
    /// the historical plans byte-identically.
    pub prefetch_depth: u32,
    /// Pinned host staging (false halves PCIe bandwidth, as the paper notes
    /// for TensorFlow).
    pub pinned_host: bool,
    /// Serialize every DMA with the host thread (the host blocks until each
    /// transfer completes, as with `cudaMemcpy` on the null stream). The
    /// ablation baseline for the async multi-stream engine: compute/transfer
    /// overlap is zero by construction under this flag.
    pub sync_transfers: bool,
    pub recompute: RecomputeMode,
    pub allocator: AllocatorKind,
    pub workspace: WorkspacePolicy,
    /// Tensor Cache replacement policy.
    pub cache_policy: CachePolicy,
    /// External UTP tier capacities (Fig. 7); default = local host only.
    pub tiers: crate::tiers::TierConfig,
    /// Element precision of activations/gradients (fp32 master weights).
    /// Part of the policy — and therefore of every memo key — so an fp32
    /// and a mixed-precision compile of the same net never alias.
    pub precision: sn_graph::Precision,
}

/// The historical prefetch-ahead window the planner walk hard-coded before
/// it became a [`Policy`] knob. Every preset uses it, so default-policy
/// plans stay byte-identical.
pub const DEFAULT_PREFETCH_DEPTH: u32 = 8;

impl Policy {
    /// The naive baseline of §3: one tensor per request, nothing freed,
    /// no offload/recompute/workspace tricks.
    pub fn baseline() -> Policy {
        Policy {
            liveness: false,
            keep_all_forward: false,
            inplace_act: false,
            offload: false,
            eager_offload: false,
            tensor_cache: false,
            prefetch: false,
            prefetch_depth: DEFAULT_PREFETCH_DEPTH,
            pinned_host: true,
            sync_transfers: false,
            recompute: RecomputeMode::None,
            allocator: AllocatorKind::HeapPool,
            workspace: WorkspacePolicy::None,
            cache_policy: CachePolicy::Lru,
            tiers: crate::tiers::TierConfig::default(),
            precision: sn_graph::Precision::fp32(),
        }
    }

    /// This policy with the given element precision (e.g.
    /// [`sn_graph::Precision::bf16_mixed`] for the AMP recipe).
    pub fn with_precision(self, precision: sn_graph::Precision) -> Policy {
        Policy { precision, ..self }
    }

    /// This policy with every DMA serialized against the host — the
    /// synchronous-transfer ablation baseline.
    pub fn synchronous(self) -> Policy {
        Policy {
            sync_transfers: true,
            ..self
        }
    }

    /// This policy with the given prefetch-ahead window.
    pub fn with_prefetch_depth(self, prefetch_depth: u32) -> Policy {
        Policy {
            prefetch_depth,
            ..self
        }
    }

    /// Reject contradictory knob combinations before they reach the planner.
    ///
    /// The planner itself tolerates these (the dead knob is simply ignored),
    /// but the autotuner uses this to skip cells of the search lattice that
    /// would alias an already-evaluated policy under a different key — e.g.
    /// `prefetch` without `offload` compiles to exactly the no-offload plan,
    /// so evaluating it is pure waste.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.prefetch && !self.offload {
            return Err("prefetch requires offload (nothing is ever host-resident)");
        }
        if self.eager_offload && !self.offload {
            return Err("eager_offload requires offload");
        }
        if self.prefetch && self.prefetch_depth == 0 {
            return Err("prefetch requires a nonzero prefetch_depth");
        }
        if self.eager_offload && self.tensor_cache {
            return Err("eager_offload bypasses the tensor_cache pressure policy");
        }
        if !self.liveness && self.recompute != RecomputeMode::None {
            return Err("recomputation requires liveness analysis");
        }
        Ok(())
    }

    /// Liveness analysis only (Fig. 10a).
    pub fn liveness_only() -> Policy {
        Policy {
            liveness: true,
            ..Policy::baseline()
        }
    }

    /// Liveness + eager offload/prefetch of checkpoints (Fig. 10b).
    pub fn liveness_offload() -> Policy {
        Policy {
            liveness: true,
            offload: true,
            eager_offload: true,
            prefetch: true,
            ..Policy::baseline()
        }
    }

    /// Liveness + offload + cost-aware recomputation (Fig. 10c): the full
    /// memory stack, still without the performance features.
    pub fn full_memory() -> Policy {
        Policy {
            recompute: RecomputeMode::CostAware,
            ..Policy::liveness_offload()
        }
    }

    /// The complete SuperNeurons runtime: all three memory techniques plus
    /// the memory pool, Tensor Cache, overlapped transfers, and dynamic
    /// convolution workspaces.
    pub fn superneurons() -> Policy {
        Policy {
            liveness: true,
            keep_all_forward: false,
            inplace_act: false,
            offload: true,
            eager_offload: false, // cache decides: transfer only under pressure
            tensor_cache: true,
            prefetch: true,
            prefetch_depth: DEFAULT_PREFETCH_DEPTH,
            pinned_host: true,
            sync_transfers: false,
            recompute: RecomputeMode::CostAware,
            allocator: AllocatorKind::HeapPool,
            workspace: WorkspacePolicy::Dynamic,
            cache_policy: CachePolicy::Lru,
            tiers: crate::tiers::TierConfig::default(),
            precision: sn_graph::Precision::fp32(),
        }
    }

    /// SuperNeurons with the Tensor Cache disabled (Fig. 11 / Table 3
    /// comparison point): every checkpoint offload is on-demand and eager.
    pub fn superneurons_no_cache() -> Policy {
        Policy {
            tensor_cache: false,
            eager_offload: true,
            ..Policy::superneurons()
        }
    }

    /// SuperNeurons on raw cudaMalloc (Table 2 comparison point).
    pub fn superneurons_cuda_alloc() -> Policy {
        Policy {
            allocator: AllocatorKind::Cuda,
            ..Policy::superneurons()
        }
    }

    /// Liveness options implied by this policy.
    pub fn liveness_options(&self) -> sn_graph::liveness::LivenessOptions {
        sn_graph::liveness::LivenessOptions {
            enabled: self.liveness,
            recompute_non_checkpoints: self.recompute != RecomputeMode::None,
            keep_all_forward: self.keep_all_forward,
            inplace_act: self.inplace_act,
            precision: self.precision,
        }
    }
}

impl Default for Policy {
    fn default() -> Self {
        Policy::superneurons()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_documented_knobs() {
        let b = Policy::baseline();
        assert!(!b.liveness && !b.offload && b.recompute == RecomputeMode::None);
        let l = Policy::liveness_only();
        assert!(l.liveness && !l.offload);
        let lo = Policy::liveness_offload();
        assert!(lo.offload && lo.eager_offload && lo.recompute == RecomputeMode::None);
        let sn = Policy::superneurons();
        assert!(sn.tensor_cache && !sn.eager_offload);
        assert_eq!(sn.recompute, RecomputeMode::CostAware);
        assert_eq!(sn.workspace, WorkspacePolicy::Dynamic);
    }

    #[test]
    fn every_preset_validates() {
        for (name, p) in [
            ("baseline", Policy::baseline()),
            ("liveness_only", Policy::liveness_only()),
            ("liveness_offload", Policy::liveness_offload()),
            ("full_memory", Policy::full_memory()),
            ("superneurons", Policy::superneurons()),
            ("superneurons_no_cache", Policy::superneurons_no_cache()),
            ("superneurons_cuda_alloc", Policy::superneurons_cuda_alloc()),
            ("synchronous", Policy::superneurons().synchronous()),
            (
                "bf16",
                Policy::superneurons().with_precision(sn_graph::Precision::bf16_mixed()),
            ),
        ] {
            assert_eq!(p.validate(), Ok(()), "preset {name} must validate");
        }
    }

    #[test]
    fn validate_rejects_contradictory_knobs() {
        let p = Policy {
            prefetch: true,
            ..Policy::baseline()
        };
        assert!(p.validate().is_err(), "prefetch without offload");
        let p = Policy {
            eager_offload: true,
            ..Policy::baseline()
        };
        assert!(p.validate().is_err(), "eager_offload without offload");
        let p = Policy::superneurons().with_prefetch_depth(0);
        assert!(p.validate().is_err(), "prefetch with zero depth");
        let p = Policy {
            eager_offload: true,
            ..Policy::superneurons()
        };
        assert!(
            p.validate().is_err(),
            "eager_offload bypassing tensor_cache"
        );
        let p = Policy {
            recompute: RecomputeMode::CostAware,
            ..Policy::baseline()
        };
        assert!(p.validate().is_err(), "recompute without liveness");
    }

    #[test]
    fn default_prefetch_depth_is_the_historical_window() {
        assert_eq!(Policy::baseline().prefetch_depth, DEFAULT_PREFETCH_DEPTH);
        assert_eq!(Policy::superneurons().prefetch_depth, 8);
        assert_eq!(
            Policy::superneurons().with_prefetch_depth(4).prefetch_depth,
            4
        );
    }

    #[test]
    fn liveness_options_follow_policy() {
        let o = Policy::superneurons().liveness_options();
        assert!(o.enabled && o.recompute_non_checkpoints);
        let o = Policy::baseline().liveness_options();
        assert!(!o.enabled && !o.recompute_non_checkpoints);
    }

    #[test]
    fn precision_flows_into_liveness_options_and_equality() {
        use sn_graph::Precision;
        let fp32 = Policy::superneurons();
        assert_eq!(fp32.precision, Precision::fp32());
        let bf16 = Policy::superneurons().with_precision(Precision::bf16_mixed());
        assert_ne!(fp32, bf16, "precision must distinguish policies");
        assert_eq!(bf16.liveness_options().precision, Precision::bf16_mixed());
        assert_ne!(fp32.liveness_options(), bf16.liveness_options());
    }
}
