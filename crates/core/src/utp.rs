//! The Unified Tensor Pool residency manager.
//!
//! One place owns *where every tensor currently is* and the machinery that
//! moves tensors between device DRAM and the external UTP tiers: the
//! tensor-state map, the Alg. 2 LRU Tensor Cache bookkeeping, the pending
//! offload list the reclamation ladder drains, host-slot management over the
//! tiered pools, and the in-flight DMA handles kernels gate on.
//!
//! Two drivers share this state machine:
//!
//! * the **planner** ([`crate::plan`]) drives it at compile time — with
//!   *instant* logical transfers — to decide every eviction, offload,
//!   prefetch and release, recording each mutation as a [`crate::plan::PlanOp`];
//! * the **executor** ([`crate::executor`]) drives it at run time, replaying
//!   those ops with real DMA submissions on the multi-stream timeline.
//!
//! Because both apply the *same op sequence* through the *same allocator*,
//! the executed memory trajectory — and therefore the peak — is identical to
//! the planned one by construction.
//!
//! Plan compilation is the system's hot path (admission ladders and
//! feasibility searches compile thousands of plans), so the Tensor Cache is
//! an **intrusive doubly-linked list over dense `TensorId`-indexed arrays**:
//! touch, insert, remove and pin are all O(1), no allocation, no hashing.
//! The pre-optimization `Vec`-backed list survives as
//! [`reference::VecCache`] and a differential test asserts both produce
//! identical victim sequences.

use sn_graph::liveness::{LivenessPlan, TensorId};
use sn_sim::{AllocId, Dma};

use crate::device::Device;
use crate::policy::CachePolicy;
use crate::tiers::{Tier, TierSlot};

/// Where a tensor currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residence {
    /// Not materialized anywhere (never produced, or dropped for recompute).
    None,
    /// On device DRAM (possibly with a transfer in flight).
    Device,
    /// Host copy only.
    Host,
}

/// Residency state of one tensor.
#[derive(Debug, Clone, Copy)]
pub struct TensorState {
    pub residence: Residence,
    pub grant: Option<AllocId>,
    pub host_slot: Option<TierSlot>,
    /// Host copy is a valid replica of the tensor's contents.
    pub host_valid: bool,
    /// Pin count: locked tensors are never victims of eviction or release.
    pub lock: u32,
    /// Monotone insertion stamp for the FIFO cache policy.
    pub inserted_at: u64,
    /// A device→host copy has been issued and its device copy not yet
    /// released (the logical "offload in flight" marker both drivers use).
    pub offloading: bool,
    /// The pending offload is an eviction: release the device copy as soon
    /// as the copy-out lands, rather than waiting for forward consumers.
    pub evicting: bool,
    /// Runtime only: the in-flight device→host DMA on the D2H stream.
    pub offload: Option<Dma>,
    /// Runtime only: the in-flight host→device DMA consumers gate on.
    pub prefetch: Option<Dma>,
}

impl TensorState {
    pub const EMPTY: TensorState = TensorState {
        residence: Residence::None,
        grant: None,
        host_slot: None,
        host_valid: false,
        lock: 0,
        inserted_at: 0,
        offloading: false,
        evicting: false,
        offload: None,
        prefetch: None,
    };
}

const NONE: u32 = u32::MAX;

/// One tensor's links in the intrusive recency list.
#[derive(Debug, Clone, Copy)]
struct CacheLink {
    newer: u32,
    older: u32,
    linked: bool,
}

const UNLINKED: CacheLink = CacheLink {
    newer: NONE,
    older: NONE,
    linked: false,
};

/// The intrusive recency list: per-tensor `newer`/`older` links in one
/// dense array, `head` = MRU, `tail` = LRU. Every mutation is O(1); victim
/// scans walk only as far as the first evictable entry.
#[derive(Debug, Clone)]
struct CacheList {
    links: Vec<CacheLink>,
    head: u32,
    tail: u32,
    len: usize,
}

impl CacheList {
    fn new(n: usize) -> CacheList {
        CacheList {
            links: vec![UNLINKED; n],
            head: NONE,
            tail: NONE,
            len: 0,
        }
    }

    /// Link `t` at the MRU end. `t` must not be linked.
    fn push_front(&mut self, t: TensorId) {
        debug_assert!(!self.links[t.0].linked);
        let i = t.0 as u32;
        self.links[t.0] = CacheLink {
            newer: NONE,
            older: self.head,
            linked: true,
        };
        if self.head != NONE {
            self.links[self.head as usize].newer = i;
        }
        self.head = i;
        if self.tail == NONE {
            self.tail = i;
        }
        self.len += 1;
    }

    /// Unlink `t` wherever it sits. No-op when not linked.
    fn unlink(&mut self, t: TensorId) {
        let CacheLink {
            newer: n,
            older: o,
            linked,
        } = self.links[t.0];
        if !linked {
            return;
        }
        if n != NONE {
            self.links[n as usize].older = o;
        } else {
            self.head = o;
        }
        if o != NONE {
            self.links[o as usize].newer = n;
        } else {
            self.tail = n;
        }
        self.links[t.0].linked = false;
        self.len -= 1;
    }

    /// Move `t` to the MRU end if present.
    fn touch(&mut self, t: TensorId) {
        if self.links[t.0].linked {
            self.unlink(t);
            self.push_front(t);
        }
    }

    fn clear(&mut self) {
        let mut t = self.head;
        while t != NONE {
            let next = self.links[t as usize].older;
            self.links[t as usize].linked = false;
            t = next;
        }
        self.head = NONE;
        self.tail = NONE;
        self.len = 0;
    }
}

/// Reference Tensor Cache implementations, kept for differential tests and
/// the `compile` bench experiment's pre-optimization baseline row.
pub mod reference {
    use super::*;

    /// The pre-optimization cache list: a `Vec` with front = MRU, O(n)
    /// touch/remove (a `position` scan plus a memmove per operation).
    #[derive(Debug, Clone, Default)]
    pub struct VecCache {
        pub(super) list: Vec<TensorId>,
    }

    impl VecCache {
        pub(super) fn touch(&mut self, t: TensorId) {
            if let Some(pos) = self.list.iter().position(|x| *x == t) {
                let id = self.list.remove(pos);
                self.list.insert(0, id); // MFU position: the list front
            }
        }

        pub(super) fn push_front(&mut self, t: TensorId) {
            debug_assert!(!self.list.contains(&t));
            self.list.insert(0, t);
        }

        pub(super) fn remove(&mut self, t: TensorId) {
            if let Some(pos) = self.list.iter().position(|x| *x == t) {
                self.list.remove(pos);
            }
        }
    }
}

/// Either cache representation behind one dispatch point. The linked form
/// is the production one; the `Vec` form exists so benches and tests can
/// drive the exact pre-optimization data structure through the same API.
#[derive(Debug, Clone)]
enum Cache {
    Linked(CacheList),
    Reference(reference::VecCache),
}

/// The residency manager: tensor states + LRU Tensor Cache + pending
/// offloads, behind a narrow mutation API. It never *decides* anything —
/// decisions live in the planner — it keeps the books both drivers share.
#[derive(Debug, Clone)]
pub struct Utp {
    pub states: Vec<TensorState>,
    /// The device-resident, cache-managed tensors in recency order.
    cache: Cache,
    insertion_clock: u64,
    /// Tensors with an in-flight device→host copy, in submission order
    /// (D2H serializes, so submission order is completion order).
    pub pending_offloads: Vec<TensorId>,
}

impl Utp {
    pub fn new(n_tensors: usize) -> Utp {
        Utp {
            states: vec![TensorState::EMPTY; n_tensors],
            cache: Cache::Linked(CacheList::new(n_tensors)),
            insertion_clock: 0,
            pending_offloads: Vec::new(),
        }
    }

    /// A UTP whose Tensor Cache uses the reference `Vec` list — identical
    /// semantics, pre-optimization costs. Benchmark/test support only.
    pub fn new_reference(n_tensors: usize) -> Utp {
        Utp {
            cache: Cache::Reference(reference::VecCache::default()),
            ..Utp::new(n_tensors)
        }
    }

    #[inline]
    pub fn state(&self, t: TensorId) -> &TensorState {
        &self.states[t.0]
    }

    // ------------------------------------------------------------------
    // LRU Tensor Cache (Alg. 2) bookkeeping
    // ------------------------------------------------------------------

    pub fn lru_touch(&mut self, t: TensorId) {
        match &mut self.cache {
            Cache::Linked(l) => l.touch(t),
            Cache::Reference(v) => v.touch(t),
        }
    }

    pub fn lru_insert(&mut self, t: TensorId) {
        self.insertion_clock += 1;
        self.states[t.0].inserted_at = self.insertion_clock;
        match &mut self.cache {
            Cache::Linked(l) => l.push_front(t),
            Cache::Reference(v) => v.push_front(t),
        }
    }

    pub fn lru_remove(&mut self, t: TensorId) {
        match &mut self.cache {
            Cache::Linked(l) => l.unlink(t),
            Cache::Reference(v) => v.remove(t),
        }
    }

    /// The cache's victim under `policy`: the least-desirable unlocked,
    /// not-already-offloading resident tensor, or `None` when nothing is
    /// evictable. LRU victims come from the cold end, MRU victims from the
    /// hot end, FIFO victims by insertion stamp — and the scans stop at the
    /// first evictable entry (FIFO necessarily visits all).
    pub fn pick_victim(&self, policy: CachePolicy) -> Option<TensorId> {
        let evictable = |t: TensorId| {
            let st = &self.states[t.0];
            st.lock == 0 && !st.offloading
        };
        match &self.cache {
            Cache::Linked(l) => match policy {
                CachePolicy::Lru => {
                    let mut t = l.tail;
                    while t != NONE {
                        let id = TensorId(t as usize);
                        if evictable(id) {
                            return Some(id);
                        }
                        t = l.links[t as usize].newer;
                    }
                    None
                }
                CachePolicy::Mru => {
                    let mut t = l.head;
                    while t != NONE {
                        let id = TensorId(t as usize);
                        if evictable(id) {
                            return Some(id);
                        }
                        t = l.links[t as usize].older;
                    }
                    None
                }
                CachePolicy::Fifo => {
                    let mut best: Option<TensorId> = None;
                    let mut t = l.head;
                    while t != NONE {
                        let id = TensorId(t as usize);
                        if evictable(id)
                            && best.is_none_or(|b| {
                                self.states[id.0].inserted_at < self.states[b.0].inserted_at
                            })
                        {
                            best = Some(id);
                        }
                        t = l.links[t as usize].older;
                    }
                    best
                }
            },
            Cache::Reference(v) => match policy {
                CachePolicy::Lru => v.list.iter().rev().copied().find(|t| evictable(*t)),
                CachePolicy::Mru => v.list.iter().copied().find(|t| evictable(*t)),
                CachePolicy::Fifo => v
                    .list
                    .iter()
                    .copied()
                    .filter(|t| evictable(*t))
                    .min_by_key(|t| self.states[t.0].inserted_at),
            },
        }
    }

    // ------------------------------------------------------------------
    // Pending offloads (the reclamation ladder's reservoir)
    // ------------------------------------------------------------------

    /// May tensor `t`'s pending offload release the device copy at `step`?
    /// True for evictions (the bytes are what the eviction was for) and for
    /// eager checkpoint offloads whose forward consumers have all run —
    /// never while the tensor is locked. The single source of truth for the
    /// planner's drain/ladder, which must agree with the interpreter.
    pub fn offload_reapable(&self, t: TensorId, liveness: &LivenessPlan, step: usize) -> bool {
        let st = &self.states[t.0];
        st.lock == 0 && (st.evicting || step > liveness.tensors[t.0].fwd_last_use)
    }

    /// The earliest-submitted pending offload that is reapable at `step`
    /// (D2H serializes, so earliest submitted is earliest to land).
    pub fn first_reapable(&self, liveness: &LivenessPlan, step: usize) -> Option<TensorId> {
        self.pending_offloads
            .iter()
            .copied()
            .find(|t| self.offload_reapable(*t, liveness, step))
    }

    /// All reapable pending offloads at `step`, in submission order.
    pub fn reapable(&self, liveness: &LivenessPlan, step: usize) -> Vec<TensorId> {
        let mut out = Vec::new();
        self.collect_reapable(liveness, step, &mut out);
        out
    }

    /// [`Utp::reapable`] into a caller-owned scratch buffer (cleared first)
    /// — the planner calls this every step, so the allocation is hoisted
    /// out of the loop.
    pub fn collect_reapable(&self, liveness: &LivenessPlan, step: usize, out: &mut Vec<TensorId>) {
        out.clear();
        out.extend(
            self.pending_offloads
                .iter()
                .copied()
                .filter(|t| self.offload_reapable(*t, liveness, step)),
        );
    }

    /// Record an issued offload (eviction or eager checkpoint copy-out).
    pub fn mark_offloading(&mut self, t: TensorId, evict: bool, dma: Option<Dma>) {
        let st = &mut self.states[t.0];
        debug_assert_eq!(st.residence, Residence::Device);
        debug_assert!(!st.offloading);
        st.offloading = true;
        st.evicting = evict;
        st.offload = dma;
        if evict {
            st.prefetch = None;
        }
        self.pending_offloads.push(t);
    }

    fn unpend(&mut self, t: TensorId) {
        if let Some(pos) = self.pending_offloads.iter().position(|x| *x == t) {
            self.pending_offloads.remove(pos);
        }
    }

    // ------------------------------------------------------------------
    // State transitions (shared by planner apply and interpreter apply)
    // ------------------------------------------------------------------

    /// Host tier a tensor's external copy lives in (local host when none is
    /// reserved yet — the tier `ensure_host_slot` would pick first).
    pub fn tier_of(&self, t: TensorId) -> Tier {
        self.states[t.0]
            .host_slot
            .map(|s| s.tier)
            .unwrap_or(Tier::LocalHost)
    }

    /// Reserve an external slot for `t` in the fastest tier with room.
    /// Returns `false` when every tier is exhausted.
    pub fn ensure_host_slot(&mut self, t: TensorId, bytes: u64, dev: &mut Device) -> bool {
        if self.states[t.0].host_slot.is_some() {
            return true;
        }
        match dev.host.reserve(bytes) {
            Some(slot) => {
                self.states[t.0].host_slot = Some(slot);
                true
            }
            None => false,
        }
    }

    /// Record a fresh device materialization of `t` under `grant`.
    pub fn mark_device(&mut self, t: TensorId, grant: AllocId, cached: bool) {
        let st = &mut self.states[t.0];
        st.grant = Some(grant);
        st.residence = Residence::Device;
        if cached {
            self.lru_insert(t);
        }
    }

    /// Release the device copy of `t` (offload landed / recompute cleanup /
    /// host-valid eviction). The host copy, if any, becomes the residence.
    /// Returns `true` when the tensor's *contents* are now gone entirely
    /// (caller must notify the numeric backend).
    pub fn release_device(&mut self, t: TensorId, dev: &mut Device) -> bool {
        let st = &mut self.states[t.0];
        if st.offloading {
            // An offload was in flight: the copy-out has (logically) landed.
            st.offloading = false;
            st.evicting = false;
            st.offload = None;
            st.host_valid = true;
        }
        st.prefetch = None;
        if let Some(g) = st.grant.take() {
            dev.free_charged(g);
        }
        st.residence = if st.host_valid {
            Residence::Host
        } else {
            Residence::None
        };
        self.unpend(t);
        self.lru_remove(t);
        self.states[t.0].residence == Residence::None
    }

    /// Fully release `t`: device grant, host slot, pending transfers.
    /// In-flight copy-outs are *cancelled*, not awaited (the contents are
    /// dead). Always notify the backend after calling this.
    pub fn free_tensor(&mut self, t: TensorId, dev: &mut Device) {
        let st = &mut self.states[t.0];
        debug_assert_eq!(st.lock, 0, "freeing a locked tensor");
        st.offloading = false;
        st.evicting = false;
        st.offload = None;
        st.prefetch = None;
        if let Some(g) = st.grant.take() {
            dev.free_charged(g);
        }
        if let Some(slot) = self.states[t.0].host_slot.take() {
            dev.host.release(slot);
        }
        self.states[t.0].host_valid = false;
        self.states[t.0].residence = Residence::None;
        self.unpend(t);
        self.lru_remove(t);
    }

    /// Drop every tensor back to [`TensorState::EMPTY`], releasing grants
    /// and host slots — the between-iterations reset.
    pub fn reset(&mut self, dev: &mut Device) {
        for i in 0..self.states.len() {
            self.states[i].lock = 0;
            self.states[i].offloading = false;
            self.states[i].evicting = false;
            self.states[i].offload = None;
            self.states[i].prefetch = None;
            if let Some(g) = self.states[i].grant.take() {
                dev.free_charged(g);
            }
            if let Some(slot) = self.states[i].host_slot.take() {
                dev.host.release(slot);
            }
            self.states[i].host_valid = false;
            self.states[i].residence = Residence::None;
        }
        match &mut self.cache {
            Cache::Linked(l) => l.clear(),
            Cache::Reference(v) => v.list.clear(),
        }
        self.pending_offloads.clear();
    }

    /// Number of tensors currently under Tensor Cache management — the
    /// telemetry occupancy gauge (`exec.cache.resident`). O(1) for both
    /// cache representations.
    pub fn cache_len(&self) -> usize {
        match &self.cache {
            Cache::Linked(l) => l.len,
            Cache::Reference(v) => v.list.len(),
        }
    }

    /// Count of device-resident tensors (the trace's live-tensor series).
    pub fn device_resident(&self) -> usize {
        self.states
            .iter()
            .filter(|st| st.residence == Residence::Device)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AllocatorKind;
    use crate::tiers::TierConfig;
    use sn_sim::{DeviceAllocator, DeviceSpec};

    fn dev() -> Device {
        Device::new(
            DeviceSpec::k40c().with_dram(1 << 20),
            AllocatorKind::HeapPool,
            TierConfig::local_only(1 << 20),
        )
    }

    #[test]
    fn lru_orders_victims_back_to_front() {
        let mut utp = Utp::new(3);
        let mut d = dev();
        for i in 0..3 {
            let g = d.alloc_charged(1024).unwrap();
            utp.mark_device(TensorId(i), g.id, true);
        }
        // Insert order 0,1,2 → front is 2 (MRU); LRU victim is 0.
        assert_eq!(utp.pick_victim(CachePolicy::Lru), Some(TensorId(0)));
        assert_eq!(utp.pick_victim(CachePolicy::Mru), Some(TensorId(2)));
        assert_eq!(utp.pick_victim(CachePolicy::Fifo), Some(TensorId(0)));
        // Touch 0 → it becomes MRU; LRU victim moves to 1, FIFO stays 0.
        utp.lru_touch(TensorId(0));
        assert_eq!(utp.pick_victim(CachePolicy::Lru), Some(TensorId(1)));
        assert_eq!(utp.pick_victim(CachePolicy::Fifo), Some(TensorId(0)));
        // Locked tensors are never victims.
        utp.states[1].lock = 1;
        assert_eq!(utp.pick_victim(CachePolicy::Lru), Some(TensorId(2)));
    }

    #[test]
    fn release_device_lands_pending_offload_on_host() {
        let mut utp = Utp::new(1);
        let mut d = dev();
        let g = d.alloc_charged(2048).unwrap();
        let t = TensorId(0);
        utp.mark_device(t, g.id, true);
        assert!(utp.ensure_host_slot(t, 2048, &mut d));
        utp.mark_offloading(t, true, None);
        assert_eq!(utp.pending_offloads, vec![t]);
        let gone = utp.release_device(t, &mut d);
        assert!(!gone, "host copy survives");
        assert_eq!(utp.state(t).residence, Residence::Host);
        assert!(utp.state(t).host_valid);
        assert!(utp.pending_offloads.is_empty());
        assert_eq!(d.alloc.used(), 0);
    }

    #[test]
    fn free_tensor_cancels_and_releases_everything() {
        let mut utp = Utp::new(1);
        let mut d = dev();
        let g = d.alloc_charged(2048).unwrap();
        let t = TensorId(0);
        utp.mark_device(t, g.id, true);
        utp.ensure_host_slot(t, 2048, &mut d);
        utp.mark_offloading(t, false, None);
        utp.free_tensor(t, &mut d);
        assert_eq!(utp.state(t).residence, Residence::None);
        assert!(utp.pending_offloads.is_empty());
        assert_eq!(d.alloc.used(), 0);
        assert_eq!(d.host.total_used(), 0);
    }

    #[test]
    fn linked_cache_matches_reference_over_random_ops() {
        // Differential: drive the intrusive list and the reference Vec list
        // through an identical mixed op sequence (insert / touch / remove /
        // lock) and demand the same victim under every policy at every step.
        let n = 24;
        let mut fast = Utp::new(n);
        let mut slow = Utp::new_reference(n);
        let mut x = 0x2545_f491_4f6c_dd1du64; // deterministic xorshift
        let step = |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            *s
        };
        let mut resident = vec![false; n];
        for _ in 0..2000 {
            let r = step(&mut x);
            let t = TensorId((r >> 8) as usize % n);
            match r % 5 {
                0 | 1 => {
                    if !resident[t.0] {
                        resident[t.0] = true;
                        // mark_device without a real grant: states only.
                        fast.states[t.0].residence = Residence::Device;
                        slow.states[t.0].residence = Residence::Device;
                        fast.lru_insert(t);
                        slow.lru_insert(t);
                    } else {
                        fast.lru_touch(t);
                        slow.lru_touch(t);
                    }
                }
                2 => {
                    resident[t.0] = false;
                    fast.states[t.0].residence = Residence::None;
                    slow.states[t.0].residence = Residence::None;
                    fast.lru_remove(t);
                    slow.lru_remove(t);
                }
                3 => {
                    let l = (r >> 16) as u32 % 2;
                    fast.states[t.0].lock = l;
                    slow.states[t.0].lock = l;
                }
                _ => {
                    let b = r & 1 == 0;
                    fast.states[t.0].offloading = b;
                    slow.states[t.0].offloading = b;
                }
            }
            for policy in [CachePolicy::Lru, CachePolicy::Mru, CachePolicy::Fifo] {
                assert_eq!(
                    fast.pick_victim(policy),
                    slow.pick_victim(policy),
                    "victim diverged under {policy:?}"
                );
            }
        }
    }
}
