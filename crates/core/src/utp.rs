//! The Unified Tensor Pool residency manager.
//!
//! One place owns *where every tensor currently is* and the machinery that
//! moves tensors between device DRAM and the external UTP tiers: the
//! tensor-state map, the Alg. 2 LRU Tensor Cache bookkeeping, the pending
//! offload list the reclamation ladder drains, host-slot management over the
//! tiered pools, and the in-flight DMA handles kernels gate on.
//!
//! Two drivers share this state machine:
//!
//! * the **planner** ([`crate::plan`]) drives it at compile time — with
//!   *instant* logical transfers — to decide every eviction, offload,
//!   prefetch and release, recording each mutation as a [`crate::plan::PlanOp`];
//! * the **executor** ([`crate::executor`]) drives it at run time, replaying
//!   those ops with real DMA submissions on the multi-stream timeline.
//!
//! Because both apply the *same op sequence* through the *same allocator*,
//! the executed memory trajectory — and therefore the peak — is identical to
//! the planned one by construction.

use sn_graph::liveness::{LivenessPlan, TensorId};
use sn_sim::{AllocId, Dma};

use crate::device::Device;
use crate::policy::CachePolicy;
use crate::tiers::{Tier, TierSlot};

/// Where a tensor currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residence {
    /// Not materialized anywhere (never produced, or dropped for recompute).
    None,
    /// On device DRAM (possibly with a transfer in flight).
    Device,
    /// Host copy only.
    Host,
}

/// Residency state of one tensor.
#[derive(Debug, Clone, Copy)]
pub struct TensorState {
    pub residence: Residence,
    pub grant: Option<AllocId>,
    pub host_slot: Option<TierSlot>,
    /// Host copy is a valid replica of the tensor's contents.
    pub host_valid: bool,
    /// Pin count: locked tensors are never victims of eviction or release.
    pub lock: u32,
    /// Monotone insertion stamp for the FIFO cache policy.
    pub inserted_at: u64,
    /// A device→host copy has been issued and its device copy not yet
    /// released (the logical "offload in flight" marker both drivers use).
    pub offloading: bool,
    /// The pending offload is an eviction: release the device copy as soon
    /// as the copy-out lands, rather than waiting for forward consumers.
    pub evicting: bool,
    /// Runtime only: the in-flight device→host DMA on the D2H stream.
    pub offload: Option<Dma>,
    /// Runtime only: the in-flight host→device DMA consumers gate on.
    pub prefetch: Option<Dma>,
}

impl TensorState {
    pub const EMPTY: TensorState = TensorState {
        residence: Residence::None,
        grant: None,
        host_slot: None,
        host_valid: false,
        lock: 0,
        inserted_at: 0,
        offloading: false,
        evicting: false,
        offload: None,
        prefetch: None,
    };
}

/// The residency manager: tensor states + LRU Tensor Cache + pending
/// offloads, behind a narrow mutation API. It never *decides* anything —
/// decisions live in the planner — it keeps the books both drivers share.
#[derive(Debug, Clone)]
pub struct Utp {
    pub states: Vec<TensorState>,
    /// LRU list of device-resident, cache-managed tensors (front = MRU).
    lru: Vec<TensorId>,
    insertion_clock: u64,
    /// Tensors with an in-flight device→host copy, in submission order
    /// (D2H serializes, so submission order is completion order).
    pub pending_offloads: Vec<TensorId>,
}

impl Utp {
    pub fn new(n_tensors: usize) -> Utp {
        Utp {
            states: vec![TensorState::EMPTY; n_tensors],
            lru: Vec::new(),
            insertion_clock: 0,
            pending_offloads: Vec::new(),
        }
    }

    #[inline]
    pub fn state(&self, t: TensorId) -> &TensorState {
        &self.states[t.0]
    }

    // ------------------------------------------------------------------
    // LRU Tensor Cache (Alg. 2) bookkeeping
    // ------------------------------------------------------------------

    pub fn lru_touch(&mut self, t: TensorId) {
        if let Some(pos) = self.lru.iter().position(|x| *x == t) {
            let id = self.lru.remove(pos);
            self.lru.insert(0, id); // MFU position: the list front
        }
    }

    pub fn lru_insert(&mut self, t: TensorId) {
        debug_assert!(!self.lru.contains(&t));
        self.insertion_clock += 1;
        self.states[t.0].inserted_at = self.insertion_clock;
        self.lru.insert(0, t);
    }

    pub fn lru_remove(&mut self, t: TensorId) {
        if let Some(pos) = self.lru.iter().position(|x| *x == t) {
            self.lru.remove(pos);
        }
    }

    /// The cache's victim under `policy`: the least-desirable unlocked,
    /// not-already-offloading resident tensor, or `None` when nothing is
    /// evictable. Front of the list is MFU (Alg. 2), so LRU victims come
    /// from the back, MRU victims from the front, FIFO victims by stamp.
    pub fn pick_victim(&self, policy: CachePolicy) -> Option<TensorId> {
        let evictable = |st: &TensorState| st.lock == 0 && !st.offloading;
        match policy {
            CachePolicy::Lru => self
                .lru
                .iter()
                .rev()
                .find(|t| evictable(&self.states[t.0]))
                .copied(),
            CachePolicy::Mru => self
                .lru
                .iter()
                .find(|t| evictable(&self.states[t.0]))
                .copied(),
            CachePolicy::Fifo => self
                .lru
                .iter()
                .filter(|t| evictable(&self.states[t.0]))
                .min_by_key(|t| self.states[t.0].inserted_at)
                .copied(),
        }
    }

    // ------------------------------------------------------------------
    // Pending offloads (the reclamation ladder's reservoir)
    // ------------------------------------------------------------------

    /// May tensor `t`'s pending offload release the device copy at `step`?
    /// True for evictions (the bytes are what the eviction was for) and for
    /// eager checkpoint offloads whose forward consumers have all run —
    /// never while the tensor is locked. The single source of truth for the
    /// planner's drain/ladder, which must agree with the interpreter.
    pub fn offload_reapable(&self, t: TensorId, liveness: &LivenessPlan, step: usize) -> bool {
        let st = &self.states[t.0];
        st.lock == 0 && (st.evicting || step > liveness.tensors[t.0].fwd_last_use)
    }

    /// The earliest-submitted pending offload that is reapable at `step`
    /// (D2H serializes, so earliest submitted is earliest to land).
    pub fn first_reapable(&self, liveness: &LivenessPlan, step: usize) -> Option<TensorId> {
        self.pending_offloads
            .iter()
            .copied()
            .find(|t| self.offload_reapable(*t, liveness, step))
    }

    /// All reapable pending offloads at `step`, in submission order.
    pub fn reapable(&self, liveness: &LivenessPlan, step: usize) -> Vec<TensorId> {
        self.pending_offloads
            .iter()
            .copied()
            .filter(|t| self.offload_reapable(*t, liveness, step))
            .collect()
    }

    /// Record an issued offload (eviction or eager checkpoint copy-out).
    pub fn mark_offloading(&mut self, t: TensorId, evict: bool, dma: Option<Dma>) {
        let st = &mut self.states[t.0];
        debug_assert_eq!(st.residence, Residence::Device);
        debug_assert!(!st.offloading);
        st.offloading = true;
        st.evicting = evict;
        st.offload = dma;
        if evict {
            st.prefetch = None;
        }
        self.pending_offloads.push(t);
    }

    fn unpend(&mut self, t: TensorId) {
        if let Some(pos) = self.pending_offloads.iter().position(|x| *x == t) {
            self.pending_offloads.remove(pos);
        }
    }

    // ------------------------------------------------------------------
    // State transitions (shared by planner apply and interpreter apply)
    // ------------------------------------------------------------------

    /// Host tier a tensor's external copy lives in (local host when none is
    /// reserved yet — the tier `ensure_host_slot` would pick first).
    pub fn tier_of(&self, t: TensorId) -> Tier {
        self.states[t.0]
            .host_slot
            .map(|s| s.tier)
            .unwrap_or(Tier::LocalHost)
    }

    /// Reserve an external slot for `t` in the fastest tier with room.
    /// Returns `false` when every tier is exhausted.
    pub fn ensure_host_slot(&mut self, t: TensorId, bytes: u64, dev: &mut Device) -> bool {
        if self.states[t.0].host_slot.is_some() {
            return true;
        }
        match dev.host.reserve(bytes) {
            Some(slot) => {
                self.states[t.0].host_slot = Some(slot);
                true
            }
            None => false,
        }
    }

    /// Record a fresh device materialization of `t` under `grant`.
    pub fn mark_device(&mut self, t: TensorId, grant: AllocId, cached: bool) {
        let st = &mut self.states[t.0];
        st.grant = Some(grant);
        st.residence = Residence::Device;
        if cached {
            self.lru_insert(t);
        }
    }

    /// Release the device copy of `t` (offload landed / recompute cleanup /
    /// host-valid eviction). The host copy, if any, becomes the residence.
    /// Returns `true` when the tensor's *contents* are now gone entirely
    /// (caller must notify the numeric backend).
    pub fn release_device(&mut self, t: TensorId, dev: &mut Device) -> bool {
        let st = &mut self.states[t.0];
        if st.offloading {
            // An offload was in flight: the copy-out has (logically) landed.
            st.offloading = false;
            st.evicting = false;
            st.offload = None;
            st.host_valid = true;
        }
        st.prefetch = None;
        if let Some(g) = st.grant.take() {
            dev.free_charged(g);
        }
        st.residence = if st.host_valid {
            Residence::Host
        } else {
            Residence::None
        };
        self.unpend(t);
        self.lru_remove(t);
        self.states[t.0].residence == Residence::None
    }

    /// Fully release `t`: device grant, host slot, pending transfers.
    /// In-flight copy-outs are *cancelled*, not awaited (the contents are
    /// dead). Always notify the backend after calling this.
    pub fn free_tensor(&mut self, t: TensorId, dev: &mut Device) {
        let st = &mut self.states[t.0];
        debug_assert_eq!(st.lock, 0, "freeing a locked tensor");
        st.offloading = false;
        st.evicting = false;
        st.offload = None;
        st.prefetch = None;
        if let Some(g) = st.grant.take() {
            dev.free_charged(g);
        }
        if let Some(slot) = self.states[t.0].host_slot.take() {
            dev.host.release(slot);
        }
        self.states[t.0].host_valid = false;
        self.states[t.0].residence = Residence::None;
        self.unpend(t);
        self.lru_remove(t);
    }

    /// Drop every tensor back to [`TensorState::EMPTY`], releasing grants
    /// and host slots — the between-iterations reset.
    pub fn reset(&mut self, dev: &mut Device) {
        for i in 0..self.states.len() {
            self.states[i].lock = 0;
            self.states[i].offloading = false;
            self.states[i].evicting = false;
            self.states[i].offload = None;
            self.states[i].prefetch = None;
            if let Some(g) = self.states[i].grant.take() {
                dev.free_charged(g);
            }
            if let Some(slot) = self.states[i].host_slot.take() {
                dev.host.release(slot);
            }
            self.states[i].host_valid = false;
            self.states[i].residence = Residence::None;
        }
        self.lru.clear();
        self.pending_offloads.clear();
    }

    /// Count of device-resident tensors (the trace's live-tensor series).
    pub fn device_resident(&self) -> usize {
        self.states
            .iter()
            .filter(|st| st.residence == Residence::Device)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AllocatorKind;
    use crate::tiers::TierConfig;
    use sn_sim::{DeviceAllocator, DeviceSpec};

    fn dev() -> Device {
        Device::new(
            DeviceSpec::k40c().with_dram(1 << 20),
            AllocatorKind::HeapPool,
            TierConfig::local_only(1 << 20),
        )
    }

    #[test]
    fn lru_orders_victims_back_to_front() {
        let mut utp = Utp::new(3);
        let mut d = dev();
        for i in 0..3 {
            let g = d.alloc_charged(1024).unwrap();
            utp.mark_device(TensorId(i), g.id, true);
        }
        // Insert order 0,1,2 → front is 2 (MRU); LRU victim is 0.
        assert_eq!(utp.pick_victim(CachePolicy::Lru), Some(TensorId(0)));
        assert_eq!(utp.pick_victim(CachePolicy::Mru), Some(TensorId(2)));
        assert_eq!(utp.pick_victim(CachePolicy::Fifo), Some(TensorId(0)));
        // Touch 0 → it becomes MRU; LRU victim moves to 1, FIFO stays 0.
        utp.lru_touch(TensorId(0));
        assert_eq!(utp.pick_victim(CachePolicy::Lru), Some(TensorId(1)));
        assert_eq!(utp.pick_victim(CachePolicy::Fifo), Some(TensorId(0)));
        // Locked tensors are never victims.
        utp.states[1].lock = 1;
        assert_eq!(utp.pick_victim(CachePolicy::Lru), Some(TensorId(2)));
    }

    #[test]
    fn release_device_lands_pending_offload_on_host() {
        let mut utp = Utp::new(1);
        let mut d = dev();
        let g = d.alloc_charged(2048).unwrap();
        let t = TensorId(0);
        utp.mark_device(t, g.id, true);
        assert!(utp.ensure_host_slot(t, 2048, &mut d));
        utp.mark_offloading(t, true, None);
        assert_eq!(utp.pending_offloads, vec![t]);
        let gone = utp.release_device(t, &mut d);
        assert!(!gone, "host copy survives");
        assert_eq!(utp.state(t).residence, Residence::Host);
        assert!(utp.state(t).host_valid);
        assert!(utp.pending_offloads.is_empty());
        assert_eq!(d.alloc.used(), 0);
    }

    #[test]
    fn free_tensor_cancels_and_releases_everything() {
        let mut utp = Utp::new(1);
        let mut d = dev();
        let g = d.alloc_charged(2048).unwrap();
        let t = TensorId(0);
        utp.mark_device(t, g.id, true);
        utp.ensure_host_slot(t, 2048, &mut d);
        utp.mark_offloading(t, false, None);
        utp.free_tensor(t, &mut d);
        assert_eq!(utp.state(t).residence, Residence::None);
        assert!(utp.pending_offloads.is_empty());
        assert_eq!(d.alloc.used(), 0);
        assert_eq!(d.host.total_used(), 0);
    }
}
