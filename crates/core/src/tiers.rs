//! Multi-tier Unified Tensor Pool backends (paper Fig. 7).
//!
//! The UTP is "a consolidated memory pool abstraction … using various
//! external physical memory such as CPU DRAM, DRAM of other GPUs, or remote
//! CPU/GPU DRAM". The paper evaluates the local-CPU case and notes the
//! abstraction covers the others; this module implements the full tier set
//! with the interconnect speeds §3.3.2 quotes: pinned host over PCIe
//! ≈ 8 GB/s, peer GPU over the same PCIe switch ≈ 10 GB/s, remote GPU over
//! GPU-Direct RDMA ≈ 6 GB/s.
//!
//! Placement is capacity-ordered by speed: a tensor spills to the fastest
//! tier with room, so constraining the local host pool degrades offload
//! bandwidth gracefully instead of failing the run — the behaviour the
//! tiered-UTP experiment (`experiments ablation`) demonstrates.

use sn_mempool::host::HostSlot;
use sn_mempool::PinnedHostPool;

/// External memory tier, fastest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Peer GPU DRAM over the same PCIe switch (~10 GB/s).
    PeerGpu,
    /// Local pinned CPU DRAM over PCIe 16x (~8 GB/s).
    LocalHost,
    /// Remote CPU/GPU DRAM over GPU-Direct RDMA (~6 GB/s).
    Remote,
}

impl Tier {
    pub fn name(&self) -> &'static str {
        match self {
            Tier::PeerGpu => "peer-gpu",
            Tier::LocalHost => "local-host",
            Tier::Remote => "remote",
        }
    }

    /// Link bandwidth for this tier in GB/s (§3.3.2's practical speeds).
    pub fn gbps(&self) -> f64 {
        match self {
            Tier::PeerGpu => 10.0,
            Tier::LocalHost => 8.0,
            Tier::Remote => 6.0,
        }
    }
}

/// Capacity configuration of the external pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TierConfig {
    /// Peer-GPU pool bytes (0 disables the tier — the common single-GPU
    /// case).
    pub peer_gpu_bytes: u64,
    /// Local pinned host pool bytes.
    pub local_host_bytes: u64,
    /// Remote pool bytes (0 disables).
    pub remote_bytes: u64,
}

impl TierConfig {
    /// The paper's evaluated configuration: local CPU DRAM only.
    pub fn local_only(host_bytes: u64) -> TierConfig {
        TierConfig {
            peer_gpu_bytes: 0,
            local_host_bytes: host_bytes,
            remote_bytes: 0,
        }
    }

    /// All three tiers of Fig. 7.
    pub fn full(peer: u64, local: u64, remote: u64) -> TierConfig {
        TierConfig {
            peer_gpu_bytes: peer,
            local_host_bytes: local,
            remote_bytes: remote,
        }
    }
}

impl Default for TierConfig {
    fn default() -> Self {
        // 256 GiB of local pinned host — the single-tier default the rest
        // of the runtime has used all along.
        TierConfig::local_only(256 << 30)
    }
}

/// A slot in a specific tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSlot {
    pub tier: Tier,
    pub slot: HostSlot,
}

/// The consolidated external pool: placement, release, accounting.
#[derive(Debug, Clone)]
pub struct TieredPool {
    peer: PinnedHostPool,
    local: PinnedHostPool,
    remote: PinnedHostPool,
}

impl TieredPool {
    pub fn new(cfg: TierConfig) -> TieredPool {
        TieredPool {
            peer: PinnedHostPool::new(cfg.peer_gpu_bytes),
            local: PinnedHostPool::new(cfg.local_host_bytes),
            remote: PinnedHostPool::new(cfg.remote_bytes),
        }
    }

    fn pool(&mut self, tier: Tier) -> &mut PinnedHostPool {
        match tier {
            Tier::PeerGpu => &mut self.peer,
            Tier::LocalHost => &mut self.local,
            Tier::Remote => &mut self.remote,
        }
    }

    /// Reserve `bytes` in the fastest tier with room. Returns `None` only
    /// when every tier is exhausted.
    pub fn reserve(&mut self, bytes: u64) -> Option<TierSlot> {
        for tier in [Tier::PeerGpu, Tier::LocalHost, Tier::Remote] {
            if let Some(slot) = self.pool(tier).reserve(bytes) {
                return Some(TierSlot { tier, slot });
            }
        }
        None
    }

    pub fn release(&mut self, s: TierSlot) {
        self.pool(s.tier).release(s.slot);
    }

    /// Bytes used per tier: `(peer, local, remote)`.
    pub fn used(&self) -> (u64, u64, u64) {
        (self.peer.used(), self.local.used(), self.remote.used())
    }

    /// High-water marks per tier.
    pub fn high_water(&self) -> (u64, u64, u64) {
        (
            self.peer.high_water(),
            self.local.high_water(),
            self.remote.high_water(),
        )
    }

    pub fn total_used(&self) -> u64 {
        self.peer.used() + self.local.used() + self.remote.used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_prefers_fastest_tier() {
        let mut p = TieredPool::new(TierConfig::full(100, 100, 100));
        let a = p.reserve(60).unwrap();
        assert_eq!(a.tier, Tier::PeerGpu);
        let b = p.reserve(60).unwrap();
        assert_eq!(b.tier, Tier::LocalHost, "peer full -> local");
        let c = p.reserve(60).unwrap();
        assert_eq!(c.tier, Tier::Remote, "local full -> remote");
        assert!(p.reserve(60).is_none(), "all tiers exhausted");
        p.release(b);
        assert_eq!(p.reserve(60).unwrap().tier, Tier::LocalHost);
    }

    #[test]
    fn local_only_skips_disabled_tiers() {
        let mut p = TieredPool::new(TierConfig::local_only(1000));
        let s = p.reserve(10).unwrap();
        assert_eq!(s.tier, Tier::LocalHost);
        assert_eq!(p.used(), (0, 10, 0));
    }

    #[test]
    fn bandwidths_are_ordered_like_the_paper() {
        assert!(Tier::PeerGpu.gbps() > Tier::LocalHost.gbps());
        assert!(Tier::LocalHost.gbps() > Tier::Remote.gbps());
        assert_eq!(Tier::PeerGpu.gbps(), 10.0);
        assert_eq!(Tier::LocalHost.gbps(), 8.0);
        assert_eq!(Tier::Remote.gbps(), 6.0);
    }

    #[test]
    fn high_water_tracks_per_tier() {
        let mut p = TieredPool::new(TierConfig::full(50, 50, 50));
        let a = p.reserve(40).unwrap();
        let b = p.reserve(40).unwrap();
        p.release(a);
        p.release(b);
        assert_eq!(p.high_water(), (40, 40, 0));
        assert_eq!(p.total_used(), 0);
    }
}
