//! Numeric execution backend: real `f32` computation behind the scheduler.
//!
//! The executor decides *when* layers run (including recomputation replays)
//! and *which* values cease to exist; this backend owns the values and
//! performs the arithmetic with the `sn-tensor` kernels. Because dropout
//! masks are counter-based and BN statistics are deterministic functions of
//! the (identical) recomputed inputs, a replayed forward reproduces the
//! original activations bit-for-bit — the invariant that makes Cost-Aware
//! Recomputation semantically free, and which the integration tests assert.

use sn_graph::{LayerId, LayerKind, Net, PoolKind};
use sn_tensor::act::{
    dropout_backward, dropout_forward, eltwise_add, lrn_backward, lrn_forward, relu_backward,
    relu_forward, synthetic_batch, LrnParams,
};
use sn_tensor::attention::{attention_backward, attention_forward};
use sn_tensor::conv::{conv2d_backward, conv2d_forward, ConvParams};
use sn_tensor::embedding::{embedding_backward, embedding_forward};
use sn_tensor::layernorm::{layernorm_backward, layernorm_forward};
use sn_tensor::linear::{fc_backward, fc_forward};
use sn_tensor::loss::{accuracy, cross_entropy, softmax_forward, softmax_xent_backward};
use sn_tensor::mlp::{mlp_backward, mlp_forward};
use sn_tensor::norm::{bn_backward, bn_forward, BnSaved};
use sn_tensor::pool::{
    avgpool_backward, avgpool_forward, maxpool_backward, maxpool_forward, PoolParams,
};
use sn_tensor::sgd::{SgdParams, SgdState};
use sn_tensor::{Shape4, Tensor};

use crate::executor::ComputeBackend;

/// Per-layer trainable parameters.
struct LayerParams {
    weight: Tensor,
    bias: Vec<f32>,
    w_state: SgdState,
    b_state: SgdState,
}

/// The backend.
pub struct NumericBackend {
    net: Net,
    params: Vec<Option<LayerParams>>,
    bn_saved: Vec<Option<BnSaved>>,
    outputs: Vec<Option<Tensor>>,
    grads: Vec<Option<Tensor>>,
    labels: Vec<usize>,
    classes: usize,
    data_seed: u64,
    sgd: SgdParams,
    iter: u64,
    last_loss: Option<f32>,
    last_accuracy: Option<f32>,
    /// Count of forward executions per layer this iteration (recompute
    /// replays increment it past 1) — used by exactness tests.
    pub forward_counts: Vec<u32>,
}

impl NumericBackend {
    /// Build a backend for `net` with `classes` output classes and
    /// deterministic weight init from `seed`.
    pub fn new(net: &Net, classes: usize, seed: u64, sgd: SgdParams) -> NumericBackend {
        let n = net.len();
        let mut params: Vec<Option<LayerParams>> = Vec::with_capacity(n);
        for layer in net.layers() {
            params.push(match &layer.kind {
                LayerKind::Conv { .. } => {
                    let p = layer.kind.conv_params().unwrap();
                    let cin = net.in_channels(layer.id);
                    let wshape = p.weight_shape(cin);
                    let fan_in = cin * p.kernel * p.kernel;
                    Some(LayerParams {
                        weight: Tensor::kaiming(wshape, fan_in, seed ^ layer.id.0 as u64),
                        bias: vec![0.0; p.out_channels],
                        w_state: SgdState::new(wshape.numel()),
                        b_state: SgdState::new(p.out_channels),
                    })
                }
                LayerKind::Fc { out } => {
                    let f = net.in_shape(layer.id).features();
                    let wshape = Shape4::flat(*out, f);
                    Some(LayerParams {
                        weight: Tensor::kaiming(wshape, f, seed ^ (layer.id.0 as u64) << 8),
                        bias: vec![0.0; *out],
                        w_state: SgdState::new(wshape.numel()),
                        b_state: SgdState::new(*out),
                    })
                }
                LayerKind::Bn => {
                    let c = layer.out_shape.c;
                    Some(LayerParams {
                        weight: Tensor::full(Shape4::flat(1, c), 1.0), // gamma
                        bias: vec![0.0; c],                            // beta
                        w_state: SgdState::new(c),
                        b_state: SgdState::new(c),
                    })
                }
                LayerKind::LayerNorm => {
                    let c = layer.out_shape.c;
                    Some(LayerParams {
                        weight: Tensor::full(Shape4::flat(1, c), 1.0), // gamma
                        bias: vec![0.0; c],                            // beta
                        w_state: SgdState::new(c),
                        b_state: SgdState::new(c),
                    })
                }
                LayerKind::Embedding { vocab, dim } => {
                    let wshape = Shape4::flat(*vocab, *dim);
                    Some(LayerParams {
                        weight: Tensor::rand_uniform(wshape, 0.1, seed ^ (layer.id.0 as u64) << 16),
                        bias: vec![],
                        w_state: SgdState::new(wshape.numel()),
                        b_state: SgdState::new(0),
                    })
                }
                LayerKind::Attention { .. } => {
                    let d = layer.out_shape.c;
                    let wshape = Shape4::flat(4 * d, d); // packed Wq/Wk/Wv/Wo
                    Some(LayerParams {
                        weight: Tensor::kaiming(wshape, d, seed ^ (layer.id.0 as u64) << 24),
                        bias: vec![0.0; 4 * d],
                        w_state: SgdState::new(wshape.numel()),
                        b_state: SgdState::new(4 * d),
                    })
                }
                LayerKind::Mlp { hidden } => {
                    let d = layer.out_shape.c;
                    let wshape = Shape4::flat(2 * *hidden, d); // packed W1/W2
                    Some(LayerParams {
                        weight: Tensor::kaiming(wshape, d, seed ^ (layer.id.0 as u64) << 32),
                        bias: vec![0.0; *hidden + d],
                        w_state: SgdState::new(wshape.numel()),
                        b_state: SgdState::new(*hidden + d),
                    })
                }
                _ => None,
            });
        }
        NumericBackend {
            net: net.clone(),
            params,
            bn_saved: (0..n).map(|_| None).collect(),
            outputs: (0..n).map(|_| None).collect(),
            grads: (0..n).map(|_| None).collect(),
            labels: Vec::new(),
            classes,
            data_seed: seed.wrapping_mul(0x9E37),
            sgd,
            iter: 0,
            last_loss: None,
            last_accuracy: None,
            forward_counts: vec![0; n],
        }
    }

    fn dropout_seed(&self, layer: LayerId) -> u64 {
        // Stable per (layer, iteration): recompute replays regenerate the
        // identical mask.
        (self.iter << 20) ^ (layer.0 as u64) ^ self.data_seed
    }

    fn input(&self, layer: LayerId, idx: usize) -> &Tensor {
        let p = self.net.layer(layer).prevs[idx];
        self.outputs[p.0]
            .as_ref()
            .unwrap_or_else(|| panic!("input {idx} of {} absent", self.net.layer(layer).name))
    }

    fn accumulate_grad(&mut self, layer: LayerId, g: Tensor) {
        let shape = self.net.layer(layer).out_shape;
        debug_assert_eq!(g.shape().numel(), shape.numel());
        let g = g.reshape(shape);
        match &mut self.grads[layer.0] {
            Some(acc) => acc.axpy(1.0, &g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Loss of the last completed iteration.
    pub fn last_loss(&self) -> Option<f32> {
        self.last_loss
    }

    /// Top-1 accuracy of the last completed iteration.
    pub fn last_accuracy(&self) -> Option<f32> {
        self.last_accuracy
    }

    /// Immutable view of a layer's current output value (for tests).
    pub fn output(&self, layer: LayerId) -> Option<&Tensor> {
        self.outputs[layer.0].as_ref()
    }
}

impl ComputeBackend for NumericBackend {
    fn begin_iteration(&mut self, iter: u64) {
        self.iter = iter;
        self.forward_counts.iter_mut().for_each(|c| *c = 0);
        self.outputs.iter_mut().for_each(|o| *o = None);
        self.grads.iter_mut().for_each(|g| *g = None);
    }

    fn forward(&mut self, layer: LayerId) {
        self.forward_counts[layer.0] += 1;
        let kind = self.net.layer(layer).kind.clone();
        let out = match &kind {
            LayerKind::Data { shape } => {
                let (data, labels) =
                    synthetic_batch(*shape, self.classes, self.data_seed + self.iter);
                self.labels = labels;
                data
            }
            LayerKind::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            } => {
                let p = ConvParams {
                    out_channels: *out_channels,
                    kernel: *kernel,
                    stride: *stride,
                    pad: *pad,
                };
                let lp = self.params[layer.0].as_ref().unwrap();
                conv2d_forward(self.input(layer, 0), &lp.weight, &lp.bias, &p)
            }
            LayerKind::Pool {
                kind: pk,
                kernel,
                stride,
                pad,
            } => {
                let p = PoolParams {
                    kernel: *kernel,
                    stride: *stride,
                    pad: *pad,
                };
                match pk {
                    PoolKind::Max => maxpool_forward(self.input(layer, 0), &p).0,
                    PoolKind::Avg => avgpool_forward(self.input(layer, 0), &p),
                }
            }
            LayerKind::Act => relu_forward(self.input(layer, 0)),
            LayerKind::Lrn { local_size } => {
                let p = LrnParams {
                    local_size: *local_size,
                    ..Default::default()
                };
                lrn_forward(self.input(layer, 0), &p)
            }
            LayerKind::Bn => {
                let lp = self.params[layer.0].as_ref().unwrap();
                let (y, saved) = bn_forward(self.input(layer, 0), lp.weight.data(), &lp.bias);
                self.bn_saved[layer.0] = Some(saved);
                y
            }
            LayerKind::Dropout { p_bits } => dropout_forward(
                self.input(layer, 0),
                f32::from_bits(*p_bits),
                self.dropout_seed(layer),
            ),
            LayerKind::Embedding { vocab, dim } => {
                let lp = self.params[layer.0].as_ref().unwrap();
                embedding_forward(self.input(layer, 0), lp.weight.data(), *vocab, *dim)
            }
            LayerKind::LayerNorm => {
                let lp = self.params[layer.0].as_ref().unwrap();
                layernorm_forward(self.input(layer, 0), lp.weight.data(), &lp.bias)
            }
            LayerKind::Attention { heads } => {
                let lp = self.params[layer.0].as_ref().unwrap();
                attention_forward(self.input(layer, 0), lp.weight.data(), &lp.bias, *heads)
            }
            LayerKind::Mlp { hidden } => {
                let lp = self.params[layer.0].as_ref().unwrap();
                mlp_forward(self.input(layer, 0), lp.weight.data(), &lp.bias, *hidden)
            }
            LayerKind::Fc { .. } => {
                let lp = self.params[layer.0].as_ref().unwrap();
                fc_forward(self.input(layer, 0), &lp.weight, &lp.bias)
            }
            LayerKind::Softmax => {
                let probs = softmax_forward(self.input(layer, 0));
                self.last_loss = Some(cross_entropy(&probs, &self.labels));
                self.last_accuracy = Some(accuracy(&probs, &self.labels));
                probs
            }
            LayerKind::Concat => {
                let prevs = self.net.layer(layer).prevs.clone();
                let shape = self.net.layer(layer).out_shape;
                let mut out = Tensor::zeros(shape);
                let hw = shape.h * shape.w;
                let mut c_off = 0usize;
                for p in &prevs {
                    let src = self.outputs[p.0].as_ref().expect("concat input absent");
                    let sc = src.shape().c;
                    for n in 0..shape.n {
                        let dst_base = (n * shape.c + c_off) * hw;
                        let src_base = n * sc * hw;
                        out.data_mut()[dst_base..dst_base + sc * hw]
                            .copy_from_slice(&src.data()[src_base..src_base + sc * hw]);
                    }
                    c_off += sc;
                }
                out
            }
            LayerKind::Eltwise => {
                let prevs = self.net.layer(layer).prevs.clone();
                let mut out = self.outputs[prevs[0].0]
                    .as_ref()
                    .expect("eltwise input absent")
                    .clone();
                for p in &prevs[1..] {
                    out = eltwise_add(&out, self.outputs[p.0].as_ref().unwrap());
                }
                out
            }
        };
        self.outputs[layer.0] = Some(out);
    }

    fn backward(&mut self, layer: LayerId) {
        let kind = self.net.layer(layer).kind.clone();
        let prevs = self.net.layer(layer).prevs.clone();
        match &kind {
            LayerKind::Data { .. } => {} // no upstream gradient
            LayerKind::Softmax => {
                let probs = self.outputs[layer.0].as_ref().expect("softmax output");
                let g = softmax_xent_backward(probs, &self.labels);
                self.accumulate_grad(prevs[0], g);
            }
            LayerKind::Fc { .. } => {
                let gout = self.grads[layer.0].take().expect("fc grad");
                let (gi, gw, gb) = {
                    let lp = self.params[layer.0].as_ref().unwrap();
                    fc_backward(self.input(layer, 0), &lp.weight, &gout)
                };
                self.grads[layer.0] = Some(gout);
                let lp = self.params[layer.0].as_mut().unwrap();
                lp.w_state.step_tensor(&mut lp.weight, &gw, &self.sgd);
                lp.b_state.step(&mut lp.bias, &gb, &self.sgd);
                self.accumulate_grad(prevs[0], gi);
            }
            LayerKind::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            } => {
                let p = ConvParams {
                    out_channels: *out_channels,
                    kernel: *kernel,
                    stride: *stride,
                    pad: *pad,
                };
                let gout = self.grads[layer.0].take().expect("conv grad");
                let (gi, gw, gb) = {
                    let lp = self.params[layer.0].as_ref().unwrap();
                    conv2d_backward(self.input(layer, 0), &lp.weight, &gout, &p)
                };
                self.grads[layer.0] = Some(gout);
                let lp = self.params[layer.0].as_mut().unwrap();
                lp.w_state.step_tensor(&mut lp.weight, &gw, &self.sgd);
                lp.b_state.step(&mut lp.bias, &gb, &self.sgd);
                self.accumulate_grad(prevs[0], gi);
            }
            LayerKind::Pool {
                kind: pk,
                kernel,
                stride,
                pad,
            } => {
                let p = PoolParams {
                    kernel: *kernel,
                    stride: *stride,
                    pad: *pad,
                };
                let gout = self.grads[layer.0].as_ref().expect("pool grad");
                let input = self.input(layer, 0);
                let gi = match pk {
                    PoolKind::Max => {
                        // Argmax is re-derived from the input (the mask
                        // workspace was transient).
                        let (_, argmax) = maxpool_forward(input, &p);
                        maxpool_backward(input.shape(), gout, &argmax)
                    }
                    PoolKind::Avg => avgpool_backward(input.shape(), gout, &p),
                };
                self.accumulate_grad(prevs[0], gi);
            }
            LayerKind::Act => {
                let gout = self.grads[layer.0].as_ref().expect("act grad");
                let gi = relu_backward(self.input(layer, 0), gout);
                self.accumulate_grad(prevs[0], gi);
            }
            LayerKind::Lrn { local_size } => {
                let p = LrnParams {
                    local_size: *local_size,
                    ..Default::default()
                };
                let gout = self.grads[layer.0].as_ref().expect("lrn grad");
                let gi = lrn_backward(self.input(layer, 0), gout, &p);
                self.accumulate_grad(prevs[0], gi);
            }
            LayerKind::Bn => {
                let gout = self.grads[layer.0].take().expect("bn grad");
                let (gi, dgamma, dbeta) = {
                    let lp = self.params[layer.0].as_ref().unwrap();
                    let saved = self.bn_saved[layer.0].as_ref().expect("bn saved stats");
                    bn_backward(self.input(layer, 0), &gout, lp.weight.data(), saved)
                };
                self.grads[layer.0] = Some(gout);
                let lp = self.params[layer.0].as_mut().unwrap();
                lp.w_state.step(lp.weight.data_mut(), &dgamma, &self.sgd);
                lp.b_state.step(&mut lp.bias, &dbeta, &self.sgd);
                self.accumulate_grad(prevs[0], gi);
            }
            LayerKind::Dropout { p_bits } => {
                let gout = self.grads[layer.0].as_ref().expect("dropout grad");
                let gi = dropout_backward(gout, f32::from_bits(*p_bits), self.dropout_seed(layer));
                self.accumulate_grad(prevs[0], gi);
            }
            LayerKind::Embedding { vocab, dim } => {
                let gout = self.grads[layer.0].take().expect("embedding grad");
                let (gi, dtable) = embedding_backward(self.input(layer, 0), &gout, *vocab, *dim);
                self.grads[layer.0] = Some(gout);
                let lp = self.params[layer.0].as_mut().unwrap();
                lp.w_state.step(lp.weight.data_mut(), &dtable, &self.sgd);
                self.accumulate_grad(prevs[0], gi);
            }
            LayerKind::LayerNorm => {
                let gout = self.grads[layer.0].take().expect("layernorm grad");
                let (gi, dgamma, dbeta) = {
                    let lp = self.params[layer.0].as_ref().unwrap();
                    layernorm_backward(self.input(layer, 0), &gout, lp.weight.data())
                };
                self.grads[layer.0] = Some(gout);
                let lp = self.params[layer.0].as_mut().unwrap();
                lp.w_state.step(lp.weight.data_mut(), &dgamma, &self.sgd);
                lp.b_state.step(&mut lp.bias, &dbeta, &self.sgd);
                self.accumulate_grad(prevs[0], gi);
            }
            LayerKind::Attention { heads } => {
                let gout = self.grads[layer.0].take().expect("attention grad");
                let (gi, dw, db) = {
                    let lp = self.params[layer.0].as_ref().unwrap();
                    attention_backward(
                        self.input(layer, 0),
                        lp.weight.data(),
                        &lp.bias,
                        &gout,
                        *heads,
                    )
                };
                self.grads[layer.0] = Some(gout);
                let lp = self.params[layer.0].as_mut().unwrap();
                lp.w_state.step(lp.weight.data_mut(), &dw, &self.sgd);
                lp.b_state.step(&mut lp.bias, &db, &self.sgd);
                self.accumulate_grad(prevs[0], gi);
            }
            LayerKind::Mlp { hidden } => {
                let gout = self.grads[layer.0].take().expect("mlp grad");
                let (gi, dw, db) = {
                    let lp = self.params[layer.0].as_ref().unwrap();
                    mlp_backward(
                        self.input(layer, 0),
                        lp.weight.data(),
                        &lp.bias,
                        &gout,
                        *hidden,
                    )
                };
                self.grads[layer.0] = Some(gout);
                let lp = self.params[layer.0].as_mut().unwrap();
                lp.w_state.step(lp.weight.data_mut(), &dw, &self.sgd);
                lp.b_state.step(&mut lp.bias, &db, &self.sgd);
                self.accumulate_grad(prevs[0], gi);
            }
            LayerKind::Concat => {
                let gout = self.grads[layer.0].take().expect("concat grad");
                let shape = self.net.layer(layer).out_shape;
                let hw = shape.h * shape.w;
                let mut c_off = 0usize;
                for p in &prevs {
                    let pshape = self.net.layer(*p).out_shape;
                    let mut gi = Tensor::zeros(pshape);
                    for n in 0..shape.n {
                        let src_base = (n * shape.c + c_off) * hw;
                        let dst_base = n * pshape.c * hw;
                        gi.data_mut()[dst_base..dst_base + pshape.c * hw]
                            .copy_from_slice(&gout.data()[src_base..src_base + pshape.c * hw]);
                    }
                    c_off += pshape.c;
                    self.accumulate_grad(*p, gi);
                }
                self.grads[layer.0] = Some(gout);
            }
            LayerKind::Eltwise => {
                let gout = self.grads[layer.0].take().expect("eltwise grad");
                for p in &prevs {
                    self.accumulate_grad(*p, gout.clone());
                }
                self.grads[layer.0] = Some(gout);
            }
        }
    }

    fn drop_output(&mut self, layer: LayerId) {
        self.outputs[layer.0] = None;
    }

    fn drop_grad(&mut self, layer: LayerId) {
        self.grads[layer.0] = None;
    }

    fn loss(&self) -> Option<f32> {
        self.last_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::policy::Policy;
    use sn_sim::DeviceSpec;

    fn tiny_net(batch: usize) -> Net {
        let mut net = Net::new("tiny", Shape4::new(batch, 1, 8, 8));
        let d = net.data();
        let c1 = net.conv(d, 4, 3, 1, 1);
        let a1 = net.relu(c1);
        let p1 = net.max_pool(a1, 2, 2, 0);
        let f1 = net.fc(p1, 4);
        net.softmax(f1);
        net
    }

    fn backend(net: &Net) -> NumericBackend {
        NumericBackend::new(
            net,
            4,
            7,
            SgdParams {
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 0.0,
            },
        )
    }

    #[test]
    fn training_reduces_loss() {
        let net = tiny_net(16);
        let mut ex = Executor::new(&net, DeviceSpec::k40c(), Policy::liveness_only())
            .unwrap()
            .with_backend(Box::new(backend(&net)));
        let mut losses = Vec::new();
        for _ in 0..30 {
            let r = ex.run_iteration().unwrap();
            losses.push(r.loss.unwrap());
        }
        let first = losses[..5].iter().sum::<f32>() / 5.0;
        let last = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            last < first * 0.8,
            "loss should drop: first ≈ {first}, last ≈ {last}, {losses:?}"
        );
    }

    #[test]
    fn recompute_policy_matches_plain_execution_exactly() {
        // Two executors, identical backend seeds: one with the full memory
        // stack (recompute + offload), one plain. Losses must be identical
        // to the last bit for several iterations.
        let net = tiny_net(8);
        let mut plain = Executor::new(&net, DeviceSpec::k40c(), Policy::liveness_only())
            .unwrap()
            .with_backend(Box::new(backend(&net)));
        let mut fancy = Executor::new(&net, DeviceSpec::k40c(), Policy::full_memory())
            .unwrap()
            .with_backend(Box::new(backend(&net)));
        for i in 0..5 {
            let rp = plain.run_iteration().unwrap();
            let rf = fancy.run_iteration().unwrap();
            assert!(rf.counters.recompute_forwards > 0 || i == usize::MAX);
            assert_eq!(
                rp.loss, rf.loss,
                "iteration {i}: recomputation must be numerically exact"
            );
        }
    }

    #[test]
    fn eviction_under_tiny_dram_is_numerically_exact() {
        let net = tiny_net(8);
        let roomy = Executor::new(&net, DeviceSpec::k40c(), Policy::superneurons())
            .unwrap()
            .with_backend(Box::new(backend(&net)))
            .run_iterations(3)
            .unwrap();
        // Constrain DRAM to barely above l_peak so the LRU cache must evict.
        let cost = sn_graph::NetCost::of(&net);
        let tight_bytes = (cost.total_weight_bytes() + cost.l_peak()) * 3 / 2 + (1 << 20);
        let spec = DeviceSpec::k40c().with_dram(tight_bytes);
        let mut tight_ex = Executor::new(&net, spec, Policy::superneurons())
            .unwrap()
            .with_backend(Box::new(backend(&net)));
        let tight = tight_ex.run_iterations(3).unwrap();
        assert_eq!(roomy.loss, tight.loss, "eviction must not change results");
    }

    #[test]
    fn nonlinear_net_trains_through_joins() {
        let mut net = Net::new("res", Shape4::new(8, 4, 8, 8));
        let d = net.data();
        let c1 = net.conv(d, 4, 3, 1, 1);
        let b1 = net.bn(c1);
        let r1 = net.relu(b1);
        let c2 = net.conv(r1, 4, 3, 1, 1);
        let e = net.eltwise(&[c2, c1]);
        let r2 = net.relu(e);
        let f = net.fc(r2, 4);
        net.softmax(f);
        let mut ex = Executor::new(&net, DeviceSpec::k40c(), Policy::full_memory())
            .unwrap()
            .with_backend(Box::new(backend(&net)));
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for i in 0..20 {
            let r = ex.run_iteration().unwrap();
            if i == 0 {
                first = r.loss.unwrap();
            }
            last = r.loss.unwrap();
        }
        assert!(last < first, "residual net should learn: {first} -> {last}");
    }

    #[test]
    fn concat_backward_splits_gradients() {
        let mut net = Net::new("cat", Shape4::new(4, 2, 6, 6));
        let d = net.data();
        let a = net.conv(d, 2, 3, 1, 1);
        let b = net.conv(d, 3, 3, 1, 1);
        let j = net.concat(&[a, b]);
        let f = net.fc(j, 4);
        net.softmax(f);
        let mut ex = Executor::new(&net, DeviceSpec::k40c(), Policy::liveness_only())
            .unwrap()
            .with_backend(Box::new(backend(&net)));
        // Just verify it runs and learns slightly.
        let r1 = ex.run_iteration().unwrap().loss.unwrap();
        for _ in 0..10 {
            ex.run_iteration().unwrap();
        }
        let r2 = ex.run_iteration().unwrap().loss.unwrap();
        assert!(r2.is_finite() && r1.is_finite());
    }
}
