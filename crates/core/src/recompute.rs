//! Cost-Aware Recomputation planning (§3.4, Fig. 9, Table 1).
//!
//! Non-checkpoint layers (POOL/ACT/LRN/BN/DROPOUT — cheap to compute, ~50%
//! of memory) have their forward outputs dropped after the last forward use;
//! the backward pass reconstructs them from the nearest upstream checkpoint.
//! Because every non-checkpoint layer is single-input (joins are
//! checkpoints), the non-checkpoints anchored at a checkpoint form a tree —
//! a *recomputation segment* — replayable by one forward sweep from the
//! anchor.
//!
//! Strategies:
//! * **speed-centric** — replay the whole segment once, keep the results
//!   until their last backward use (extra compute O(N), memory
//!   `Σ l_f + l_b`);
//! * **memory-centric** — replay only the chain each backward step needs and
//!   free it immediately afterwards (extra compute O(N²), memory `l_b`);
//! * **cost-aware** — per segment: speed-centric iff its replay memory stays
//!   within `l_peak = max_i(l_i)`, so the global peak is never raised by
//!   recomputation itself.

use sn_graph::{LayerId, Net, NetCost, Route};

use crate::policy::RecomputeMode;

/// Chosen strategy for one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentStrategy {
    SpeedCentric,
    MemoryCentric,
}

/// One recomputation segment: the tree of non-checkpoints hanging off an
/// anchor checkpoint.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The checkpoint whose stored (possibly offloaded) output seeds replay.
    pub anchor: LayerId,
    /// Member layers in route (thus dependency-respecting) order.
    pub members: Vec<LayerId>,
    /// Memory cost of a speed-centric replay:
    /// `l_f(anchor) + Σ l_f(members) + l_b(last)`.
    pub memcost: u64,
    pub strategy: SegmentStrategy,
}

/// The per-network recomputation plan.
#[derive(Debug, Clone)]
pub struct RecomputePlan {
    /// Per layer: the anchor checkpoint of its segment (None for
    /// checkpoints themselves).
    pub anchor_of: Vec<Option<LayerId>>,
    pub segments: Vec<Segment>,
    /// Per layer: index into `segments` (None for checkpoints).
    pub segment_of: Vec<Option<usize>>,
    /// `l_peak = max_i(l_i)` — the cost-aware threshold.
    pub l_peak: u64,
}

impl RecomputePlan {
    /// Build the plan. With `RecomputeMode::None` the plan is empty (every
    /// layer is effectively a checkpoint).
    pub fn build(net: &Net, route: &Route, cost: &NetCost, mode: RecomputeMode) -> RecomputePlan {
        let n = net.len();
        let l_peak = cost.l_peak();
        if mode == RecomputeMode::None {
            return RecomputePlan {
                anchor_of: vec![None; n],
                segments: Vec::new(),
                segment_of: vec![None; n],
                l_peak,
            };
        }

        // Anchor resolution in route order: a non-checkpoint inherits the
        // anchor of its (single) producer.
        let mut anchor_of: Vec<Option<LayerId>> = vec![None; n];
        for id in &route.fwd {
            let layer = net.layer(*id);
            if layer.kind.is_checkpoint() {
                continue;
            }
            assert_eq!(
                layer.prevs.len(),
                1,
                "non-checkpoint layer {} must be single-input",
                layer.name
            );
            let p = layer.prevs[0];
            anchor_of[id.0] = if net.layer(p).kind.is_checkpoint() {
                Some(p)
            } else {
                anchor_of[p.0]
            };
            debug_assert!(anchor_of[id.0].is_some());
        }

        // Group members per anchor, in route order.
        let mut seg_index: std::collections::HashMap<LayerId, usize> =
            std::collections::HashMap::new();
        let mut segments: Vec<Segment> = Vec::new();
        let mut segment_of: Vec<Option<usize>> = vec![None; n];
        for id in &route.fwd {
            if let Some(anchor) = anchor_of[id.0] {
                let si = *seg_index.entry(anchor).or_insert_with(|| {
                    segments.push(Segment {
                        anchor,
                        members: Vec::new(),
                        memcost: 0,
                        strategy: SegmentStrategy::SpeedCentric,
                    });
                    segments.len() - 1
                });
                segments[si].members.push(*id);
                segment_of[id.0] = Some(si);
            }
        }

        // Memory cost and strategy per segment: the anchor's stored output
        // (the replay seed) + every member output kept by the speed-centric
        // strategy + the backward working set at the segment's end.
        for seg in segments.iter_mut() {
            let sum_lf: u64 = seg.members.iter().map(|m| cost.layer(*m).l_f()).sum();
            let last = *seg.members.last().expect("segments are non-empty");
            seg.memcost = cost.layer(seg.anchor).l_f() + sum_lf + cost.layer(last).l_b();
            seg.strategy = match mode {
                RecomputeMode::SpeedCentric => SegmentStrategy::SpeedCentric,
                RecomputeMode::MemoryCentric => SegmentStrategy::MemoryCentric,
                RecomputeMode::CostAware => {
                    if seg.memcost <= l_peak {
                        SegmentStrategy::SpeedCentric
                    } else {
                        SegmentStrategy::MemoryCentric
                    }
                }
                RecomputeMode::None => unreachable!(),
            };
        }

        RecomputePlan {
            anchor_of,
            segments,
            segment_of,
            l_peak,
        }
    }

    /// The chain of layers from the anchor (exclusive) to `layer`
    /// (inclusive), in forward order — the minimal replay for a
    /// memory-centric reconstruction of `layer`'s output.
    pub fn chain_to(&self, net: &Net, layer: LayerId) -> Vec<LayerId> {
        let mut chain = vec![layer];
        let mut cur = layer;
        while self.anchor_of[cur.0].is_some() {
            let p = net.layer(cur).prevs[0];
            if net.layer(p).kind.is_checkpoint() {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Predicted extra forward computations for a pure speed-centric run:
    /// each segment is replayed exactly once.
    pub fn predicted_speed_centric_extra(&self) -> usize {
        self.segments.iter().map(|s| s.members.len()).sum()
    }

    /// Total members (for reporting).
    pub fn total_recomputable(&self) -> usize {
        self.predicted_speed_centric_extra()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_graph::liveness::LivenessOptions;
    use sn_graph::{LivenessPlan, Shape4};

    /// AlexNet-shaped segment structure:
    /// CONV-[ACT,LRN,POOL]-CONV-[ACT]-FC-[ACT,DROPOUT]-SOFTMAX
    fn seg_net() -> (sn_graph::Net, Route, NetCost) {
        let mut net = sn_graph::Net::new("seg", Shape4::new(4, 3, 16, 16));
        let d = net.data();
        let c1 = net.conv(d, 8, 3, 1, 1);
        let a1 = net.relu(c1);
        let l1 = net.lrn(a1);
        let p1 = net.max_pool(l1, 2, 2, 0);
        let c2 = net.conv(p1, 8, 3, 1, 1);
        let a2 = net.relu(c2);
        let f1 = net.fc(a2, 32);
        let a3 = net.relu(f1);
        let dr = net.dropout(a3, 0.5);
        let f2 = net.fc(dr, 10);
        net.softmax(f2);
        let route = Route::construct(&net);
        let cost = NetCost::of(&net);
        (net, route, cost)
    }

    #[test]
    fn segments_partition_non_checkpoints() {
        let (net, route, cost) = seg_net();
        let plan = RecomputePlan::build(&net, &route, &cost, RecomputeMode::CostAware);
        // Segments: [ACT,LRN,POOL] @CONV1, [ACT] @CONV2, [ACT,DROPOUT] @FC1.
        assert_eq!(plan.segments.len(), 3);
        let sizes: Vec<usize> = plan.segments.iter().map(|s| s.members.len()).collect();
        assert_eq!(sizes, vec![3, 1, 2]);
        assert_eq!(plan.predicted_speed_centric_extra(), 6);
        // Every non-checkpoint belongs to exactly one segment.
        for layer in net.layers() {
            assert_eq!(
                plan.segment_of[layer.id.0].is_some(),
                !layer.kind.is_checkpoint(),
                "{}",
                layer.name
            );
        }
    }

    #[test]
    fn chains_walk_back_to_the_anchor() {
        let (net, route, cost) = seg_net();
        let plan = RecomputePlan::build(&net, &route, &cost, RecomputeMode::CostAware);
        // chain to POOL (layer 4) = [ACT(2), LRN(3), POOL(4)].
        let chain = plan.chain_to(&net, LayerId(4));
        let ids: Vec<usize> = chain.iter().map(|l| l.0).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        // chain to ACT(2) = [ACT(2)].
        assert_eq!(plan.chain_to(&net, LayerId(2)).len(), 1);
    }

    #[test]
    fn none_mode_produces_empty_plan() {
        let (net, route, cost) = seg_net();
        let plan = RecomputePlan::build(&net, &route, &cost, RecomputeMode::None);
        assert!(plan.segments.is_empty());
        assert!(plan.anchor_of.iter().all(|a| a.is_none()));
    }

    #[test]
    fn cost_aware_defaults_to_speed_within_l_peak() {
        let (net, route, cost) = seg_net();
        let plan = RecomputePlan::build(&net, &route, &cost, RecomputeMode::CostAware);
        for seg in &plan.segments {
            if seg.memcost <= plan.l_peak {
                assert_eq!(seg.strategy, SegmentStrategy::SpeedCentric);
            } else {
                assert_eq!(seg.strategy, SegmentStrategy::MemoryCentric);
            }
        }
        // Forced modes override.
        let m = RecomputePlan::build(&net, &route, &cost, RecomputeMode::MemoryCentric);
        assert!(m
            .segments
            .iter()
            .all(|s| s.strategy == SegmentStrategy::MemoryCentric));
        let s = RecomputePlan::build(&net, &route, &cost, RecomputeMode::SpeedCentric);
        assert!(s
            .segments
            .iter()
            .all(|s| s.strategy == SegmentStrategy::SpeedCentric));
    }

    #[test]
    fn residual_blocks_anchor_at_joins() {
        // conv -> bn -> relu -> conv -> bn -> eltwise(join) -> relu
        let mut net = sn_graph::Net::new("res", Shape4::new(2, 4, 8, 8));
        let d = net.data();
        let c1 = net.conv(d, 4, 3, 1, 1);
        let b1 = net.bn(c1);
        let r1 = net.relu(b1);
        let c2 = net.conv(r1, 4, 3, 1, 1);
        let b2 = net.bn(c2);
        let e = net.eltwise(&[b2, c1]);
        let r2 = net.relu(e);
        let f = net.fc(r2, 10);
        net.softmax(f);
        let route = Route::construct(&net);
        let cost = NetCost::of(&net);
        let plan = RecomputePlan::build(&net, &route, &cost, RecomputeMode::CostAware);
        // bn1/relu1 anchored at conv1; bn2 at conv2; relu2 at the eltwise.
        assert_eq!(plan.anchor_of[b1.0], Some(c1));
        assert_eq!(plan.anchor_of[r1.0], Some(c1));
        assert_eq!(plan.anchor_of[b2.0], Some(c2));
        assert_eq!(plan.anchor_of[e.0], None, "eltwise is a checkpoint");
        assert_eq!(plan.anchor_of[r2.0], Some(e));
    }

    /// Check the structural contract of segments on an arbitrary net:
    /// joins are checkpoints, every segment is a *tree* anchored at its
    /// checkpoint (each member's single producer is the anchor or an
    /// earlier member), members appear in route order, and `memcost`
    /// matches the Table 1 speed-centric formula
    /// `l_f(anchor) + Σ l_f(members) + l_b(last)`.
    fn assert_segment_invariants(net: &sn_graph::Net) {
        let route = Route::construct(net);
        let cost = NetCost::of(net);
        let plan = RecomputePlan::build(net, &route, &cost, RecomputeMode::CostAware);

        for layer in net.layers() {
            if layer.is_join() {
                assert!(
                    layer.kind.is_checkpoint(),
                    "join {} must be a checkpoint",
                    layer.name
                );
                assert!(plan.segment_of[layer.id.0].is_none());
            }
            // Segment membership exactly partitions the non-checkpoints.
            assert_eq!(
                plan.segment_of[layer.id.0].is_some(),
                !layer.kind.is_checkpoint(),
                "{}",
                layer.name
            );
        }

        assert!(!plan.segments.is_empty(), "nets here have cheap layers");
        for (si, seg) in plan.segments.iter().enumerate() {
            assert!(net.layer(seg.anchor).kind.is_checkpoint());
            assert!(!seg.members.is_empty());
            // Route order within the segment.
            let steps: Vec<usize> = seg.members.iter().map(|m| route.fwd_step(*m)).collect();
            assert!(
                steps.windows(2).all(|w| w[0] < w[1]),
                "members of segment {si} out of route order"
            );
            // Tree property: every member's (single) producer is the anchor
            // or an earlier member of the same segment.
            for (i, m) in seg.members.iter().enumerate() {
                let prevs = &net.layer(*m).prevs;
                assert_eq!(prevs.len(), 1, "member {} must be single-input", m.0);
                let p = prevs[0];
                assert!(
                    p == seg.anchor || seg.members[..i].contains(&p),
                    "member {} of segment {si} hangs off {} which is neither \
                     the anchor nor an earlier member",
                    net.layer(*m).name,
                    net.layer(p).name
                );
            }
            // Table 1 memcost formula.
            let sum_lf: u64 = seg.members.iter().map(|m| cost.layer(*m).l_f()).sum();
            let last = *seg.members.last().unwrap();
            assert_eq!(
                seg.memcost,
                cost.layer(seg.anchor).l_f() + sum_lf + cost.layer(last).l_b(),
                "segment {si} memcost must follow Table 1"
            );
        }
    }

    #[test]
    fn fanout_below_a_checkpoint_forms_one_tree_segment() {
        // A non-checkpoint (ACT) fans out into two non-checkpoint pooling
        // branches joined by a CONCAT: all three hang off the same conv
        // anchor as ONE tree-shaped segment; the join itself is a
        // checkpoint and member of none.
        let mut net = sn_graph::Net::new("fan", Shape4::new(2, 4, 16, 16));
        let d = net.data();
        let c = net.conv(d, 8, 3, 1, 1);
        let r = net.relu(c);
        let p1 = net.max_pool(r, 2, 2, 0);
        let p2 = net.avg_pool(r, 2, 2, 0);
        let j = net.concat(&[p1, p2]);
        let f = net.fc(j, 10);
        net.softmax(f);
        net.validate().unwrap();
        assert_segment_invariants(&net);

        let route = Route::construct(&net);
        let cost = NetCost::of(&net);
        let plan = RecomputePlan::build(&net, &route, &cost, RecomputeMode::CostAware);
        for m in [r, p1, p2] {
            assert_eq!(plan.anchor_of[m.0], Some(c));
        }
        assert_eq!(plan.anchor_of[j.0], None, "concat join is a checkpoint");
        let seg = &plan.segments[plan.segment_of[r.0].unwrap()];
        assert_eq!(seg.members.len(), 3, "one tree segment, not three chains");
        // Memory-centric chains through the tree stop at the fan point.
        let chain = plan.chain_to(&net, p2);
        assert_eq!(chain, vec![r, p2], "chain walks producers, not siblings");
    }

    #[test]
    fn resnet50_segments_satisfy_the_nonlinear_invariants() {
        // Real residual topology: ELTWISE joins everywhere. Until this PR
        // only linear AlexNet/VGG stubs were exercised here.
        assert_segment_invariants(&sn_models::resnet50(2));
    }

    #[test]
    fn inception_v4_segments_satisfy_the_nonlinear_invariants() {
        // Real inception topology: CONCAT fan-ins over parallel branches.
        assert_segment_invariants(&sn_models::inception_v4(2));
    }

    #[test]
    fn recompute_liveness_shortens_non_checkpoint_lifetimes() {
        // Sanity wiring between the plan and the liveness options.
        let (net, route, _) = seg_net();
        let with = LivenessPlan::analyze(
            &net,
            &route,
            LivenessOptions {
                recompute_non_checkpoints: true,
                ..Default::default()
            },
        );
        let without = LivenessPlan::analyze(&net, &route, LivenessOptions::default());
        let (pw, _) = with.peak_resident(0, |_| 0);
        let (po, _) = without.peak_resident(0, |_| 0);
        assert!(
            pw < po,
            "recompute must reduce the analytic peak: {pw} vs {po}"
        );
    }
}
