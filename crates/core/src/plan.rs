//! The memory planner: compile `(Net, DeviceSpec, Policy)` into a static
//! [`MemoryPlan`].
//!
//! SuperNeurons is architecturally a *planning* system — liveness windows,
//! cost-aware recomputation segments, offload/prefetch points and workspace
//! choices are all derivable from the `(net, policy, device)` triple before
//! the first kernel runs. This module performs that derivation once, ahead
//! of time: it walks the route with the same decision logic the executor
//! used to interleave with execution (the Alg. 2 Tensor Cache, the
//! reclamation ladder, eager offload, prefetch-ahead, §3.4 segment replay,
//! §3.5 dynamic workspaces), driving a *real* allocator and the tiered host
//! pools — but no timeline — and records every residency mutation as an
//! explicit [`PlanOp`].
//!
//! The result is a cheap, inspectable, reusable artifact:
//!
//! * [`MemoryPlan::peak_bytes`] is the **exact** peak the execution will hit
//!   — the executor replays the identical alloc/free sequence through an
//!   identical allocator, so the high-water mark is equal *by construction*
//!   (asserted across the whole preset × model matrix by the `plan` bench
//!   experiment). Cluster admission reserves this number without ever
//!   running a simulated iteration.
//! * [`MemoryPlan::steps`] is a complete instruction stream — the executor
//!   is an interpreter over it, and [`MemoryPlan::render`] prints the
//!   on-disk debug format (one line per op) for inspection.
//! * [`MemoryPlan::lifetimes`] summarizes per-tensor residency: creation,
//!   death, whether the plan offloads or recomputes it.
//!
//! Training plans cover one `2N`-step iteration; **inference plans**
//! (compiled from [`Route::construct_inference`]) are forward-only: no
//! gradients exist, every output is freed at its last forward reader, and
//! nothing is eagerly offloaded (there is no backward to fetch it back for).

use std::collections::HashMap;

use sn_graph::liveness::{LivenessOptions, LivenessPlan, TensorId, TensorRole};
use sn_graph::{LayerId, Net, NetCost, Route, StepPhase};
use sn_sim::{AllocGrant, DeviceAllocator, DeviceSpec, SimTime};

use crate::convalgo::{self, AlgoChoice};
use crate::device::Device;
use crate::executor::{Counters, ExecError};
use crate::policy::{Policy, RecomputeMode, WorkspacePolicy};
use crate::recompute::{RecomputePlan, SegmentStrategy};
use crate::tiers::Tier;
use crate::utp::{Residence, Utp};

/// One residency instruction. A step's ops execute strictly in order: `pre`
/// ops before the kernel, `post` ops after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOp {
    /// Materialize tensor `t` on device (fresh allocation).
    Alloc(TensorId),
    /// Allocate device memory for `t` and copy it in from its host slot
    /// (H2D; consumers gate on the transfer).
    Fetch(TensorId),
    /// Start a device→host copy-out of `t`: `evict: true` is an Alg. 2
    /// cache eviction (release as soon as the copy lands), `false` an eager
    /// checkpoint offload (release once all forward consumers ran).
    Offload { t: TensorId, evict: bool },
    /// Release the device copy of `t` (awaiting its in-flight copy-out
    /// first); the host copy, if any, becomes the residence.
    ReleaseDevice(TensorId),
    /// Fully free `t`: device grant, host slot, any in-flight transfer.
    Free(TensorId),
    /// Replay `layer`'s forward as part of a §3.4 recomputation segment.
    Recompute(LayerId),
    /// Allocate the step's convolution workspace (exactly these bytes).
    AllocWorkspace(u64),
    /// Allocate the step's transient buffer (weight gradient / fwd mask).
    AllocTransient(u64),
    /// Release the step's workspace + transient buffer.
    FreeTransients,
}

/// The workspace decision for one CONV step (Fig. 12's record).
#[derive(Debug, Clone, Copy)]
pub struct WorkspacePlan {
    pub bytes: u64,
    pub max_speed_bytes: u64,
    pub algo: &'static str,
    pub speedup: f64,
}

/// The compiled schedule of one step.
#[derive(Debug, Clone)]
pub struct StepPlan {
    pub layer: LayerId,
    pub phase: StepPhase,
    /// Kernel duration (with the chosen conv algorithm's speed factor).
    pub duration: SimTime,
    /// Residency ops before the kernel (input staging, evictions, replays,
    /// workspace/transient allocation).
    pub pre: Vec<PlanOp>,
    /// Residency ops after the kernel (transient release, eager offload,
    /// prefetch-ahead, liveness frees, recompute cleanup).
    pub post: Vec<PlanOp>,
    /// CONV steps only: the dynamic workspace choice.
    pub workspace: Option<WorkspacePlan>,
}

/// Per-tensor residency summary (the serializable lifetime table).
#[derive(Debug, Clone, Copy)]
pub struct TensorLifetime {
    pub tensor: TensorId,
    pub layer: LayerId,
    pub role: TensorRole,
    pub bytes: u64,
    /// Step at which the tensor is materialized.
    pub created_step: usize,
    /// Step after which the plan frees it.
    pub freed_after: usize,
    /// The plan moves this tensor to an external tier at least once.
    pub offloaded: bool,
    /// Forward replays of the owning layer the plan schedules.
    pub recomputes: u32,
}

/// The static memory plan: per-step actions, the exact predicted peak, and
/// per-tensor residency lifetimes.
#[derive(Debug, Clone)]
pub struct MemoryPlan {
    pub steps: Vec<StepPlan>,
    /// End-of-iteration ops (trailing offloads whose device copies release
    /// once every consumer has run).
    pub final_ops: Vec<PlanOp>,
    /// Exact peak device bytes the execution will hit (allocator
    /// high-water over the planned alloc/free sequence, weights included).
    pub peak_bytes: u64,
    /// Step at which the peak occurs.
    pub peak_step: usize,
    /// Resident weight bytes (the plan's first allocation).
    pub weight_bytes: u64,
    /// Per-iteration counter totals the execution will report.
    pub predicted: Counters,
    pub lifetimes: Vec<TensorLifetime>,
    /// Forward-only serving plan (no backward half, no gradients)?
    pub inference: bool,
    /// Analytic busy totals per engine, for the iteration-time estimate.
    pub compute_ns: u64,
    pub alloc_ns: u64,
    pub h2d_ns: u64,
    pub d2h_ns: u64,
    /// Every DMA serializes against the host under this policy.
    pub serialized: bool,
}

impl MemoryPlan {
    /// Total op count (diagnostic).
    pub fn n_ops(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.pre.len() + s.post.len())
            .sum::<usize>()
            + self.final_ops.len()
    }

    /// Analytic iteration-time estimate: the busiest engine bounds the
    /// makespan (compute serializes with allocator calls on the host
    /// thread; DMA engines run concurrently unless the policy serializes
    /// them). A pacing estimate for schedulers — the executor's measured
    /// [`crate::IterationReport::iter_time`] is the ground truth.
    pub fn iter_time_estimate(&self) -> SimTime {
        let host = self.compute_ns + self.alloc_ns;
        let ns = if self.serialized {
            host + self.h2d_ns + self.d2h_ns
        } else {
            host.max(self.h2d_ns).max(self.d2h_ns)
        };
        SimTime::from_ns(ns)
    }

    /// The on-disk debug format: a line per step with its ops, then the
    /// peak/lifetime summary. Stable enough to diff across PRs.
    pub fn render(&self, net: &Net) -> String {
        fn op_str(op: &PlanOp) -> String {
            match op {
                PlanOp::Alloc(t) => format!("alloc t{}", t.0),
                PlanOp::Fetch(t) => format!("fetch t{}", t.0),
                PlanOp::Offload { t, evict: true } => format!("evict-offload t{}", t.0),
                PlanOp::Offload { t, evict: false } => format!("offload t{}", t.0),
                PlanOp::ReleaseDevice(t) => format!("release t{}", t.0),
                PlanOp::Free(t) => format!("free t{}", t.0),
                PlanOp::Recompute(l) => format!("recompute L{}", l.0),
                PlanOp::AllocWorkspace(b) => format!("ws+{b}"),
                PlanOp::AllocTransient(b) => format!("tr+{b}"),
                PlanOp::FreeTransients => "tr-".into(),
            }
        }
        let mut out = format!(
            "MemoryPlan[{}] {} steps, {} ops, peak {} bytes @step {}, weights {}\n",
            if self.inference {
                "inference"
            } else {
                "training"
            },
            self.steps.len(),
            self.n_ops(),
            self.peak_bytes,
            self.peak_step,
            self.weight_bytes,
        );
        for (s, sp) in self.steps.iter().enumerate() {
            let ops: Vec<String> = sp
                .pre
                .iter()
                .map(op_str)
                .chain(std::iter::once("KERNEL".to_string()))
                .chain(sp.post.iter().map(op_str))
                .collect();
            out.push_str(&format!(
                "  {s:>5} {} {:<12} {}{}\n",
                match sp.phase {
                    StepPhase::Forward => "F",
                    StepPhase::Backward => "B",
                },
                net.layer(sp.layer).name,
                sp.workspace
                    .map(|w| format!("[{} ws={}] ", w.algo, w.bytes))
                    .unwrap_or_default(),
                ops.join(" "),
            ));
        }
        if !self.final_ops.is_empty() {
            let ops: Vec<String> = self.final_ops.iter().map(op_str).collect();
            out.push_str(&format!("  final {}\n", ops.join(" ")));
        }
        out
    }
}

/// Everything a compilation produces: the graph-derived inputs (route,
/// costs, liveness, recomputation segments) plus the [`MemoryPlan`] built
/// from them. The executor owns one of these.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    pub route: Route,
    pub cost: NetCost,
    pub liveness: LivenessPlan,
    pub rplan: RecomputePlan,
    pub plan: MemoryPlan,
}

/// Compile a training plan: one `2N`-step iteration.
pub fn compile(net: &Net, spec: &DeviceSpec, policy: Policy) -> Result<CompiledPlan, ExecError> {
    compile_route(net, spec, policy, Route::construct(net))
}

/// Compile a forward-only inference plan: `N` steps, outputs freed at their
/// last forward reader, no gradients, no eager offload, no recomputation.
pub fn compile_inference(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
) -> Result<CompiledPlan, ExecError> {
    compile_route(net, spec, policy, Route::construct_inference(net))
}

fn compile_route(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
    route: Route,
) -> Result<CompiledPlan, ExecError> {
    let inference = !route.has_backward();
    let cost = NetCost::of(net);
    let liveness_options = if inference {
        // Forward-only: recompute-aware lifetime shortening is meaningless
        // (nothing lives past its forward readers to begin with).
        LivenessOptions {
            recompute_non_checkpoints: false,
            ..policy.liveness_options()
        }
    } else {
        policy.liveness_options()
    };
    let liveness = LivenessPlan::analyze(net, &route, liveness_options);
    let rmode = if inference {
        RecomputeMode::None
    } else {
        policy.recompute
    };
    let rplan = RecomputePlan::build(net, &route, &cost, rmode);

    let planner = Planner {
        net,
        spec,
        route: &route,
        cost: &cost,
        liveness: &liveness,
        rplan: &rplan,
        policy,
        inference,
        dev: Device::new(spec.clone(), policy.allocator, policy.tiers),
        utp: Utp::new(liveness.tensors.len()),
        counters: Counters::default(),
        recomputed_free_at: HashMap::new(),
        ops: Vec::new(),
        peak_step: 0,
        peak_seen: 0,
        cur_step: 0,
        compute_ns: 0,
        h2d_ns: 0,
        d2h_ns: 0,
        offloaded: vec![false; liveness.tensors.len()],
        recomputes: vec![0; net.len()],
    };
    let plan = planner.run()?;
    Ok(CompiledPlan {
        route,
        cost,
        liveness,
        rplan,
        plan,
    })
}

/// The compiler: the executor's old scheduling brain, run against allocator
/// + host-pool state only, emitting ops instead of touching a timeline.
struct Planner<'a> {
    net: &'a Net,
    spec: &'a DeviceSpec,
    route: &'a Route,
    cost: &'a NetCost,
    liveness: &'a LivenessPlan,
    rplan: &'a RecomputePlan,
    policy: Policy,
    inference: bool,
    dev: Device,
    utp: Utp,
    counters: Counters,
    /// Recomputed tensors to drop at the end of a given step.
    recomputed_free_at: HashMap<usize, Vec<TensorId>>,
    /// Op accumulator for the current pre/post section.
    ops: Vec<PlanOp>,
    peak_step: usize,
    peak_seen: u64,
    cur_step: usize,
    compute_ns: u64,
    h2d_ns: u64,
    d2h_ns: u64,
    offloaded: Vec<bool>,
    recomputes: Vec<u32>,
}

impl<'a> Planner<'a> {
    fn meta(&self, t: TensorId) -> &sn_graph::TensorMeta {
        &self.liveness.tensors[t.0]
    }

    /// Effective transfer bandwidth for `t`'s external tier (the pageable
    /// penalty applies to the local-host tier only).
    fn tier_gbps(&self, t: TensorId) -> f64 {
        let tier = self.utp.tier_of(t);
        match tier {
            Tier::LocalHost if !self.policy.pinned_host => tier.gbps() * self.spec.unpinned_factor,
            _ => tier.gbps(),
        }
    }

    fn transfer_ns(&self, t: TensorId) -> u64 {
        sn_sim::time::transfer_time(self.meta(t).bytes, self.tier_gbps(t)).as_ns()
    }

    /// Allocate, tracking where the peak lands.
    fn charged_alloc(&mut self, bytes: u64) -> Result<AllocGrant, sn_sim::AllocError> {
        let g = self.dev.alloc_charged(bytes)?;
        let used = self.dev.alloc.used();
        if used > self.peak_seen {
            self.peak_seen = used;
            self.peak_step = self.cur_step;
        }
        Ok(g)
    }

    /// Emit `ReleaseDevice(t)` and apply it.
    fn release_device(&mut self, t: TensorId) {
        self.ops.push(PlanOp::ReleaseDevice(t));
        self.utp.release_device(t, &mut self.dev);
    }

    /// Drop a recomputed tensor's device copy (memory-centric cleanup),
    /// honouring the lock/offloading guards.
    fn drop_device_copy(&mut self, t: TensorId) {
        let st = self.utp.state(t);
        if st.lock > 0 || st.offloading || st.residence != Residence::Device {
            return;
        }
        self.release_device(t);
    }

    /// Release every pending offload whose consumers have all run — the
    /// step-boundary drain that pins the memory trajectory at every
    /// allocation point, independent of DMA timing.
    fn drain_reapable(&mut self, step: usize) {
        for t in self.utp.reapable(self.liveness, step) {
            self.release_device(t);
        }
    }

    /// One rung of the reclamation ladder: release the earliest reapable
    /// in-flight offload, else evict via the Tensor Cache. `Ok(true)` means
    /// memory may have been freed and the allocation is worth retrying.
    fn reclaim_some(&mut self, step: usize) -> Result<bool, ExecError> {
        if let Some(t) = self.utp.first_reapable(self.liveness, step) {
            self.release_device(t);
            return Ok(true);
        }
        if self.policy.tensor_cache {
            return self.evict_one(step);
        }
        Ok(false)
    }

    /// `LRU.out` (Alg. 2): pick the cache's victim; start an eviction
    /// copy-out if its contents are still needed, release directly if a
    /// valid host copy exists (or the contents are dead).
    fn evict_one(&mut self, step: usize) -> Result<bool, ExecError> {
        let Some(victim) = self.utp.pick_victim(self.policy.cache_policy) else {
            return Ok(false);
        };
        // Inclusive: a tensor whose last use is the *current* step is still
        // needed by it (eviction can run while the step assembles inputs).
        let meta = self.meta(victim);
        let needed_later =
            meta.last_use_step >= step || meta.bwd_last_use.is_some_and(|b| b >= step);
        let bytes = meta.bytes;
        let st = self.utp.state(victim);
        debug_assert_eq!(st.residence, Residence::Device);
        if needed_later && !st.host_valid {
            if !self.utp.ensure_host_slot(victim, bytes, &mut self.dev) {
                return Err(ExecError::HostExhausted { requested: bytes });
            }
            self.d2h_ns += self.transfer_ns(victim);
            self.utp.mark_offloading(victim, true, None);
            self.utp.lru_remove(victim);
            self.ops.push(PlanOp::Offload {
                t: victim,
                evict: true,
            });
            self.offloaded[victim.0] = true;
            self.counters.offloads += 1;
        } else {
            self.release_device(victim);
        }
        self.counters.evictions += 1;
        Ok(true)
    }

    /// Allocate device memory for `bytes` with the reclamation ladder.
    fn ladder_alloc(
        &mut self,
        bytes: u64,
        step: usize,
        what: &str,
    ) -> Result<AllocGrant, ExecError> {
        loop {
            match self.charged_alloc(bytes) {
                Ok(g) => return Ok(g),
                Err(_) => {
                    if self.reclaim_some(step)? {
                        continue;
                    }
                    return Err(ExecError::Oom {
                        step,
                        layer: what.into(),
                        requested: bytes,
                        capacity: self.dev.alloc.capacity(),
                    });
                }
            }
        }
    }

    /// Make `t` device-resident (the Check() of Alg. 2; may recompute).
    fn ensure_present(&mut self, t: TensorId, step: usize) -> Result<(), ExecError> {
        match self.utp.state(t).residence {
            Residence::Device => {
                self.counters.cache_hits += 1;
                self.utp.lru_touch(t);
                Ok(())
            }
            Residence::Host => {
                self.counters.cache_misses += 1;
                let bytes = self.meta(t).bytes;
                let name = self.net.layer(self.meta(t).layer).name.clone();
                let g = self.ladder_alloc(bytes, step, &name)?;
                self.utp.mark_device(t, g.id, self.policy.tensor_cache);
                self.h2d_ns += self.transfer_ns(t);
                self.ops.push(PlanOp::Fetch(t));
                self.counters.prefetches += 1;
                Ok(())
            }
            Residence::None => {
                // Only recomputable forward outputs may be legitimately
                // absent; anything else is a scheduling bug.
                let meta = self.meta(t);
                assert_eq!(
                    meta.role,
                    TensorRole::FwdOut,
                    "tensor {:?} of {} absent at step {step}",
                    meta.role,
                    self.net.layer(meta.layer).name
                );
                let layer = meta.layer;
                self.recompute_for(layer, step)?;
                debug_assert_eq!(self.utp.state(t).residence, Residence::Device);
                Ok(())
            }
        }
    }

    /// Plan the §3.4 segment replay reconstructing `layer`'s forward output.
    fn recompute_for(&mut self, layer: LayerId, step: usize) -> Result<(), ExecError> {
        let si = self.rplan.segment_of[layer.0]
            .unwrap_or_else(|| panic!("{} is not recomputable", self.net.layer(layer).name));
        let (strategy, anchor) = {
            let seg = &self.rplan.segments[si];
            (seg.strategy, seg.anchor)
        };

        // The anchor checkpoint seeds the replay: bring it back first.
        let anchor_t = self.liveness.fwd_out[anchor.0];
        self.ensure_present(anchor_t, step)?;
        self.utp.states[anchor_t.0].lock += 1;

        let members: Vec<LayerId> = match strategy {
            SegmentStrategy::SpeedCentric => self.rplan.segments[si].members.clone(),
            SegmentStrategy::MemoryCentric => self.rplan.chain_to(self.net, layer),
        };
        // Memory-centric replay frees each chain intermediate as soon as the
        // next link has consumed it, keeping the replay working set at two
        // tensors (Fig. 9b's "memcost stays at l_b").
        let target = *members.last().unwrap_or(&layer);
        let mut prev_link: Option<TensorId> = None;

        for m in members {
            let mt = self.liveness.fwd_out[m.0];
            match self.utp.state(mt).residence {
                Residence::Device => continue, // materialized by an earlier replay
                Residence::Host => {
                    // A previously recomputed copy was evicted to the host;
                    // fetching it back is cheaper than recomputing the chain.
                    self.ensure_present(mt, step)?;
                    continue;
                }
                Residence::None => {}
            }
            // Inputs of a segment member are its (single) producer's output,
            // which is either the anchor or an earlier member — resident.
            let bytes = self.meta(mt).bytes;
            let name = self.net.layer(m).name.clone();
            let g = self.ladder_alloc(bytes, step, &name)?;
            self.utp.mark_device(mt, g.id, self.policy.tensor_cache);
            self.ops.push(PlanOp::Alloc(mt));
            self.ops.push(PlanOp::Recompute(m));
            let lk = &self.net.layer(m).kind;
            self.compute_ns += self.cost.layer(m).fwd_time(lk, self.spec, 1.0).as_ns();
            self.counters.recompute_forwards += 1;
            self.recomputes[m.0] += 1;

            match strategy {
                SegmentStrategy::SpeedCentric => {
                    let free_at = self.meta(mt).bwd_last_use.unwrap_or(step).max(step);
                    self.recomputed_free_at.entry(free_at).or_default().push(mt);
                }
                SegmentStrategy::MemoryCentric => {
                    if let Some(prev) = prev_link.take() {
                        self.drop_device_copy(prev);
                    }
                    if m == target {
                        self.recomputed_free_at.entry(step).or_default().push(mt);
                    } else {
                        prev_link = Some(mt);
                    }
                }
            }
        }

        self.utp.states[anchor_t.0].lock -= 1;
        Ok(())
    }

    /// Plan the overlapped prefetch of host-resident tensors needed by
    /// upcoming backward steps, up to and including the next offloadable
    /// checkpoint's backward. Opportunistic: never evicts on its behalf.
    fn prefetch_ahead(&mut self, step: usize) {
        let total = self.route.total_steps();
        let mut seen_ckpt = false;
        for s in (step + 1)..total.min(step + 9) {
            let inputs: Vec<TensorId> = self.liveness.step_inputs[s].clone();
            for t in inputs {
                if self.utp.state(t).residence != Residence::Host {
                    continue;
                }
                let bytes = self.meta(t).bytes;
                let Ok(g) = self.charged_alloc(bytes) else {
                    return;
                };
                self.utp.mark_device(t, g.id, self.policy.tensor_cache);
                self.h2d_ns += self.transfer_ns(t);
                self.ops.push(PlanOp::Fetch(t));
                self.counters.prefetches += 1;
            }
            let l = self.route.step(s).layer;
            if self.route.step(s).phase == StepPhase::Backward
                && self.net.layer(l).kind.is_offload_candidate()
            {
                if seen_ckpt {
                    break;
                }
                seen_ckpt = true;
            }
        }
    }

    fn plan_step(&mut self, s: usize) -> Result<StepPlan, ExecError> {
        self.cur_step = s;
        let step = self.route.step(s);
        let layer_id = step.layer;
        let kind = self.net.layer(layer_id).kind.clone();
        let lcost = *self.cost.layer(layer_id);

        debug_assert!(self.ops.is_empty());

        // Reap offloads whose consumers have all run, so this step's
        // allocations see the same free memory a synchronous engine would.
        self.drain_reapable(s);

        // 1. Stage inputs (may fetch, may plan a recomputation replay).
        let inputs: Vec<TensorId> = self.liveness.step_inputs[s].clone();
        for t in &inputs {
            self.ensure_present(*t, s)?;
            // Lock immediately: ensuring a later input may trigger eviction
            // and must not victimize an input we already staged.
            self.utp.states[t.0].lock += 1;
        }

        // 2. Materialize this step's outputs.
        let created: Vec<TensorId> = self.liveness.created_at[s].clone();
        for t in &created {
            if self.utp.state(*t).residence == Residence::None {
                let bytes = self.meta(*t).bytes;
                let name = self.net.layer(self.meta(*t).layer).name.clone();
                let g = self.ladder_alloc(bytes, s, &name)?;
                self.utp.mark_device(*t, g.id, self.policy.tensor_cache);
                self.ops.push(PlanOp::Alloc(*t));
            }
            self.utp.states[t.0].lock += 1;
        }

        // 3. Transients: dynamic conv workspace (§3.5) and the backward
        //    weight-gradient buffer (or forward mask workspace).
        let mut choice = AlgoChoice::fallback();
        let mut workspace = None;
        let mut ws_grant = None;
        if matches!(kind, sn_graph::LayerKind::Conv { .. }) {
            let budget = match self.policy.workspace {
                WorkspacePolicy::None => None,
                WorkspacePolicy::Dynamic => Some(
                    self.dev
                        .alloc
                        .free_bytes()
                        .min(self.dev.alloc.largest_free_contiguous()),
                ),
                WorkspacePolicy::Capped(cap) => Some(
                    self.dev
                        .alloc
                        .free_bytes()
                        .min(self.dev.alloc.largest_free_contiguous())
                        .min(cap),
                ),
            };
            if let Some(free) = budget {
                choice = convalgo::select_algo(self.net, layer_id, free);
            }
            if choice.workspace > 0 {
                ws_grant = Some(self.ladder_alloc(choice.workspace, s, "conv workspace")?);
                self.ops.push(PlanOp::AllocWorkspace(choice.workspace));
            }
            let max_choice = convalgo::max_speed_algo(self.net, layer_id);
            workspace = Some(WorkspacePlan {
                bytes: choice.workspace,
                max_speed_bytes: max_choice.workspace,
                algo: choice.algo.name(),
                speedup: choice.speedup,
            });
        }
        let transient_bytes = if step.phase == StepPhase::Backward {
            lcost.wgrad_bytes
        } else {
            lcost.fwd_workspace
        };
        let tr_grant = if transient_bytes > 0 {
            let g = self.ladder_alloc(transient_bytes, s, "transient buffer")?;
            self.ops.push(PlanOp::AllocTransient(transient_bytes));
            Some(g)
        } else {
            None
        };

        // 4. The kernel itself.
        let duration = match step.phase {
            StepPhase::Forward => lcost.fwd_time(&kind, self.spec, choice.speedup),
            StepPhase::Backward => lcost.bwd_time(&kind, self.spec, choice.speedup),
        };
        self.compute_ns += duration.as_ns();
        let pre = std::mem::take(&mut self.ops);

        // 5. Release transients.
        if ws_grant.is_some() || tr_grant.is_some() {
            self.ops.push(PlanOp::FreeTransients);
            if let Some(g) = ws_grant {
                self.dev.free_charged(g.id);
            }
            if let Some(g) = tr_grant {
                self.dev.free_charged(g.id);
            }
        }

        // 6. Unlock.
        for t in inputs.iter().chain(created.iter()) {
            let st = &mut self.utp.states[t.0];
            st.lock = st.lock.saturating_sub(1);
        }

        // 7. Eager offload of checkpoint outputs (Fig. 10b policy). Never
        //    for inference: there is no backward to fetch them back for.
        if !self.inference
            && step.phase == StepPhase::Forward
            && self.policy.offload
            && self.policy.eager_offload
        {
            let t = self.liveness.fwd_out[layer_id.0];
            let meta = self.meta(t);
            let (offloadable, bytes) = (meta.offloadable, meta.bytes);
            let st = self.utp.state(t);
            if offloadable && bytes > 0 && !st.host_valid && !st.offloading {
                if !self.utp.ensure_host_slot(t, bytes, &mut self.dev) {
                    return Err(ExecError::HostExhausted { requested: bytes });
                }
                self.d2h_ns += self.transfer_ns(t);
                self.utp.mark_offloading(t, false, None);
                self.ops.push(PlanOp::Offload { t, evict: false });
                self.offloaded[t.0] = true;
                self.counters.offloads += 1;
            }
        }

        // 8. Overlapped prefetch for upcoming backward consumers.
        if step.phase == StepPhase::Backward && self.policy.offload && self.policy.prefetch {
            self.prefetch_ahead(s);
        }

        // 9. Liveness frees.
        let freed: Vec<TensorId> = self.liveness.freed_after[s].clone();
        for t in freed {
            let st = self.utp.state(t);
            if st.residence != Residence::None || st.host_slot.is_some() {
                self.ops.push(PlanOp::Free(t));
                self.utp.free_tensor(t, &mut self.dev);
            }
        }
        // Recomputed-tensor frees scheduled for this step.
        if let Some(list) = self.recomputed_free_at.remove(&s) {
            for t in list {
                self.drop_device_copy(t);
            }
        }
        let post = std::mem::take(&mut self.ops);

        Ok(StepPlan {
            layer: layer_id,
            phase: step.phase,
            duration,
            pre,
            post,
            workspace,
        })
    }

    fn run(mut self) -> Result<MemoryPlan, ExecError> {
        // The permanently resident weights are the plan's first allocation.
        let weight_bytes = self.cost.total_weight_bytes();
        if weight_bytes > 0 && self.charged_alloc(weight_bytes).is_err() {
            return Err(ExecError::Oom {
                step: 0,
                layer: "WEIGHTS".into(),
                requested: weight_bytes,
                capacity: self.dev.alloc.capacity(),
            });
        }

        let total = self.route.total_steps();
        let mut steps = Vec::with_capacity(total);
        for s in 0..total {
            steps.push(self.plan_step(s)?);
        }
        // End of iteration: every remaining in-flight offload has seen all
        // its consumers — release the device copies.
        self.cur_step = total;
        self.drain_reapable(total);
        let final_ops = std::mem::take(&mut self.ops);

        let lifetimes = self
            .liveness
            .tensors
            .iter()
            .map(|m| TensorLifetime {
                tensor: m.id,
                layer: m.layer,
                role: m.role,
                bytes: m.bytes,
                created_step: m.created_step,
                freed_after: m.last_use_step,
                offloaded: self.offloaded[m.id.0],
                recomputes: match m.role {
                    TensorRole::FwdOut => self.recomputes[m.layer.0],
                    TensorRole::Grad => 0,
                },
            })
            .collect();

        let peak_bytes = self.dev.alloc.high_water();
        debug_assert_eq!(peak_bytes, self.peak_seen);
        Ok(MemoryPlan {
            steps,
            final_ops,
            peak_bytes,
            peak_step: self.peak_step,
            weight_bytes,
            predicted: self.counters,
            lifetimes,
            inference: self.inference,
            compute_ns: self.compute_ns,
            alloc_ns: self.dev.alloc_time.as_ns(),
            h2d_ns: self.h2d_ns,
            d2h_ns: self.d2h_ns,
            serialized: self.policy.sync_transfers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_graph::Shape4;

    fn small_net(batch: usize) -> Net {
        let mut net = Net::new("plan-test", Shape4::new(batch, 3, 32, 32));
        let d = net.data();
        let c1 = net.conv(d, 16, 3, 1, 1);
        let a1 = net.relu(c1);
        let p1 = net.max_pool(a1, 2, 2, 0);
        let c2 = net.conv(p1, 32, 3, 1, 1);
        let a2 = net.relu(c2);
        let f = net.fc(a2, 10);
        net.softmax(f);
        net
    }

    #[test]
    fn plan_compiles_for_every_preset() {
        let net = small_net(8);
        let spec = DeviceSpec::k40c();
        for policy in [
            Policy::baseline(),
            Policy::liveness_only(),
            Policy::liveness_offload(),
            Policy::full_memory(),
            Policy::superneurons(),
        ] {
            let c = compile(&net, &spec, policy).unwrap();
            assert_eq!(c.plan.steps.len(), c.route.total_steps());
            assert!(c.plan.peak_bytes > 0);
            assert!(!c.plan.inference);
            // The debug rendering covers every step.
            let text = c.plan.render(&net);
            assert!(text.lines().count() >= c.plan.steps.len());
        }
    }

    #[test]
    fn plan_peaks_shrink_along_the_preset_ladder() {
        let net = small_net(16);
        let spec = DeviceSpec::k40c();
        let peaks: Vec<u64> = [
            Policy::baseline(),
            Policy::liveness_only(),
            Policy::liveness_offload(),
            Policy::full_memory(),
        ]
        .iter()
        .map(|p| compile(&net, &spec, *p).unwrap().plan.peak_bytes)
        .collect();
        assert!(
            peaks.windows(2).all(|w| w[1] <= w[0]),
            "plan peaks must be non-increasing: {peaks:?}"
        );
    }

    #[test]
    fn inference_plans_are_forward_only_and_smaller() {
        let net = small_net(16);
        let spec = DeviceSpec::k40c();
        let train = compile(&net, &spec, Policy::liveness_only()).unwrap();
        let inf = compile_inference(&net, &spec, Policy::liveness_only()).unwrap();
        assert!(inf.plan.inference);
        assert_eq!(inf.plan.steps.len(), net.len());
        assert!(inf.plan.steps.iter().all(|s| s.phase == StepPhase::Forward));
        assert!(
            inf.plan.peak_bytes < train.plan.peak_bytes,
            "inference {} must undercut training {}",
            inf.plan.peak_bytes,
            train.plan.peak_bytes
        );
        // No gradients, no recomputation, no offload traffic planned.
        assert_eq!(inf.plan.predicted.recompute_forwards, 0);
        assert_eq!(inf.plan.predicted.offloads, 0);
        assert!(inf
            .plan
            .lifetimes
            .iter()
            .all(|l| l.role == TensorRole::FwdOut));
    }

    #[test]
    fn plan_ops_balance_allocs_and_frees() {
        // Every tensor the plan allocates is freed (or released) by the end
        // of the iteration — replaying the plan leaks nothing but weights.
        let net = small_net(8);
        let spec = DeviceSpec::k40c();
        let c = compile(&net, &spec, Policy::superneurons()).unwrap();
        let mut live: std::collections::HashSet<TensorId> = std::collections::HashSet::new();
        let all_ops = c
            .plan
            .steps
            .iter()
            .flat_map(|s| s.pre.iter().chain(s.post.iter()))
            .chain(c.plan.final_ops.iter());
        for op in all_ops {
            match op {
                PlanOp::Alloc(t) | PlanOp::Fetch(t) => {
                    assert!(live.insert(*t), "double materialization of {t:?}");
                }
                PlanOp::ReleaseDevice(t) | PlanOp::Free(t) => {
                    live.remove(t);
                }
                _ => {}
            }
        }
        assert!(live.is_empty(), "leaked device tensors: {live:?}");
    }

    #[test]
    fn iter_time_estimate_is_positive_and_serialization_aware() {
        let net = small_net(8);
        let spec = DeviceSpec::k40c();
        let plain = compile(&net, &spec, Policy::liveness_offload())
            .unwrap()
            .plan;
        let sync = compile(&net, &spec, Policy::liveness_offload().synchronous())
            .unwrap()
            .plan;
        assert!(plain.iter_time_estimate() > SimTime::ZERO);
        assert!(sync.serialized && !plain.serialized);
        assert!(sync.iter_time_estimate() >= plain.iter_time_estimate());
    }
}
